//! Criterion bench: gpKVS throughput under each persistence system, plus
//! the CPU KVS baselines (Figure 1a / Figure 9 ablations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_pmkv::{matrixkv_params, rocksdb_params, run_set_batch, LsmKv, PmemKvCmap};
use gpm_sim::Machine;
use gpm_workloads::{KvsParams, KvsWorkload, Mode};

fn bench_gpu_kvs(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpkvs");
    g.sample_size(10);
    for mode in [Mode::Gpm, Mode::GpmNdp, Mode::CapFs, Mode::CapMm] {
        g.bench_with_input(
            BenchmarkId::new("mode", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let mut m = Machine::default();
                    KvsWorkload::new(KvsParams::quick())
                        .run(&mut m, mode)
                        .unwrap()
                })
            },
        );
    }
    // Ablation: key skew (YCSB-style Zipf vs uniform).
    g.bench_function("zipf_0.99", |b| {
        b.iter(|| {
            let mut m = Machine::default();
            let p = KvsParams {
                key_skew: Some(0.99),
                ..KvsParams::quick()
            };
            KvsWorkload::new(p).run(&mut m, Mode::Gpm).unwrap()
        })
    });
    // Ablation: HCL vs conventional logging inside gpKVS (Figure 11a).
    g.bench_function("log_conventional", |b| {
        b.iter(|| {
            let mut m = Machine::default();
            let p = KvsParams {
                conventional_log_partitions: Some(64),
                ..KvsParams::quick()
            };
            KvsWorkload::new(p).run(&mut m, Mode::Gpm).unwrap()
        })
    });
    g.finish();
}

fn bench_cpu_kvs(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_kvs");
    g.sample_size(10);
    let pairs: Vec<(u64, u64)> = (0..4_000u64)
        .map(|i| (gpm_pmkv::hash64(i) | 1, i))
        .collect();
    g.bench_function("pmemkv", |b| {
        b.iter(|| {
            let mut m = Machine::default();
            let mut kv = PmemKvCmap::create(&mut m, 16_384).unwrap();
            run_set_batch(&mut kv, &mut m, &pairs, 64).unwrap()
        })
    });
    g.bench_function("rocksdb", |b| {
        b.iter(|| {
            let mut m = Machine::default();
            let mut kv = LsmKv::create(&mut m, rocksdb_params()).unwrap();
            run_set_batch(&mut kv, &mut m, &pairs, 64).unwrap()
        })
    });
    g.bench_function("matrixkv", |b| {
        b.iter(|| {
            let mut m = Machine::default();
            let mut kv = LsmKv::create(&mut m, matrixkv_params()).unwrap();
            run_set_batch(&mut kv, &mut m, &pairs, 64).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_gpu_kvs, bench_cpu_kvs);
criterion_main!(benches);
