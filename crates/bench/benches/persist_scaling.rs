//! Criterion bench: the §3.2 persist-scaling microbenchmark (Figure 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_bench::microbench::{persist_cap_mm, persist_gpm};

const BYTES: u64 = 4 << 20;

fn bench_persist(c: &mut Criterion) {
    let mut g = c.benchmark_group("persist_scaling");
    g.sample_size(10);
    for &threads in &[1u32, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::new("cap_mm", threads), &threads, |b, &t| {
            b.iter(|| persist_cap_mm(BYTES, t).unwrap())
        });
    }
    for &threads in &[32u64, 256, 1024] {
        g.bench_with_input(BenchmarkId::new("gpm", threads), &threads, |b, &t| {
            b.iter(|| persist_gpm(BYTES, t).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_persist);
criterion_main!(benches);
