//! Criterion bench: the §3.2/§6.1 PM access-pattern microbenchmark
//! (12.5 / 3.13 / 0.72 GB/s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_bench::microbench::{pm_bandwidth, PatternKind};

fn bench_patterns(c: &mut Criterion) {
    let mut g = c.benchmark_group("pm_patterns");
    g.sample_size(10);
    for (name, kind) in [
        ("seq_aligned", PatternKind::SeqAligned),
        ("seq_unaligned", PatternKind::SeqUnaligned),
        ("random", PatternKind::Random),
    ] {
        g.bench_with_input(BenchmarkId::new("write", name), &kind, |b, &k| {
            b.iter(|| pm_bandwidth(k, 4 << 20).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
