//! Criterion bench: checkpointing under each persistence system, plus the
//! double-buffering publish cost ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_core::{
    gpmcp_checkpoint, gpmcp_checkpoint_incremental, gpmcp_checkpoint_tracked, gpmcp_create,
    gpmcp_fill_working, gpmcp_register,
};
use gpm_sim::{Addr, Machine};
use gpm_workloads::{checkpoint_latency, CfdParams, CfdWorkload, Mode};

fn bench_checkpoint_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_modes");
    g.sample_size(10);
    for mode in [
        Mode::Gpm,
        Mode::GpmNdp,
        Mode::CapFs,
        Mode::CapMm,
        Mode::Gpufs,
    ] {
        g.bench_with_input(
            BenchmarkId::new("cfd", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let mut m = Machine::default();
                    let mut app = CfdWorkload::new(CfdParams::quick());
                    checkpoint_latency(&mut m, &mut app, mode, 16).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_double_buffering(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_publish");
    g.sample_size(10);
    // Full checkpoint (copy + persist + atomic publish) vs copy-only:
    // quantifies what the crash-consistent flip costs.
    g.bench_function("copy_persist_publish", |b| {
        b.iter(|| {
            let mut m = Machine::default();
            let h = m.alloc_hbm(1 << 20).unwrap();
            let mut cp = gpmcp_create(&mut m, "/pm/bcp", 1 << 20, 1, 1).unwrap();
            gpmcp_register(&mut cp, Addr::hbm(h), 1 << 20, 0).unwrap();
            gpmcp_checkpoint(&mut m, &cp, 0).unwrap()
        })
    });
    g.bench_function("copy_only_unfenced", |b| {
        b.iter(|| {
            let mut m = Machine::default();
            let h = m.alloc_hbm(1 << 20).unwrap();
            let mut cp = gpmcp_create(&mut m, "/pm/bcp", 1 << 20, 1, 1).unwrap();
            gpmcp_register(&mut cp, Addr::hbm(h), 1 << 20, 0).unwrap();
            gpmcp_fill_working(&mut m, &cp, 0, false).unwrap()
        })
    });
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_incremental");
    g.sample_size(10);
    let len: u64 = 4 << 20;
    let chunks = (len / 4096) as usize;
    for dirty_pct in [100usize, 20, 5] {
        g.bench_with_input(
            BenchmarkId::new("dirty_pct", dirty_pct),
            &dirty_pct,
            |b, &pct| {
                b.iter(|| {
                    let mut m = Machine::default();
                    let h = m.alloc_hbm(len).unwrap();
                    let mut cp = gpmcp_create(&mut m, "/pm/bcpi", len, 1, 1).unwrap();
                    gpmcp_register(&mut cp, gpm_sim::Addr::hbm(h), len, 0).unwrap();
                    gpmcp_checkpoint_tracked(&mut m, &mut cp, 0).unwrap();
                    let dirty: Vec<bool> = (0..chunks).map(|i| i % 100 < pct).collect();
                    gpmcp_checkpoint_incremental(&mut m, &mut cp, 0, &dirty, 4096).unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_checkpoint_modes,
    bench_double_buffering,
    bench_incremental
);
criterion_main!(benches);
