//! Criterion bench: HCL vs conventional logging (Figure 11 ablation),
//! including the striping and partition-count design choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_bench::microbench::{logging_microbench, logging_microbench_backend, LogBackend};

fn bench_logging(c: &mut Criterion) {
    let mut g = c.benchmark_group("logging");
    g.sample_size(10);
    for &threads in &[2_048u64, 8_192, 32_768] {
        g.bench_with_input(BenchmarkId::new("hcl", threads), &threads, |b, &t| {
            b.iter(|| logging_microbench(true, t, 16_384, 64).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("conventional", threads),
            &threads,
            |b, &t| b.iter(|| logging_microbench(false, t, 16_384, 64).unwrap()),
        );
    }
    // Ablation: HCL's striping (hardware coalescing) on/off.
    g.bench_function("hcl_unstriped", |b| {
        b.iter(|| logging_microbench_backend(LogBackend::HclUnstriped, 8_192, 16_384, 64).unwrap())
    });
    // Ablation: partition count for conventional logging.
    for &parts in &[4u32, 16, 64, 256] {
        g.bench_with_input(
            BenchmarkId::new("conv_partitions", parts),
            &parts,
            |b, &p| b.iter(|| logging_microbench(false, 8_192, 16_384, p).unwrap()),
        );
    }
    g.finish();
}

fn bench_redo_vs_undo(c: &mut Criterion) {
    use gpm_core::{
        gpm_persist_begin, gpm_persist_end, gpmlog_create_hcl, redo_create, GpmThreadExt,
    };
    use gpm_gpu::{launch, FnKernel, LaunchConfig, ThreadCtx};
    use gpm_sim::{Addr, Machine};

    let mut g = c.benchmark_group("redo_vs_undo");
    g.sample_size(10);
    const THREADS: u64 = 8_192;
    // Undo: log old value (persist), update in place (persist) — 3 fence
    // points per update.
    g.bench_function("undo", |b| {
        b.iter(|| {
            let mut m = Machine::default();
            let data = m.alloc_pm(THREADS * 64).unwrap();
            let cfg = LaunchConfig::for_elements(THREADS, 256);
            let log =
                gpmlog_create_hcl(&mut m, "/pm/u", THREADS * 16, cfg.grid, cfg.block).unwrap();
            let dev = log.dev();
            gpm_persist_begin(&mut m);
            let r = launch(
                &mut m,
                cfg,
                &FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                    let i = ctx.global_id();
                    let old = ctx.ld_u64(Addr::pm(data + i * 64))?;
                    dev.insert(ctx, &old.to_le_bytes())?;
                    ctx.st_u64(Addr::pm(data + i * 64), i)?;
                    ctx.gpm_persist()
                }),
            )
            .unwrap();
            gpm_persist_end(&mut m);
            r.elapsed
        })
    });
    // Redo: log new value (persist), update unfenced — 2 fence points.
    g.bench_function("redo", |b| {
        b.iter(|| {
            let mut m = Machine::default();
            let data = m.alloc_pm(THREADS * 64).unwrap();
            let cfg = LaunchConfig::for_elements(THREADS, 256);
            let log = redo_create(&mut m, "/pm/r", cfg.grid, cfg.block, 8, 2).unwrap();
            let dev = log.dev();
            log.begin(&mut m, 1).unwrap();
            gpm_persist_begin(&mut m);
            let r = launch(
                &mut m,
                cfg,
                &FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                    let i = ctx.global_id();
                    dev.record_and_apply(ctx, data + i * 64, &i.to_le_bytes())
                }),
            )
            .unwrap();
            gpm_persist_end(&mut m);
            log.commit(&mut m).unwrap();
            r.elapsed
        })
    });
    g.finish();
}

criterion_group!(benches, bench_logging, bench_redo_vs_undo);
criterion_main!(benches);
