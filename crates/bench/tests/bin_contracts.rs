//! Exit-code and determinism contracts of the bench binaries.
//!
//! These run the real compiled binaries (`CARGO_BIN_EXE_*`), because the
//! contracts under test are process-level: exit codes CI keys off, and
//! byte-identical artifact files.

use std::path::PathBuf;
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gpm_bin_contracts");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// A repro case that trivially passes (fuel 0: crash before any work, so
/// recovery has nothing to do) must exit non-zero under `--inject-bug`:
/// the self-test's deliberately broken recovery was NOT caught, and the
/// campaign must fail loudly rather than report success.
#[test]
fn campaign_inject_bug_unexpected_pass_exits_nonzero() {
    let out = temp_path("campaign_inject_pass.json");
    let status = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--quick",
            "--inject-bug",
            "--workload",
            "gpKVS",
            "--fuel",
            "0",
            "--policy",
            "none",
            "--out",
        ])
        .arg(&out)
        .status()
        .expect("run campaign");
    assert!(
        !status.success(),
        "a passing case under --inject-bug must exit non-zero"
    );
}

/// The same trivially-passing case without `--inject-bug` is a clean
/// repro run and must exit zero.
#[test]
fn campaign_clean_repro_case_exits_zero() {
    let out = temp_path("campaign_clean.json");
    let status = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--quick",
            "--workload",
            "gpKVS",
            "--fuel",
            "0",
            "--policy",
            "none",
            "--out",
        ])
        .arg(&out)
        .status()
        .expect("run campaign");
    assert!(status.success(), "clean repro case must exit zero");
}

/// Same seed ⇒ byte-identical BENCH_serve.json, and the quick sweep must
/// report a knee: some load meets the SLO, and some higher load both
/// blows p99 past the SLO and sheds.
#[test]
fn serve_quick_is_byte_deterministic_and_reports_a_knee() {
    let run = |path: &PathBuf| {
        let status = Command::new(env!("CARGO_BIN_EXE_serve"))
            .args(["--quick", "--out"])
            .arg(path)
            .status()
            .expect("run serve");
        assert!(status.success(), "serve --quick must exit zero");
        std::fs::read(path).expect("read serve JSON")
    };
    let a = run(&temp_path("serve_a.json"));
    let b = run(&temp_path("serve_b.json"));
    assert_eq!(a, b, "same seed must produce byte-identical JSON");

    let json = String::from_utf8(a).expect("utf-8 JSON");
    assert!(json.contains("\"schema\": \"gpm-serve-v1\""));
    // At least one sweep line found a finite knee and a first-overload
    // point (both are numbers, not null).
    let knees = json.split("\"knees\"").nth(1).expect("knees section");
    let has_number_after = |key: &str| {
        knees.split(key).nth(1).is_some_and(|rest| {
            rest.trim_start_matches([':', ' '])
                .starts_with(|c: char| c.is_ascii_digit())
        })
    };
    assert!(has_number_after("\"knee_load_mops\""), "no knee found");
    assert!(
        has_number_after("\"first_overload_mops\""),
        "no overload point found"
    );
    // Overload points shed explicitly: some point reports a non-zero shed
    // count alongside a p99 above the 500 us SLO.
    let overloaded = json.lines().any(|l| {
        l.contains("\"shed\": ")
            && !l.contains("\"shed\": 0,")
            && l.split("\"p99_us\": ")
                .nth(1)
                .and_then(|r| r.split(',').next())
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|p99| p99 > 500.0)
    });
    assert!(overloaded, "sweep must contain an overloaded point");
}
