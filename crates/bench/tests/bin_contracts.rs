//! Exit-code and determinism contracts of the bench binaries.
//!
//! These run the real compiled binaries (`CARGO_BIN_EXE_*`), because the
//! contracts under test are process-level: exit codes CI keys off, and
//! byte-identical artifact files.

use std::path::PathBuf;
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gpm_bin_contracts");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// A repro case that trivially passes (fuel 0: crash before any work, so
/// recovery has nothing to do) must exit non-zero under `--inject-bug`:
/// the self-test's deliberately broken recovery was NOT caught, and the
/// campaign must fail loudly rather than report success.
#[test]
fn campaign_inject_bug_unexpected_pass_exits_nonzero() {
    let out = temp_path("campaign_inject_pass.json");
    let status = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--quick",
            "--inject-bug",
            "--workload",
            "gpKVS",
            "--fuel",
            "0",
            "--policy",
            "none",
            "--out",
        ])
        .arg(&out)
        .status()
        .expect("run campaign");
    assert!(
        !status.success(),
        "a passing case under --inject-bug must exit non-zero"
    );
}

/// The same trivially-passing case without `--inject-bug` is a clean
/// repro run and must exit zero.
#[test]
fn campaign_clean_repro_case_exits_zero() {
    let out = temp_path("campaign_clean.json");
    let status = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--quick",
            "--workload",
            "gpKVS",
            "--fuel",
            "0",
            "--policy",
            "none",
            "--out",
        ])
        .arg(&out)
        .status()
        .expect("run campaign");
    assert!(status.success(), "clean repro case must exit zero");
}

/// Same seed ⇒ byte-identical BENCH_serve.json, and the quick sweep must
/// report a knee: some load meets the SLO, and some higher load both
/// blows p99 past the SLO and sheds.
#[test]
fn serve_quick_is_byte_deterministic_and_reports_a_knee() {
    let run = |path: &PathBuf| {
        let status = Command::new(env!("CARGO_BIN_EXE_serve"))
            .args(["--quick", "--out"])
            .arg(path)
            .status()
            .expect("run serve");
        assert!(status.success(), "serve --quick must exit zero");
        std::fs::read(path).expect("read serve JSON")
    };
    let a = run(&temp_path("serve_a.json"));
    let b = run(&temp_path("serve_b.json"));
    assert_eq!(a, b, "same seed must produce byte-identical JSON");

    let json = String::from_utf8(a).expect("utf-8 JSON");
    assert!(json.contains("\"schema\": \"gpm-serve-v2\""));
    // The scenario sections ride along on the full sweep.
    for section in ["\"replication\": {", "\"resharding\": {", "\"hostile\": {"] {
        assert!(json.contains(section), "missing section {section}");
    }
    // At least one sweep line found a finite knee and a first-overload
    // point (both are numbers, not null).
    let knees = json.split("\"knees\"").nth(1).expect("knees section");
    let has_number_after = |key: &str| {
        knees.split(key).nth(1).is_some_and(|rest| {
            rest.trim_start_matches([':', ' '])
                .starts_with(|c: char| c.is_ascii_digit())
        })
    };
    assert!(has_number_after("\"knee_load_mops\""), "no knee found");
    assert!(
        has_number_after("\"first_overload_mops\""),
        "no overload point found"
    );
    // Overload points shed explicitly: some point reports a non-zero shed
    // count alongside a p99 above the 500 us SLO.
    let overloaded = json.lines().any(|l| {
        l.contains("\"shed\": ")
            && !l.contains("\"shed\": 0,")
            && l.split("\"p99_us\": ")
                .nth(1)
                .and_then(|r| r.split(',').next())
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|p99| p99 > 500.0)
    });
    assert!(overloaded, "sweep must contain an overloaded point");
}

/// `--trace` must write a Perfetto-loadable Chrome trace that is
/// byte-identical run to run, with a `gpm-trace-v1` footer whose
/// attributed bytes reconcile (the exporter asserts the per-phase sums
/// internally; here we check the file-level contract).
#[test]
fn serve_trace_is_byte_deterministic_and_well_formed() {
    let run = |out: &PathBuf, trace: &PathBuf| {
        let status = Command::new(env!("CARGO_BIN_EXE_serve"))
            .args(["--quick", "--out"])
            .arg(out)
            .arg("--trace")
            .arg(trace)
            .status()
            .expect("run serve");
        assert!(status.success(), "serve --quick --trace must exit zero");
        std::fs::read_to_string(trace).expect("read trace JSON")
    };
    let a = run(&temp_path("serve_t_a.json"), &temp_path("trace_a.json"));
    let b = run(&temp_path("serve_t_b.json"), &temp_path("trace_b.json"));
    assert_eq!(a, b, "trace must be byte-identical run to run");
    assert!(a.starts_with("{\"traceEvents\":["));
    assert!(a.contains("\"gpmTrace\""));
    assert!(a.contains("\"schema\":\"gpm-trace-v1\""));
    assert!(
        a.contains("\"name\":\"batch\",\"cat\":\"serve\""),
        "serve batch spans present"
    );
    assert!(
        a.contains("\"dropped_events\":0"),
        "the quick trace must fit the default ring"
    );
}

/// The Makefile's bench/campaign/serve recipes must propagate the
/// binaries' exit codes: no `|| true`-style swallowing and no make `-`
/// ignore-error prefix, otherwise CI green-lights broken runs.
#[test]
fn makefile_recipes_do_not_swallow_exit_codes() {
    let makefile =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../Makefile"))
            .expect("read Makefile");
    let mut in_target = false;
    let mut recipe_lines = 0;
    for line in makefile.lines() {
        if !line.starts_with('\t') {
            in_target = [
                "bench-json",
                "campaign-quick",
                "serve-quick",
                "campaign",
                "serve",
            ]
            .iter()
            .any(|t| line.starts_with(&format!("{t}:")));
            continue;
        }
        if !in_target {
            continue;
        }
        recipe_lines += 1;
        let cmd = line.trim_start();
        assert!(
            !cmd.contains("|| true") && !cmd.contains("|| :"),
            "recipe swallows exit code: {line:?}"
        );
        assert!(
            !cmd.starts_with('-'),
            "recipe ignores errors via make's '-' prefix: {line:?}"
        );
    }
    assert!(recipe_lines > 0, "expected bench/campaign/serve recipes");
}

/// `--list-scenarios` must print exactly the scenario registry, one name
/// per line — CI greps this output before keying a matrix leg off a name,
/// so a drift between the flag and the registry breaks the gate loudly.
#[test]
fn serve_list_scenarios_prints_the_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--list-scenarios")
        .output()
        .expect("run serve");
    assert!(out.status.success(), "--list-scenarios must exit zero");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let listed: Vec<&str> = stdout.lines().collect();
    assert_eq!(listed, gpm_serve::scenario_names());
}

/// An unknown scenario name must exit 2 (usage error, distinct from a
/// failed gate) and point at `--list-scenarios`.
#[test]
fn serve_unknown_scenario_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--quick", "--scenario", "nosuch", "--out"])
        .arg(temp_path("scenario_nosuch.json"))
        .output()
        .expect("run serve");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown scenario"), "stderr: {stderr}");
    assert!(stderr.contains("--list-scenarios"), "stderr: {stderr}");
}

/// A single-scenario run is byte-deterministic and tags itself with the
/// scenario name and section — the unit CI's `cmp` gate depends on both.
#[test]
fn serve_single_scenario_is_byte_deterministic() {
    let run = |path: &PathBuf| {
        let status = Command::new(env!("CARGO_BIN_EXE_serve"))
            .args(["--quick", "--scenario", "failover", "--out"])
            .arg(path)
            .status()
            .expect("run serve");
        assert!(status.success(), "scenario failover must exit zero");
        std::fs::read(path).expect("read scenario JSON")
    };
    let a = run(&temp_path("scenario_fo_a.json"));
    let b = run(&temp_path("scenario_fo_b.json"));
    assert_eq!(a, b, "same seed must produce byte-identical scenario JSON");
    let json = String::from_utf8(a).unwrap();
    assert!(json.contains("\"schema\": \"gpm-serve-v2\""));
    assert!(json.contains("\"scenario\": \"failover\""));
    assert!(json.contains("\"section\": \"replication\""));
    assert!(json.contains("\"failover_gap_us\""));
}

/// `--inject-bug` has campaign self-test semantics: exit 0 iff the
/// consistency oracle caught the injected fabric corruption, and a usage
/// error (2) on scenarios that have no fabric to corrupt.
#[test]
fn serve_inject_bug_exit_semantics() {
    let run = |scenario: &str, file: &str| {
        Command::new(env!("CARGO_BIN_EXE_serve"))
            .args(["--quick", "--scenario", scenario, "--inject-bug", "--out"])
            .arg(temp_path(file))
            .status()
            .expect("run serve")
    };
    assert!(
        run("replication", "scenario_rep_bug.json").success(),
        "a caught dropped-log-batch must exit zero"
    );
    assert!(
        run("resharding", "scenario_rs_bug.json").success(),
        "a caught dropped-migrated-key must exit zero"
    );
    assert_eq!(
        run("hot_key", "scenario_hk_bug.json").code(),
        Some(2),
        "--inject-bug on a scenario without a fabric is a usage error"
    );
}

/// The perf gate: a 2× slowdown on one bench must make `benchdiff` exit
/// non-zero and name the offending lines; identical runs must pass.
#[test]
fn benchdiff_fails_on_two_x_slowdown_and_passes_identical() {
    let doc = |ops: f64| {
        format!(
            "{{\n  \"schema\": \"gpm-enginebench-v2\",\n  \"engine_threads\": 4,\n  \"benches\": [\n    \
             {{\"name\": \"coalesced_store_1m\", \"threads\": 1048576, \"ops\": 1048576, \"reps\": 3, \
             \"best_wall_s\": 0.1, \"ops_per_sec\": {ops:.1}, \"sim_elapsed_ns\": 5.0}}\n  ]\n}}\n"
        )
    };
    let base = temp_path("benchdiff_base.json");
    let same = temp_path("benchdiff_same.json");
    let slow = temp_path("benchdiff_slow.json");
    std::fs::write(&base, doc(1_000_000.0)).unwrap();
    std::fs::write(&same, doc(1_000_000.0)).unwrap();
    std::fs::write(&slow, doc(500_000.0)).unwrap();

    let run = |cur: &PathBuf| {
        Command::new(env!("CARGO_BIN_EXE_benchdiff"))
            .arg(&base)
            .arg(cur)
            .output()
            .expect("run benchdiff")
    };
    let ok = run(&same);
    assert!(ok.status.success(), "identical runs must pass the gate");

    let bad = run(&slow);
    assert!(!bad.status.success(), "2x slowdown must fail the gate");
    assert_eq!(bad.status.code(), Some(1));
    let stdout = String::from_utf8(bad.stdout).unwrap();
    assert!(stdout.contains("REGRESSION coalesced_store_1m"));
    assert!(
        stdout.contains("\"ops_per_sec\": 500000.0"),
        "offending line must be printed: {stdout}"
    );
}
