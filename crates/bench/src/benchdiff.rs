//! Perf-regression comparison over `BENCH_engine.json` files.
//!
//! The enginebench schema (`gpm-enginebench-v2`) writes one bench object
//! per line, so this module gets away with a line-oriented scanner instead
//! of a JSON parser — keeping the gate dependency-free. A bench line looks
//! like:
//!
//! ```text
//!     {"name": "coalesced_store_1m", ..., "ops_per_sec": 12345678.9, ...}
//! ```
//!
//! [`diff`] compares a current run against a committed baseline and flags
//! every bench whose `ops_per_sec` fell below `baseline * (1 - tolerance)`,
//! plus benches that vanished outright. Wall-clock throughput is noisy, so
//! the CI gate runs enginebench twice (warm-up, then measure) and uses a
//! generous default tolerance; see `.github/workflows/ci.yml`.

use std::fmt::Write as _;

/// Default relative slowdown tolerated before the gate fails (±20%).
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Default tolerance for the `--serve` gate (±10%). Serve numbers are
/// sim-domain and seed-deterministic, so they carry none of enginebench's
/// wall-clock noise; the band only absorbs intentional capacity drift
/// small enough not to warrant a fresh committed baseline.
pub const DEFAULT_SERVE_TOLERANCE: f64 = 0.10;

/// One bench extracted from a results file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLine {
    /// The bench's `"name"` field.
    pub name: String,
    /// The bench's `"ops_per_sec"` field (wall-clock throughput).
    pub ops_per_sec: f64,
    /// The raw JSON line, for offender reports.
    pub raw: String,
}

/// A bench that fell outside the tolerance band.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Bench name.
    pub name: String,
    /// Baseline throughput (ops/s).
    pub baseline: f64,
    /// Current throughput (ops/s).
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Raw baseline JSON line.
    pub baseline_line: String,
    /// Raw current JSON line.
    pub current_line: String,
}

/// Outcome of one baseline/current comparison.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Benches present in both files and compared.
    pub compared: usize,
    /// Benches slower than the tolerance allows.
    pub regressions: Vec<Regression>,
    /// Benches in the baseline but absent from the current run.
    pub missing: Vec<String>,
    /// Benches in the current run but absent from the baseline (allowed;
    /// reported for visibility).
    pub added: Vec<String>,
}

impl DiffReport {
    /// True when no bench regressed or disappeared.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Human-readable summary, one line per compared bench, offenders
    /// flagged. This is exactly what the `benchdiff` binary prints.
    #[must_use]
    pub fn render(&self, tolerance: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "benchdiff: {} compared, {} regressed, {} missing, {} added (tolerance {:.0}%)",
            self.compared,
            self.regressions.len(),
            self.missing.len(),
            self.added.len(),
            tolerance * 100.0
        );
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "REGRESSION {}: {:.0} -> {:.0} ops/s ({:.1}% of baseline)",
                r.name,
                r.baseline,
                r.current,
                r.ratio * 100.0
            );
            let _ = writeln!(out, "  baseline: {}", r.baseline_line.trim());
            let _ = writeln!(out, "  current:  {}", r.current_line.trim());
        }
        for name in &self.missing {
            let _ = writeln!(out, "MISSING {name}: in baseline but not in current run");
        }
        for name in &self.added {
            let _ = writeln!(out, "added {name}: not in baseline (ignored)");
        }
        out
    }
}

/// Extracts the value of a `"key": "string"` field from a JSON line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the value of a `"key": number` field from a JSON line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Scans an enginebench JSON document for bench lines.
///
/// Lines lacking either a `name` or an `ops_per_sec` field are skipped, so
/// headers, schema fields and footers fall through harmlessly.
#[must_use]
pub fn parse_benches(json: &str) -> Vec<BenchLine> {
    json.lines()
        .filter_map(|line| {
            let name = str_field(line, "name")?;
            let ops_per_sec = num_field(line, "ops_per_sec")?;
            Some(BenchLine {
                name,
                ops_per_sec,
                raw: line.to_string(),
            })
        })
        .collect()
}

/// Scans a `BENCH_serve.json` (schema `gpm-serve-v2`) document for its
/// capacity-bearing lines and synthesizes stable bench names for them:
///
/// - sweep points → `ops/shards{N}/{policy}/load{L}` over `throughput_mops`
/// - shape points → `ops/shards{N}/{shape}/load{L}` over `throughput_mops`
/// - the gpDB leg → `ops/db_insert` over `throughput_mops`
/// - knees        → `knee/shards{N}/{policy}` over `knee_load_mops`
///
/// A `null` knee is skipped on parse, so a knee that was measured in the
/// baseline but vanished in the current run surfaces as a missing bench
/// (which fails the gate). Latency/shed fields are deliberately not gated
/// here — the scenario sections own those via the byte-identity CI check.
#[must_use]
pub fn parse_serve_benches(json: &str) -> Vec<BenchLine> {
    let mut out = Vec::new();
    for line in json.lines() {
        if let Some(knee) = num_field(line, "knee_load_mops") {
            let (Some(shards), Some(policy)) =
                (num_field(line, "shards"), str_field(line, "policy"))
            else {
                continue;
            };
            out.push(BenchLine {
                name: format!("knee/shards{shards}/{policy}"),
                ops_per_sec: knee,
                raw: line.to_string(),
            });
            continue;
        }
        let Some(tput) = num_field(line, "throughput_mops") else {
            continue;
        };
        let name = match (num_field(line, "shards"), num_field(line, "load_mops")) {
            (Some(shards), Some(load)) => {
                let Some(tag) = str_field(line, "policy").or_else(|| str_field(line, "shape"))
                else {
                    continue;
                };
                format!("ops/shards{shards}/{tag}/load{load:.3}")
            }
            _ => "ops/db_insert".to_string(),
        };
        out.push(BenchLine {
            name,
            ops_per_sec: tput,
            raw: line.to_string(),
        });
    }
    out
}

/// Compares two enginebench JSON documents.
///
/// A bench regresses when `current < baseline * (1 - tolerance)`.
/// Improvements never fail the gate (a faster engine is not a bug); the
/// baseline is refreshed by committing a new `BENCH_engine.json`.
///
/// # Errors
///
/// Returns a message when either document contains no bench lines at all —
/// an empty comparison would vacuously pass and hide a broken harness.
pub fn diff(baseline: &str, current: &str, tolerance: f64) -> Result<DiffReport, String> {
    diff_lines(parse_benches(baseline), parse_benches(current), tolerance)
}

/// Compares two `BENCH_serve.json` documents over their knee and
/// throughput lines (see [`parse_serve_benches`]).
///
/// # Errors
///
/// Returns a message when either document yields no serve bench lines.
pub fn diff_serve(baseline: &str, current: &str, tolerance: f64) -> Result<DiffReport, String> {
    diff_lines(
        parse_serve_benches(baseline),
        parse_serve_benches(current),
        tolerance,
    )
}

fn diff_lines(
    base: Vec<BenchLine>,
    cur: Vec<BenchLine>,
    tolerance: f64,
) -> Result<DiffReport, String> {
    if base.is_empty() {
        return Err("baseline contains no bench lines".to_string());
    }
    if cur.is_empty() {
        return Err("current run contains no bench lines".to_string());
    }
    let mut report = DiffReport::default();
    for b in &base {
        match cur.iter().find(|c| c.name == b.name) {
            None => report.missing.push(b.name.clone()),
            Some(c) => {
                report.compared += 1;
                if c.ops_per_sec < b.ops_per_sec * (1.0 - tolerance) {
                    report.regressions.push(Regression {
                        name: b.name.clone(),
                        baseline: b.ops_per_sec,
                        current: c.ops_per_sec,
                        ratio: if b.ops_per_sec > 0.0 {
                            c.ops_per_sec / b.ops_per_sec
                        } else {
                            0.0
                        },
                        baseline_line: b.raw.clone(),
                        current_line: c.raw.clone(),
                    });
                }
            }
        }
    }
    for c in &cur {
        if !base.iter().any(|b| b.name == c.name) {
            report.added.push(c.name.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(benches: &[(&str, f64)]) -> String {
        let mut out = String::from(
            "{\n  \"schema\": \"gpm-enginebench-v2\",\n  \"engine_threads\": 4,\n  \"benches\": [\n",
        );
        for (i, (name, ops)) in benches.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{name}\", \"threads\": 64, \"ops\": 100, \"reps\": 3, \
                 \"best_wall_s\": 0.1, \"ops_per_sec\": {ops:.1}, \"sim_elapsed_ns\": 5.0}}{}",
                if i + 1 < benches.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    #[test]
    fn parses_real_shape() {
        let benches = parse_benches(&doc(&[("a", 1000.0), ("b", 2000.0)]));
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[0].name, "a");
        assert!((benches[1].ops_per_sec - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn identical_runs_pass() {
        let d = doc(&[("a", 1000.0)]);
        let report = diff(&d, &d, DEFAULT_TOLERANCE).unwrap();
        assert!(report.passed());
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn two_x_slowdown_fails_and_names_the_offender() {
        let base = doc(&[("a", 1000.0), ("b", 1000.0)]);
        let cur = doc(&[("a", 1000.0), ("b", 500.0)]);
        let report = diff(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].name, "b");
        let rendered = report.render(DEFAULT_TOLERANCE);
        assert!(rendered.contains("REGRESSION b"));
        assert!(rendered.contains("\"ops_per_sec\": 500.0"));
    }

    #[test]
    fn slowdown_inside_tolerance_passes() {
        let base = doc(&[("a", 1000.0)]);
        let cur = doc(&[("a", 850.0)]);
        assert!(diff(&base, &cur, DEFAULT_TOLERANCE).unwrap().passed());
    }

    #[test]
    fn improvement_passes() {
        let base = doc(&[("a", 1000.0)]);
        let cur = doc(&[("a", 5000.0)]);
        assert!(diff(&base, &cur, DEFAULT_TOLERANCE).unwrap().passed());
    }

    #[test]
    fn missing_bench_fails() {
        let base = doc(&[("a", 1000.0), ("b", 1000.0)]);
        let cur = doc(&[("a", 1000.0)]);
        let report = diff(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["b".to_string()]);
    }

    #[test]
    fn added_bench_is_tolerated() {
        let base = doc(&[("a", 1000.0)]);
        let cur = doc(&[("a", 1000.0), ("new", 1.0)]);
        let report = diff(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(report.passed());
        assert_eq!(report.added, vec!["new".to_string()]);
    }

    #[test]
    fn empty_documents_error() {
        let d = doc(&[("a", 1000.0)]);
        assert!(diff("{}", &d, DEFAULT_TOLERANCE).is_err());
        assert!(diff(&d, "{}", DEFAULT_TOLERANCE).is_err());
    }

    /// A minimal serve document in the real `gpm-serve-v2` line shapes.
    fn serve_doc(point_tput: f64, knee: &str) -> String {
        format!(
            "{{\n  \"schema\": \"gpm-serve-v2\",\n  \"points\": [\n    \
             {{\"shards\": 1, \"policy\": \"b256-l100\", \"load_mops\": 0.500, \
             \"shed_rate\": 0.000000, \"throughput_mops\": {point_tput:.4}, \
             \"p99_us\": 120.000}}\n  ],\n  \"shapes\": [\n    \
             {{\"shards\": 2, \"shape\": \"bursty\", \"load_mops\": 1.500, \
             \"throughput_mops\": 1.4000}}\n  ],\n  \
             \"db_insert\": {{\"completed\": 10, \"shed\": 0, \"p99_us\": 50.000, \
             \"throughput_mops\": 0.9000}},\n  \"knees\": [\n    \
             {{\"shards\": 1, \"policy\": \"b256-l100\", \"knee_load_mops\": {knee}, \
             \"first_overload_mops\": 4.500}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn serve_parser_names_points_shapes_db_and_knees() {
        let names: Vec<String> = parse_serve_benches(&serve_doc(0.5, "3.000"))
            .into_iter()
            .map(|b| b.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "ops/shards1/b256-l100/load0.500",
                "ops/shards2/bursty/load1.500",
                "ops/db_insert",
                "knee/shards1/b256-l100",
            ]
        );
    }

    #[test]
    fn serve_knee_regression_fails() {
        let base = serve_doc(0.5, "3.000");
        let cur = serve_doc(0.5, "2.000");
        let report = diff_serve(&base, &cur, DEFAULT_SERVE_TOLERANCE).unwrap();
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].name, "knee/shards1/b256-l100");
    }

    #[test]
    fn serve_null_knee_in_current_is_a_missing_bench() {
        let base = serve_doc(0.5, "3.000");
        let cur = serve_doc(0.5, "null");
        let report = diff_serve(&base, &cur, DEFAULT_SERVE_TOLERANCE).unwrap();
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["knee/shards1/b256-l100".to_string()]);
    }

    #[test]
    fn serve_identical_runs_pass() {
        let d = serve_doc(0.5, "3.000");
        let report = diff_serve(&d, &d, DEFAULT_SERVE_TOLERANCE).unwrap();
        assert!(report.passed());
        assert_eq!(report.compared, 4);
    }
}
