//! Perf-regression comparison over `BENCH_engine.json` files.
//!
//! The enginebench schema (`gpm-enginebench-v2`) writes one bench object
//! per line, so this module gets away with a line-oriented scanner instead
//! of a JSON parser — keeping the gate dependency-free. A bench line looks
//! like:
//!
//! ```text
//!     {"name": "coalesced_store_1m", ..., "ops_per_sec": 12345678.9, ...}
//! ```
//!
//! [`diff`] compares a current run against a committed baseline and flags
//! every bench whose `ops_per_sec` fell below `baseline * (1 - tolerance)`,
//! plus benches that vanished outright. Wall-clock throughput is noisy, so
//! the CI gate runs enginebench twice (warm-up, then measure) and uses a
//! generous default tolerance; see `.github/workflows/ci.yml`.

use std::fmt::Write as _;

/// Default relative slowdown tolerated before the gate fails (±20%).
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// One bench extracted from a results file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLine {
    /// The bench's `"name"` field.
    pub name: String,
    /// The bench's `"ops_per_sec"` field (wall-clock throughput).
    pub ops_per_sec: f64,
    /// The raw JSON line, for offender reports.
    pub raw: String,
}

/// A bench that fell outside the tolerance band.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Bench name.
    pub name: String,
    /// Baseline throughput (ops/s).
    pub baseline: f64,
    /// Current throughput (ops/s).
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Raw baseline JSON line.
    pub baseline_line: String,
    /// Raw current JSON line.
    pub current_line: String,
}

/// Outcome of one baseline/current comparison.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Benches present in both files and compared.
    pub compared: usize,
    /// Benches slower than the tolerance allows.
    pub regressions: Vec<Regression>,
    /// Benches in the baseline but absent from the current run.
    pub missing: Vec<String>,
    /// Benches in the current run but absent from the baseline (allowed;
    /// reported for visibility).
    pub added: Vec<String>,
}

impl DiffReport {
    /// True when no bench regressed or disappeared.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Human-readable summary, one line per compared bench, offenders
    /// flagged. This is exactly what the `benchdiff` binary prints.
    #[must_use]
    pub fn render(&self, tolerance: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "benchdiff: {} compared, {} regressed, {} missing, {} added (tolerance {:.0}%)",
            self.compared,
            self.regressions.len(),
            self.missing.len(),
            self.added.len(),
            tolerance * 100.0
        );
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "REGRESSION {}: {:.0} -> {:.0} ops/s ({:.1}% of baseline)",
                r.name,
                r.baseline,
                r.current,
                r.ratio * 100.0
            );
            let _ = writeln!(out, "  baseline: {}", r.baseline_line.trim());
            let _ = writeln!(out, "  current:  {}", r.current_line.trim());
        }
        for name in &self.missing {
            let _ = writeln!(out, "MISSING {name}: in baseline but not in current run");
        }
        for name in &self.added {
            let _ = writeln!(out, "added {name}: not in baseline (ignored)");
        }
        out
    }
}

/// Extracts the value of a `"key": "string"` field from a JSON line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the value of a `"key": number` field from a JSON line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Scans an enginebench JSON document for bench lines.
///
/// Lines lacking either a `name` or an `ops_per_sec` field are skipped, so
/// headers, schema fields and footers fall through harmlessly.
#[must_use]
pub fn parse_benches(json: &str) -> Vec<BenchLine> {
    json.lines()
        .filter_map(|line| {
            let name = str_field(line, "name")?;
            let ops_per_sec = num_field(line, "ops_per_sec")?;
            Some(BenchLine {
                name,
                ops_per_sec,
                raw: line.to_string(),
            })
        })
        .collect()
}

/// Compares two enginebench JSON documents.
///
/// A bench regresses when `current < baseline * (1 - tolerance)`.
/// Improvements never fail the gate (a faster engine is not a bug); the
/// baseline is refreshed by committing a new `BENCH_engine.json`.
///
/// # Errors
///
/// Returns a message when either document contains no bench lines at all —
/// an empty comparison would vacuously pass and hide a broken harness.
pub fn diff(baseline: &str, current: &str, tolerance: f64) -> Result<DiffReport, String> {
    let base = parse_benches(baseline);
    let cur = parse_benches(current);
    if base.is_empty() {
        return Err("baseline contains no bench lines".to_string());
    }
    if cur.is_empty() {
        return Err("current run contains no bench lines".to_string());
    }
    let mut report = DiffReport::default();
    for b in &base {
        match cur.iter().find(|c| c.name == b.name) {
            None => report.missing.push(b.name.clone()),
            Some(c) => {
                report.compared += 1;
                if c.ops_per_sec < b.ops_per_sec * (1.0 - tolerance) {
                    report.regressions.push(Regression {
                        name: b.name.clone(),
                        baseline: b.ops_per_sec,
                        current: c.ops_per_sec,
                        ratio: if b.ops_per_sec > 0.0 {
                            c.ops_per_sec / b.ops_per_sec
                        } else {
                            0.0
                        },
                        baseline_line: b.raw.clone(),
                        current_line: c.raw.clone(),
                    });
                }
            }
        }
    }
    for c in &cur {
        if !base.iter().any(|b| b.name == c.name) {
            report.added.push(c.name.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(benches: &[(&str, f64)]) -> String {
        let mut out = String::from(
            "{\n  \"schema\": \"gpm-enginebench-v2\",\n  \"engine_threads\": 4,\n  \"benches\": [\n",
        );
        for (i, (name, ops)) in benches.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{name}\", \"threads\": 64, \"ops\": 100, \"reps\": 3, \
                 \"best_wall_s\": 0.1, \"ops_per_sec\": {ops:.1}, \"sim_elapsed_ns\": 5.0}}{}",
                if i + 1 < benches.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    #[test]
    fn parses_real_shape() {
        let benches = parse_benches(&doc(&[("a", 1000.0), ("b", 2000.0)]));
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[0].name, "a");
        assert!((benches[1].ops_per_sec - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn identical_runs_pass() {
        let d = doc(&[("a", 1000.0)]);
        let report = diff(&d, &d, DEFAULT_TOLERANCE).unwrap();
        assert!(report.passed());
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn two_x_slowdown_fails_and_names_the_offender() {
        let base = doc(&[("a", 1000.0), ("b", 1000.0)]);
        let cur = doc(&[("a", 1000.0), ("b", 500.0)]);
        let report = diff(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].name, "b");
        let rendered = report.render(DEFAULT_TOLERANCE);
        assert!(rendered.contains("REGRESSION b"));
        assert!(rendered.contains("\"ops_per_sec\": 500.0"));
    }

    #[test]
    fn slowdown_inside_tolerance_passes() {
        let base = doc(&[("a", 1000.0)]);
        let cur = doc(&[("a", 850.0)]);
        assert!(diff(&base, &cur, DEFAULT_TOLERANCE).unwrap().passed());
    }

    #[test]
    fn improvement_passes() {
        let base = doc(&[("a", 1000.0)]);
        let cur = doc(&[("a", 5000.0)]);
        assert!(diff(&base, &cur, DEFAULT_TOLERANCE).unwrap().passed());
    }

    #[test]
    fn missing_bench_fails() {
        let base = doc(&[("a", 1000.0), ("b", 1000.0)]);
        let cur = doc(&[("a", 1000.0)]);
        let report = diff(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["b".to_string()]);
    }

    #[test]
    fn added_bench_is_tolerated() {
        let base = doc(&[("a", 1000.0)]);
        let cur = doc(&[("a", 1000.0), ("new", 1.0)]);
        let report = diff(&base, &cur, DEFAULT_TOLERANCE).unwrap();
        assert!(report.passed());
        assert_eq!(report.added, vec!["new".to_string()]);
    }

    #[test]
    fn empty_documents_error() {
        let d = doc(&[("a", 1000.0)]);
        assert!(diff("{}", &d, DEFAULT_TOLERANCE).is_err());
        assert!(diff(&d, "{}", DEFAULT_TOLERANCE).is_err());
    }
}
