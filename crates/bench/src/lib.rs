//! # gpm-bench — the evaluation harness
//!
//! Regenerates every figure and table of the GPM paper's evaluation against
//! the simulated platform. One binary per experiment (like the artifact's
//! `make figure_9` targets) plus `reproduce`, which runs them all and writes
//! tab-separated reports under `reports/`:
//!
//! | Binary | Paper result |
//! |---|---|
//! | `fig1a` | Figure 1a — pKVS throughput |
//! | `fig1b` | Figure 1b — GPM vs CPU-with-PM apps |
//! | `fig3` | Figure 3 — persist scaling |
//! | `fig9` | Figure 9 — CAP-mm/GPM/GPUfs over CAP-fs |
//! | `fig10` | Figure 10 — NDP & eADR analysis |
//! | `fig11a`/`fig11b` | Figure 11 — HCL vs conventional logging |
//! | `fig12` | Figure 12 — PCIe write bandwidth |
//! | `table4` | Table 4 — write amplification |
//! | `table5` | Table 5 — restoration latency |
//! | `recovery_stress` | §6.2 — crash-injection stress |
//! | `campaign` | §6.2 — systematic crash-point enumeration with recovery oracles |
//!
//! Pass `--quick` to any binary for scaled-down inputs.

#![warn(missing_docs)]

pub mod benchdiff;
pub mod figures;
pub mod microbench;
pub mod report;

pub use report::Report;

use gpm_workloads::Scale;

/// Parses the common `--quick` flag.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    }
}

/// Runs one report generator: prints the pretty table and saves the TSV
/// under `reports/`.
pub fn emit(report: &Report) {
    println!("{}", report.to_pretty());
    let dir = std::path::Path::new("reports");
    match report.save(dir) {
        Ok(()) => println!("(saved reports/{}.txt)\n", report.name),
        Err(e) => eprintln!("warning: could not save report: {e}"),
    }
}
