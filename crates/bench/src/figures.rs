//! Regenerators for every figure and table in the paper's evaluation.
//!
//! Each function runs the relevant workloads on fresh simulated machines and
//! returns a [`Report`] whose rows correspond to the paper's bars/cells.
//! Absolute values are model values; the *shapes* (who wins, by what
//! factor) are the reproduction targets — see `EXPERIMENTS.md`.

use gpm_pmkv::{matrixkv_params, rocksdb_params, run_set_batch, LsmKv, PmKv, PmemKvCmap};
use gpm_sim::{Machine, Ns, SimError};
use gpm_workloads::{
    suite, BfsParams, BfsWorkload, DbParams, DbWorkload, KvsParams, KvsWorkload, Mode, PsParams,
    PsWorkload, Scale, SradParams, SradWorkload,
};

use crate::microbench;
use crate::report::{speedup_cell, Report};

fn fresh() -> Machine {
    Machine::default()
}

/// Figure 1(a): throughput of persistent KVS — CPU stores vs GPM-KVS.
///
/// # Panics
///
/// Panics on internal simulation errors (the harness is deterministic).
pub fn fig1a(scale: Scale) -> Report {
    let mut report = Report::new(
        "out_figure1a",
        "Figure 1a: pKVS throughput (Mops/s), batched SETs",
        &["store", "mops", "speedup_of_gpm"],
    );
    let ops: u64 = if scale == Scale::Quick { 4_000 } else { 40_000 };
    let pairs: Vec<(u64, u64)> = (0..ops).map(|i| (gpm_pmkv::hash64(i) | 1, i)).collect();

    let mut results: Vec<(String, f64)> = Vec::new();
    {
        let mut m = fresh();
        let mut kv = PmemKvCmap::create(&mut m, ops * 2).expect("pmemkv");
        let r = run_set_batch(&mut kv, &mut m, &pairs, 64).expect("pmemkv batch");
        results.push((kv.name().to_string(), r.mops()));
    }
    for params in [rocksdb_params(), matrixkv_params()] {
        let mut m = fresh();
        let mut kv = LsmKv::create(&mut m, params).expect("lsm");
        let r = run_set_batch(&mut kv, &mut m, &pairs, 64).expect("lsm batch");
        results.push((kv.name().to_string(), r.mops()));
    }
    // GPM-KVS: MegaKV on GPM, pure SETs.
    let gpm_mops = {
        let p = if scale == Scale::Quick {
            KvsParams::quick()
        } else {
            KvsParams::default()
        };
        let total_ops = p.ops_per_batch * p.batches as u64;
        let mut m = fresh();
        let r = KvsWorkload::new(p).run(&mut m, Mode::Gpm).expect("gpm kvs");
        assert!(r.verified);
        total_ops as f64 / r.elapsed.0 * 1e3
    };
    results.push(("GPM-KVS".to_string(), gpm_mops));
    for (name, mops) in &results {
        report.row(&[
            name.clone(),
            format!("{mops:.3}"),
            format!("{:.2}", gpm_mops / mops),
        ]);
    }
    report
}

/// Figure 1(b): GPM speedup over multithreaded CPU applications using PM.
///
/// # Panics
///
/// Panics on internal simulation errors.
pub fn fig1b(scale: Scale) -> Report {
    let mut report = Report::new(
        "out_figure1b",
        "Figure 1b: GPM speedup over CPU-with-PM applications",
        &["workload", "cpu_ms", "gpm_ms", "speedup"],
    );
    let quick = scale == Scale::Quick;
    let mut run = |name: &str, cpu: Ns, gpm: Ns| {
        report.row(&[
            name.to_string(),
            format!("{:.3}", cpu.as_millis()),
            format!("{:.3}", gpm.as_millis()),
            format!("{:.2}", cpu / gpm),
        ]);
    };
    {
        let w = BfsWorkload::new(if quick {
            BfsParams::quick()
        } else {
            BfsParams::default()
        });
        let g = w.run(&mut fresh(), Mode::Gpm).expect("bfs gpm");
        let c = w.run(&mut fresh(), Mode::CpuPm).expect("bfs cpu");
        assert!(g.verified && c.verified);
        run("BFS", c.elapsed, g.elapsed);
    }
    {
        let w = SradWorkload::new(if quick {
            SradParams::quick()
        } else {
            SradParams::default()
        });
        let g = w.run(&mut fresh(), Mode::Gpm).expect("srad gpm");
        let c = w.run(&mut fresh(), Mode::CpuPm).expect("srad cpu");
        assert!(g.verified && c.verified);
        run("SRAD", c.elapsed, g.elapsed);
    }
    {
        let w = PsWorkload::new(if quick {
            PsParams::quick()
        } else {
            PsParams::default()
        });
        let g = w.run(&mut fresh(), Mode::Gpm).expect("ps gpm");
        let c = w.run(&mut fresh(), Mode::CpuPm).expect("ps cpu");
        assert!(g.verified && c.verified);
        run("PS", c.elapsed, g.elapsed);
    }
    report
}

/// Figure 3: scaling of persistence — CAP-mm CPU threads vs GPM GPU threads.
///
/// # Panics
///
/// Panics on internal simulation errors.
pub fn fig3(scale: Scale) -> Report {
    let bytes: u64 = if scale == Scale::Quick {
        2 << 20
    } else {
        16 << 20
    };
    let mut report = Report::new(
        "out_figure3",
        "Figure 3: write+persist scaling (speedup over 1-thread CAP-mm)",
        &["side", "threads", "elapsed_ms", "speedup"],
    );
    let base = microbench::persist_cap_mm(bytes, 1).expect("cap base");
    for threads in [1u32, 2, 4, 6, 16, 32, 64] {
        let t = microbench::persist_cap_mm(bytes, threads).expect("cap");
        report.row(&[
            "CAP-mm".into(),
            threads.to_string(),
            format!("{:.3}", t.as_millis()),
            format!("{:.2}", base / t),
        ]);
    }
    for threads in [32u64, 64, 128, 256, 512, 1024, 2048] {
        let t = microbench::persist_gpm(bytes, threads).expect("gpm");
        report.row(&[
            "GPM".into(),
            threads.to_string(),
            format!("{:.3}", t.as_millis()),
            format!("{:.2}", base / t),
        ]);
    }
    report
}

fn run_mode(w: &mut dyn gpm_workloads::Workload, mode: Mode, eadr: bool) -> Option<Ns> {
    if !w.supports(mode) {
        return None;
    }
    let mut m = if eadr {
        microbench::eadr_machine()
    } else {
        fresh()
    };
    // Checkpointing workloads compare their persist phase (one checkpoint):
    // the compute between checkpoints is identical under every system.
    match w.persist_phase(&mut m, mode) {
        Ok(Some(t)) => return Some(t),
        Ok(None) => {}
        Err(SimError::FileTooLarge { .. }) => return None,
        Err(e) => panic!("{} persist phase under {mode:?}: {e}", w.name()),
    }
    let mut m = if eadr {
        microbench::eadr_machine()
    } else {
        fresh()
    };
    match w.run(&mut m, mode) {
        Ok(r) => {
            assert!(
                r.verified,
                "{} under {mode:?} failed verification",
                w.name()
            );
            Some(r.elapsed)
        }
        Err(SimError::FileTooLarge { .. }) => None, // the paper's (*) entries
        Err(e) => panic!("{} under {mode:?}: {e}", w.name()),
    }
}

/// Figure 9: speedup of CAP-mm, GPM and GPUfs over CAP-fs.
///
/// # Panics
///
/// Panics on internal simulation errors or verification failures.
pub fn fig9(scale: Scale) -> Report {
    let mut report = Report::new(
        "out_figure9",
        "Figure 9: speedup over CAP-fs (* = unsupported by GPUfs)",
        &["workload", "category", "CAP-mm", "GPM", "GPUfs"],
    );
    for w in suite(scale).iter_mut() {
        let base = run_mode(w.as_mut(), Mode::CapFs, false).expect("CAP-fs baseline");
        let capmm = run_mode(w.as_mut(), Mode::CapMm, false);
        let gpm = run_mode(w.as_mut(), Mode::Gpm, false);
        let gpufs = run_mode(w.as_mut(), Mode::Gpufs, false);
        report.row(&[
            w.name().to_string(),
            w.category().label().to_string(),
            speedup_cell(capmm.map(|t| base / t)),
            speedup_cell(gpm.map(|t| base / t)),
            speedup_cell(gpufs.map(|t| base / t)),
        ]);
    }
    report
}

/// Figure 10: GPM-NDP, GPM, GPM-eADR and CAP-eADR over CAP-fs.
///
/// # Panics
///
/// Panics on internal simulation errors or verification failures.
pub fn fig10(scale: Scale) -> Report {
    let mut report = Report::new(
        "out_figure10",
        "Figure 10: eADR/NDP analysis, speedup over CAP-fs",
        &["workload", "GPM-NDP", "GPM", "GPM-eADR", "CAP-eADR"],
    );
    for w in suite(scale).iter_mut() {
        let base = run_mode(w.as_mut(), Mode::CapFs, false).expect("CAP-fs baseline");
        let ndp = run_mode(w.as_mut(), Mode::GpmNdp, false);
        let gpm = run_mode(w.as_mut(), Mode::Gpm, false);
        let gpm_eadr = run_mode(w.as_mut(), Mode::Gpm, true);
        let cap_eadr = run_mode(w.as_mut(), Mode::CapMm, true);
        report.row(&[
            w.name().to_string(),
            speedup_cell(ndp.map(|t| base / t)),
            speedup_cell(gpm.map(|t| base / t)),
            speedup_cell(gpm_eadr.map(|t| base / t)),
            speedup_cell(cap_eadr.map(|t| base / t)),
        ]);
    }
    report
}

/// Figure 11(a): speedup of HCL over conventional logging in the
/// transactional workloads.
///
/// # Panics
///
/// Panics on internal simulation errors.
pub fn fig11a(scale: Scale) -> Report {
    let mut report = Report::new(
        "out_figure11a",
        "Figure 11a: HCL speedup over conventional distributed logging",
        &["workload", "conv_ms", "hcl_ms", "speedup"],
    );
    let quick = scale == Scale::Quick;
    // gpKVS.
    {
        let base = if quick {
            KvsParams::quick()
        } else {
            KvsParams::default()
        };
        let hcl = KvsWorkload::new(base)
            .run(&mut fresh(), Mode::Gpm)
            .expect("kvs hcl");
        let conv = KvsWorkload::new(KvsParams {
            conventional_log_partitions: Some(64),
            ..base
        })
        .run(&mut fresh(), Mode::Gpm)
        .expect("kvs conv");
        report.row(&[
            "gpKVS".into(),
            format!("{:.3}", conv.elapsed.as_millis()),
            format!("{:.3}", hcl.elapsed.as_millis()),
            format!("{:.2}", conv.elapsed / hcl.elapsed),
        ]);
    }
    // gpDB (U) — INSERTs are skipped, as in the paper (only metadata logged).
    {
        let base = if quick {
            DbParams::quick()
        } else {
            DbParams::default()
        }
        .updates();
        let hcl = DbWorkload::new(base)
            .run(&mut fresh(), Mode::Gpm)
            .expect("db hcl");
        let conv = DbWorkload::new(DbParams {
            conventional_log_partitions: Some(64),
            ..base
        })
        .run(&mut fresh(), Mode::Gpm)
        .expect("db conv");
        report.row(&[
            "gpDB (U)".into(),
            format!("{:.3}", conv.elapsed.as_millis()),
            format!("{:.3}", hcl.elapsed.as_millis()),
            format!("{:.2}", conv.elapsed / hcl.elapsed),
        ]);
    }
    report
}

/// Figure 11(b): logging latency vs concurrent logging threads.
///
/// # Panics
///
/// Panics on internal simulation errors.
pub fn fig11b(scale: Scale) -> Report {
    let mut report = Report::new(
        "out_figure11b",
        "Figure 11b: logging latency (ms) vs concurrent threads",
        &["threads", "conventional_ms", "hcl_ms", "ratio"],
    );
    let sweeps: &[u64] = if scale == Scale::Quick {
        &[1_024, 8_192, 16_384]
    } else {
        &[1_024, 4_096, 8_192, 16_384, 32_768, 49_152]
    };
    let total_entries: u64 = if scale == Scale::Quick {
        32_768
    } else {
        131_072
    };
    for &threads in sweeps {
        let conv = microbench::logging_microbench(false, threads, total_entries, 64).expect("conv");
        let hcl = microbench::logging_microbench(true, threads, total_entries, 64).expect("hcl");
        report.row(&[
            threads.to_string(),
            format!("{:.3}", conv.as_millis()),
            format!("{:.3}", hcl.as_millis()),
            format!("{:.2}", conv / hcl),
        ]);
    }
    report
}

/// Figure 12: PCIe write bandwidth to PM per workload under GPM, with the
/// §6.1 pattern microbenchmark appended.
///
/// # Panics
///
/// Panics on internal simulation errors or verification failures.
pub fn fig12(scale: Scale) -> Report {
    let mut report = Report::new(
        "out_figure12",
        "Figure 12: PCIe write bandwidth to PM under GPM (GB/s)",
        &["workload", "pm_write_MB", "elapsed_ms", "bw_GBps"],
    );
    for w in suite(scale).iter_mut() {
        let mut m = fresh();
        let r = w.run(&mut m, Mode::Gpm).expect("gpm run");
        assert!(r.verified);
        report.row(&[
            w.name().to_string(),
            format!("{:.2}", r.pm_write_bytes_gpu as f64 / 1e6),
            format!("{:.3}", r.elapsed.as_millis()),
            format!("{:.2}", r.pcie_write_bw()),
        ]);
    }
    // The raw-pattern microbenchmark the paper explains the figure with.
    let sz: u64 = if scale == Scale::Quick {
        2 << 20
    } else {
        16 << 20
    };
    for (name, kind) in [
        ("ubench-seq-aligned", microbench::PatternKind::SeqAligned),
        (
            "ubench-seq-unaligned",
            microbench::PatternKind::SeqUnaligned,
        ),
        ("ubench-random", microbench::PatternKind::Random),
    ] {
        let bw = microbench::pm_bandwidth(kind, sz).expect("ubench");
        report.row(&[
            name.to_string(),
            format!("{:.2}", sz as f64 / 1e6),
            "-".into(),
            format!("{bw:.2}"),
        ]);
    }
    report
}

/// Table 4: write amplification of CAP over GPM.
///
/// # Panics
///
/// Panics on internal simulation errors or verification failures.
pub fn table4(scale: Scale) -> Report {
    let mut report = Report::new(
        "out_table4",
        "Table 4: write amplification (CAP bytes persisted / GPM bytes persisted)",
        &["workload", "gpm_MB", "cap_MB", "WA"],
    );
    for w in suite(scale).iter_mut() {
        let mut m1 = fresh();
        let g = w.run(&mut m1, Mode::Gpm).expect("gpm");
        let mut m2 = fresh();
        let c = w.run(&mut m2, Mode::CapMm).expect("cap");
        assert!(g.verified && c.verified, "{}", w.name());
        let wa = c.pm_write_bytes_total() as f64 / g.pm_write_bytes_total().max(1) as f64;
        report.row(&[
            w.name().to_string(),
            format!("{:.2}", g.pm_write_bytes_total() as f64 / 1e6),
            format!("{:.2}", c.pm_write_bytes_total() as f64 / 1e6),
            format!("{wa:.2}"),
        ]);
    }
    report
}

/// Table 5: restoration latency as % of operation time (worst case — crash
/// just before the final transaction commits / after the last checkpoint).
///
/// # Panics
///
/// Panics on internal simulation errors or verification failures.
pub fn table5(scale: Scale) -> Report {
    let mut report = Report::new(
        "out_table5",
        "Table 5: restoration latency (% of operation time)",
        &["workload", "operation_ms", "restore_ms", "RL_percent"],
    );
    for w in suite(scale).iter_mut() {
        let mut m = fresh();
        let Some(r) = w.run_with_recovery(&mut m).expect("recovery run") else {
            continue; // native workloads: recovery is embedded (§5.4)
        };
        assert!(r.verified, "{} recovery verification failed", w.name());
        let rl = r.recovery.expect("restoration latency measured");
        report.row(&[
            w.name().to_string(),
            format!("{:.3}", r.elapsed.as_millis()),
            format!("{:.3}", rl.as_millis()),
            format!("{:.2}", rl / r.elapsed * 100.0),
        ]);
    }
    report
}

/// §6.1 checkpoint-frequency analysis: total training time with
/// checkpoints every N passes, GPM vs CAP-fs, and the total-time
/// improvement ("the DNN training speeds up by 61% and 40% when we
/// checkpointed after every 10th and 20th pass"; across workloads
/// "19%–122% over different checkpointing frequencies").
///
/// # Panics
///
/// Panics on internal simulation errors.
pub fn checkpoint_frequency(scale: Scale) -> Report {
    use gpm_workloads::iterative::run_iterative;
    use gpm_workloads::{DnnParams, DnnWorkload};
    let mut report = Report::new(
        "out_checkpoint_frequency",
        "Section 6.1: DNN total time vs checkpoint frequency (GPM vs CAP-fs)",
        &["ckpt_every", "gpm_ms", "capfs_ms", "improvement_percent"],
    );
    let quick = scale == Scale::Quick;
    for every in [5u32, 10, 20] {
        let params = DnnParams {
            iterations: if quick { 20 } else { 40 },
            checkpoint_every: every,
            hidden: if quick {
                64
            } else {
                DnnParams::default().hidden
            },
            ..DnnParams::default()
        };
        let mut m1 = fresh();
        let g = run_iterative(&mut m1, &mut DnnWorkload::new(params), Mode::Gpm, 32).expect("gpm");
        let mut m2 = fresh();
        let c =
            run_iterative(&mut m2, &mut DnnWorkload::new(params), Mode::CapFs, 32).expect("capfs");
        assert!(g.verified && c.verified);
        report.row(&[
            every.to_string(),
            format!("{:.3}", g.elapsed.as_millis()),
            format!("{:.3}", c.elapsed.as_millis()),
            format!("{:.1}", (c.elapsed / g.elapsed - 1.0) * 100.0),
        ]);
    }
    report
}

/// §6.2 recoverability stress test: inject crashes at many points in every
/// workload with a recovery path and verify state after recovery.
///
/// # Panics
///
/// Panics on internal simulation errors.
pub fn recovery_stress(scale: Scale) -> Report {
    let mut report = Report::new(
        "out_recovery_stress",
        "Section 6.2: crash-injection stress (recovered/attempts)",
        &["workload", "attempts", "recovered"],
    );
    let quick = scale == Scale::Quick;
    let fuels: Vec<u64> = if quick {
        vec![100, 1_000, 10_000]
    } else {
        vec![100, 500, 2_000, 10_000, 50_000, 200_000]
    };

    let mut tally = |name: &str, results: Vec<bool>| {
        let ok = results.iter().filter(|&&b| b).count();
        report.row(&[name.to_string(), results.len().to_string(), ok.to_string()]);
    };

    let kvs_results: Vec<bool> = fuels
        .iter()
        .map(|&f| {
            let p = if quick {
                KvsParams::quick()
            } else {
                KvsParams::default()
            };
            KvsWorkload::new(p)
                .run_crash_injected(&mut fresh(), f)
                .expect("kvs crash")
        })
        .collect();
    tally("gpKVS", kvs_results);

    let bfs_results: Vec<bool> = fuels
        .iter()
        .map(|&f| {
            let p = if quick {
                BfsParams::quick()
            } else {
                BfsParams::default()
            };
            BfsWorkload::new(p)
                .run_crash_resume(&mut fresh(), f)
                .expect("bfs crash")
                .verified
        })
        .collect();
    tally("BFS", bfs_results);

    let srad_results: Vec<bool> = fuels
        .iter()
        .map(|&f| {
            let p = if quick {
                SradParams::quick()
            } else {
                SradParams::default()
            };
            SradWorkload::new(p)
                .run_crash_resume(&mut fresh(), f)
                .expect("srad crash")
                .verified
        })
        .collect();
    tally("SRAD", srad_results);

    let ps_results: Vec<bool> = fuels
        .iter()
        .map(|&f| {
            let p = if quick {
                PsParams::quick()
            } else {
                PsParams::default()
            };
            PsWorkload::new(p)
                .run_crash_resume(&mut fresh(), f)
                .expect("ps crash")
                .verified
        })
        .collect();
    tally("PS", ps_results);

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_quick_has_expected_shape() {
        let r = fig9(Scale::Quick);
        assert_eq!(r.len(), 11);
        let tsv = r.to_tsv();
        // GPUfs columns are starred for the fine-grained workloads.
        assert!(tsv
            .lines()
            .any(|l| l.starts_with("gpKVS\t") && l.ends_with("*")));
    }

    #[test]
    fn table5_reports_transactional_and_checkpointing() {
        let r = table5(Scale::Quick);
        assert_eq!(r.len(), 8, "4 transactional + 4 checkpointing rows");
    }

    #[test]
    fn recovery_stress_all_recover() {
        let r = recovery_stress(Scale::Quick);
        for line in r.to_tsv().lines().skip(2) {
            let cells: Vec<&str> = line.split('\t').collect();
            assert_eq!(cells[1], cells[2], "{line}: all crashes must recover");
        }
    }
}
