//! Microbenchmarks used by the scaling and logging figures.

use gpm_core::{
    gpm_persist_begin, gpm_persist_end, gpmlog_create_conv, gpmlog_create_hcl,
    gpmlog_create_hcl_unstriped, GpmThreadExt,
};
use gpm_gpu::{launch, FnKernel, LaunchConfig, ThreadCtx};
use gpm_sim::{Addr, Machine, MachineConfig, Ns, SimResult};

/// §3.2 microbenchmark, CAP-mm side: write and persist `bytes` from the GPU
/// to PM through the CPU with `threads` persisting threads. Returns elapsed
/// simulated time.
///
/// # Errors
///
/// Propagates platform errors.
pub fn persist_cap_mm(bytes: u64, threads: u32) -> SimResult<Ns> {
    let mut m = Machine::default();
    let hbm = m.alloc_hbm(bytes)?;
    let dram = m.alloc_dram(bytes)?;
    let pm = m.alloc_pm(bytes)?;
    m.host_write(Addr::hbm(hbm), &vec![0xA5u8; bytes as usize])?;
    gpm_cap::cap_persist_region(
        &mut m,
        gpm_cap::CapFlavor::Mm { threads },
        hbm,
        dram,
        pm,
        bytes,
    )
}

/// §3.2 microbenchmark, GPM side: `gpu_threads` GPU threads write and
/// persist `bytes` of data at an 8-byte granularity (each write followed by
/// a system-scope persist). Returns elapsed simulated time.
///
/// # Errors
///
/// Propagates platform errors.
pub fn persist_gpm(bytes: u64, gpu_threads: u64) -> SimResult<Ns> {
    let mut m = Machine::default();
    let pm = m.alloc_pm(bytes)?;
    let per_thread = bytes / 8 / gpu_threads;
    gpm_persist_begin(&mut m);
    let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
        let t = ctx.global_id();
        if t >= gpu_threads {
            return Ok(());
        }
        for j in 0..per_thread {
            // Warp-interleaved layout: lane l of warp w writes the j-th
            // 8-byte word of the warp's j-th 256-byte chunk — so each
            // lockstep store coalesces.
            let warp = t / 32;
            let lane = t % 32;
            let warp_span = per_thread * 32 * 8;
            let off = warp * warp_span + j * 256 + lane * 8;
            ctx.st_u64(Addr::pm(pm + off), j)?;
            ctx.gpm_persist()?;
        }
        Ok(())
    });
    let r = launch(
        &mut m,
        LaunchConfig::for_elements(gpu_threads, 256.min(gpu_threads as u32)),
        &k,
    )?;
    gpm_persist_end(&mut m);
    Ok(r.elapsed)
}

/// Figure 11(b) microbenchmark: a fixed batch of `total_entries` 32-byte
/// records is logged by `threads` concurrent GPU threads into an HCL or
/// conventional log. Returns elapsed simulated time.
///
/// With more threads, HCL's latency stays stable (lock-free, coalesced
/// inserts hide behind parallelism) while conventional logging's lock
/// contention makes it jump — the paper's Figure 11(b).
///
/// # Errors
///
/// Propagates platform errors.
pub fn logging_microbench(
    hcl: bool,
    threads: u64,
    total_entries: u64,
    partitions: u32,
) -> SimResult<Ns> {
    let backend = if hcl {
        LogBackend::Hcl
    } else {
        LogBackend::Conventional
    };
    logging_microbench_backend(backend, threads, total_entries, partitions)
}

/// Which log structure [`logging_microbench_backend`] exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogBackend {
    /// Hierarchical coalesced logging (striped).
    Hcl,
    /// HCL's hierarchy without striping — the coalescing ablation.
    HclUnstriped,
    /// Conventional lock-protected partitions.
    Conventional,
}

/// [`logging_microbench`] generalized over the three log structures,
/// including the striping ablation of DESIGN.md.
///
/// # Errors
///
/// Propagates platform errors.
pub fn logging_microbench_backend(
    backend: LogBackend,
    threads: u64,
    total_entries: u64,
    partitions: u32,
) -> SimResult<Ns> {
    let mut m = Machine::default();
    let cfg = LaunchConfig::for_elements(threads, 256.min(threads as u32));
    let entry = [0x42u8; 32];
    let per_thread = total_entries.div_ceil(threads);
    let size = cfg.total_threads() * 32 * (per_thread + 1);
    let log = match backend {
        LogBackend::Hcl => gpmlog_create_hcl(&mut m, "/pm/ubench_log", size, cfg.grid, cfg.block),
        LogBackend::HclUnstriped => {
            gpmlog_create_hcl_unstriped(&mut m, "/pm/ubench_log", size, cfg.grid, cfg.block)
        }
        LogBackend::Conventional => gpmlog_create_conv(
            &mut m,
            "/pm/ubench_log",
            size.max(total_entries * 64),
            partitions,
        ),
    }
    .map_err(|_| gpm_sim::SimError::Invalid("log creation failed"))?;
    let dev = log.dev();
    gpm_persist_begin(&mut m);
    let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
        if ctx.global_id() >= threads {
            return Ok(());
        }
        for _ in 0..per_thread {
            dev.insert(ctx, &entry)?;
        }
        Ok(())
    });
    let r = launch(&mut m, cfg, &k)?;
    gpm_persist_end(&mut m);
    Ok(r.elapsed)
}

/// §6.1 PM bandwidth microbenchmark: streaming GPU writes under three
/// patterns. Returns achieved GB/s.
///
/// # Errors
///
/// Propagates platform errors.
pub fn pm_bandwidth(pattern: PatternKind, bytes: u64) -> SimResult<f64> {
    let mut m = Machine::default();
    let pm = m.alloc_pm(bytes * 2)?;
    gpm_persist_begin(&mut m);
    // Sequential writers stream 256-byte chunks; random writers scatter
    // cache-line-sized accesses (no two land adjacently).
    let chunk: u64 = if pattern == PatternKind::Random {
        64
    } else {
        256
    };
    let n = bytes / chunk;
    let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
        let i = ctx.global_id();
        if i >= n {
            return Ok(());
        }
        let off = match pattern {
            PatternKind::SeqAligned => i * chunk,
            PatternKind::SeqUnaligned => i * chunk + 64,
            PatternKind::Random => {
                let slots = (bytes * 2 - chunk) / 256;
                (gpm_pmkv::hash64(i) % slots) * 256 + 64
            }
        };
        let buf = [0x5Au8; 256];
        ctx.st_bytes(Addr::pm(pm + off), &buf[..chunk as usize])?;
        if pattern == PatternKind::Random {
            // Scattered writers persist as they go.
            ctx.gpm_persist()?;
        }
        Ok(())
    });
    let r = launch(&mut m, LaunchConfig::for_elements(n, 256), &k)?;
    gpm_persist_end(&mut m);
    Ok(bytes as f64 / r.elapsed.0)
}

/// Access pattern selector for [`pm_bandwidth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Sequential, 256-byte aligned.
    SeqAligned,
    /// Sequential, misaligned by 64 bytes.
    SeqUnaligned,
    /// Random 256-byte blocks.
    Random,
}

/// Builds an eADR-mode machine (for GPM-eADR / CAP-eADR projections).
pub fn eadr_machine() -> Machine {
    Machine::new(MachineConfig::default().with_eadr())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_mm_scaling_saturates() {
        let bytes = 8 << 20;
        let t1 = persist_cap_mm(bytes, 1).unwrap();
        let t64 = persist_cap_mm(bytes, 64).unwrap();
        let s = t1 / t64;
        assert!(s > 1.3 && s < 1.6, "Fig 3a plateau ≈ 1.47, got {s:.2}");
    }

    #[test]
    fn gpm_scaling_crosses_cap() {
        let bytes = 4 << 20;
        let cap1 = persist_cap_mm(bytes, 1).unwrap();
        let gpm32 = persist_gpm(bytes, 32).unwrap();
        let gpm1024 = persist_gpm(bytes, 1024).unwrap();
        assert!(
            gpm32 > cap1,
            "few GPU threads lose to one CPU thread (Fig 3b)"
        );
        assert!(gpm1024 < cap1, "many GPU threads win (Fig 3b)");
        let plateau = cap1 / gpm1024;
        assert!(
            plateau > 2.0 && plateau < 6.5,
            "Fig 3b plateau ≈ 4, got {plateau:.2}"
        );
    }

    #[test]
    fn hcl_beats_conventional_logging() {
        let conv = logging_microbench(false, 8_192, 32_768, 64).unwrap();
        let hcl = logging_microbench(true, 8_192, 32_768, 64).unwrap();
        let s = conv / hcl;
        assert!(s > 2.0, "Fig 11: HCL speedup, got {s:.2}");
    }

    #[test]
    fn conventional_latency_grows_with_threads_hcl_does_not() {
        // Fixed total work, varying concurrency — the Figure 11(b) sweep.
        let total = 32_768;
        let conv_small = logging_microbench(false, 2_048, total, 64).unwrap();
        let conv_big = logging_microbench(false, 16_384, total, 64).unwrap();
        let hcl_small = logging_microbench(true, 2_048, total, 64).unwrap();
        let hcl_big = logging_microbench(true, 16_384, total, 64).unwrap();
        let conv_growth = conv_big / conv_small;
        let hcl_growth = hcl_big / hcl_small;
        assert!(
            conv_growth > 1.5,
            "conventional latency jumps: {conv_growth:.2}"
        );
        assert!(
            hcl_growth < 1.5,
            "HCL latency stays near-stable: {hcl_growth:.2}"
        );
        assert!(
            conv_big / hcl_big > 3.0,
            "HCL wins at scale (paper: ≈3.6× avg)"
        );
    }

    #[test]
    fn hcl_improves_nvm_endurance() {
        // §5.2: coalesced log writes also improve NVM endurance — fewer
        // 256-byte block programs for the same logged bytes.
        let programs = |backend| {
            let mut m = Machine::default();
            // Inline variant of logging_microbench that keeps the machine.
            let cfg = LaunchConfig::for_elements(4_096, 256);
            let entry = [0x42u8; 32];
            let log = match backend {
                LogBackend::Hcl => {
                    gpmlog_create_hcl(&mut m, "/pm/e", 4_096 * 32 * 4, cfg.grid, cfg.block)
                }
                LogBackend::HclUnstriped => gpmlog_create_hcl_unstriped(
                    &mut m,
                    "/pm/e",
                    4_096 * 32 * 4,
                    cfg.grid,
                    cfg.block,
                ),
                LogBackend::Conventional => gpmlog_create_conv(&mut m, "/pm/e", 4_096 * 64 * 4, 64),
            }
            .unwrap();
            let dev = log.dev();
            gpm_persist_begin(&mut m);
            let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| dev.insert(ctx, &entry));
            let r = launch(&mut m, cfg, &k).unwrap();
            let t: gpm_sim::Ns = r.elapsed;
            let _ = t;
            m.stats.pm_block_programs
        };
        let hcl = programs(LogBackend::Hcl);
        let unstriped = programs(LogBackend::HclUnstriped);
        assert!(
            hcl < unstriped,
            "striping coalesces programs: {hcl} vs {unstriped}"
        );
    }

    #[test]
    fn striping_is_what_makes_hcl_fast() {
        // The DESIGN.md ablation: HCL without striping keeps the lock-free
        // hierarchy but loses hardware coalescing — warp stores scatter
        // over 32 lines each.
        let striped = logging_microbench_backend(LogBackend::Hcl, 8_192, 32_768, 64).unwrap();
        let unstriped =
            logging_microbench_backend(LogBackend::HclUnstriped, 8_192, 32_768, 64).unwrap();
        let s = unstriped / striped;
        assert!(s > 2.0, "striping should matter: {s:.2}x");
    }

    #[test]
    fn pm_pattern_bandwidths_match_section61() {
        let aligned = pm_bandwidth(PatternKind::SeqAligned, 8 << 20).unwrap();
        let unaligned = pm_bandwidth(PatternKind::SeqUnaligned, 8 << 20).unwrap();
        let random = pm_bandwidth(PatternKind::Random, 4 << 20).unwrap();
        assert!(aligned > 10.0, "≈12.5 GB/s, got {aligned:.2}");
        assert!(
            unaligned > 2.0 && unaligned < 5.0,
            "≈3.13 GB/s, got {unaligned:.2}"
        );
        assert!(random < 1.2, "≈0.72 GB/s, got {random:.2}");
        assert!(aligned > unaligned && unaligned > random);
    }
}
