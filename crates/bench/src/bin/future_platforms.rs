//! Future-platform projection (beyond the paper, extending its §3.3
//! discussion): how GPM's advantage over CAP-fs evolves with PCIe 4.0,
//! second-generation Optane, and eADR — separately and combined.
//!
//! Pass `--quick` for small inputs.

use gpm_bench::report::Report;
use gpm_sim::{Machine, MachineConfig};
use gpm_workloads::{suite, Mode};

fn platforms() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("today (ADR, PCIe3, Gen1)", MachineConfig::default()),
        ("PCIe 4.0", MachineConfig::default().with_pcie4()),
        ("Gen2 Optane", MachineConfig::default().with_gen2_optane()),
        ("eADR", MachineConfig::default().with_eadr()),
        (
            "all three",
            MachineConfig::default()
                .with_pcie4()
                .with_gen2_optane()
                .with_eadr(),
        ),
    ]
}

fn main() {
    let scale = gpm_bench::scale_from_args();
    let mut report = Report::new(
        "out_future_platforms",
        "Future platforms: GPM speedup over CAP-fs (same-platform baseline)",
        &["workload", "today", "PCIe4", "Gen2-Optane", "eADR", "all"],
    );
    // Representative workloads from each class.
    for target in ["gpKVS", "CFD", "BFS"] {
        let mut row = vec![target.to_string()];
        for (_, cfg) in platforms() {
            let mut workloads = suite(scale);
            let w = workloads
                .iter_mut()
                .find(|w| w.name() == target)
                .expect("workload in suite");
            let mut m1 = Machine::new(cfg.clone());
            let gpm = match w.persist_phase(&mut m1, Mode::Gpm) {
                Ok(Some(t)) => t,
                _ => {
                    let mut m = Machine::new(cfg.clone());
                    w.run(&mut m, Mode::Gpm).expect("gpm").elapsed
                }
            };
            let mut m2 = Machine::new(cfg.clone());
            let cap = match w.persist_phase(&mut m2, Mode::CapFs) {
                Ok(Some(t)) => t,
                _ => {
                    let mut m = Machine::new(cfg.clone());
                    w.run(&mut m, Mode::CapFs).expect("capfs").elapsed
                }
            };
            row.push(format!("{:.2}", cap / gpm));
        }
        report.row(&row);
    }
    gpm_bench::emit(&report);
}
