//! Serving-stack benchmark: sweeps offered load × shard count × batch
//! policy over the `gpm-serve` frontend and finds the knee — the highest
//! offered load that still meets the p99 latency SLO with zero shed.
//!
//! Everything is simulated time and seed-deterministic: the same seed and
//! flags produce a byte-identical `BENCH_serve.json` (schema
//! `gpm-serve-v2`), run to run and across `GPM_ENGINE_THREADS` settings —
//! no wall-clock field enters the JSON.
//!
//! Flags:
//! - `--quick`       small sweep (completes in seconds; CI smoke)
//! - `--seed N`      traffic seed (default 42)
//! - `--slo-us F`    p99 SLO in microseconds (default 500)
//! - `--out PATH`    JSON output path (default `BENCH_serve.json`)
//! - `--trace PATH`  also run one traced cluster and write a Chrome
//!   trace-event JSON (schema `gpm-trace-v1`, loadable in Perfetto)
//! - `--persistency strict|epoch`  pin the GPU persistency model on every
//!   shard (default: defer to `GPM_PERSISTENCY`, then strict)
//! - `--list-scenarios`  print the scenario registry, one per line
//! - `--scenario NAME`   run exactly one named scenario and write a
//!   single-scenario JSON to `--out`; an unknown name exits 2
//! - `--inject-bug`      with `--scenario replication|resharding`: inject
//!   the fabric corruption and exit 0 iff the consistency oracle caught
//!   it (campaign-style self-test semantics)

use std::fmt::Write as _;

use gpm_gpu::PersistencyModel;
use gpm_serve::{
    run_cluster, run_scenario, scenario_names, ArrivalShape, BackendKind, BatchPolicy,
    ClusterConfig, ClusterOutcome, FaultPlan, ScenarioOutcome, TrafficConfig,
};
use gpm_sim::{chrome_trace_json, Ns, TraceData};
use gpm_workloads::{DbParams, KvsParams};

struct Opts {
    quick: bool,
    seed: u64,
    slo_us: f64,
    out: String,
    trace: Option<String>,
    persistency: Option<PersistencyModel>,
    scenario: Option<String>,
    list_scenarios: bool,
    inject_bug: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        seed: 42,
        slo_us: 500.0,
        out: "BENCH_serve.json".to_string(),
        trace: None,
        persistency: None,
        scenario: None,
        list_scenarios: false,
        inject_bug: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed needs an integer");
            }
            "--slo-us" => {
                opts.slo_us = args
                    .next()
                    .expect("--slo-us needs a value")
                    .parse()
                    .expect("--slo-us needs a number");
            }
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--trace" => opts.trace = Some(args.next().expect("--trace needs a path")),
            "--persistency" => {
                let v = args.next().expect("--persistency needs strict|epoch");
                opts.persistency = Some(match v.as_str() {
                    "strict" => PersistencyModel::Strict,
                    "epoch" => PersistencyModel::Epoch,
                    other => panic!("--persistency must be strict or epoch, got {other:?}"),
                });
            }
            "--scenario" => opts.scenario = Some(args.next().expect("--scenario needs a name")),
            "--list-scenarios" => opts.list_scenarios = true,
            "--inject-bug" => opts.inject_bug = true,
            other => panic!("unknown flag {other:?}"),
        }
    }
    opts
}

/// Runs one named scenario (the `--scenario` path): writes a
/// single-scenario `gpm-serve-v2` JSON and exits with the contract CI
/// keys off — 2 for an unknown name, and under `--inject-bug` 0 iff the
/// oracle caught the injected corruption.
fn run_one_scenario(opts: &Opts) -> ! {
    let name = opts.scenario.as_deref().expect("checked by caller");
    let out = match run_scenario(name, opts.seed, opts.quick, opts.inject_bug) {
        Ok(Some(out)) => out,
        Ok(None) => {
            eprintln!(
                "serve: unknown scenario {name:?}; try --list-scenarios (known: {})",
                scenario_names().join(", ")
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("serve: scenario {name} failed: {e}");
            std::process::exit(2);
        }
    };
    let json = format!(
        "{{\n  \"schema\": \"gpm-serve-v2\",\n  \"scale\": \"{}\",\n  \"seed\": {},\n  \
         \"scenario\": \"{}\",\n  \"section\": \"{}\",\n  \"inject_bug\": {},\n  \"data\": {}\n}}\n",
        if opts.quick { "quick" } else { "full" },
        opts.seed,
        out.name,
        out.section,
        opts.inject_bug,
        out.json,
    );
    std::fs::write(&opts.out, &json).expect("write scenario JSON");
    println!("wrote {} (scenario {})", opts.out, out.name);
    if let Some(v) = &out.oracle {
        println!("  oracle: {}", if v.passed() { "pass" } else { "FAIL" });
    }
    if opts.inject_bug {
        match out.bug_caught {
            Some(true) => {
                println!("  injected bug was caught by the oracle — self-test passes");
                std::process::exit(0);
            }
            _ => {
                eprintln!("serve: injected bug was NOT caught — the oracle is toothless");
                std::process::exit(1);
            }
        }
    }
    // A clean scenario whose oracle failed is a real consistency bug.
    if out.oracle.as_ref().is_some_and(|v| !v.passed()) {
        eprintln!("serve: scenario {name} oracle FAILED: {:?}", out.oracle);
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// A named batching policy (one sweep axis).
struct NamedPolicy {
    name: &'static str,
    policy: BatchPolicy,
}

fn policies(quick: bool) -> Vec<NamedPolicy> {
    // Quick runs shrink the queue so the 2× overload point actually
    // overflows it within the short stream (shed-rate must go non-zero).
    let queue_cap = if quick { 512 } else { 4_096 };
    vec![
        NamedPolicy {
            name: "b256-l100",
            policy: BatchPolicy {
                max_batch: 256,
                max_linger: Ns::from_micros(100.0),
                queue_cap,
                max_retries: 3,
                ..BatchPolicy::default()
            },
        },
        NamedPolicy {
            name: "b64-l20",
            policy: BatchPolicy {
                max_batch: 64,
                max_linger: Ns::from_micros(20.0),
                queue_cap,
                max_retries: 3,
                ..BatchPolicy::default()
            },
        },
    ]
}

/// One measured sweep point, already reduced to JSON-ready numbers.
struct Point {
    shards: u32,
    policy: &'static str,
    load_mops: f64,
    out: ClusterOutcome,
}

fn traffic(seed: u64, load_mops: f64, n_requests: u64, shape: ArrivalShape) -> TrafficConfig {
    TrafficConfig {
        seed,
        rate_ops_per_sec: load_mops * 1e6,
        n_requests,
        shape,
        get_permille: 500,
        key_space: 16_384,
        key_skew: None,
        premium_permille: 0,
    }
}

/// The reported latency tail, pulled in one histogram pass.
const REPORT_QS: [f64; 4] = [0.50, 0.95, 0.99, 0.999];

fn point_json(p: &Point, slo: Ns) -> String {
    let o = &p.out;
    let q = o.hist.quantiles(&REPORT_QS);
    format!(
        "{{\"shards\": {}, \"policy\": \"{}\", \"load_mops\": {:.3}, \
         \"offered\": {}, \"completed\": {}, \"shed\": {}, \"shed_rate\": {:.6}, \
         \"throughput_mops\": {:.4}, \"p50_us\": {:.3}, \"p95_us\": {:.3}, \
         \"p99_us\": {:.3}, \"p999_us\": {:.3}, \"slo_attainment\": {:.6}, \
         \"batches\": {}, \"retries\": {}, \"makespan_ms\": {:.4}}}",
        p.shards,
        p.policy,
        p.load_mops,
        o.offered,
        o.completed,
        o.shed,
        o.shed_rate(),
        o.throughput_ops_per_sec() / 1e6,
        q[0].as_micros(),
        q[1].as_micros(),
        q[2].as_micros(),
        q[3].as_micros(),
        o.slo_attainment(slo),
        o.batches,
        o.retries,
        o.makespan.as_millis(),
    )
}

fn main() {
    let opts = parse_args();
    if opts.list_scenarios {
        for name in scenario_names() {
            println!("{name}");
        }
        return;
    }
    if opts.scenario.is_some() {
        run_one_scenario(&opts);
    }
    if opts.inject_bug {
        eprintln!("serve: --inject-bug requires --scenario replication|resharding");
        std::process::exit(2);
    }
    let slo = Ns(opts.slo_us * 1_000.0);
    // Every cluster in the sweep inherits the pinned persistency model (if
    // any); `None` lets each launch resolve `GPM_PERSISTENCY`, then strict.
    let base = ClusterConfig {
        persistency: opts.persistency,
        ..ClusterConfig::quick()
    };
    let (loads, shard_counts, n_requests): (Vec<f64>, Vec<u32>, u64) = if opts.quick {
        (vec![0.5, 1.0, 2.0, 3.0, 4.5, 6.0], vec![1, 2], 3_000)
    } else {
        (
            vec![0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0],
            vec![1, 2, 4, 8],
            20_000,
        )
    };
    println!(
        "serve: sweeping {} loads x {} shard counts x {} policies, {} requests/point, SLO p99 <= {:.0} us",
        loads.len(),
        shard_counts.len(),
        policies(opts.quick).len(),
        n_requests,
        opts.slo_us
    );

    // Main sweep: offered load x shard count x batch policy over gpKVS.
    let mut points: Vec<Point> = Vec::new();
    for &shards in &shard_counts {
        for np in &policies(opts.quick) {
            for &load in &loads {
                let cfg = ClusterConfig {
                    shards,
                    policy: np.policy,
                    kvs: KvsParams::quick(),
                    ..base
                };
                let reqs = traffic(opts.seed, load, n_requests, ArrivalShape::Poisson).generate();
                let out = run_cluster(&cfg, &reqs).expect("cluster run failed");
                println!(
                    "  shards={shards} policy={} load={load:.1}M -> tput={:.2}M p99={} shed={:.1}%",
                    np.name,
                    out.throughput_ops_per_sec() / 1e6,
                    out.hist.percentile(0.99),
                    out.shed_rate() * 100.0
                );
                points.push(Point {
                    shards,
                    policy: np.name,
                    load_mops: load,
                    out,
                });
            }
        }
    }

    // Arrival-shape section: same mean load, different temporal shapes.
    let shape_load = 1.5;
    let shapes: Vec<(&str, ArrivalShape)> = vec![
        ("poisson", ArrivalShape::Poisson),
        (
            "bursty",
            ArrivalShape::Bursty {
                period: Ns::from_millis(1.0),
                duty: 0.2,
                mult: 4.0,
            },
        ),
        (
            "diurnal",
            ArrivalShape::Diurnal {
                period: Ns::from_millis(4.0),
                amplitude: 0.8,
            },
        ),
    ];
    let mut shape_points: Vec<(&str, ClusterOutcome)> = Vec::new();
    for (name, shape) in shapes {
        let cfg = ClusterConfig {
            shards: 2,
            kvs: KvsParams::quick(),
            ..base
        };
        let reqs = traffic(opts.seed, shape_load, n_requests, shape).generate();
        let out = run_cluster(&cfg, &reqs).expect("shape run failed");
        println!(
            "  shape={name} load={shape_load:.1}M -> p99={} shed={:.1}%",
            out.hist.percentile(0.99),
            out.shed_rate() * 100.0
        );
        shape_points.push((name, out));
    }

    // Fault drill: transient mid-batch crashes with recover-and-retry.
    let fault_cfg = ClusterConfig {
        shards: 1,
        faults: FaultPlan {
            crash_every: Some(5),
            crash_fuel: 2_000,
        },
        kvs: KvsParams::quick(),
        ..base
    };
    let fault_reqs =
        traffic(opts.seed, 1.0, n_requests.min(2_000), ArrivalShape::Poisson).generate();
    let faults = run_cluster(&fault_cfg, &fault_reqs).expect("fault run failed");
    println!(
        "  faults: {} retries over {} batches, p99={}",
        faults.retries,
        faults.batches,
        faults.hist.percentile(0.99)
    );

    // gpAnalytics mixed-tenant scenario: behavioral events and gpKVS OLTP
    // traffic share one diurnal arrival stream and the same shards; each
    // shard folds sessions/funnels into its PM session store right next to
    // the KVS hash table, and the cohort aggregates come back from the
    // persistent state (all simulated counters, so the section is
    // byte-deterministic like the rest of the JSON).
    let an_event_permille = 400;
    let an_cfg = ClusterConfig {
        shards: 2,
        backend: BackendKind::Mixed,
        kvs: KvsParams::quick(),
        ..base
    };
    let an_reqs = traffic(
        opts.seed,
        1.0,
        n_requests.min(6_000),
        ArrivalShape::Diurnal {
            period: Ns::from_millis(4.0),
            amplitude: 0.8,
        },
    )
    .generate_mixed(6, an_event_permille);
    let an_out = run_cluster(&an_cfg, &an_reqs).expect("analytics run failed");
    let cohorts = an_out.cohorts.expect("mixed backend reports cohorts");
    println!(
        "  analytics: {} events journaled over {} requests, {} sessions / {} users, \
         {} funnel completions, p99={}",
        an_out.journaled_events,
        an_out.offered,
        cohorts.sessions,
        cohorts.users,
        cohorts.completions,
        an_out.hist.percentile(0.99)
    );

    // One gpDB INSERT point (the other backend through the same stack).
    let db_cfg = ClusterConfig {
        shards: 1,
        backend: BackendKind::Db,
        db: DbParams::quick(),
        ..base
    };
    let db_reqs = traffic(opts.seed, 0.2, 400, ArrivalShape::Poisson).generate_inserts(8);
    let db_out = run_cluster(&db_cfg, &db_reqs).expect("db run failed");
    println!(
        "  gpDB inserts: {} completed, p99={}",
        db_out.completed,
        db_out.hist.percentile(0.99)
    );

    // Knee per (shards, policy) line: highest load meeting the SLO with
    // zero shed, and the first overload point past it.
    let mut knees = String::new();
    let mut first = true;
    let mut any_knee = false;
    let mut any_overload = false;
    for &shards in &shard_counts {
        for np in &policies(opts.quick) {
            let line: Vec<&Point> = points
                .iter()
                .filter(|p| p.shards == shards && p.policy == np.name)
                .collect();
            let knee = line
                .iter()
                .filter(|p| p.out.hist.percentile(0.99) <= slo && p.out.shed == 0)
                .map(|p| p.load_mops)
                .fold(None::<f64>, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))));
            let overload = line
                .iter()
                .filter(|p| p.out.hist.percentile(0.99) > slo && p.out.shed > 0)
                .map(|p| p.load_mops)
                .fold(None::<f64>, |acc, l| Some(acc.map_or(l, |a: f64| a.min(l))));
            any_knee |= knee.is_some();
            any_overload |= overload.is_some();
            let _ = write!(
                knees,
                "{}    {{\"shards\": {}, \"policy\": \"{}\", \"knee_load_mops\": {}, \
                 \"first_overload_mops\": {}}}",
                if first { "" } else { ",\n" },
                shards,
                np.name,
                knee.map_or("null".to_string(), |k| format!("{k:.3}")),
                overload.map_or("null".to_string(), |k| format!("{k:.3}")),
            );
            first = false;
            println!(
                "  knee shards={shards} policy={}: {} Mops (first overload: {})",
                np.name,
                knee.map_or("none".to_string(), |k| format!("{k:.1}")),
                overload.map_or("none".to_string(), |k| format!("{k:.1}")),
            );
        }
    }

    // Scenario sections: replication (steady + failover), resharding, and
    // the hostile-traffic quartet, all at the sweep seed. Grouped by the
    // registry's section tag so CI can `cmp` each section independently.
    println!("serve: running {} scenarios", scenario_names().len());
    let mut by_section: Vec<(&'static str, Vec<ScenarioOutcome>)> = vec![
        ("replication", Vec::new()),
        ("resharding", Vec::new()),
        ("hostile", Vec::new()),
    ];
    for name in scenario_names() {
        let out = run_scenario(name, opts.seed, opts.quick, false)
            .expect("scenario run failed")
            .expect("registry name is known");
        assert!(
            out.oracle.as_ref().is_none_or(|v| v.passed()),
            "scenario {name} consistency oracle failed"
        );
        println!("  scenario {}: ok", out.name);
        let slot = by_section
            .iter_mut()
            .find(|(s, _)| *s == out.section)
            .expect("section is registered");
        slot.1.push(out);
    }

    let mut json = String::from("{\n  \"schema\": \"gpm-serve-v2\",\n");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if opts.quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(
        json,
        "  \"persistency\": \"{}\",",
        match opts.persistency {
            Some(PersistencyModel::Strict) => "strict",
            Some(PersistencyModel::Epoch) => "epoch",
            None => "env",
        }
    );
    let _ = writeln!(json, "  \"slo_us\": {:.3},", opts.slo_us);
    let _ = writeln!(json, "  \"n_requests\": {n_requests},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {}{}",
            point_json(p, slo),
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"shapes\": [\n");
    for (i, (name, out)) in shape_points.iter().enumerate() {
        let p = Point {
            shards: 2,
            policy: name,
            load_mops: shape_load,
            out: ClusterOutcome {
                hist: out.hist.clone(),
                offered: out.offered,
                completed: out.completed,
                shed: out.shed,
                retries: out.retries,
                batches: out.batches,
                makespan: out.makespan,
                cohorts: None,
                journaled_events: 0,
                shards: Vec::new(),
            },
        };
        let _ = writeln!(
            json,
            "    {}{}",
            point_json(&p, slo).replacen("\"policy\"", "\"shape\"", 1),
            if i + 1 < shape_points.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"faults\": {{\"crash_every\": 5, \"crash_fuel\": 2000, \"retries\": {}, \
         \"batches\": {}, \"completed\": {}, \"p99_us\": {:.3}}},",
        faults.retries,
        faults.batches,
        faults.completed,
        faults.hist.percentile(0.99).as_micros()
    );
    let _ = writeln!(
        json,
        "  \"db_insert\": {{\"completed\": {}, \"shed\": {}, \"p99_us\": {:.3}, \
         \"throughput_mops\": {:.4}}},",
        db_out.completed,
        db_out.shed,
        db_out.hist.percentile(0.99).as_micros(),
        db_out.throughput_ops_per_sec() / 1e6
    );
    let an_q = an_out.hist.quantiles(&REPORT_QS);
    let _ = writeln!(
        json,
        "  \"analytics\": {{\"shards\": 2, \"shape\": \"diurnal\", \
         \"event_permille\": {an_event_permille}, \"offered\": {}, \"completed\": {}, \
         \"shed\": {}, \"journaled_events\": {}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
         \"cohorts\": {{\"users\": {}, \"sessions\": {}, \"retained\": {}, \
         \"completions\": {}, \"matched\": {}}}, \"makespan_ms\": {:.4}}},",
        an_out.offered,
        an_out.completed,
        an_out.shed,
        an_out.journaled_events,
        an_q[0].as_micros(),
        an_q[2].as_micros(),
        cohorts.users,
        cohorts.sessions,
        cohorts.retained,
        cohorts.completions,
        cohorts.matched,
        an_out.makespan.as_millis(),
    );
    for (section, outs) in &by_section {
        let _ = writeln!(json, "  \"{section}\": {{");
        for (i, o) in outs.iter().enumerate() {
            let _ = writeln!(
                json,
                "    \"{}\": {}{}",
                o.name,
                o.json,
                if i + 1 < outs.len() { "," } else { "" }
            );
        }
        json.push_str("  },\n");
    }
    let _ = writeln!(json, "  \"knees\": [\n{knees}\n  ]");
    json.push_str("}\n");

    std::fs::write(&opts.out, &json).expect("write serve JSON");
    println!("wrote {}", opts.out);

    // Optional traced cluster run: one small deterministic cluster with a
    // RingSink on every shard, exported as Chrome trace-event JSON. The
    // sweep above runs untraced so `--trace` cannot perturb its numbers.
    if let Some(path) = &opts.trace {
        let cfg = ClusterConfig {
            shards: 2,
            kvs: KvsParams::quick(),
            trace_events: Some(1 << 20),
            ..base
        };
        let reqs = traffic(opts.seed, 1.0, n_requests.min(3_000), ArrivalShape::Poisson).generate();
        let traced = run_cluster(&cfg, &reqs).expect("traced run failed");
        let stats_bytes: u64 = traced.shards.iter().map(|r| r.stats.bytes_persisted).sum();
        let shard_traces: Vec<(String, &TraceData)> = traced
            .shards
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let data = r.trace.as_ref().expect("trace sink was installed");
                (format!("shard{i}"), data)
            })
            .collect();
        let events: usize = shard_traces.iter().map(|(_, d)| d.events.len()).sum();
        let trace_json = chrome_trace_json(&shard_traces, stats_bytes);
        std::fs::write(path, &trace_json).expect("write trace JSON");
        println!(
            "wrote {path} ({events} events over {} shards, {stats_bytes} bytes persisted)",
            shard_traces.len()
        );
    }

    // A quick sweep that never finds its knee (or never drives the stack
    // into overload) is a broken benchmark; fail loudly so CI notices
    // instead of archiving a useless JSON.
    if !any_knee || !any_overload {
        eprintln!(
            "serve: sweep found {} and {} — widen the load grid",
            if any_knee { "a knee" } else { "NO knee" },
            if any_overload {
                "an overload point"
            } else {
                "NO overload point"
            },
        );
        std::process::exit(1);
    }
}
