//! Regenerates the §6.1 checkpoint-frequency analysis. Pass --quick for
//! small inputs.
fn main() {
    let scale = gpm_bench::scale_from_args();
    gpm_bench::emit(&gpm_bench::figures::checkpoint_frequency(scale));
}
