//! Crash-consistency campaign: systematic crash-point enumeration with
//! recovery oracles across all GPMbench workloads (§6.2, systematized).
//!
//! For every workload the campaign (1) records a crash schedule — one clean
//! run under a recording fuel gauge, noting the op count at every
//! persist/fence/launch boundary — then (2) enumerates crash cases (each
//! kept boundary ±1 op, crossed with deterministic pending-line subset
//! policies) and (3) replays each case on a fresh machine, running the
//! workload's own recovery path and judging the result with its
//! `RecoveryOracle`. Results land in `BENCH_campaign.json` (schema
//! `gpm-campaign-v1`); every failure prints a one-line repro command.
//!
//! Flags:
//! - `--quick`             scaled-down workloads and fewer crash points
//! - `--workload NAME`     only the named oracle; names come from the
//!   `oracle_names()` registry (run `--list-workloads` to print them — the
//!   binary never hardcodes the list)
//! - `--list-workloads`    print every registered workload name and exit
//! - `--fuel N --policy P` single-case repro mode (requires `--workload`)
//! - `--max-points N`      crash points kept per workload (0 = all)
//! - `--double-recovery`   retry discipline instead of rollback: every case
//!   runs recovery TWICE, resubmits the in-flight batch, and the oracle
//!   asserts exactly-once application (no op lands zero or two times).
//!   Only oracles that support the discipline run.
//! - `--inject-bug`        self-test: run a deliberately broken recovery
//!   (one undo-log entry dropped); the campaign must FAIL. With
//!   `--double-recovery` the injected bug is a double-applying publish (the
//!   detectable-op skip checks are bypassed) — it must also be caught.
//!   Defaults to gpKVS; combine with `--workload` for any oracle with
//!   self-test knobs (gpKVS, gpAnalytics, gpDB under `--double-recovery`)
//! - `--out PATH`          JSON output path (default `BENCH_campaign.json`)
//! - `--trace PATH`        write a Chrome trace-event JSON (schema
//!   `gpm-trace-v1`) of the traced runs: in repro mode the single case,
//!   otherwise each workload's schedule-recording run
//!
//! The campaign always runs under strict persistency (it pins the process
//! default, so `GPM_PERSISTENCY=epoch` is ignored with a note): the oracles
//! encode the strict durability contract that the epoch model deliberately
//! relaxes.

use std::fmt::Write as _;
use std::time::Instant;

use gpm_sim::{
    chrome_trace_json, enumerate_cases, run_campaign, CampaignConfig, CampaignStats, CrashPolicy,
    CrashSchedule, Machine, RingSink, TraceData,
};
use gpm_workloads::oracle::{buggy_oracle, oracle_names};
use gpm_workloads::{oracle_suite, RecoveryOracle, Scale};

struct Opts {
    quick: bool,
    workload: Option<String>,
    fuel: Option<u64>,
    policy: Option<CrashPolicy>,
    max_points: Option<usize>,
    inject_bug: bool,
    double_recovery: bool,
    out: String,
    trace: Option<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        workload: None,
        fuel: None,
        policy: None,
        max_points: None,
        inject_bug: false,
        double_recovery: false,
        out: "BENCH_campaign.json".to_string(),
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--list-workloads" => {
                for name in oracle_names() {
                    println!("{name}");
                }
                std::process::exit(0);
            }
            "--inject-bug" => opts.inject_bug = true,
            "--double-recovery" => opts.double_recovery = true,
            "--workload" => opts.workload = Some(args.next().expect("--workload needs a name")),
            "--fuel" => {
                opts.fuel = Some(
                    args.next()
                        .expect("--fuel needs a count")
                        .parse()
                        .expect("--fuel needs an op count"),
                );
            }
            "--policy" => {
                opts.policy = Some(
                    args.next()
                        .expect("--policy needs a value")
                        .parse()
                        .expect("--policy needs all | none | gray:K | random:S"),
                );
            }
            "--max-points" => {
                opts.max_points = Some(
                    args.next()
                        .expect("--max-points needs a count")
                        .parse()
                        .expect("--max-points needs an integer"),
                );
            }
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--trace" => opts.trace = Some(args.next().expect("--trace needs a path")),
            other => panic!("unknown flag {other:?}"),
        }
    }
    opts
}

/// The one-line command that reproduces a single case.
fn repro_command(name: &str, fuel: u64, policy: CrashPolicy, opts: &Opts) -> String {
    let mut c = String::from("cargo run --release -p gpm-bench --bin campaign --");
    if opts.quick {
        c.push_str(" --quick");
    }
    if opts.inject_bug {
        c.push_str(" --inject-bug");
    }
    if opts.double_recovery {
        c.push_str(" --double-recovery");
    }
    let _ = write!(c, " --workload '{name}' --fuel {fuel} --policy {policy}");
    c
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes the collected per-run traces as one Chrome trace-event JSON.
fn write_trace(path: &str, shards: &[(String, TraceData)], stats_bytes: u64) {
    let refs: Vec<(String, &TraceData)> = shards.iter().map(|(n, d)| (n.clone(), d)).collect();
    let json = chrome_trace_json(&refs, stats_bytes);
    std::fs::write(path, &json).expect("write trace JSON");
    let events: usize = shards.iter().map(|(_, d)| d.events.len()).sum();
    println!(
        "wrote {path} ({events} events over {} traced runs)",
        shards.len()
    );
}

struct WorkloadReport {
    name: &'static str,
    boundaries: usize,
    total_ops: u64,
    stats: CampaignStats,
    wall_s: f64,
}

fn to_json(
    reports: &[WorkloadReport],
    scale: Scale,
    cfg: &CampaignConfig,
    double_recovery: bool,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"gpm-campaign-v1\",\n");
    let _ = writeln!(
        out,
        "  \"scale\": \"{}\",",
        if scale == Scale::Quick {
            "quick"
        } else {
            "full"
        }
    );
    let _ = writeln!(out, "  \"double_recovery\": {double_recovery},");
    let _ = writeln!(
        out,
        "  \"max_crash_points\": {},",
        cfg.max_crash_points
            .map_or("null".to_string(), |m| m.to_string())
    );
    let _ = writeln!(out, "  \"gray_steps\": {},", cfg.gray_steps);
    let _ = writeln!(out, "  \"random_subsets\": {},", cfg.random_subsets);
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    out.push_str("  \"workloads\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"boundaries\": {}, \"total_ops\": {}, \
             \"crash_points\": {}, \"cases\": {}, \"passed\": {}, \"wall_s\": {:.3}, \
             \"failures\": [",
            json_escape(r.name),
            r.boundaries,
            r.total_ops,
            r.stats.crash_points,
            r.stats.cases,
            r.stats.passed,
            r.wall_s
        );
        for (j, f) in r.stats.failures.iter().enumerate() {
            let msg = match &f.verdict {
                gpm_sim::OracleVerdict::Pass => String::new(),
                gpm_sim::OracleVerdict::Fail(m) => json_escape(m),
            };
            let _ = write!(
                out,
                "{}{{\"fuel\": {}, \"policy\": \"{}\", \"message\": \"{}\"}}",
                if j > 0 { ", " } else { "" },
                f.case.fuel,
                f.case.policy,
                msg
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    let total_cases: usize = reports.iter().map(|r| r.stats.cases).sum();
    let total_failures: usize = reports.iter().map(|r| r.stats.failures.len()).sum();
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"total_cases\": {total_cases},");
    let _ = writeln!(out, "  \"total_failures\": {total_failures}");
    out.push_str("}\n");
    out
}

fn main() {
    // The recovery oracles verify the strict durability contract; the epoch
    // model deliberately weakens it (fence drains defer to kernel
    // boundaries), so every epoch campaign "failure" would be the model
    // working as designed, not a recovery bug. Pin Strict before the first
    // launch resolves `GPM_PERSISTENCY` so the env knob can't silently
    // invalidate the verdicts.
    if gpm_gpu::pin_default_persistency(gpm_gpu::PersistencyModel::Strict)
        && std::env::var("GPM_PERSISTENCY")
            .map(|s| s.trim().eq_ignore_ascii_case("epoch"))
            .unwrap_or(false)
    {
        println!(
            "note: GPM_PERSISTENCY=epoch ignored — campaign oracles verify the strict contract"
        );
    }

    let opts = parse_args();
    let scale = if opts.quick {
        Scale::Quick
    } else {
        Scale::Full
    };

    let mut oracles: Vec<Box<dyn RecoveryOracle>> = if opts.inject_bug {
        // Self-test mode: build the named oracle (default gpKVS) with its
        // recovery deliberately broken — a dropped undo-log entry, or under
        // `--double-recovery` a bypassed detectable-op skip check so a
        // resubmitted op applies twice.
        let name = opts.workload.as_deref().unwrap_or("gpKVS");
        match buggy_oracle(name, opts.double_recovery, scale) {
            Some(o) => vec![o],
            None => {
                eprintln!(
                    "no injectable-bug variant of {name:?} for this mode; workloads: {}",
                    oracle_names().join(", ")
                );
                std::process::exit(2);
            }
        }
    } else {
        oracle_suite(scale)
    };
    if let Some(name) = &opts.workload {
        oracles.retain(|o| o.name().eq_ignore_ascii_case(name));
        if oracles.is_empty() {
            eprintln!(
                "no oracle named {name:?}; workloads: {}",
                oracle_names().join(", ")
            );
            std::process::exit(2);
        }
    }
    if opts.double_recovery {
        let before = oracles.len();
        oracles.retain(|o| o.supports_double_recovery());
        if oracles.len() < before {
            println!(
                "note: {} oracle(s) skipped — only workloads with resubmittable \
                 batches support --double-recovery",
                before - oracles.len()
            );
        }
        if oracles.is_empty() {
            eprintln!("no selected oracle supports --double-recovery");
            std::process::exit(2);
        }
    }

    // Single-case repro mode.
    if let Some(fuel) = opts.fuel {
        let policy = opts.policy.expect("--fuel needs --policy");
        assert!(opts.workload.is_some(), "--fuel needs --workload");
        let mut failed = false;
        let mut traced: Vec<(String, TraceData)> = Vec::new();
        let mut trace_bytes = 0u64;
        for o in &mut oracles {
            let mut m = Machine::default();
            if opts.trace.is_some() {
                m.set_trace_sink(Box::new(RingSink::new(1 << 20)));
            }
            let v = if opts.double_recovery {
                o.run_case_double_recovery(&mut m, fuel, policy)
            } else {
                o.run_case(&mut m, fuel, policy)
            }
            .expect("platform error");
            println!("{}: fuel={fuel} policy={policy} -> {v:?}", o.name());
            failed |= !v.passed();
            if let Some(data) = m.finish_trace() {
                trace_bytes += m.stats.bytes_persisted;
                traced.push((o.name().to_string(), data));
            }
        }
        if let Some(path) = &opts.trace {
            write_trace(path, &traced, trace_bytes);
        }
        if opts.inject_bug {
            // Self-test: the deliberately broken recovery MUST be caught by
            // this case too — an unexpected pass is a failure of the
            // campaign itself and must exit non-zero.
            if !failed {
                eprintln!("inject-bug self-test FAILED: case passed despite the broken recovery");
                std::process::exit(1);
            }
            println!("inject-bug self-test passed: broken recovery was caught");
            std::process::exit(0);
        }
        std::process::exit(i32::from(failed));
    }

    let cfg = CampaignConfig {
        max_crash_points: match opts.max_points {
            Some(0) => None,
            Some(m) => Some(m),
            None => Some(if opts.quick { 4 } else { 12 }),
        },
        ..CampaignConfig::default()
    };

    let t0 = Instant::now();
    let mut reports: Vec<WorkloadReport> = Vec::new();
    let mut traced: Vec<(String, TraceData)> = Vec::new();
    let mut trace_bytes = 0u64;
    for o in &mut oracles {
        let name = o.name();
        let mut m = Machine::default();
        if opts.trace.is_some() {
            m.set_trace_sink(Box::new(RingSink::new(1 << 20)));
        }
        let sched: CrashSchedule = o.record(&mut m).expect("schedule recording failed");
        if let Some(data) = m.finish_trace() {
            trace_bytes += m.stats.bytes_persisted;
            traced.push((name.to_string(), data));
        }
        let cases = enumerate_cases(&sched, &cfg);
        println!(
            "{name:>10}: {} boundaries over {} ops -> {} cases",
            sched.boundaries().len(),
            sched.total_ops(),
            cases.len()
        );
        let t = Instant::now();
        let stats = run_campaign(&cases, |case| {
            let mut m = Machine::default();
            if opts.double_recovery {
                o.run_case_double_recovery(&mut m, case.fuel, case.policy)
            } else {
                o.run_case(&mut m, case.fuel, case.policy)
            }
            .expect("platform error")
        });
        let wall_s = t.elapsed().as_secs_f64();
        for f in &stats.failures {
            let msg = match &f.verdict {
                gpm_sim::OracleVerdict::Pass => "",
                gpm_sim::OracleVerdict::Fail(m) => m.as_str(),
            };
            println!(
                "  FAIL fuel={} policy={}: {msg}",
                f.case.fuel, f.case.policy
            );
            println!(
                "  repro: {}",
                repro_command(name, f.case.fuel, f.case.policy, &opts)
            );
        }
        println!(
            "  {}/{} passed across {} crash points in {wall_s:.2}s",
            stats.passed, stats.cases, stats.crash_points
        );
        reports.push(WorkloadReport {
            name,
            boundaries: sched.boundaries().len(),
            total_ops: sched.total_ops(),
            stats,
            wall_s,
        });
    }

    let total_cases: usize = reports.iter().map(|r| r.stats.cases).sum();
    let total_failures: usize = reports.iter().map(|r| r.stats.failures.len()).sum();
    println!(
        "campaign: {total_cases} cases, {total_failures} failures, {:.2}s",
        t0.elapsed().as_secs_f64()
    );

    let json = to_json(&reports, scale, &cfg, opts.double_recovery);
    std::fs::write(&opts.out, &json).expect("write campaign JSON");
    println!("wrote {}", opts.out);
    if let Some(path) = &opts.trace {
        write_trace(path, &traced, trace_bytes);
    }

    if opts.inject_bug {
        // Self-test: the broken recovery MUST be caught.
        if total_failures == 0 {
            eprintln!("inject-bug self-test FAILED: no case caught the broken recovery");
            std::process::exit(1);
        }
        println!("inject-bug self-test passed: broken recovery was caught");
    } else if total_failures > 0 {
        std::process::exit(1);
    }
}
