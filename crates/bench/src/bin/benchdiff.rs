//! CI perf-regression gate: compares a fresh `BENCH_engine.json` against a
//! committed baseline and exits non-zero when any bench slowed beyond the
//! tolerance (or disappeared).
//!
//! Usage: `benchdiff <baseline.json> <current.json> [--tolerance F] [--serve]`
//! where `F` is the allowed relative slowdown (default 0.20 = ±20%, or
//! ±10% under `--serve`). `--serve` switches the parser to the
//! `BENCH_serve.json` schema and gates its knee/throughput lines.
//!
//! Exit codes: 0 pass, 1 regression/missing bench, 2 usage or read error.

use gpm_bench::benchdiff::{diff, diff_serve, DEFAULT_SERVE_TOLERANCE, DEFAULT_TOLERANCE};

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance: Option<f64> = None;
    let mut serve = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => {
                let t: f64 = args
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("--tolerance needs a number in (0, 1)");
                assert!(t > 0.0 && t < 1.0, "--tolerance needs a number in (0, 1)");
                tolerance = Some(t);
            }
            "--serve" => serve = true,
            other => paths.push(other.to_string()),
        }
    }
    let tolerance = tolerance.unwrap_or(if serve {
        DEFAULT_SERVE_TOLERANCE
    } else {
        DEFAULT_TOLERANCE
    });
    if paths.len() != 2 {
        eprintln!("usage: benchdiff <baseline.json> <current.json> [--tolerance F] [--serve]");
        std::process::exit(2);
    }
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("benchdiff: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&paths[0]);
    let current = read(&paths[1]);
    let result = if serve {
        diff_serve(&baseline, &current, tolerance)
    } else {
        diff(&baseline, &current, tolerance)
    };
    match result {
        Ok(report) => {
            print!("{}", report.render(tolerance));
            if !report.passed() {
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            std::process::exit(2);
        }
    }
}
