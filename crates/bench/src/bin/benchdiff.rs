//! CI perf-regression gate: compares a fresh `BENCH_engine.json` against a
//! committed baseline and exits non-zero when any bench slowed beyond the
//! tolerance (or disappeared).
//!
//! Usage: `benchdiff <baseline.json> <current.json> [--tolerance F]`
//! where `F` is the allowed relative slowdown (default 0.20 = ±20%).
//!
//! Exit codes: 0 pass, 1 regression/missing bench, 2 usage or read error.

use gpm_bench::benchdiff::{diff, DEFAULT_TOLERANCE};

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("--tolerance needs a number in (0, 1)");
                assert!(
                    tolerance > 0.0 && tolerance < 1.0,
                    "--tolerance needs a number in (0, 1)"
                );
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: benchdiff <baseline.json> <current.json> [--tolerance F]");
        std::process::exit(2);
    }
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("benchdiff: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&paths[0]);
    let current = read(&paths[1]);
    match diff(&baseline, &current, tolerance) {
        Ok(report) => {
            print!("{}", report.render(tolerance));
            if !report.passed() {
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            std::process::exit(2);
        }
    }
}
