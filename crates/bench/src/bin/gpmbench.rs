//! `gpmbench` — run any GPMbench workload under any persistence system from
//! the command line.
//!
//! ```console
//! $ cargo run --release -p gpm-bench --bin gpmbench -- --list
//! $ cargo run --release -p gpm-bench --bin gpmbench -- --workload BFS --mode gpm
//! $ cargo run --release -p gpm-bench --bin gpmbench -- --workload gpKVS --mode cap-mm --quick
//! $ cargo run --release -p gpm-bench --bin gpmbench -- --all --mode gpm --eadr
//! ```

use gpm_sim::{Machine, MachineConfig};
use gpm_workloads::{suite, Mode, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: gpmbench (--list | --all | --workload <name>) [--mode <m>] [--quick] [--eadr] [--recover] [--inspect]\n\
         modes: gpm (default), cap-fs, cap-mm, gpm-ndp, gpufs, cpu-pm"
    );
    std::process::exit(2);
}

fn inspect(m: &Machine) {
    println!("-- machine introspection --");
    println!("PM files:");
    for (name, f) in m.fs_list() {
        println!("  {:30} PM+{:#010x}  {:>10} bytes", name, f.offset, f.len);
    }
    use gpm_sim::pattern::AccessPattern;
    let p = &m.gpu_pm_pattern;
    println!(
        "GPU->PM write pattern: {:.2} MB seq-aligned, {:.2} MB seq-unaligned, {:.2} MB random",
        p.bytes_in(AccessPattern::SeqAligned) as f64 / 1e6,
        p.bytes_in(AccessPattern::SeqUnaligned) as f64 / 1e6,
        p.bytes_in(AccessPattern::Random) as f64 / 1e6,
    );
    println!(
        "NVM endurance: {} block programs ({:.2} MB programmed)",
        m.stats.pm_block_programs,
        m.stats.pm_block_programs as f64 * 256.0 / 1e6
    );
    println!(
        "counters: {} kernel launches, {} system fences, {} PCIe write txns, {} DMA MB",
        m.stats.kernel_launches,
        m.stats.system_fences,
        m.stats.pcie_write_txns,
        m.stats.dma_bytes / (1 << 20)
    );
}

fn parse_mode(s: &str) -> Mode {
    match s.to_ascii_lowercase().as_str() {
        "gpm" => Mode::Gpm,
        "cap-fs" | "capfs" => Mode::CapFs,
        "cap-mm" | "capmm" => Mode::CapMm,
        "gpm-ndp" | "ndp" => Mode::GpmNdp,
        "gpufs" => Mode::Gpufs,
        "cpu-pm" | "cpu" => Mode::CpuPm,
        other => {
            eprintln!("unknown mode {other:?}");
            usage()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let scale = if has("--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let mut workloads = suite(scale);

    if has("--list") {
        for w in &workloads {
            let modes: Vec<&str> = Mode::ALL
                .iter()
                .filter(|&&m| w.supports(m))
                .map(|m| m.label())
                .collect();
            println!(
                "{:12} [{}] modes: {}",
                w.name(),
                w.category().label(),
                modes.join(", ")
            );
        }
        return;
    }

    let mode = value_of("--mode").map_or(Mode::Gpm, |s| parse_mode(&s));
    let selected = value_of("--workload");
    if selected.is_none() && !has("--all") {
        usage();
    }

    let machine = || {
        if has("--eadr") {
            Machine::new(MachineConfig::default().with_eadr())
        } else {
            Machine::default()
        }
    };

    let mut any = false;
    for w in workloads.iter_mut() {
        if let Some(name) = &selected {
            if !w.name().eq_ignore_ascii_case(name) {
                continue;
            }
        }
        any = true;
        if !w.supports(mode) {
            println!("{:12} {:8} unsupported (*)", w.name(), mode.label());
            continue;
        }
        let mut m = machine();
        if has("--recover") {
            match w.run_with_recovery(&mut m) {
                Ok(Some(r)) => println!(
                    "{:12} {:8} op {:>12}  restore {:>12} ({:.2}%)  verified {}",
                    w.name(),
                    mode.label(),
                    format!("{}", r.elapsed),
                    format!("{}", r.recovery.unwrap_or(gpm_sim::Ns::ZERO)),
                    r.recovery.map_or(0.0, |rl| rl / r.elapsed * 100.0),
                    r.verified
                ),
                Ok(None) => println!(
                    "{:12} {:8} recovery is embedded in the kernels (native persistence)",
                    w.name(),
                    mode.label()
                ),
                Err(e) => println!("{:12} {:8} error: {e}", w.name(), mode.label()),
            }
            continue;
        }
        match w.run(&mut m, mode) {
            Ok(r) => {
                println!(
                    "{:12} {:8} elapsed {:>12}  PM writes {:>9.3} MB  bw {:>6.2} GB/s  fences {:>7}  verified {}",
                    w.name(),
                    mode.label(),
                    format!("{}", r.elapsed),
                    r.pm_write_bytes_total() as f64 / 1e6,
                    r.pcie_write_bw(),
                    r.system_fences,
                    r.verified
                );
                if has("--inspect") {
                    inspect(&m);
                }
            }
            Err(e) => println!("{:12} {:8} error: {e}", w.name(), mode.label()),
        }
    }
    if !any {
        eprintln!("no workload matched; try --list");
        std::process::exit(1);
    }
}
