//! YCSB-style comparison (beyond the paper's SET-only Figure 1a): GPM-KVS
//! against the CPU persistent stores under the standard workload mixes —
//! A (50% reads), B (95% reads), C (read-only) — with Zipfian key skew.
//!
//! Pass `--quick` for small inputs.

use gpm_bench::report::Report;
use gpm_pmkv::{matrixkv_params, rocksdb_params, run_mixed_batch, LsmKv, PmKv, PmemKvCmap};
use gpm_sim::Machine;
use gpm_workloads::datagen::Zipf;
use gpm_workloads::{KvsParams, KvsWorkload, Mode, Scale};

const THETA: f64 = 0.99; // YCSB's default Zipfian skew

#[derive(Clone, Copy)]
struct Mix {
    name: &'static str,
    get_permille: u32,
}

const MIXES: [Mix; 3] = [
    Mix {
        name: "A (50r/50w)",
        get_permille: 500,
    },
    Mix {
        name: "B (95r/5w)",
        get_permille: 950,
    },
    Mix {
        name: "C (100r)",
        get_permille: 1000,
    },
];

fn cpu_ops(mix: Mix, n: u64, universe: u64) -> Vec<(u64, u64, bool)> {
    let zipf = Zipf::new(universe, THETA);
    (0..n)
        .map(|i| {
            let key = gpm_pmkv::hash64(zipf.sample(i).wrapping_mul(0x9E37)) | 1;
            let is_get = gpm_pmkv::hash64(i ^ 0xCAFE) % 1000 < mix.get_permille as u64;
            (key, i, is_get)
        })
        .collect()
}

fn cpu_mops(
    make: impl FnOnce(&mut Machine) -> Box<dyn PmKv>,
    mix: Mix,
    n: u64,
    universe: u64,
) -> f64 {
    let mut m = Machine::default();
    let mut store = make(&mut m);
    let ops = cpu_ops(mix, n, universe);
    // Preload half the universe so reads hit (untimed setup: rewind the
    // clock afterwards is unnecessary — mops is computed from the batch's
    // own elapsed time).
    for r in 0..universe / 2 {
        let key = gpm_pmkv::hash64(r.wrapping_mul(0x9E37)) | 1;
        store.set(&mut m, key, r).expect("preload");
    }
    let (report, _hits) = run_mixed_batch(store.as_mut(), &mut m, &ops, 64).expect("mixed batch");
    report.mops()
}

fn gpm_mops(mix: Mix, scale: Scale) -> f64 {
    let mut p = if scale == Scale::Quick {
        KvsParams::quick()
    } else {
        KvsParams::default()
    };
    p.get_permille = mix.get_permille;
    p.key_skew = Some(THETA);
    let total = p.ops_per_batch * p.batches as u64;
    let mut m = Machine::default();
    let r = KvsWorkload::new(p).run(&mut m, Mode::Gpm).expect("gpm kvs");
    assert!(r.verified);
    total as f64 / r.elapsed.0 * 1e3
}

fn main() {
    let scale = gpm_bench::scale_from_args();
    let (n, universe): (u64, u64) = if scale == Scale::Quick {
        (4_000, 8_192)
    } else {
        (40_000, 131_072)
    };
    let mut report = Report::new(
        "out_ycsb",
        "YCSB mixes (Zipf 0.99): throughput in Mops/s",
        &["mix", "pmemKV", "RocksDB-pmem", "MatrixKV", "GPM-KVS"],
    );
    for mix in MIXES {
        let pmemkv = cpu_mops(
            |m| Box::new(PmemKvCmap::create(m, universe * 2).expect("pmemkv")),
            mix,
            n,
            universe,
        );
        let rocks = cpu_mops(
            |m| Box::new(LsmKv::create(m, rocksdb_params()).expect("rocks")),
            mix,
            n,
            universe,
        );
        let matrix = cpu_mops(
            |m| Box::new(LsmKv::create(m, matrixkv_params()).expect("matrix")),
            mix,
            n,
            universe,
        );
        let gpm = gpm_mops(mix, scale);
        report.row(&[
            mix.name.to_string(),
            format!("{pmemkv:.3}"),
            format!("{rocks:.3}"),
            format!("{matrix:.3}"),
            format!("{gpm:.3}"),
        ]);
    }
    gpm_bench::emit(&report);
}
