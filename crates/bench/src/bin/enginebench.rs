//! Offline perf-regression harness for the simulation engine's hot paths.
//!
//! Unlike the `criterion`-based benches under `benches/` (which need a
//! registry to build), this binary is dependency-free and runs in any cold
//! sandbox: `cargo run --release -p gpm-bench --bin enginebench` (or
//! `make bench-json`). It drives the engine's stress shapes — a 1M-thread
//! coalesced-store kernel, a scattered-store kernel that defeats
//! coalescing, fence-per-store and fence-storm kernels (in strict and
//! epoch persistency variants), and a block-parallel group that runs the
//! same grid at 1/2/4 host threads — plus one full GPMbench workload, the
//! production workload fleet pinned to one engine thread, and the
//! detectable-op scaling groups (`parallel_kvs_*` / `parallel_db_*`) that
//! run the block-parallel gpKVS batch and gpDB update kernels at 1/2/4
//! engine threads, and
//! reports *wall-clock* throughput in simulated thread operations per
//! second. The hot kernels implement [`gpm_gpu::Kernel::run_warp`], so this
//! harness exercises the vectorized lockstep path the production layers
//! ride on. Results land in `BENCH_engine.json` so successive checkouts can
//! be diffed for engine-speed regressions; the simulated counters in the
//! output double as a coarse determinism check. A `fence_sensitivity`
//! section (no `ops_per_sec` field, so benchdiff never gates it) sweeps the
//! system-fence latency and records strict-vs-epoch simulated time.
//!
//! Flags: `--filter <substr>` runs only benches whose name contains the
//! substring; `--reps <n>` overrides the repetition count (default 3 —
//! benchdiff-gated benches never drop below best-of-3, so a single noisy
//! scheduler tick cannot fail the ±20% perf gate); `--trace <path>`
//! additionally runs one small untimed kernel with a trace sink installed
//! and writes a Chrome trace-event JSON (schema `gpm-trace-v1`) there.

use std::fmt::Write as _;
use std::time::Instant;

use gpm_core::{gpmcp_checkpoint, gpmcp_create, gpmcp_register};
use gpm_gpu::{
    launch, resolved_engine_threads, FnKernel, Kernel, LaunchConfig, PersistencyModel, ThreadCtx,
    WarpCtx, WARP_SIZE,
};
use gpm_sim::{chrome_trace_json, Addr, Machine, Ns, RingSink, SimResult};
use gpm_workloads::{
    run_iterative, suite, AnalyticsParams, AnalyticsWorkload, DbOp, DbParams, DbWorkload,
    DnnParams, DnnWorkload, KvsParams, KvsWorkload, Mode, Scale,
};

/// Default timed repetitions per bench (the best wall time is reported,
/// minimising scheduler noise); one untimed warm-up precedes them.
const DEFAULT_REPS: usize = 3;

/// Floor applied to every benchdiff-gated bench: whatever `--reps` says,
/// gated lines are at least best-of-3 so the ±20% gate is never one noisy
/// scheduler tick away from a false failure.
const GATED_MIN_REPS: usize = 3;

struct BenchResult {
    name: &'static str,
    threads: u64,
    /// Simulated thread operations executed per repetition.
    ops: u64,
    reps: usize,
    best_wall_s: f64,
    ops_per_sec: f64,
    /// Simulated elapsed nanoseconds of one repetition (engine output; must
    /// not drift across engine rewrites).
    sim_elapsed_ns: f64,
}

/// Runs `f` `reps` times after a warm-up; `f` returns (ops, simulated ns).
fn bench(
    name: &'static str,
    threads: u64,
    reps: usize,
    mut f: impl FnMut() -> (u64, Ns),
) -> BenchResult {
    f(); // warm-up: page in lazily-allocated simulation state
    let mut best = f64::INFINITY;
    let mut ops = 0;
    let mut sim_ns = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (o, ns) = f();
        let wall = t0.elapsed().as_secs_f64();
        best = best.min(wall);
        ops = o;
        sim_ns = ns.0;
    }
    let r = BenchResult {
        name,
        threads,
        ops,
        reps,
        best_wall_s: best,
        ops_per_sec: ops as f64 / best,
        sim_elapsed_ns: sim_ns,
    };
    println!(
        "{:>24}  {:>9} threads  {:>10} ops  {:>9.3} ms  {:>12.0} ops/s",
        r.name,
        r.threads,
        r.ops,
        r.best_wall_s * 1e3,
        r.ops_per_sec
    );
    r
}

// ---- vectorized bench kernels -----------------------------------------------
//
// Each kernel implements both `run` (the per-lane reference) and `run_warp`
// (the vectorized fast path) with identical simulated semantics: same
// addresses, values, and fences, so `sim_elapsed_ns` and every golden
// counter are unchanged from the pre-vectorization FnKernel versions while
// the wall clock measures the batched engine.

/// Lane `i` stores 8 consecutive bytes at `pm + i * 8`.
struct CoalescedStore {
    pm: u64,
}

impl Kernel for CoalescedStore {
    type State = ();
    type Shared = ();

    fn run(
        &self,
        _phase: u32,
        ctx: &mut ThreadCtx<'_>,
        _state: &mut (),
        _shared: &mut (),
    ) -> SimResult<()> {
        let i = ctx.global_id();
        ctx.st_u64(Addr::pm(self.pm + i * 8), i)
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _states: &mut [()],
        _shared: &mut (),
    ) -> SimResult<bool> {
        let base = ctx.first_global_id();
        let lanes = ctx.lanes() as usize;
        let mut vals = [0u64; WARP_SIZE as usize];
        for (l, v) in vals[..lanes].iter_mut().enumerate() {
            *v = base + l as u64;
        }
        ctx.st_u64_lanes(Addr::pm(self.pm + base * 8), 8, &vals[..lanes])?;
        Ok(true)
    }
}

/// Lane `i` stores 4 bytes at `pm + i * 1024`: no two lanes share a line.
struct ScatteredStore {
    pm: u64,
}

impl Kernel for ScatteredStore {
    type State = ();
    type Shared = ();

    fn run(
        &self,
        _phase: u32,
        ctx: &mut ThreadCtx<'_>,
        _state: &mut (),
        _shared: &mut (),
    ) -> SimResult<()> {
        let i = ctx.global_id();
        ctx.st_u32(Addr::pm(self.pm + i * 1024), i as u32)
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _states: &mut [()],
        _shared: &mut (),
    ) -> SimResult<bool> {
        let base = ctx.first_global_id();
        let lanes = ctx.lanes() as usize;
        let mut vals = [0u32; WARP_SIZE as usize];
        for (l, v) in vals[..lanes].iter_mut().enumerate() {
            *v = (base + l as u64) as u32;
        }
        ctx.st_u32_lanes(Addr::pm(self.pm + base * 1024), 1024, &vals[..lanes])?;
        Ok(true)
    }
}

/// Lane `i` issues `FENCE_ROUNDS` store+system-fence pairs at
/// `pm + (i * FENCE_ROUNDS + j) * 8`.
struct FenceHeavy {
    pm: u64,
}

/// Store+fence rounds per thread in [`FenceHeavy`].
const FENCE_ROUNDS: u64 = 4;

impl Kernel for FenceHeavy {
    type State = ();
    type Shared = ();

    fn run(
        &self,
        _phase: u32,
        ctx: &mut ThreadCtx<'_>,
        _state: &mut (),
        _shared: &mut (),
    ) -> SimResult<()> {
        let i = ctx.global_id();
        for j in 0..FENCE_ROUNDS {
            ctx.st_u64(Addr::pm(self.pm + (i * FENCE_ROUNDS + j) * 8), j)?;
            ctx.threadfence_system()?;
        }
        Ok(())
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _states: &mut [()],
        _shared: &mut (),
    ) -> SimResult<bool> {
        let base = ctx.first_global_id();
        let lanes = ctx.lanes() as usize;
        let stride = FENCE_ROUNDS * 8;
        let mut vals = [0u64; WARP_SIZE as usize];
        for j in 0..FENCE_ROUNDS {
            for v in vals[..lanes].iter_mut() {
                *v = j;
            }
            ctx.st_u64_lanes(
                Addr::pm(self.pm + base * stride + j * 8),
                stride,
                &vals[..lanes],
            )?;
            ctx.threadfence_system();
        }
        Ok(true)
    }
}

/// One store then `STORM_FENCES` system fences per thread: the fence
/// bookkeeping path at its purest (almost no bytes move).
struct FenceStorm {
    pm: u64,
}

/// Fences per thread in [`FenceStorm`].
const STORM_FENCES: u64 = 16;

impl Kernel for FenceStorm {
    type State = ();
    type Shared = ();

    fn run(
        &self,
        _phase: u32,
        ctx: &mut ThreadCtx<'_>,
        _state: &mut (),
        _shared: &mut (),
    ) -> SimResult<()> {
        let i = ctx.global_id();
        ctx.st_u64(Addr::pm(self.pm + i * 8), i)?;
        for _ in 0..STORM_FENCES {
            ctx.threadfence_system()?;
        }
        Ok(())
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _states: &mut [()],
        _shared: &mut (),
    ) -> SimResult<bool> {
        let base = ctx.first_global_id();
        let lanes = ctx.lanes() as usize;
        let mut vals = [0u64; WARP_SIZE as usize];
        for (l, v) in vals[..lanes].iter_mut().enumerate() {
            *v = base + l as u64;
        }
        ctx.st_u64_lanes(Addr::pm(self.pm + base * 8), 8, &vals[..lanes])?;
        for _ in 0..STORM_FENCES {
            ctx.threadfence_system();
        }
        Ok(true)
    }
}

/// Each thread stores and re-loads `PB_ROUNDS` disjoint PM lines, then
/// stores the accumulated sum back to its first slot.
struct ParallelBlocks {
    pm: u64,
}

/// Store+load rounds per thread in [`ParallelBlocks`].
const PB_ROUNDS: u64 = 8;

impl Kernel for ParallelBlocks {
    type State = ();
    type Shared = ();

    fn run(
        &self,
        _phase: u32,
        ctx: &mut ThreadCtx<'_>,
        _state: &mut (),
        _shared: &mut (),
    ) -> SimResult<()> {
        let i = ctx.global_id();
        let mut acc = 0u64;
        for j in 0..PB_ROUNDS {
            let slot = self.pm + (i * PB_ROUNDS + j) * 128;
            ctx.st_u64(Addr::pm(slot), i ^ j)?;
            acc = acc.wrapping_add(ctx.ld_u64(Addr::pm(slot))?);
        }
        ctx.st_u64(Addr::pm(self.pm + i * PB_ROUNDS * 128), acc)
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _states: &mut [()],
        _shared: &mut (),
    ) -> SimResult<bool> {
        let base = ctx.first_global_id();
        let lanes = ctx.lanes() as usize;
        let stride = PB_ROUNDS * 128;
        let mut vals = [0u64; WARP_SIZE as usize];
        let mut loaded = [0u64; WARP_SIZE as usize];
        let mut accs = [0u64; WARP_SIZE as usize];
        for j in 0..PB_ROUNDS {
            for (l, v) in vals[..lanes].iter_mut().enumerate() {
                *v = (base + l as u64) ^ j;
            }
            let addr = Addr::pm(self.pm + base * stride + j * 128);
            ctx.st_u64_lanes(addr, stride, &vals[..lanes])?;
            ctx.ld_u64_lanes(addr, stride, &mut loaded[..lanes])?;
            for (a, &v) in accs[..lanes].iter_mut().zip(&loaded[..lanes]) {
                *a = a.wrapping_add(v);
            }
        }
        ctx.st_u64_lanes(Addr::pm(self.pm + base * stride), stride, &accs[..lanes])?;
        Ok(true)
    }
}

// ---- benches ----------------------------------------------------------------

/// 1M threads, each storing 8 consecutive bytes: every warp coalesces to
/// two 128-byte PCIe transactions per line pair. This is the engine's
/// best case and the regression gate's headline number.
fn coalesced_store(reps: usize) -> BenchResult {
    let threads: u64 = 1 << 20;
    bench("coalesced_store_1m", threads, reps, || {
        let mut m = Machine::default();
        let pm = m.alloc_pm(threads * 8).unwrap();
        let k = CoalescedStore { pm };
        let r = launch(&mut m, LaunchConfig::for_elements(threads, 256), &k).unwrap();
        (threads, r.elapsed)
    })
}

/// 256K threads striding 1 KiB apart (eight 128-byte lines): no two lanes
/// share a line, so every store is its own transaction and the line table
/// is touched at its sparsest.
fn scattered_store(reps: usize) -> BenchResult {
    let threads: u64 = 1 << 18;
    bench("scattered_store_256k", threads, reps, || {
        let mut m = Machine::default();
        let pm = m.alloc_pm(threads * 1024).unwrap();
        let k = ScatteredStore { pm };
        let r = launch(&mut m, LaunchConfig::for_elements(threads, 256), &k).unwrap();
        (threads, r.elapsed)
    })
}

/// 64K threads, each issuing four store+system-fence pairs with the
/// persistence window open: stresses fence bookkeeping and pending-line
/// drain. The `epoch` variant runs the identical kernel under
/// [`PersistencyModel::Epoch`], so its delta is pure fence-drain cost.
fn fence_heavy(reps: usize, model: PersistencyModel) -> BenchResult {
    let threads: u64 = 1 << 16;
    let name = match model {
        PersistencyModel::Strict => "fence_heavy_64k",
        PersistencyModel::Epoch => "epoch_fence_heavy_64k",
    };
    bench(name, threads, reps, move || {
        let mut m = Machine::default();
        let pm = m.alloc_pm(threads * FENCE_ROUNDS * 8).unwrap();
        m.set_ddio(false);
        let k = FenceHeavy { pm };
        let cfg = LaunchConfig::for_elements(threads, 256).with_persistency(model);
        let r = launch(&mut m, cfg, &k).unwrap();
        (threads * FENCE_ROUNDS * 2, r.elapsed)
    })
}

/// 64K threads, one store then sixteen system fences each: the fence path
/// with almost no data motion, in strict and epoch variants.
fn fence_storm(reps: usize, model: PersistencyModel) -> BenchResult {
    let threads: u64 = 1 << 16;
    let name = match model {
        PersistencyModel::Strict => "fence_storm_64k",
        PersistencyModel::Epoch => "epoch_fence_storm_64k",
    };
    bench(name, threads, reps, move || {
        let mut m = Machine::default();
        let pm = m.alloc_pm(threads * 8).unwrap();
        m.set_ddio(false);
        let k = FenceStorm { pm };
        let cfg = LaunchConfig::for_elements(threads, 256).with_persistency(model);
        let r = launch(&mut m, cfg, &k).unwrap();
        (threads * (STORM_FENCES + 1), r.elapsed)
    })
}

/// The block-parallel stress shape: 64 independent blocks, each thread
/// storing and re-loading eight disjoint PM lines. The engine-thread
/// scaling group runs the same grid pinned to 1 (`parallel_blocks_seq`), 2
/// (`parallel_blocks_t2`), and 4 (`parallel_blocks_t4`) host threads, plus
/// the host's resolved count (`parallel_blocks`); simulated output is
/// bit-identical at every setting, so the group measures the staged-commit
/// engine's wall-clock scaling and nothing else.
fn parallel_blocks(reps: usize, name: &'static str, engine_threads: u32) -> BenchResult {
    const GRID: u32 = 64;
    const BLOCK: u32 = 256;
    let threads = GRID as u64 * BLOCK as u64;
    bench(name, threads, reps, move || {
        let mut m = Machine::default();
        let pm = m.alloc_pm(threads * PB_ROUNDS * 128).unwrap();
        let k = ParallelBlocks { pm };
        let cfg = LaunchConfig::new(GRID, BLOCK).with_engine_threads(engine_threads);
        let r = launch(&mut m, cfg, &k).unwrap();
        (threads * PB_ROUNDS * 2, r.elapsed)
    })
}

/// One full GPMbench workload (gpKVS at quick scale) end to end, so the
/// harness also covers the allocator, logging, and verification layers.
fn suite_workload(reps: usize) -> BenchResult {
    bench("suite_gpkvs_quick", 0, reps, || {
        let mut w = suite(Scale::Quick).remove(0);
        let mut m = Machine::default();
        let metrics = w.run(&mut m, Mode::Gpm).unwrap();
        assert!(metrics.verified, "gpKVS verification failed");
        (metrics.pm_write_bytes_total() / 8, metrics.elapsed)
    })
}

// ---- workload fleet (the production Figure-3/9 kernels) ---------------------
//
// These lines measure the *production* workload kernels end to end —
// allocator, logging, verification and all — pinned to one engine thread,
// which is exactly where the vectorized `run_warp` path pays (block-parallel
// wall-clock scaling is the `parallel_kvs`/`parallel_db` group's job). The
// workloads build their own `LaunchConfig`s internally, so the pin rides the
// documented `GPM_ENGINE_THREADS` override, restored after each call.

fn pinned_engine_threads<T>(threads: u32, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var("GPM_ENGINE_THREADS").ok();
    std::env::set_var("GPM_ENGINE_THREADS", threads.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var("GPM_ENGINE_THREADS", v),
        None => std::env::remove_var("GPM_ENGINE_THREADS"),
    }
    out
}

fn pinned_single_thread<T>(f: impl FnOnce() -> T) -> T {
    pinned_engine_threads(1, f)
}

/// The gpmcp persist phase alone: one 32 MiB HBM array streamed into the PM
/// working buffer and published (the checkpoint-class memcpy kernel; one
/// copy thread per 512-byte chunk).
fn workload_checkpoint(reps: usize) -> BenchResult {
    const BYTES: u64 = 32 << 20;
    let threads = BYTES / 512;
    bench("workload_checkpoint_32m", threads, reps, move || {
        pinned_single_thread(|| {
            let mut m = Machine::default();
            let hbm = m.alloc_hbm(BYTES).unwrap();
            let mut cp = gpmcp_create(&mut m, "/pm/bench/cp", BYTES, 1, 1).unwrap();
            gpmcp_register(&mut cp, Addr::hbm(hbm), BYTES, 0).unwrap();
            let ns = gpmcp_checkpoint(&mut m, &cp, 0).unwrap();
            (threads, ns)
        })
    })
}

/// DNN weight-update at a bench-friendly shape: the paper's 784×1024 model
/// but few passes and a small batch, so the GPU weight-update kernel (1.2M
/// params into gpmcp checkpoints) is the measured work rather than the
/// host-side gradient math (which no engine change can speed up).
fn workload_dnn(reps: usize) -> BenchResult {
    bench("workload_dnn", 0, reps, move || {
        pinned_single_thread(|| {
            let mut app = DnnWorkload::new(DnnParams {
                samples: 8,
                batch: 4,
                iterations: 6,
                checkpoint_every: 2,
                ..DnnParams::default()
            });
            let mut m = Machine::default();
            let metrics = run_iterative(&mut m, &mut app, Mode::Gpm, 32).unwrap();
            assert!(metrics.verified, "DNN verification failed");
            (metrics.pm_write_bytes_total() / 8, metrics.elapsed)
        })
    })
}

/// One evaluation-scale fig9 workload end to end under GPM, selected from
/// the suite by its Figure 9 label. `ops` is the PM write volume in u64s —
/// deterministic engine output, so the line doubles as a counter check.
fn fig9_workload(name: &'static str, fig9_name: &'static str, reps: usize) -> BenchResult {
    bench(name, 0, reps, move || {
        pinned_single_thread(|| {
            let mut w = suite(Scale::Full)
                .into_iter()
                .find(|w| w.name() == fig9_name)
                .expect("fig9 workload label");
            let mut m = Machine::default();
            let metrics = w.run(&mut m, Mode::Gpm).unwrap();
            assert!(metrics.verified, "{fig9_name} verification failed");
            (metrics.pm_write_bytes_total() / 8, metrics.elapsed)
        })
    })
}

/// gpKVS at evaluation scale under an explicitly pinned persistency model
/// (the Epoch-vs-Strict comparison where HCL commit fences dominate).
fn workload_kvs(name: &'static str, model: PersistencyModel, reps: usize) -> BenchResult {
    bench(name, 0, reps, move || {
        pinned_single_thread(|| {
            let w = KvsWorkload::new(KvsParams::default().with_persistency(model));
            let mut m = Machine::default();
            let metrics = w.run(&mut m, Mode::Gpm).unwrap();
            assert!(metrics.verified, "gpKVS verification failed");
            (metrics.pm_write_bytes_total() / 8, metrics.elapsed)
        })
    })
}

/// gpDB at evaluation scale under an explicitly pinned persistency model.
fn workload_db(name: &'static str, op: DbOp, model: PersistencyModel, reps: usize) -> BenchResult {
    bench(name, 0, reps, move || {
        pinned_single_thread(|| {
            let mut params = DbParams::default().with_persistency(model);
            params.op = op;
            let w = DbWorkload::new(params);
            let mut m = Machine::default();
            let metrics = w.run(&mut m, Mode::Gpm).unwrap();
            assert!(metrics.verified, "gpDB verification failed");
            (metrics.pm_write_bytes_total() / 8, metrics.elapsed)
        })
    })
}

/// gpAnalytics at evaluation scale under an explicitly pinned persistency
/// model. The event-fold kernel journals every packed event and publishes
/// 32-byte session slots, so the Epoch leg shows how much of the strict
/// leg's time is per-slot HCL commit fences on the session store.
fn workload_analytics(name: &'static str, model: PersistencyModel, reps: usize) -> BenchResult {
    bench(name, 0, reps, move || {
        pinned_single_thread(|| {
            let w = AnalyticsWorkload::new(AnalyticsParams::default().with_persistency(model));
            let mut m = Machine::default();
            let metrics = w.run(&mut m, Mode::Gpm).unwrap();
            assert!(metrics.verified, "gpAnalytics verification failed");
            (metrics.pm_write_bytes_total() / 8, metrics.elapsed)
        })
    })
}

// ---- detectable-op engine-thread scaling ------------------------------------
//
// The gpKVS batch and gpDB update kernels ride the detectable-op layer and
// run block-parallel (no `Communicating` sequential pin), so their wall
// clock now responds to `GPM_ENGINE_THREADS`. These groups run the same
// evaluation-scale workload pinned to 1/2/4 engine threads; every simulated
// counter (`ops`, `sim_elapsed_ns`) is bit-identical across the three
// settings, so any divergence inside a group is an engine-determinism bug
// and the only measured variable is host-side scaling.

/// gpKVS (detectable SET batches) at evaluation scale, pinned to
/// `engine_threads` host threads.
fn parallel_kvs(name: &'static str, engine_threads: u32, reps: usize) -> BenchResult {
    bench(name, 0, reps, move || {
        pinned_engine_threads(engine_threads, || {
            let w = KvsWorkload::new(KvsParams::default());
            let mut m = Machine::default();
            let metrics = w.run(&mut m, Mode::Gpm).unwrap();
            assert!(metrics.verified, "gpKVS verification failed");
            (metrics.pm_write_bytes_total() / 8, metrics.elapsed)
        })
    })
}

/// gpDB UPDATE (detectable redo records) at evaluation scale, pinned to
/// `engine_threads` host threads.
fn parallel_db(name: &'static str, engine_threads: u32, reps: usize) -> BenchResult {
    bench(name, 0, reps, move || {
        pinned_engine_threads(engine_threads, || {
            let w = DbWorkload::new(DbParams {
                op: DbOp::Update,
                ..DbParams::default()
            });
            let mut m = Machine::default();
            let metrics = w.run(&mut m, Mode::Gpm).unwrap();
            assert!(metrics.verified, "gpDB verification failed");
            (metrics.pm_write_bytes_total() / 8, metrics.elapsed)
        })
    })
}

// ---- fence-cost sensitivity -------------------------------------------------

/// One strict/epoch simulated-time pair at a given system-fence latency.
struct SensPoint {
    name: String,
    system_fence_latency_ns: u64,
    sim_elapsed_ns: f64,
}

/// Sweeps the system-fence latency over the fence-storm shape under both
/// persistency models, recording *simulated* time only (no `ops_per_sec`
/// field, so benchdiff never gates these lines). The storm shape is chosen
/// because its fence term dominates elapsed time (the fence-heavy shape is
/// byte-drain bound, which would mask the sweep). The strict column scales
/// linearly with the latency; the epoch column barely moves — fences only
/// order into the open epoch at `epoch_fence_latency`, and the latency
/// appears once in the terminal boundary drain.
fn fence_sensitivity() -> Vec<SensPoint> {
    let threads: u64 = 1 << 14;
    let mut out = Vec::new();
    println!("fence_sensitivity: strict vs epoch sim-time, 16K-thread fence-storm shape");
    for lat in [275u64, 550, 1100, 2200] {
        let mut pair = [0.0f64; 2];
        for (slot, model) in [PersistencyModel::Strict, PersistencyModel::Epoch]
            .into_iter()
            .enumerate()
        {
            let cfg = gpm_sim::MachineConfig {
                system_fence_latency: Ns(lat as f64),
                ..Default::default()
            };
            let mut m = Machine::new(cfg);
            let pm = m.alloc_pm(threads * 8).unwrap();
            m.set_ddio(false);
            let k = FenceStorm { pm };
            let launch_cfg = LaunchConfig::for_elements(threads, 256).with_persistency(model);
            let r = launch(&mut m, launch_cfg, &k).unwrap();
            pair[slot] = r.elapsed.0;
            let tag = match model {
                PersistencyModel::Strict => "strict",
                PersistencyModel::Epoch => "epoch",
            };
            out.push(SensPoint {
                name: format!("fence_sensitivity_{lat}_{tag}"),
                system_fence_latency_ns: lat,
                sim_elapsed_ns: r.elapsed.0,
            });
        }
        println!(
            "  fence latency {lat:>5} ns: strict {:>12.0} ns, epoch {:>12.0} ns ({:.2}x saved)",
            pair[0],
            pair[1],
            pair[0] / pair[1]
        );
    }
    out
}

fn to_json(results: &[BenchResult], sens: &[SensPoint], engine_threads: u32) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"gpm-enginebench-v3\",\n  \"engine_threads\": {engine_threads},\n  \"benches\": [\n"
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"threads\": {}, \"ops\": {}, \"reps\": {}, \
             \"best_wall_s\": {:.6}, \"ops_per_sec\": {:.1}, \"sim_elapsed_ns\": {:.3}}}",
            r.name, r.threads, r.ops, r.reps, r.best_wall_s, r.ops_per_sec, r.sim_elapsed_ns
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    if sens.is_empty() {
        out.push_str("  ]\n}\n");
        return out;
    }
    out.push_str("  ],\n  \"fence_sensitivity\": [\n");
    for (i, p) in sens.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"system_fence_latency_ns\": {}, \"sim_elapsed_ns\": {:.3}}}",
            p.name, p.system_fence_latency_ns, p.sim_elapsed_ns
        );
        out.push_str(if i + 1 < sens.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

struct Opts {
    filter: Option<String>,
    reps: usize,
    trace: Option<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        filter: None,
        reps: DEFAULT_REPS,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--filter" => {
                opts.filter = Some(args.next().expect("--filter needs a substring"));
            }
            "--reps" => {
                opts.reps = args
                    .next()
                    .expect("--reps needs a count")
                    .parse()
                    .expect("--reps needs a positive integer");
                assert!(opts.reps > 0, "--reps needs a positive integer");
            }
            "--trace" => opts.trace = Some(args.next().expect("--trace needs a path")),
            other => panic!("unknown flag {other:?} (expected --filter, --reps or --trace)"),
        }
    }
    opts
}

/// One small untimed fence-heavy kernel with a trace sink installed; the
/// timed benches above always run untraced so `--trace` cannot perturb
/// their wall-clock numbers.
fn traced_smoke(path: &str) {
    const GRID: u32 = 8;
    const BLOCK: u32 = 64;
    let threads = GRID as u64 * BLOCK as u64;
    let mut m = Machine::default();
    m.set_trace_sink(Box::new(RingSink::new(1 << 20)));
    let pm = m.alloc_pm(threads * 8).unwrap();
    m.set_ddio(false);
    let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
        let i = ctx.global_id();
        ctx.st_u64(Addr::pm(pm + i * 8), i)?;
        ctx.threadfence_system()
    });
    launch(&mut m, LaunchConfig::new(GRID, BLOCK), &k).expect("traced smoke kernel");
    let stats_bytes = m.stats.bytes_persisted;
    let data = m.finish_trace().expect("ring sink returns trace data");
    let json = chrome_trace_json(&[("engine".to_string(), &data)], stats_bytes);
    std::fs::write(path, &json).expect("write trace JSON");
    println!(
        "wrote {path} ({} events, {} bytes persisted)",
        data.events.len(),
        stats_bytes
    );
}

fn main() {
    let opts = parse_args();
    // The count an unpinned launch would resolve to (env override included):
    // recorded in the JSON so runs on different hosts can be compared.
    let engine_threads = resolved_engine_threads(&LaunchConfig::new(1, 32));
    // Every bench below is benchdiff-gated, so all of them get the floor.
    let reps = opts.reps.max(GATED_MIN_REPS);
    println!(
        "enginebench: wall-clock engine throughput ({reps} reps, best-of, {engine_threads} engine threads)"
    );
    type BenchFn = fn(usize, u32) -> BenchResult;
    let table: &[(&str, BenchFn)] = &[
        ("coalesced_store_1m", |r, _| coalesced_store(r)),
        ("scattered_store_256k", |r, _| scattered_store(r)),
        ("fence_heavy_64k", |r, _| {
            fence_heavy(r, PersistencyModel::Strict)
        }),
        ("epoch_fence_heavy_64k", |r, _| {
            fence_heavy(r, PersistencyModel::Epoch)
        }),
        ("fence_storm_64k", |r, _| {
            fence_storm(r, PersistencyModel::Strict)
        }),
        ("epoch_fence_storm_64k", |r, _| {
            fence_storm(r, PersistencyModel::Epoch)
        }),
        ("parallel_blocks_seq", |r, _| {
            parallel_blocks(r, "parallel_blocks_seq", 1)
        }),
        ("parallel_blocks_t2", |r, _| {
            parallel_blocks(r, "parallel_blocks_t2", 2)
        }),
        ("parallel_blocks_t4", |r, _| {
            parallel_blocks(r, "parallel_blocks_t4", 4)
        }),
        ("parallel_blocks", |r, t| {
            parallel_blocks(r, "parallel_blocks", t)
        }),
        ("suite_gpkvs_quick", |r, _| suite_workload(r)),
        ("workload_checkpoint_32m", |r, _| workload_checkpoint(r)),
        ("workload_dnn", |r, _| workload_dnn(r)),
        ("workload_cfd", |r, _| {
            fig9_workload("workload_cfd", "CFD", r)
        }),
        ("workload_blackscholes", |r, _| {
            fig9_workload("workload_blackscholes", "BLK", r)
        }),
        ("workload_hotspot", |r, _| {
            fig9_workload("workload_hotspot", "HS", r)
        }),
        ("workload_srad", |r, _| {
            fig9_workload("workload_srad", "SRAD", r)
        }),
        ("workload_prefix_sum", |r, _| {
            fig9_workload("workload_prefix_sum", "PS", r)
        }),
        ("workload_gpkvs", |r, _| {
            workload_kvs("workload_gpkvs", PersistencyModel::Strict, r)
        }),
        ("workload_gpkvs_epoch", |r, _| {
            workload_kvs("workload_gpkvs_epoch", PersistencyModel::Epoch, r)
        }),
        ("workload_gpdb_insert", |r, _| {
            workload_db(
                "workload_gpdb_insert",
                DbOp::Insert,
                PersistencyModel::Strict,
                r,
            )
        }),
        ("workload_gpdb_insert_epoch", |r, _| {
            workload_db(
                "workload_gpdb_insert_epoch",
                DbOp::Insert,
                PersistencyModel::Epoch,
                r,
            )
        }),
        ("workload_gpdb_update", |r, _| {
            workload_db(
                "workload_gpdb_update",
                DbOp::Update,
                PersistencyModel::Strict,
                r,
            )
        }),
        ("workload_gpdb_update_epoch", |r, _| {
            workload_db(
                "workload_gpdb_update_epoch",
                DbOp::Update,
                PersistencyModel::Epoch,
                r,
            )
        }),
        ("analytics_strict", |r, _| {
            workload_analytics("analytics_strict", PersistencyModel::Strict, r)
        }),
        ("analytics_epoch", |r, _| {
            workload_analytics("analytics_epoch", PersistencyModel::Epoch, r)
        }),
        ("parallel_kvs_seq", |r, _| {
            parallel_kvs("parallel_kvs_seq", 1, r)
        }),
        ("parallel_kvs_t2", |r, _| {
            parallel_kvs("parallel_kvs_t2", 2, r)
        }),
        ("parallel_kvs_t4", |r, _| {
            parallel_kvs("parallel_kvs_t4", 4, r)
        }),
        ("parallel_db_seq", |r, _| {
            parallel_db("parallel_db_seq", 1, r)
        }),
        ("parallel_db_t2", |r, _| parallel_db("parallel_db_t2", 2, r)),
        ("parallel_db_t4", |r, _| parallel_db("parallel_db_t4", 4, r)),
    ];
    let results: Vec<BenchResult> = table
        .iter()
        .filter(|(name, _)| {
            opts.filter
                .as_deref()
                .is_none_or(|needle| name.contains(needle))
        })
        .map(|(_, f)| f(reps, engine_threads))
        .collect();
    let sens = if opts
        .filter
        .as_deref()
        .is_none_or(|needle| "fence_sensitivity".contains(needle))
    {
        fence_sensitivity()
    } else {
        Vec::new()
    };
    if results.is_empty() && sens.is_empty() {
        eprintln!("no bench matches the filter; nothing written");
        return;
    }
    let json = to_json(&results, &sens, engine_threads);
    let path = "BENCH_engine.json";
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
    if let Some(trace_path) = &opts.trace {
        traced_smoke(trace_path);
    }
}
