//! Offline perf-regression harness for the simulation engine's hot paths.
//!
//! Unlike the `criterion`-based benches under `benches/` (which need a
//! registry to build), this binary is dependency-free and runs in any cold
//! sandbox: `cargo run --release -p gpm-bench --bin enginebench` (or
//! `make bench-json`). It drives the engine's stress shapes — a 1M-thread
//! coalesced-store kernel, a scattered-store kernel that defeats
//! coalescing, a fence-per-store kernel, and a block-parallel pair that
//! runs the same grid on one and then all host threads — plus one full
//! GPMbench workload, and reports *wall-clock* throughput in simulated
//! thread operations per second. Results land in `BENCH_engine.json` so
//! successive checkouts can be diffed for engine-speed regressions; the
//! simulated counters in the output double as a coarse determinism check.
//!
//! Flags: `--filter <substr>` runs only benches whose name contains the
//! substring; `--reps <n>` overrides the repetition count (default 3);
//! `--trace <path>` additionally runs one small untimed kernel with a
//! trace sink installed and writes a Chrome trace-event JSON (schema
//! `gpm-trace-v1`) there.

use std::fmt::Write as _;
use std::time::Instant;

use gpm_gpu::{launch, resolved_engine_threads, FnKernel, LaunchConfig, ThreadCtx};
use gpm_sim::{chrome_trace_json, Addr, Machine, Ns, RingSink};
use gpm_workloads::{suite, Mode, Scale};

/// Default timed repetitions per bench (the best wall time is reported,
/// minimising scheduler noise); one untimed warm-up precedes them.
const DEFAULT_REPS: usize = 3;

struct BenchResult {
    name: &'static str,
    threads: u64,
    /// Simulated thread operations executed per repetition.
    ops: u64,
    reps: usize,
    best_wall_s: f64,
    ops_per_sec: f64,
    /// Simulated elapsed nanoseconds of one repetition (engine output; must
    /// not drift across engine rewrites).
    sim_elapsed_ns: f64,
}

/// Runs `f` `reps` times after a warm-up; `f` returns (ops, simulated ns).
fn bench(
    name: &'static str,
    threads: u64,
    reps: usize,
    mut f: impl FnMut() -> (u64, Ns),
) -> BenchResult {
    f(); // warm-up: page in lazily-allocated simulation state
    let mut best = f64::INFINITY;
    let mut ops = 0;
    let mut sim_ns = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (o, ns) = f();
        let wall = t0.elapsed().as_secs_f64();
        best = best.min(wall);
        ops = o;
        sim_ns = ns.0;
    }
    let r = BenchResult {
        name,
        threads,
        ops,
        reps,
        best_wall_s: best,
        ops_per_sec: ops as f64 / best,
        sim_elapsed_ns: sim_ns,
    };
    println!(
        "{:>24}  {:>9} threads  {:>10} ops  {:>9.3} ms  {:>12.0} ops/s",
        r.name,
        r.threads,
        r.ops,
        r.best_wall_s * 1e3,
        r.ops_per_sec
    );
    r
}

/// 1M threads, each storing 8 consecutive bytes: every warp coalesces to
/// two 128-byte PCIe transactions per line pair. This is the engine's
/// best case and the regression gate's headline number.
fn coalesced_store(reps: usize) -> BenchResult {
    let threads: u64 = 1 << 20;
    bench("coalesced_store_1m", threads, reps, || {
        let mut m = Machine::default();
        let pm = m.alloc_pm(threads * 8).unwrap();
        let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i)
        });
        let r = launch(&mut m, LaunchConfig::for_elements(threads, 256), &k).unwrap();
        (threads, r.elapsed)
    })
}

/// 256K threads striding 1 KiB apart (eight 128-byte lines): no two lanes
/// share a line, so every store is its own transaction and the line table
/// is touched at its sparsest.
fn scattered_store(reps: usize) -> BenchResult {
    let threads: u64 = 1 << 18;
    bench("scattered_store_256k", threads, reps, || {
        let mut m = Machine::default();
        let pm = m.alloc_pm(threads * 1024).unwrap();
        let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u32(Addr::pm(pm + i * 1024), i as u32)
        });
        let r = launch(&mut m, LaunchConfig::for_elements(threads, 256), &k).unwrap();
        (threads, r.elapsed)
    })
}

/// 64K threads, each issuing four store+system-fence pairs with the
/// persistence window open: stresses fence bookkeeping and pending-line
/// drain.
fn fence_heavy(reps: usize) -> BenchResult {
    let threads: u64 = 1 << 16;
    const ROUNDS: u64 = 4;
    bench("fence_heavy_64k", threads, reps, || {
        let mut m = Machine::default();
        let pm = m.alloc_pm(threads * ROUNDS * 8).unwrap();
        m.set_ddio(false);
        let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            for j in 0..ROUNDS {
                ctx.st_u64(Addr::pm(pm + (i * ROUNDS + j) * 8), j)?;
                ctx.threadfence_system()?;
            }
            Ok(())
        });
        let r = launch(&mut m, LaunchConfig::for_elements(threads, 256), &k).unwrap();
        (threads * ROUNDS * 2, r.elapsed)
    })
}

/// The block-parallel stress shape: 64 independent blocks, each thread
/// storing and re-loading eight disjoint PM lines. Run with
/// `engine_threads` pinned to `host_threads` (the `parallel_blocks` bench)
/// and to 1 (`parallel_blocks_seq`), the pair measures the staged-commit
/// engine's wall-clock speedup; simulated output is bit-identical in both.
fn parallel_blocks(reps: usize, host_threads: u32, seq: bool) -> BenchResult {
    const GRID: u32 = 64;
    const BLOCK: u32 = 256;
    const ROUNDS: u64 = 8;
    let threads = GRID as u64 * BLOCK as u64;
    let (name, engine_threads) = if seq {
        ("parallel_blocks_seq", 1)
    } else {
        ("parallel_blocks", host_threads)
    };
    bench(name, threads, reps, move || {
        let mut m = Machine::default();
        let pm = m.alloc_pm(threads * ROUNDS * 128).unwrap();
        let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            let mut acc = 0u64;
            for j in 0..ROUNDS {
                let slot = pm + (i * ROUNDS + j) * 128;
                ctx.st_u64(Addr::pm(slot), i ^ j)?;
                acc = acc.wrapping_add(ctx.ld_u64(Addr::pm(slot))?);
            }
            ctx.st_u64(Addr::pm(pm + i * ROUNDS * 128), acc)
        });
        let cfg = LaunchConfig::new(GRID, BLOCK).with_engine_threads(engine_threads);
        let r = launch(&mut m, cfg, &k).unwrap();
        (threads * ROUNDS * 2, r.elapsed)
    })
}

/// One full GPMbench workload (gpKVS at quick scale) end to end, so the
/// harness also covers the allocator, logging, and verification layers.
fn suite_workload(reps: usize) -> BenchResult {
    bench("suite_gpkvs_quick", 0, reps, || {
        let mut w = suite(Scale::Quick).remove(0);
        let mut m = Machine::default();
        let metrics = w.run(&mut m, Mode::Gpm).unwrap();
        assert!(metrics.verified, "gpKVS verification failed");
        (metrics.pm_write_bytes_total() / 8, metrics.elapsed)
    })
}

fn to_json(results: &[BenchResult], engine_threads: u32) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"gpm-enginebench-v2\",\n  \"engine_threads\": {engine_threads},\n  \"benches\": [\n"
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"threads\": {}, \"ops\": {}, \"reps\": {}, \
             \"best_wall_s\": {:.6}, \"ops_per_sec\": {:.1}, \"sim_elapsed_ns\": {:.3}}}",
            r.name, r.threads, r.ops, r.reps, r.best_wall_s, r.ops_per_sec, r.sim_elapsed_ns
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

struct Opts {
    filter: Option<String>,
    reps: usize,
    trace: Option<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        filter: None,
        reps: DEFAULT_REPS,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--filter" => {
                opts.filter = Some(args.next().expect("--filter needs a substring"));
            }
            "--reps" => {
                opts.reps = args
                    .next()
                    .expect("--reps needs a count")
                    .parse()
                    .expect("--reps needs a positive integer");
                assert!(opts.reps > 0, "--reps needs a positive integer");
            }
            "--trace" => opts.trace = Some(args.next().expect("--trace needs a path")),
            other => panic!("unknown flag {other:?} (expected --filter, --reps or --trace)"),
        }
    }
    opts
}

/// One small untimed fence-heavy kernel with a trace sink installed; the
/// timed benches above always run untraced so `--trace` cannot perturb
/// their wall-clock numbers.
fn traced_smoke(path: &str) {
    const GRID: u32 = 8;
    const BLOCK: u32 = 64;
    let threads = GRID as u64 * BLOCK as u64;
    let mut m = Machine::default();
    m.set_trace_sink(Box::new(RingSink::new(1 << 20)));
    let pm = m.alloc_pm(threads * 8).unwrap();
    m.set_ddio(false);
    let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
        let i = ctx.global_id();
        ctx.st_u64(Addr::pm(pm + i * 8), i)?;
        ctx.threadfence_system()
    });
    launch(&mut m, LaunchConfig::new(GRID, BLOCK), &k).expect("traced smoke kernel");
    let stats_bytes = m.stats.bytes_persisted;
    let data = m.finish_trace().expect("ring sink returns trace data");
    let json = chrome_trace_json(&[("engine".to_string(), &data)], stats_bytes);
    std::fs::write(path, &json).expect("write trace JSON");
    println!(
        "wrote {path} ({} events, {} bytes persisted)",
        data.events.len(),
        stats_bytes
    );
}

fn main() {
    let opts = parse_args();
    // The count an unpinned launch would resolve to (env override included):
    // recorded in the JSON so runs on different hosts can be compared.
    let engine_threads = resolved_engine_threads(&LaunchConfig::new(1, 32));
    println!(
        "enginebench: wall-clock engine throughput ({} reps, best-of, {engine_threads} engine threads)",
        opts.reps
    );
    type BenchFn = fn(usize, u32) -> BenchResult;
    let table: &[(&str, BenchFn)] = &[
        ("coalesced_store_1m", |r, _| coalesced_store(r)),
        ("scattered_store_256k", |r, _| scattered_store(r)),
        ("fence_heavy_64k", |r, _| fence_heavy(r)),
        ("parallel_blocks_seq", |r, t| parallel_blocks(r, t, true)),
        ("parallel_blocks", |r, t| parallel_blocks(r, t, false)),
        ("suite_gpkvs_quick", |r, _| suite_workload(r)),
    ];
    let results: Vec<BenchResult> = table
        .iter()
        .filter(|(name, _)| {
            opts.filter
                .as_deref()
                .is_none_or(|needle| name.contains(needle))
        })
        .map(|(_, f)| f(opts.reps, engine_threads))
        .collect();
    if results.is_empty() {
        eprintln!("no bench matches the filter; nothing written");
        return;
    }
    let json = to_json(&results, engine_threads);
    let path = "BENCH_engine.json";
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
    if let Some(trace_path) = &opts.trace {
        traced_smoke(trace_path);
    }
}
