//! Runs the entire evaluation (all figures and tables) and writes the
//! reports, like the artifact's `make all`.
use gpm_bench::figures;

fn main() {
    let scale = gpm_bench::scale_from_args();
    let t0 = std::time::Instant::now();
    gpm_bench::emit(&figures::fig1a(scale));
    gpm_bench::emit(&figures::fig1b(scale));
    gpm_bench::emit(&figures::fig3(scale));
    gpm_bench::emit(&figures::fig9(scale));
    gpm_bench::emit(&figures::fig10(scale));
    gpm_bench::emit(&figures::fig11a(scale));
    gpm_bench::emit(&figures::fig11b(scale));
    gpm_bench::emit(&figures::fig12(scale));
    gpm_bench::emit(&figures::table4(scale));
    gpm_bench::emit(&figures::table5(scale));
    gpm_bench::emit(&figures::checkpoint_frequency(scale));
    gpm_bench::emit(&figures::recovery_stress(scale));
    println!("reproduced the full evaluation in {:.1?}", t0.elapsed());
}
