//! Regenerates fig9 of the paper. Pass --quick for small inputs.
fn main() {
    let scale = gpm_bench::scale_from_args();
    gpm_bench::emit(&gpm_bench::figures::fig9(scale));
}
