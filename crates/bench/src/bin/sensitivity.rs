//! Sensitivity analysis (beyond the paper): how GPM's advantage over CAP-fs
//! moves with the platform parameters the design depends on — system-fence
//! latency, PCIe bandwidth, and Optane's random-write bandwidth.
//!
//! The paper argues GPM's wins come from hiding fence latency with
//! parallelism and avoiding write amplification; this sweep makes the
//! dependence explicit. Pass `--quick` for small inputs.

use gpm_bench::report::Report;
use gpm_sim::{Machine, MachineConfig, Ns};
use gpm_workloads::{BfsParams, BfsWorkload, KvsParams, KvsWorkload, Mode, Scale};

fn gpkvs_speedup(cfg: &MachineConfig, scale: Scale) -> f64 {
    let p = if scale == Scale::Quick {
        KvsParams::quick()
    } else {
        KvsParams::default()
    };
    let w = KvsWorkload::new(p);
    let mut m1 = Machine::new(cfg.clone());
    let gpm = w.run(&mut m1, Mode::Gpm).expect("gpm");
    let mut m2 = Machine::new(cfg.clone());
    let cap = w.run(&mut m2, Mode::CapFs).expect("capfs");
    assert!(gpm.verified && cap.verified);
    cap.elapsed / gpm.elapsed
}

fn bfs_speedup(cfg: &MachineConfig, scale: Scale) -> f64 {
    let p = if scale == Scale::Quick {
        BfsParams {
            width: 96,
            height: 96,
            ..BfsParams::default()
        }
    } else {
        BfsParams::default()
    };
    let w = BfsWorkload::new(p);
    let mut m1 = Machine::new(cfg.clone());
    let gpm = w.run(&mut m1, Mode::Gpm).expect("gpm");
    let mut m2 = Machine::new(cfg.clone());
    let cap = w.run(&mut m2, Mode::CapFs).expect("capfs");
    cap.elapsed / gpm.elapsed
}

fn main() {
    let scale = gpm_bench::scale_from_args();
    let mut report = Report::new(
        "out_sensitivity",
        "Sensitivity: GPM speedup over CAP-fs vs platform parameters",
        &["parameter", "value", "gpKVS_speedup", "BFS_speedup"],
    );

    // System-fence latency: the cost GPM's parallelism must hide.
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let cfg = MachineConfig {
            system_fence_latency: Ns(MachineConfig::default().system_fence_latency.0 * factor),
            ..MachineConfig::default()
        };
        report.row(&[
            "fence_latency".into(),
            format!("{:.0}ns", cfg.system_fence_latency.0),
            format!("{:.2}", gpkvs_speedup(&cfg, scale)),
            format!("{:.2}", bfs_speedup(&cfg, scale)),
        ]);
    }

    // PCIe bandwidth: both sides transfer over it, but CAP moves far more.
    for bw in [6.3, 12.6, 25.2, 50.4] {
        let cfg = MachineConfig {
            pcie_bw: bw,
            ..MachineConfig::default()
        };
        report.row(&[
            "pcie_bw".into(),
            format!("{bw:.1}GB/s"),
            format!("{:.2}", gpkvs_speedup(&cfg, scale)),
            format!("{:.2}", bfs_speedup(&cfg, scale)),
        ]);
    }

    // Random-write bandwidth: GPM's fine-grained persists live here.
    for bw in [0.36, 0.72, 1.44, 2.88] {
        let cfg = MachineConfig {
            pm_bw_random: bw,
            ..MachineConfig::default()
        };
        report.row(&[
            "pm_random_bw".into(),
            format!("{bw:.2}GB/s"),
            format!("{:.2}", gpkvs_speedup(&cfg, scale)),
            format!("{:.2}", bfs_speedup(&cfg, scale)),
        ]);
    }

    gpm_bench::emit(&report);
}
