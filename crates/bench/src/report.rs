//! Tab-separated reports, mirroring the artifact's `reports/` outputs.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A tabular experiment result.
#[derive(Debug, Clone)]
pub struct Report {
    /// File stem, e.g. `out_figure9`.
    pub name: String,
    /// Human title.
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report with the given column header.
    pub fn new(name: impl Into<String>, title: impl Into<String>, header: &[&str]) -> Report {
        Report {
            name: name.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The report as a tab-separated string (header + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.join("\t"));
        }
        out
    }

    /// Pretty-prints with aligned columns.
    pub fn to_pretty(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r, &widths));
        }
        out
    }

    /// Writes `<dir>/<name>.txt` as TSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.txt", self.name)), self.to_tsv())
    }
}

/// Formats a speedup cell (`"3.42"`) or the paper's `*` for unsupported.
pub fn speedup_cell(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:.2}"),
        None => "*".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_and_pretty_roundtrip() {
        let mut r = Report::new("out_test", "Test", &["name", "value"]);
        r.row(&["a".into(), "1.00".into()]);
        r.row(&["bb".into(), "2.50".into()]);
        assert_eq!(r.len(), 2);
        let tsv = r.to_tsv();
        assert!(tsv.contains("a\t1.00"));
        assert!(tsv.starts_with("# Test"));
        let pretty = r.to_pretty();
        assert!(pretty.contains("2.50"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_enforced() {
        let mut r = Report::new("x", "X", &["a", "b"]);
        r.row(&["only-one".into()]);
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("gpm_report_test");
        let mut r = Report::new("out_save", "S", &["c"]);
        r.row(&["v".into()]);
        r.save(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("out_save.txt")).unwrap();
        assert!(content.contains('v'));
    }

    #[test]
    fn speedup_cells() {
        assert_eq!(speedup_cell(Some(3.456)), "3.46");
        assert_eq!(speedup_cell(None), "*");
    }
}
