pub fn placeholder() {}
