//! # gpm-trace — deterministic structured-event tracing
//!
//! A dependency-free event layer for the GPM reproduction. Every layer of
//! the stack — the simulated machine, the kernel execution engines, libGPM's
//! logs and checkpoints, the crash campaign, and the serving frontend —
//! emits typed [`Event`]s through a [`TraceSink`] installed on the
//! `Machine`. Timestamps are **sim-clock nanoseconds** (never wall clock),
//! so a trace is a pure function of seed + configuration: byte-deterministic
//! across runs and diffable in CI.
//!
//! The block-parallel and sequential engines produce identical traces
//! modulo one normalization rule: events in the `"engine"` category (the
//! diagnostic [`EventKind::EngineCommit`] marker, which records how many
//! worker threads staged a launch) are stripped by [`TraceData::normalized`]
//! — and, in the exported JSON, by `grep -v '"cat":"engine"'`, since every
//! event is exactly one line.
//!
//! Exporters:
//! * [`chrome_trace_json`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) (schema
//!   `gpm-trace-v1`, embedded under the `gpmTrace` key).
//! * [`Attribution`] — a per-phase summary (bytes persisted, fences, PCIe
//!   transactions, span time) computed *online* at emit time, so it stays
//!   exact even when the bounded ring drops old events.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::fmt::{self, Write as _};

/// A typed trace event. Each variant carries the minimal payload needed to
/// reconstruct the timeline; aggregate accounting lives in `gpm_sim::Stats`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A kernel launch began (after the launch counter was bumped).
    KernelBegin {
        /// Ordinal of this launch on the machine (1-based).
        launch: u64,
        /// Grid size in blocks.
        grid: u32,
        /// Threads per block.
        block_dim: u32,
    },
    /// The kernel launch completed (also emitted before a mid-kernel crash).
    KernelEnd {
        /// Ordinal of the launch being closed.
        launch: u64,
    },
    /// A block's effects begin applying to the machine (sequential: the
    /// block starts executing; parallel: its staged commit starts).
    BlockBegin {
        /// Block id within the grid.
        block: u32,
    },
    /// The block's effects are fully applied.
    BlockCommit {
        /// Block id within the grid.
        block: u32,
    },
    /// Diagnostic: how many engine threads staged this launch. The ONLY
    /// event that differs between engine configurations — category
    /// `"engine"`, stripped by normalization.
    EngineCommit {
        /// Worker thread count used (1 = sequential path).
        threads: u32,
    },
    /// A coalesced PCIe write transaction reached the PM controller.
    PcieWriteTxn {
        /// PM offset of the transaction's first byte.
        offset: u64,
        /// Transaction payload size in bytes.
        bytes: u64,
    },
    /// A GPU system-scope fence. `lines` counts the pending cache lines
    /// this fence actually persisted (0 under eADR, where stores persist
    /// at write time).
    SystemFence {
        /// Writer id whose pending lines were flushed.
        writer: u32,
        /// Pending lines persisted by this fence.
        lines: u64,
    },
    /// A GPU device-scope fence (ordering only, nothing persists).
    DeviceFence,
    /// Epoch-persistency boundary: the deferred drain at kernel completion
    /// made every epoch-closed pending line durable (under
    /// `PersistencyModel::Epoch`, fences only order writes into the epoch;
    /// this event carries the bytes they would have persisted eagerly).
    EpochDrain {
        /// Pending lines the boundary drain made durable.
        lines: u64,
    },
    /// DDIO was disabled: a `gpm_persist_begin` epoch opened.
    PersistEpochBegin,
    /// DDIO was re-enabled: the persist epoch closed.
    PersistEpochEnd,
    /// A store became durable immediately under eADR.
    EadrPersist {
        /// PM offset of the store.
        offset: u64,
        /// Bytes persisted.
        bytes: u64,
        /// True for GPU stores, false for CPU stores.
        gpu: bool,
    },
    /// The CPU flushed a persistent range (clwb/clflushopt + sfence path).
    CpuFlush {
        /// PM offset of the range.
        offset: u64,
        /// Cache lines flushed.
        lines: u64,
    },
    /// A CPU store with immediate persistence (store + flush + fence).
    CpuPersistStore {
        /// PM offset of the store.
        offset: u64,
        /// Bytes persisted.
        bytes: u64,
    },
    /// A DMA copy between memory spaces.
    DmaCopy {
        /// Bytes transferred.
        bytes: u64,
    },
    /// A simulated power failure: pending lines partially applied.
    Crash {
        /// Pending lines whose contents reached the media.
        applied: u64,
        /// Pending lines lost.
        dropped: u64,
    },
    /// An undo/HCL log append became durable.
    LogAppend {
        /// Entry payload bytes.
        bytes: u64,
        /// True when appended through the HCL (striped, unfenced) path.
        hcl: bool,
    },
    /// A log was cleared (host-side reset after recovery or commit).
    LogClear {
        /// Bytes of log content discarded.
        bytes: u64,
    },
    /// A checkpoint of one working-set group started.
    CheckpointBegin {
        /// Checkpoint group index.
        group: u32,
    },
    /// The checkpoint's atomic publish flag was persisted.
    CheckpointPublish {
        /// Checkpoint group index.
        group: u32,
    },
    /// The checkpoint completed.
    CheckpointEnd {
        /// Checkpoint group index.
        group: u32,
    },
    /// Post-crash recovery began (log drain / metadata rollback).
    RecoveryBegin,
    /// Recovery completed; the image is consistent again.
    RecoveryEnd,
    /// A serve request entered a shard's queue.
    ServeEnqueue {
        /// Request ordinal within the shard's arrival stream.
        req: u64,
    },
    /// A serve request was shed (queue full).
    ServeShed {
        /// Request ordinal within the shard's arrival stream.
        req: u64,
    },
    /// A serve batch began executing (enqueue → launch edge).
    ServeBatchBegin {
        /// Requests in the batch.
        n: u32,
    },
    /// The batch's effects are durable (launch → durable edge).
    ServeBatchEnd {
        /// Requests in the batch.
        n: u32,
    },
    /// A response left the shard (durable → respond edge).
    ServeRespond {
        /// Request ordinal within the shard's arrival stream.
        req: u64,
        /// Enqueue-to-response latency in sim nanoseconds.
        latency_ns: f64,
    },
    /// A primary shipped one committed batch's log record to its replica
    /// over the simulated PCIe/PM fabric.
    LogShip {
        /// Batch sequence number (the one riding the detect-layer tags).
        seq: u64,
        /// Log-record bytes shipped.
        bytes: u64,
    },
    /// The replica durably applied a shipped batch (the semi-sync ack
    /// instant).
    ReplicaAck {
        /// Batch sequence number acknowledged.
        seq: u64,
    },
    /// A replica was promoted to primary after FaultPlan killed the
    /// primary mid-batch.
    FailoverPromote {
        /// Promotion gap (primary death → replica serving) in sim ns.
        gap_ns: f64,
    },
    /// Resharding shipped a migrated key range onto its new owner.
    MigrateKeys {
        /// Keys moved in this transfer.
        keys: u64,
        /// Bytes shipped over the fabric.
        bytes: u64,
    },
}

impl EventKind {
    /// Category tag for exporters and normalization. `"engine"` events are
    /// the only ones allowed to differ between engine-thread settings.
    pub fn cat(&self) -> &'static str {
        use EventKind::*;
        match self {
            KernelBegin { .. } | KernelEnd { .. } | BlockBegin { .. } | BlockCommit { .. } => {
                "kernel"
            }
            EngineCommit { .. } => "engine",
            PcieWriteTxn { .. } | DmaCopy { .. } => "pcie",
            SystemFence { .. }
            | DeviceFence
            | EpochDrain { .. }
            | PersistEpochBegin
            | PersistEpochEnd
            | EadrPersist { .. }
            | CpuFlush { .. }
            | CpuPersistStore { .. } => "persist",
            LogAppend { .. }
            | LogClear { .. }
            | CheckpointBegin { .. }
            | CheckpointPublish { .. }
            | CheckpointEnd { .. } => "libgpm",
            Crash { .. } | RecoveryBegin | RecoveryEnd => "faults",
            ServeEnqueue { .. }
            | ServeShed { .. }
            | ServeBatchBegin { .. }
            | ServeBatchEnd { .. }
            | ServeRespond { .. } => "serve",
            LogShip { .. } | ReplicaAck { .. } | FailoverPromote { .. } | MigrateKeys { .. } => {
                "replication"
            }
        }
    }

    /// Bytes this event made durable (summed by phase attribution; the
    /// per-run total equals the machine's `Stats::bytes_persisted` delta).
    fn bytes_persisted(&self) -> u64 {
        const CPU_LINE: u64 = 64;
        match *self {
            EventKind::SystemFence { lines, .. } => lines * CPU_LINE,
            EventKind::EpochDrain { lines } => lines * CPU_LINE,
            EventKind::EadrPersist { bytes, .. } => bytes,
            EventKind::CpuFlush { lines, .. } => lines * CPU_LINE,
            EventKind::CpuPersistStore { bytes, .. } => bytes,
            _ => 0,
        }
    }
}

/// One timestamped event. `ts_ns` is the machine's sim clock at emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated time of the event in nanoseconds.
    pub ts_ns: f64,
    /// What happened.
    pub kind: EventKind,
}

/// Attribution phases: the innermost *non-kernel* span a carrier event
/// falls inside (kernels nest inside checkpoints, recovery, and serve
/// batches, so the outer span is the interesting attribution target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Inside a kernel launch with no enclosing higher-level span.
    Kernel,
    /// Inside a checkpoint span.
    Checkpoint,
    /// Inside a recovery span.
    Recovery,
    /// Inside a serve batch span.
    ServeBatch,
    /// Outside any span (host-side setup, log clears between batches…).
    Other,
}

impl Phase {
    const ALL: [Phase; 5] = [
        Phase::Kernel,
        Phase::Checkpoint,
        Phase::Recovery,
        Phase::ServeBatch,
        Phase::Other,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Kernel => 0,
            Phase::Checkpoint => 1,
            Phase::Recovery => 2,
            Phase::ServeBatch => 3,
            Phase::Other => 4,
        }
    }

    /// Stable lower-case key used in exported JSON.
    pub fn key(self) -> &'static str {
        match self {
            Phase::Kernel => "kernel",
            Phase::Checkpoint => "checkpoint",
            Phase::Recovery => "recovery",
            Phase::ServeBatch => "serve_batch",
            Phase::Other => "other",
        }
    }
}

/// Per-phase totals accumulated online at emit time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// Bytes made durable while this phase was innermost.
    pub bytes_persisted: u64,
    /// System-scope fences issued in this phase.
    pub system_fences: u64,
    /// Coalesced PCIe write transactions in this phase.
    pub pcie_write_txns: u64,
    /// Spans of this phase that closed (or were cut by a crash).
    pub spans: u64,
    /// Total sim time spent inside closed spans of this phase.
    pub span_ns: f64,
}

/// The per-run attribution summary: one [`PhaseTotals`] per [`Phase`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Attribution {
    totals: [PhaseTotals; 5],
}

impl Attribution {
    /// Totals for one phase.
    pub fn phase(&self, p: Phase) -> &PhaseTotals {
        &self.totals[p.index()]
    }

    /// Sum of `bytes_persisted` across all phases. By construction this
    /// equals the traced machine's `Stats::bytes_persisted` delta.
    pub fn total_bytes_persisted(&self) -> u64 {
        self.totals.iter().map(|t| t.bytes_persisted).sum()
    }

    /// Merges another attribution into this one (multi-shard roll-up).
    pub fn merge(&mut self, other: &Attribution) {
        for (a, b) in self.totals.iter_mut().zip(other.totals.iter()) {
            a.bytes_persisted += b.bytes_persisted;
            a.system_fences += b.system_fences;
            a.pcie_write_txns += b.pcie_write_txns;
            a.spans += b.spans;
            a.span_ns += b.span_ns;
        }
    }

    fn at(&mut self, p: Phase) -> &mut PhaseTotals {
        &mut self.totals[p.index()]
    }
}

/// What a sink hands back when tracing ends.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// The retained events, oldest first (the ring may have dropped older
    /// ones — see `dropped_events`).
    pub events: Vec<Event>,
    /// Events evicted from the bounded ring, oldest-first. Never silent.
    pub dropped_events: u64,
    /// Online per-phase attribution over ALL emitted events, including
    /// dropped ones.
    pub attribution: Attribution,
}

impl TraceData {
    /// The normalization rule: engine-category diagnostics are the only
    /// events allowed to differ between sequential and block-parallel
    /// execution, so comparisons strip them.
    pub fn normalized(&self) -> Vec<Event> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.kind.cat() != "engine")
            .collect()
    }
}

/// Event consumer installed on a `Machine`. Implementations must be cheap:
/// the hot path calls [`TraceSink::emit`] only when a sink is installed
/// (`Machine::trace_enabled` gates event construction entirely), so the
/// uninstrumented run stays zero-cost.
pub trait TraceSink: fmt::Debug + Send + Sync {
    /// Consume one event.
    fn emit(&mut self, ev: Event);
    /// Finish tracing and surrender collected data, if any.
    fn finish(self: Box<Self>) -> Option<TraceData> {
        None
    }
}

/// A sink that discards everything (useful to measure sink overhead).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _ev: Event) {}
}

/// The standard sink: a bounded ring of events plus online attribution.
///
/// When the ring is full the **oldest** event is dropped and
/// `dropped_events` incremented — attribution is computed at emit time, so
/// its sums stay exact regardless of drops.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    ring: VecDeque<Event>,
    dropped: u64,
    attr: Attribution,
    /// Open attribution spans: (phase, begin ts).
    stack: Vec<(Phase, f64)>,
}

impl RingSink {
    /// Default ring capacity: enough for the quick benches without
    /// unbounded growth on full runs.
    pub const DEFAULT_CAP: usize = 1 << 20;

    /// Creates a sink retaining at most `cap` events.
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap: cap.max(1),
            ring: VecDeque::new(),
            dropped: 0,
            attr: Attribution::default(),
            stack: Vec::new(),
        }
    }

    /// Events dropped so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// The phase a carrier event attributes to: innermost non-kernel span,
    /// else `Kernel` if any span is open, else `Other`.
    fn carrier_phase(&self) -> Phase {
        for &(p, _) in self.stack.iter().rev() {
            if p != Phase::Kernel {
                return p;
            }
        }
        if self.stack.is_empty() {
            Phase::Other
        } else {
            Phase::Kernel
        }
    }

    fn open(&mut self, p: Phase, ts: f64) {
        self.stack.push((p, ts));
    }

    fn close(&mut self, p: Phase, ts: f64) {
        // Pop the innermost matching span; tolerate unmatched ends.
        if let Some(pos) = self.stack.iter().rposition(|&(q, _)| q == p) {
            let (_, t0) = self.stack.remove(pos);
            let t = self.attr.at(p);
            t.spans += 1;
            t.span_ns += ts - t0;
        }
    }

    fn account(&mut self, ev: &Event) {
        use EventKind::*;
        match ev.kind {
            KernelBegin { .. } => self.open(Phase::Kernel, ev.ts_ns),
            KernelEnd { .. } => self.close(Phase::Kernel, ev.ts_ns),
            CheckpointBegin { .. } => self.open(Phase::Checkpoint, ev.ts_ns),
            CheckpointEnd { .. } => self.close(Phase::Checkpoint, ev.ts_ns),
            RecoveryBegin => self.open(Phase::Recovery, ev.ts_ns),
            RecoveryEnd => self.close(Phase::Recovery, ev.ts_ns),
            ServeBatchBegin { .. } => self.open(Phase::ServeBatch, ev.ts_ns),
            ServeBatchEnd { .. } => self.close(Phase::ServeBatch, ev.ts_ns),
            Crash { .. } => {
                // Power failure cuts every open span at the crash instant.
                while let Some((p, t0)) = self.stack.pop() {
                    let t = self.attr.at(p);
                    t.spans += 1;
                    t.span_ns += ev.ts_ns - t0;
                }
            }
            _ => {
                let bytes = ev.kind.bytes_persisted();
                let fence = matches!(ev.kind, SystemFence { .. }) as u64;
                let txn = matches!(ev.kind, PcieWriteTxn { .. }) as u64;
                if bytes != 0 || fence != 0 || txn != 0 {
                    let p = self.carrier_phase();
                    let t = self.attr.at(p);
                    t.bytes_persisted += bytes;
                    t.system_fences += fence;
                    t.pcie_write_txns += txn;
                }
            }
        }
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, ev: Event) {
        self.account(&ev);
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    fn finish(self: Box<Self>) -> Option<TraceData> {
        Some(TraceData {
            events: self.ring.into_iter().collect(),
            dropped_events: self.dropped,
            attribution: self.attr,
        })
    }
}

/// Formats an `f64` timestamp (ns) as Chrome's microsecond `ts` field.
fn ts_us(ns: f64) -> String {
    format!("{:.3}", ns / 1_000.0)
}

fn write_args(out: &mut String, kind: &EventKind) {
    use EventKind::*;
    match *kind {
        KernelBegin {
            launch,
            grid,
            block_dim,
        } => {
            let _ = write!(
                out,
                "{{\"launch\":{launch},\"grid\":{grid},\"block_dim\":{block_dim}}}"
            );
        }
        KernelEnd { launch } => {
            let _ = write!(out, "{{\"launch\":{launch}}}");
        }
        BlockBegin { block } | BlockCommit { block } => {
            let _ = write!(out, "{{\"block\":{block}}}");
        }
        EngineCommit { threads } => {
            let _ = write!(out, "{{\"threads\":{threads}}}");
        }
        PcieWriteTxn { offset, bytes } => {
            let _ = write!(out, "{{\"offset\":{offset},\"bytes\":{bytes}}}");
        }
        SystemFence { writer, lines } => {
            let _ = write!(out, "{{\"writer\":{writer},\"lines\":{lines}}}");
        }
        EpochDrain { lines } => {
            let _ = write!(out, "{{\"lines\":{lines}}}");
        }
        DeviceFence | PersistEpochBegin | PersistEpochEnd | RecoveryBegin | RecoveryEnd => {
            out.push_str("{}");
        }
        EadrPersist { offset, bytes, gpu } => {
            let _ = write!(
                out,
                "{{\"offset\":{offset},\"bytes\":{bytes},\"gpu\":{gpu}}}"
            );
        }
        CpuFlush { offset, lines } => {
            let _ = write!(out, "{{\"offset\":{offset},\"lines\":{lines}}}");
        }
        CpuPersistStore { offset, bytes } => {
            let _ = write!(out, "{{\"offset\":{offset},\"bytes\":{bytes}}}");
        }
        DmaCopy { bytes } | LogClear { bytes } => {
            let _ = write!(out, "{{\"bytes\":{bytes}}}");
        }
        Crash { applied, dropped } => {
            let _ = write!(out, "{{\"applied\":{applied},\"dropped\":{dropped}}}");
        }
        LogAppend { bytes, hcl } => {
            let _ = write!(out, "{{\"bytes\":{bytes},\"hcl\":{hcl}}}");
        }
        CheckpointBegin { group } | CheckpointPublish { group } | CheckpointEnd { group } => {
            let _ = write!(out, "{{\"group\":{group}}}");
        }
        ServeEnqueue { req } | ServeShed { req } => {
            let _ = write!(out, "{{\"req\":{req}}}");
        }
        ServeBatchBegin { n } | ServeBatchEnd { n } => {
            let _ = write!(out, "{{\"n\":{n}}}");
        }
        ServeRespond { req, latency_ns } => {
            let _ = write!(out, "{{\"req\":{req},\"latency_ns\":{latency_ns:.1}}}");
        }
        LogShip { seq, bytes } => {
            let _ = write!(out, "{{\"seq\":{seq},\"bytes\":{bytes}}}");
        }
        ReplicaAck { seq } => {
            let _ = write!(out, "{{\"seq\":{seq}}}");
        }
        FailoverPromote { gap_ns } => {
            let _ = write!(out, "{{\"gap_ns\":{gap_ns:.1}}}");
        }
        MigrateKeys { keys, bytes } => {
            let _ = write!(out, "{{\"keys\":{keys},\"bytes\":{bytes}}}");
        }
    }
}

/// (name, phase letter, virtual thread id) for the Chrome exporter.
fn chrome_shape(kind: &EventKind) -> (&'static str, char, u32) {
    use EventKind::*;
    match kind {
        KernelBegin { .. } => ("kernel", 'B', 0),
        KernelEnd { .. } => ("kernel", 'E', 0),
        BlockBegin { .. } => ("block", 'B', 0),
        BlockCommit { .. } => ("block", 'E', 0),
        EngineCommit { .. } => ("engine_commit", 'i', 9),
        PcieWriteTxn { .. } => ("pcie_txn", 'i', 1),
        DmaCopy { .. } => ("dma", 'i', 1),
        SystemFence { .. } => ("system_fence", 'i', 2),
        DeviceFence => ("device_fence", 'i', 2),
        EpochDrain { .. } => ("epoch_drain", 'i', 2),
        PersistEpochBegin => ("persist_epoch", 'B', 2),
        PersistEpochEnd => ("persist_epoch", 'E', 2),
        EadrPersist { .. } => ("eadr_persist", 'i', 2),
        CpuFlush { .. } => ("cpu_flush", 'i', 2),
        CpuPersistStore { .. } => ("cpu_persist_store", 'i', 2),
        LogAppend { .. } => ("log_append", 'i', 3),
        LogClear { .. } => ("log_clear", 'i', 3),
        CheckpointBegin { .. } => ("checkpoint", 'B', 3),
        CheckpointPublish { .. } => ("checkpoint_publish", 'i', 3),
        CheckpointEnd { .. } => ("checkpoint", 'E', 3),
        Crash { .. } => ("crash", 'i', 4),
        RecoveryBegin => ("recovery", 'B', 4),
        RecoveryEnd => ("recovery", 'E', 4),
        ServeEnqueue { .. } => ("enqueue", 'i', 5),
        ServeShed { .. } => ("shed", 'i', 5),
        ServeBatchBegin { .. } => ("batch", 'B', 5),
        ServeBatchEnd { .. } => ("batch", 'E', 5),
        ServeRespond { .. } => ("respond", 'i', 5),
        LogShip { .. } => ("log_ship", 'i', 6),
        ReplicaAck { .. } => ("replica_ack", 'i', 6),
        FailoverPromote { .. } => ("promote", 'i', 6),
        MigrateKeys { .. } => ("migrate_keys", 'i', 6),
    }
}

const THREAD_NAMES: [(u32, &str); 8] = [
    (0, "kernel"),
    (1, "pcie"),
    (2, "persist"),
    (3, "libgpm"),
    (4, "faults"),
    (5, "serve"),
    (6, "replication"),
    (9, "engine"),
];

fn write_attribution(out: &mut String, attr: &Attribution) {
    out.push('{');
    for (i, p) in Phase::ALL.iter().enumerate() {
        let t = attr.phase(*p);
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"bytes_persisted\":{},\"system_fences\":{},\"pcie_write_txns\":{},\
             \"spans\":{},\"span_ns\":{:.1}}}",
            p.key(),
            t.bytes_persisted,
            t.system_fences,
            t.pcie_write_txns,
            t.spans,
            t.span_ns
        );
    }
    out.push('}');
}

/// Renders one or more shards' traces as Chrome trace-event JSON (schema
/// `gpm-trace-v1`). Each shard becomes one `pid` with named virtual
/// threads; every event is exactly **one line**, so the normalization rule
/// is implementable in a shell as `grep -v '"cat":"engine"'`.
///
/// `stats_bytes_persisted` is the traced machines' `Stats::bytes_persisted`
/// total for the traced window; it is embedded next to the attribution so a
/// reader (or CI) can check the sums-to-stats invariant.
pub fn chrome_trace_json(shards: &[(String, &TraceData)], stats_bytes_persisted: u64) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };
    for (pid, (name, _)) in shards.iter().enumerate() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
        for (tid, tname) in THREAD_NAMES {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{tname}\"}}}}"
            );
        }
    }
    for (pid, (_, data)) in shards.iter().enumerate() {
        for ev in &data.events {
            sep(&mut out, &mut first);
            let (name, ph, tid) = chrome_shape(&ev.kind);
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{}",
                ev.kind.cat(),
                ts_us(ev.ts_ns)
            );
            if ph == 'i' {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"args\":");
            write_args(&mut out, &ev.kind);
            out.push('}');
        }
    }
    out.push_str("\n],\n\"displayTimeUnit\":\"ns\",\n");
    let mut attr = Attribution::default();
    let mut dropped = 0u64;
    for (_, data) in shards {
        attr.merge(&data.attribution);
        dropped += data.dropped_events;
    }
    out.push_str("\"gpmTrace\":{\"schema\":\"gpm-trace-v1\",");
    let _ = write!(
        out,
        "\"shards\":{},\"dropped_events\":{dropped},\
         \"stats_bytes_persisted\":{stats_bytes_persisted},\"attribution\":",
        shards.len()
    );
    write_attribution(&mut out, &attr);
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: f64, kind: EventKind) -> Event {
        Event { ts_ns: ts, kind }
    }

    #[test]
    fn ring_drops_oldest_with_explicit_counter() {
        let mut sink = RingSink::new(3);
        for i in 0..5 {
            sink.emit(ev(i as f64, EventKind::DmaCopy { bytes: i }));
        }
        assert_eq!(sink.dropped_events(), 2);
        let data = Box::new(sink).finish().unwrap();
        assert_eq!(data.dropped_events, 2);
        assert_eq!(data.events.len(), 3);
        // Oldest dropped: events 0 and 1 are gone, 2..5 retained in order.
        assert_eq!(data.events[0].kind, EventKind::DmaCopy { bytes: 2 });
        assert_eq!(data.events[2].kind, EventKind::DmaCopy { bytes: 4 });
    }

    #[test]
    fn attribution_survives_ring_drops() {
        let mut sink = RingSink::new(1);
        for _ in 0..10 {
            sink.emit(ev(
                0.0,
                EventKind::EadrPersist {
                    offset: 0,
                    bytes: 64,
                    gpu: true,
                },
            ));
        }
        let data = Box::new(sink).finish().unwrap();
        assert_eq!(data.dropped_events, 9);
        assert_eq!(data.attribution.total_bytes_persisted(), 640);
    }

    #[test]
    fn carrier_attribution_prefers_innermost_non_kernel_phase() {
        let mut sink = RingSink::new(64);
        // Outside any span -> Other.
        sink.emit(ev(
            0.0,
            EventKind::CpuPersistStore {
                offset: 0,
                bytes: 8,
            },
        ));
        // Inside a bare kernel -> Kernel.
        sink.emit(ev(
            1.0,
            EventKind::KernelBegin {
                launch: 1,
                grid: 1,
                block_dim: 1,
            },
        ));
        sink.emit(ev(
            2.0,
            EventKind::SystemFence {
                writer: 0,
                lines: 2,
            },
        ));
        sink.emit(ev(3.0, EventKind::KernelEnd { launch: 1 }));
        // Kernel nested in a serve batch -> ServeBatch.
        sink.emit(ev(4.0, EventKind::ServeBatchBegin { n: 3 }));
        sink.emit(ev(
            5.0,
            EventKind::KernelBegin {
                launch: 2,
                grid: 1,
                block_dim: 1,
            },
        ));
        sink.emit(ev(
            6.0,
            EventKind::PcieWriteTxn {
                offset: 0,
                bytes: 128,
            },
        ));
        sink.emit(ev(
            6.5,
            EventKind::EadrPersist {
                offset: 0,
                bytes: 100,
                gpu: true,
            },
        ));
        sink.emit(ev(7.0, EventKind::KernelEnd { launch: 2 }));
        sink.emit(ev(8.0, EventKind::ServeBatchEnd { n: 3 }));
        let data = Box::new(sink).finish().unwrap();
        let a = &data.attribution;
        assert_eq!(a.phase(Phase::Other).bytes_persisted, 8);
        assert_eq!(a.phase(Phase::Kernel).bytes_persisted, 128);
        assert_eq!(a.phase(Phase::Kernel).system_fences, 1);
        assert_eq!(a.phase(Phase::ServeBatch).bytes_persisted, 100);
        assert_eq!(a.phase(Phase::ServeBatch).pcie_write_txns, 1);
        assert_eq!(a.total_bytes_persisted(), 8 + 128 + 100);
        assert_eq!(a.phase(Phase::Kernel).spans, 2);
        assert_eq!(a.phase(Phase::ServeBatch).spans, 1);
        assert!((a.phase(Phase::ServeBatch).span_ns - 4.0).abs() < 1e-9);
    }

    #[test]
    fn crash_closes_all_open_spans() {
        let mut sink = RingSink::new(64);
        sink.emit(ev(0.0, EventKind::ServeBatchBegin { n: 1 }));
        sink.emit(ev(
            1.0,
            EventKind::KernelBegin {
                launch: 1,
                grid: 1,
                block_dim: 1,
            },
        ));
        sink.emit(ev(
            5.0,
            EventKind::Crash {
                applied: 1,
                dropped: 2,
            },
        ));
        let data = Box::new(sink).finish().unwrap();
        assert_eq!(data.attribution.phase(Phase::Kernel).spans, 1);
        assert_eq!(data.attribution.phase(Phase::ServeBatch).spans, 1);
        assert!((data.attribution.phase(Phase::ServeBatch).span_ns - 5.0).abs() < 1e-9);
        // Post-crash carriers attribute to Other again.
        let mut sink = RingSink::new(4);
        sink.emit(ev(0.0, EventKind::ServeBatchBegin { n: 1 }));
        sink.emit(ev(
            1.0,
            EventKind::Crash {
                applied: 0,
                dropped: 0,
            },
        ));
        sink.emit(ev(
            2.0,
            EventKind::CpuPersistStore {
                offset: 0,
                bytes: 7,
            },
        ));
        let data = Box::new(sink).finish().unwrap();
        assert_eq!(data.attribution.phase(Phase::Other).bytes_persisted, 7);
    }

    #[test]
    fn normalization_strips_engine_category_only() {
        let data = TraceData {
            events: vec![
                ev(
                    0.0,
                    EventKind::KernelBegin {
                        launch: 1,
                        grid: 2,
                        block_dim: 4,
                    },
                ),
                ev(1.0, EventKind::EngineCommit { threads: 4 }),
                ev(2.0, EventKind::KernelEnd { launch: 1 }),
            ],
            dropped_events: 0,
            attribution: Attribution::default(),
        };
        let norm = data.normalized();
        assert_eq!(norm.len(), 2);
        assert!(norm.iter().all(|e| e.kind.cat() != "engine"));
    }

    #[test]
    fn chrome_export_is_one_event_per_line_and_tags_engine_cat() {
        let data = TraceData {
            events: vec![
                ev(
                    1000.0,
                    EventKind::KernelBegin {
                        launch: 1,
                        grid: 2,
                        block_dim: 4,
                    },
                ),
                ev(1500.0, EventKind::EngineCommit { threads: 4 }),
                ev(2000.0, EventKind::KernelEnd { launch: 1 }),
            ],
            dropped_events: 3,
            attribution: Attribution::default(),
        };
        let json = chrome_trace_json(&[("shard0".to_string(), &data)], 0);
        assert!(json.contains("\"schema\":\"gpm-trace-v1\""));
        assert!(json.contains("\"dropped_events\":3"));
        assert!(json.contains("\"ts\":1.000")); // 1000 ns -> 1.000 us
                                                // Exactly one line mentions the engine category, so shell-level
                                                // normalization (grep -v) removes exactly the EngineCommit event.
        let engine_lines: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"cat\":\"engine\""))
            .collect();
        assert_eq!(engine_lines.len(), 1);
        assert!(engine_lines[0].contains("\"threads\":4"));
        // Every traceEvent line is self-contained JSON-ish (starts with {).
        assert!(json
            .lines()
            .skip(1)
            .take_while(|l| *l != "],")
            .all(|l| l.starts_with('{')));
    }

    #[test]
    fn null_sink_returns_nothing() {
        let mut s = NullSink;
        s.emit(ev(0.0, EventKind::DeviceFence));
        assert!(Box::new(s).finish().is_none());
    }
}
