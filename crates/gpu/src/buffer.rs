//! Typed array views over simulated memory.
//!
//! Workload code indexes arrays of scalars far more often than raw bytes;
//! [`Buf<T>`] wraps a `(space, offset, len)` triple with element-typed
//! accessors for both kernels ([`Buf::ld`]/[`Buf::st`]) and the host
//! ([`Buf::read_host`]/[`Buf::write_host`]), with bounds checked at the
//! simulated-memory layer.

use std::marker::PhantomData;

use gpm_sim::{Addr, Machine, MemSpace, SimError, SimResult};

use crate::exec::ThreadCtx;

/// A scalar storable in simulated memory. Sealed: implemented for the
/// fixed-width primitives the engine's context supports.
pub trait Scalar: Copy + private::Sealed {
    /// Size in bytes.
    const BYTES: u64;
    /// Reads the scalar through a thread context.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    fn ld(ctx: &mut ThreadCtx<'_>, addr: Addr) -> SimResult<Self>;
    /// Writes the scalar through a thread context.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    fn st(ctx: &mut ThreadCtx<'_>, addr: Addr, v: Self) -> SimResult<()>;
    /// Encodes to little-endian bytes (host paths).
    fn to_le(self) -> Vec<u8>;
    /// Decodes from little-endian bytes.
    fn from_le(b: &[u8]) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

macro_rules! scalar {
    ($t:ty, $bytes:expr, $ld:ident, $st:ident) => {
        impl Scalar for $t {
            const BYTES: u64 = $bytes;
            fn ld(ctx: &mut ThreadCtx<'_>, addr: Addr) -> SimResult<Self> {
                ctx.$ld(addr)
            }
            fn st(ctx: &mut ThreadCtx<'_>, addr: Addr, v: Self) -> SimResult<()> {
                ctx.$st(addr, v)
            }
            fn to_le(self) -> Vec<u8> {
                self.to_le_bytes().to_vec()
            }
            fn from_le(b: &[u8]) -> Self {
                <$t>::from_le_bytes(b.try_into().expect("scalar width"))
            }
        }
    };
}

scalar!(u32, 4, ld_u32, st_u32);
scalar!(u64, 8, ld_u64, st_u64);
scalar!(f32, 4, ld_f32, st_f32);
scalar!(f64, 8, ld_f64, st_f64);

/// A typed array in one memory space.
///
/// # Examples
///
/// ```
/// use gpm_gpu::{launch, Buf, FnKernel, LaunchConfig, ThreadCtx};
/// use gpm_sim::{Machine, MemSpace};
///
/// let mut m = Machine::default();
/// let xs: Buf<u64> = Buf::alloc(&mut m, MemSpace::Pm, 256)?;
/// launch(&mut m, LaunchConfig::new(1, 256), &FnKernel(move |ctx: &mut ThreadCtx<'_>| {
///     let i = ctx.global_id();
///     xs.st(ctx, i, i * i)
/// }))?;
/// assert_eq!(xs.read_host(&m, 9)?, 81);
/// # Ok::<(), gpm_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Buf<T> {
    base: Addr,
    len: u64,
    _elem: PhantomData<T>,
}

// `derive(Clone, Copy)` would needlessly bound `T`.
impl<T> Clone for Buf<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Buf<T> {}

impl<T: Scalar> Buf<T> {
    /// Allocates an array of `len` elements in `space`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the space is exhausted.
    pub fn alloc(machine: &mut Machine, space: MemSpace, len: u64) -> SimResult<Buf<T>> {
        let bytes = len * T::BYTES;
        let offset = match space {
            MemSpace::Pm => machine.alloc_pm(bytes)?,
            MemSpace::Dram => machine.alloc_dram(bytes)?,
            MemSpace::Hbm => machine.alloc_hbm(bytes)?,
        };
        Ok(Buf {
            base: Addr { space, offset },
            len,
            _elem: PhantomData,
        })
    }

    /// Wraps an existing region (e.g. a `gpm_map`ped file).
    pub fn from_raw(base: Addr, len: u64) -> Buf<T> {
        Buf {
            base,
            len,
            _elem: PhantomData,
        }
    }

    /// Element count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Address of element `i`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] past the end.
    pub fn addr(&self, i: u64) -> SimResult<Addr> {
        if i >= self.len {
            return Err(SimError::Invalid("buffer index out of range"));
        }
        Ok(self.base.add(i * T::BYTES))
    }

    /// Kernel-side load of element `i`.
    ///
    /// # Errors
    ///
    /// Out-of-range indices and platform errors.
    pub fn ld(&self, ctx: &mut ThreadCtx<'_>, i: u64) -> SimResult<T> {
        T::ld(ctx, self.addr(i)?)
    }

    /// Kernel-side store of element `i`.
    ///
    /// # Errors
    ///
    /// Out-of-range indices and platform errors.
    pub fn st(&self, ctx: &mut ThreadCtx<'_>, i: u64, v: T) -> SimResult<()> {
        T::st(ctx, self.addr(i)?, v)
    }

    /// Host-side read of element `i` (coherent, untimed).
    ///
    /// # Errors
    ///
    /// Out-of-range indices and platform errors.
    pub fn read_host(&self, machine: &Machine, i: u64) -> SimResult<T> {
        let mut b = vec![0u8; T::BYTES as usize];
        machine.read(self.addr(i)?, &mut b)?;
        Ok(T::from_le(&b))
    }

    /// Host-side initialization of element `i` (durable for PM, untimed).
    ///
    /// # Errors
    ///
    /// Out-of-range indices and platform errors.
    pub fn write_host(&self, machine: &mut Machine, i: u64, v: T) -> SimResult<()> {
        machine.host_write(self.addr(i)?, &v.to_le())
    }

    /// Host-side bulk initialization from a slice (durable for PM, untimed).
    ///
    /// # Errors
    ///
    /// Fails when the slice exceeds the buffer, or on platform errors.
    pub fn fill_host(&self, machine: &mut Machine, values: &[T]) -> SimResult<()> {
        if values.len() as u64 > self.len {
            return Err(SimError::Invalid("slice longer than buffer"));
        }
        let mut bytes = Vec::with_capacity(values.len() * T::BYTES as usize);
        for v in values {
            bytes.extend_from_slice(&v.to_le());
        }
        machine.host_write(self.base, &bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{launch, FnKernel, LaunchConfig};

    #[test]
    fn typed_roundtrip_all_scalars() {
        let mut m = Machine::default();
        let a: Buf<u32> = Buf::alloc(&mut m, MemSpace::Hbm, 8).unwrap();
        let b: Buf<u64> = Buf::alloc(&mut m, MemSpace::Pm, 8).unwrap();
        let c: Buf<f32> = Buf::alloc(&mut m, MemSpace::Dram, 8).unwrap();
        let d: Buf<f64> = Buf::alloc(&mut m, MemSpace::Hbm, 8).unwrap();
        a.write_host(&mut m, 3, 7).unwrap();
        b.write_host(&mut m, 3, 1 << 40).unwrap();
        c.write_host(&mut m, 3, 2.5).unwrap();
        d.write_host(&mut m, 3, -9.25).unwrap();
        assert_eq!(a.read_host(&m, 3).unwrap(), 7);
        assert_eq!(b.read_host(&m, 3).unwrap(), 1 << 40);
        assert_eq!(c.read_host(&m, 3).unwrap(), 2.5);
        assert_eq!(d.read_host(&m, 3).unwrap(), -9.25);
    }

    #[test]
    fn kernel_access_through_buf() {
        let mut m = Machine::default();
        let xs: Buf<f32> = Buf::alloc(&mut m, MemSpace::Hbm, 64).unwrap();
        launch(
            &mut m,
            LaunchConfig::new(1, 64),
            &FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                xs.st(ctx, i, i as f32 * 0.5)
            }),
        )
        .unwrap();
        assert_eq!(xs.read_host(&m, 10).unwrap(), 5.0);
    }

    #[test]
    fn bounds_are_checked() {
        let mut m = Machine::default();
        let xs: Buf<u64> = Buf::alloc(&mut m, MemSpace::Hbm, 4).unwrap();
        assert!(xs.addr(4).is_err());
        assert!(xs.read_host(&m, 100).is_err());
        assert!(xs.fill_host(&mut m, &[0; 5]).is_err());
        assert_eq!(xs.len(), 4);
        assert!(!xs.is_empty());
    }

    #[test]
    fn fill_host_bulk() {
        let mut m = Machine::default();
        let xs: Buf<u32> = Buf::alloc(&mut m, MemSpace::Pm, 16).unwrap();
        xs.fill_host(&mut m, &(0..16).map(|i| i * 3).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(xs.read_host(&m, 5).unwrap(), 15);
        // PM-backed: survives a crash (host writes are durable setup).
        m.crash();
        assert_eq!(xs.read_host(&m, 15).unwrap(), 45);
    }

    #[test]
    fn from_raw_wraps_regions() {
        let mut m = Machine::default();
        let off = m.alloc_pm(64).unwrap();
        let xs: Buf<u64> = Buf::from_raw(Addr::pm(off), 8);
        xs.write_host(&mut m, 0, 42).unwrap();
        assert_eq!(m.read_u64(Addr::pm(off)).unwrap(), 42);
    }
}
