//! The kernel launcher: phase-by-phase, warp-by-warp execution with
//! hardware coalescing, scoped fences, and crash injection.
//!
//! Execution is deterministic, but models the GPU's concurrency: threads of
//! a warp execute in lockstep, so their same-program-point accesses to one
//! 128-byte line coalesce into a single PCIe transaction (§2), and a warp's
//! simultaneous fences form one fence event. Phase boundaries implement
//! `__syncthreads()`.
//!
//! ## Block-parallel execution
//!
//! CUDA threadblocks are independent between launch boundaries unless a
//! kernel deliberately communicates across blocks, so the engine can run
//! blocks on a pool of host threads without changing any observable result.
//! Each worker executes its blocks against a [`BlockStage`] — a copy-on-
//! write overlay over the frozen machine plus an ordered effect log — and
//! the main thread *commits the stages serially in block-id order*, calling
//! the very same machine operations sequential execution would, in the same
//! order. Counters, pending-line state, the pattern tracker, and simulated
//! time are therefore bit-identical in both modes (the golden-counter gate
//! runs in both). Divergence is impossible rather than unlikely: the only
//! thing a stage cannot reproduce is a *read* of a lower-numbered block's
//! same-launch write, and every base read is checked against earlier blocks'
//! write sets at commit — any hit abandons the stages (machine untouched)
//! and reruns the launch sequentially. Kernels annotated
//! [`KernelCapability::Communicating`], single-block grids, and crash-fuel
//! launches skip the parallel path up front; thread count comes from
//! [`LaunchConfig::engine_threads`], then `GPM_ENGINE_THREADS`, then the
//! host's available parallelism (`1` forces the sequential engine).
//!
//! ## Hot-path design
//!
//! Coalescing is the engine's innermost loop: every PM access of every
//! simulated thread flows through it. Instead of buffering an `Event` per
//! operation and grouping events into freshly-allocated `BTreeMap`s at warp
//! drain (one heap allocation per warp, a tree probe per event), the engine
//! merges accesses *as they are issued* into a [`WarpScratch`]: a reusable
//! table of per-program-point groups, indexed directly by the thread's dense
//! operation sequence number. Each group keeps its coalesced line extents in
//! a small sorted array. All storage is reused across warps, blocks, and
//! launches, so steady-state execution allocates nothing per warp and the
//! drain is a linear sweep. The observable outcome — transaction counts,
//! pattern-tracker order, fence events, simulated time — is identical to the
//! event-buffer design, as the golden-counter tests pin down.
//!
//! ## Vectorized lockstep execution
//!
//! On top of the per-lane walk sits a warp-granular fast path: kernels that
//! implement [`Kernel::run_warp`] process all 32 lanes of a warp as slices
//! through a [`WarpCtx`], so one vector store replaces 32 context-dispatch /
//! group-lookup round trips and lands in the machine through one batched
//! call ([`gpm_sim::Machine::gpu_store_pm_lanes`]). The engine only takes
//! this path when the launch's fuel gauge is inert and no trace sink is
//! installed — fuel accounting and per-lane trace events both need the
//! per-lane operation order — and a kernel declines per warp by returning
//! `Ok(false)`, falling back to 32 [`Kernel::run`] calls. Vector operations
//! account every counter exactly as the lockstep per-lane walk would (shared
//! operation sequence number, identical extent merging, identical drain), so
//! golden counters, simulated time, and normalized traces are unchanged; the
//! one documented exception is [`gpm_sim::Stats::bytes_persisted`]: the
//! per-lane walk runs lanes to completion one after another (lane-major), so
//! one lane's fence can drain a CPU line a later lane re-dirties and
//! re-drains, while the vector path's operation-major order — the
//! SIMT-faithful one — fences the whole warp at once and drains each line
//! once. Timing never consumes `bytes_persisted`, so simulated time is
//! unaffected.

use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;

use gpm_sim::pattern::PatternTracker;
use gpm_sim::staged::{BlockStage, LineKey};
use gpm_sim::{
    Addr, CrashPolicy, CrashReport, CrashSchedule, EventKind, Machine, MemSpace, Ns,
    PersistencyModel, SimError, SimResult, WriterId, GPU_LINE,
};

use crate::dim::{LaunchConfig, ThreadId, WARP_SIZE};
use crate::kernel::{Kernel, KernelCapability};
use crate::timing::KernelCosts;

/// Result of a completed kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Simulated elapsed time of the launch (also added to the machine
    /// clock).
    pub elapsed: Ns,
    /// Resource usage that produced `elapsed`.
    pub costs: KernelCosts,
    /// Host worker threads the engine actually used: the resolved thread
    /// count when the block-parallel path committed, `1` when the
    /// sequential path ran (including conflict / capability fallbacks).
    /// Purely diagnostic — simulated results never depend on it.
    pub threads_used: u32,
}

/// Why a launch did not complete.
#[derive(Debug)]
pub enum LaunchError {
    /// A functional error (out-of-bounds access, etc.).
    Sim(SimError),
    /// The injected crash fuel ran out: the machine has crashed (volatile
    /// state wiped, pending PM lines partially applied).
    Crashed(CrashReport),
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::Sim(e) => write!(f, "kernel fault: {e}"),
            LaunchError::Crashed(r) => write!(
                f,
                "machine crashed mid-kernel ({} pending lines reached media, {} lost)",
                r.lines_applied, r.lines_dropped
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<SimError> for LaunchError {
    fn from(e: SimError) -> LaunchError {
        LaunchError::Sim(e)
    }
}

/// Crash-fuel accounting for a launch (or a sequence of launches sharing
/// one budget). Every context operation (load, store, atomic, fence) burns
/// one unit; the gauge decides what that means:
///
/// * [`FuelGauge::Unlimited`] — no counting, no crash. The only mode
///   eligible for the block-parallel path (fuel draws from the global
///   operation order that only sequential execution defines).
/// * [`FuelGauge::Crash`] — after `remaining` ops the machine crashes;
///   `policy` picks the pending-line subset ([`Machine::crash_with_policy`])
///   or falls back to the machine RNG ([`Machine::crash`]).
/// * [`FuelGauge::Record`] — counts ops and notes every system fence and
///   launch completion as a [`CrashSchedule`] boundary: the discovery pass
///   of the crash-consistency campaign.
///
/// A gauge threaded through *identical* launch sequences makes the recorded
/// boundary fuels directly replayable as `Crash` budgets — the engine is
/// deterministic, so op N of the recording run is op N of the replay.
#[derive(Debug, Default)]
pub enum FuelGauge {
    /// No crash injection; ops are not counted.
    #[default]
    Unlimited,
    /// Crash when the budget is exhausted.
    Crash {
        /// Ops left before the crash fires.
        remaining: u64,
        /// Pending-line subset to apply at the crash; `None` = machine RNG.
        policy: Option<CrashPolicy>,
    },
    /// Count ops and record persist/launch boundaries.
    Record(CrashSchedule),
}

impl FuelGauge {
    /// A budget that crashes via the machine RNG (the legacy fuel path).
    pub fn crash(fuel: u64) -> FuelGauge {
        FuelGauge::Crash {
            remaining: fuel,
            policy: None,
        }
    }

    /// A budget that crashes with a deterministic pending-line subset.
    pub fn crash_with_policy(fuel: u64, policy: CrashPolicy) -> FuelGauge {
        FuelGauge::Crash {
            remaining: fuel,
            policy: Some(policy),
        }
    }

    /// A recording gauge with an empty schedule.
    pub fn record() -> FuelGauge {
        FuelGauge::Record(CrashSchedule::new())
    }

    /// Whether the gauge neither counts nor crashes (the parallel path's
    /// eligibility requirement).
    pub fn is_inert(&self) -> bool {
        matches!(self, FuelGauge::Unlimited)
    }

    /// The crash policy carried by a `Crash` gauge, if any.
    pub fn policy(&self) -> Option<CrashPolicy> {
        match self {
            FuelGauge::Crash { policy, .. } => *policy,
            _ => None,
        }
    }

    /// The recorded schedule of a `Record` gauge.
    pub fn schedule(&self) -> Option<&CrashSchedule> {
        match self {
            FuelGauge::Record(s) => Some(s),
            _ => None,
        }
    }

    /// Consumes the gauge, yielding the recorded schedule if recording.
    pub fn into_schedule(self) -> Option<CrashSchedule> {
        match self {
            FuelGauge::Record(s) => Some(s),
            _ => None,
        }
    }

    /// One context operation completes (or, with an exhausted budget, the
    /// crash fires instead).
    #[inline]
    fn burn(&mut self) -> SimResult<()> {
        match self {
            FuelGauge::Unlimited => Ok(()),
            FuelGauge::Crash { remaining, .. } => {
                if *remaining == 0 {
                    return Err(SimError::Crashed);
                }
                *remaining -= 1;
                Ok(())
            }
            FuelGauge::Record(s) => {
                s.count_op();
                Ok(())
            }
        }
    }

    /// Notes a persist/commit boundary (recording mode only).
    #[inline]
    fn note_boundary(&mut self) {
        if let FuelGauge::Record(s) = self {
            s.note_boundary();
        }
    }

    /// Whether a warp of `lanes` lanes whose per-lane fuel need is bounded
    /// by `bound` (the kernel's [`crate::Kernel::warp_fuel`] promise) may
    /// run vectorized under this gauge: the gauge must provably not expire
    /// mid-warp, and must not be enumerating per-op boundaries.
    #[inline]
    fn covers_warp(&self, bound: Option<u64>, lanes: u32) -> bool {
        match self {
            FuelGauge::Unlimited => true,
            FuelGauge::Crash { remaining, .. } => {
                bound.is_some_and(|b| *remaining >= b.saturating_mul(lanes as u64))
            }
            // Recording counts individual ops and boundary positions; the
            // schedule (and thus every enumerated crash case) must be
            // bit-identical to the per-lane walk, so never vectorize.
            FuelGauge::Record(_) => false,
        }
    }

    /// Burns one warp-vector operation: `lanes` fuel, all-or-nothing. Only
    /// reachable when [`FuelGauge::covers_warp`] admitted the warp, so the
    /// budget cannot hit zero mid-warp (debug builds assert the kernel's
    /// `warp_fuel` bound was honest; release builds saturate).
    #[inline]
    fn burn_lanes(&mut self, lanes: u32) {
        match self {
            FuelGauge::Unlimited => {}
            FuelGauge::Crash { remaining, .. } => {
                debug_assert!(
                    *remaining >= lanes as u64,
                    "warp_fuel under-estimated a kernel's per-lane operations"
                );
                *remaining = remaining.saturating_sub(lanes as u64);
            }
            FuelGauge::Record(_) => {
                debug_assert!(false, "recording gauges never take the vector path");
            }
        }
    }
}

/// A coalesced write extent within one 128-byte GPU line.
#[derive(Debug, Clone, Copy)]
struct WriteExtent {
    line: u64,
    start: u64,
    end: u64,
}

/// Accesses issued by the warp's lanes at one program point (one operation
/// sequence number). Lockstep lanes hit the same group, so their line-sharing
/// accesses merge here — this *is* the hardware coalescer.
#[derive(Debug, Default)]
struct SeqGroup {
    /// Write extents, kept sorted by line index (matches the former
    /// `BTreeMap` emission order bit for bit).
    write_lines: Vec<WriteExtent>,
    /// Distinct lines read at this program point.
    read_lines: Vec<u64>,
    sys_fence: bool,
    dev_fence: bool,
}

impl SeqGroup {
    fn clear(&mut self) {
        self.write_lines.clear();
        self.read_lines.clear();
        self.sys_fence = false;
        self.dev_fence = false;
    }

    fn record_write(&mut self, offset: u64, len: u64) {
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let line = cur / GPU_LINE;
            let ext_end = end.min((line + 1) * GPU_LINE);
            match self.write_lines.binary_search_by_key(&line, |e| e.line) {
                Ok(i) => {
                    let e = &mut self.write_lines[i];
                    e.start = e.start.min(cur);
                    e.end = e.end.max(ext_end);
                }
                Err(i) => {
                    self.write_lines.insert(
                        i,
                        WriteExtent {
                            line,
                            start: cur,
                            end: ext_end,
                        },
                    );
                }
            }
            cur = ext_end;
        }
    }

    fn record_read(&mut self, offset: u64, len: u64) {
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let line = cur / GPU_LINE;
            if !self.read_lines.contains(&line) {
                self.read_lines.push(line);
            }
            cur = (line + 1) * GPU_LINE;
        }
    }
}

/// Retained-group cap: a pathological warp (one thread issuing millions of
/// ops) can grow the group table arbitrarily; anything beyond this is
/// released at drain so the scratch footprint stays bounded.
const MAX_RETAINED_GROUPS: usize = 1 << 14;

/// Reusable per-warp coalescing state. Groups are dense in the operation
/// sequence number, so lookup is an array index, and a drained group's
/// buffers are kept (cleared) for the next warp — zero allocation per warp
/// in steady state.
#[derive(Debug, Default)]
struct WarpScratch {
    groups: Vec<SeqGroup>,
    used: usize,
}

impl WarpScratch {
    /// The group for operation sequence number `seq` (1-based: the first
    /// `burn` of a thread yields seq 1).
    fn group(&mut self, seq: u32) -> &mut SeqGroup {
        let idx = (seq - 1) as usize;
        if idx >= self.used {
            if self.groups.len() <= idx {
                self.groups.resize_with(idx + 1, SeqGroup::default);
            }
            self.used = idx + 1;
        }
        &mut self.groups[idx]
    }

    /// Emits the warp's coalesced transactions and fence events, then resets
    /// for the next warp. Groups are visited in program order and lines in
    /// ascending order, mirroring the former sorted-map drain exactly. A
    /// warp that staged nothing (all lanes idle or pure compute) returns
    /// without touching the group table.
    fn drain(&mut self, mem: &mut EngineMem<'_>, costs: &mut KernelCosts) {
        if self.used == 0 {
            return;
        }
        for g in &mut self.groups[..self.used] {
            for e in &g.write_lines {
                costs.pcie_write_txns += 1;
                mem.pm_txn(e.start, e.end - e.start);
            }
            costs.pcie_read_txns += g.read_lines.len() as u64;
            if g.sys_fence {
                costs.system_fence_events += 1;
                mem.pattern_barrier();
            }
            if g.dev_fence {
                costs.device_fence_events += 1;
                if mem.trace_enabled() {
                    mem.trace(EventKind::DeviceFence);
                }
            }
            g.clear();
        }
        self.used = 0;
        if self.groups.len() > MAX_RETAINED_GROUPS {
            self.groups.truncate(MAX_RETAINED_GROUPS);
            self.groups.shrink_to_fit();
        }
    }
}

/// The memory the engine runs a block against: the live machine (sequential
/// path) or a frozen base plus a block-local stage (parallel path). Each
/// operation's staged branch buffers exactly what its live branch applies,
/// so replaying a stage's effect log in block order reproduces the live
/// sequence bit for bit.
enum EngineMem<'a> {
    /// Mutate the machine directly.
    Live(&'a mut Machine),
    /// Buffer effects in a block-local stage against the frozen `base`.
    Staged {
        base: &'a Machine,
        stage: &'a mut BlockStage,
    },
}

impl EngineMem<'_> {
    /// The machine for read-only queries (config, persist mode).
    fn machine(&self) -> &Machine {
        match self {
            EngineMem::Live(m) => m,
            EngineMem::Staged { base, .. } => base,
        }
    }

    /// A GPU store to PM (`Machine::gpu_store_pm`).
    fn store_pm(&mut self, writer: WriterId, offset: u64, bytes: &[u8]) -> SimResult<()> {
        match self {
            EngineMem::Live(m) => m.gpu_store_pm(writer, offset, bytes),
            EngineMem::Staged { base, stage } => stage.store_pm(base, writer, offset, bytes),
        }
    }

    /// A store to a volatile space (`Machine::host_write`).
    fn store_vol(&mut self, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        match self {
            EngineMem::Live(m) => m.host_write(addr, bytes),
            EngineMem::Staged { base, stage } => stage.store_vol(base, addr, bytes),
        }
    }

    /// A GPU load from PM (`Machine::gpu_load_pm`, which also counts the
    /// bytes read).
    fn load_pm(&mut self, offset: u64, buf: &mut [u8]) -> SimResult<()> {
        match self {
            EngineMem::Live(m) => m.gpu_load_pm(offset, buf),
            EngineMem::Staged { base, stage } => {
                stage.read(base, Addr::pm(offset), buf)?;
                stage.note_pm_read(buf.len() as u64);
                Ok(())
            }
        }
    }

    /// An uncounted coherent read (`Machine::read` — volatile loads and the
    /// read half of fused atomics).
    fn read(&mut self, addr: Addr, buf: &mut [u8]) -> SimResult<()> {
        match self {
            EngineMem::Live(m) => m.read(addr, buf),
            EngineMem::Staged { base, stage } => stage.read(base, addr, buf),
        }
    }

    /// A system-scope fence (`Machine::gpu_system_fence`).
    fn fence_system(&mut self, writer: WriterId) {
        match self {
            EngineMem::Live(m) => {
                m.gpu_system_fence(writer);
            }
            EngineMem::Staged { stage, .. } => stage.fence_persist(writer),
        }
    }

    /// A synchronous drain fence (`Machine::gpu_sync_fence`): drains the
    /// writer's pending lines into media even under epoch persistency.
    fn fence_sync(&mut self, writer: WriterId) {
        match self {
            EngineMem::Live(m) => {
                m.gpu_sync_fence(writer);
            }
            EngineMem::Staged { stage, .. } => stage.fence_sync(writer),
        }
    }

    /// A warp's contiguous lockstep store, one batched machine call
    /// (`Machine::gpu_store_pm_lanes`): byte `j` belongs to writer
    /// `writer0 + j / lane_bytes`.
    fn store_pm_lanes(
        &mut self,
        writer0: WriterId,
        lane_bytes: u32,
        offset: u64,
        bytes: &[u8],
    ) -> SimResult<()> {
        match self {
            EngineMem::Live(m) => m.gpu_store_pm_lanes(writer0, lane_bytes, offset, bytes),
            EngineMem::Staged { base, stage } => {
                stage.store_pm_lanes(base, writer0, lane_bytes, offset, bytes)
            }
        }
    }

    /// A warp's lockstep system fences, one batched machine call
    /// (`Machine::gpu_system_fence_lanes`) for writers
    /// `writer0..writer0 + lanes`.
    fn fence_system_lanes(&mut self, writer0: WriterId, lanes: u32) {
        match self {
            EngineMem::Live(m) => {
                m.gpu_system_fence_lanes(writer0, lanes);
            }
            EngineMem::Staged { stage, .. } => stage.fence_persist_lanes(writer0, lanes),
        }
    }

    /// One coalesced PCIe write transaction's machine-side accounting
    /// (issued by the warp drain).
    fn pm_txn(&mut self, offset: u64, len: u64) {
        match self {
            EngineMem::Live(m) => m.gpu_pm_txn(offset, len),
            EngineMem::Staged { stage, .. } => stage.pm_txn(offset, len),
        }
    }

    /// Whether a trace sink is installed on the underlying machine.
    fn trace_enabled(&self) -> bool {
        self.machine().trace_enabled()
    }

    /// Emits (live) or stages (parallel) one trace event. Callers gate on
    /// [`EngineMem::trace_enabled`], which keeps both engines' staged state
    /// identical when tracing is off.
    fn trace(&mut self, kind: EventKind) {
        match self {
            EngineMem::Live(m) => m.trace(kind),
            EngineMem::Staged { stage, .. } => stage.trace(kind),
        }
    }

    /// A pattern-tracker barrier (issued by the warp drain for coalesced
    /// system fences).
    fn pattern_barrier(&mut self) {
        match self {
            EngineMem::Live(m) => m.gpu_pm_pattern.barrier(),
            EngineMem::Staged { stage, .. } => stage.pattern_barrier(),
        }
    }
}

/// Execution context handed to each thread, wrapping the machine with the
/// thread's identity and the warp's coalescing buffer.
pub struct ThreadCtx<'a> {
    mem: EngineMem<'a>,
    costs: &'a mut KernelCosts,
    scratch: &'a mut WarpScratch,
    gauge: &'a mut FuelGauge,
    launch: LaunchConfig,
    id: ThreadId,
    writer: WriterId,
    op_seq: u32,
}

impl fmt::Debug for ThreadCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("id", &self.id)
            .field("op_seq", &self.op_seq)
            .finish_non_exhaustive()
    }
}

impl ThreadCtx<'_> {
    fn burn(&mut self) -> SimResult<()> {
        self.gauge.burn()?;
        self.op_seq += 1;
        Ok(())
    }

    // ---- identity -----------------------------------------------------------

    /// Globally unique linear thread index (`blockIdx.x * blockDim.x +
    /// threadIdx.x`).
    pub fn global_id(&self) -> u64 {
        self.id.global(&self.launch)
    }

    /// Block index within the grid.
    pub fn block_id(&self) -> u32 {
        self.id.block
    }

    /// Thread index within the block.
    pub fn thread_in_block(&self) -> u32 {
        self.id.thread
    }

    /// Lane within the warp (0..32).
    pub fn lane(&self) -> u32 {
        self.id.lane()
    }

    /// Threads per block of this launch.
    pub fn block_dim(&self) -> u32 {
        self.launch.block
    }

    /// Blocks in this launch's grid.
    pub fn grid_dim(&self) -> u32 {
        self.launch.grid
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.launch.total_threads()
    }

    // ---- memory operations ---------------------------------------------------

    /// Stores raw bytes. PM stores travel over PCIe and coalesce per warp;
    /// they require a [`ThreadCtx::threadfence_system`] (with persistence
    /// available) to become durable.
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses and injected crashes surface as errors.
    pub fn st_bytes(&mut self, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        self.burn()?;
        match addr.space {
            MemSpace::Pm => {
                self.mem.store_pm(self.writer, addr.offset, bytes)?;
                self.costs.pm_write_bytes += bytes.len() as u64;
                self.scratch
                    .group(self.op_seq)
                    .record_write(addr.offset, bytes.len() as u64);
            }
            MemSpace::Hbm => {
                self.mem.store_vol(addr, bytes)?;
                self.costs.hbm_bytes += bytes.len() as u64;
            }
            MemSpace::Dram => {
                self.mem.store_vol(addr, bytes)?;
                self.costs.dram_bytes += bytes.len() as u64;
            }
        }
        Ok(())
    }

    /// Loads raw bytes with coherent visibility.
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses and injected crashes surface as errors.
    pub fn ld_bytes(&mut self, addr: Addr, buf: &mut [u8]) -> SimResult<()> {
        self.burn()?;
        match addr.space {
            MemSpace::Pm => {
                self.mem.load_pm(addr.offset, buf)?;
                self.costs.pm_read_bytes += buf.len() as u64;
                self.scratch
                    .group(self.op_seq)
                    .record_read(addr.offset, buf.len() as u64);
            }
            MemSpace::Hbm => {
                self.mem.read(addr, buf)?;
                self.costs.hbm_bytes += buf.len() as u64;
            }
            MemSpace::Dram => {
                self.mem.read(addr, buf)?;
                self.costs.dram_bytes += buf.len() as u64;
            }
        }
        Ok(())
    }

    /// Stores a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::st_bytes`].
    pub fn st_u32(&mut self, addr: Addr, v: u32) -> SimResult<()> {
        self.st_bytes(addr, &v.to_le_bytes())
    }

    /// Loads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::ld_bytes`].
    pub fn ld_u32(&mut self, addr: Addr) -> SimResult<u32> {
        let mut b = [0u8; 4];
        self.ld_bytes(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Stores a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::st_bytes`].
    pub fn st_u64(&mut self, addr: Addr, v: u64) -> SimResult<()> {
        self.st_bytes(addr, &v.to_le_bytes())
    }

    /// Loads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::ld_bytes`].
    pub fn ld_u64(&mut self, addr: Addr) -> SimResult<u64> {
        let mut b = [0u8; 8];
        self.ld_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Stores a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::st_bytes`].
    pub fn st_f32(&mut self, addr: Addr, v: f32) -> SimResult<()> {
        self.st_bytes(addr, &v.to_le_bytes())
    }

    /// Loads a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::ld_bytes`].
    pub fn ld_f32(&mut self, addr: Addr) -> SimResult<f32> {
        let mut b = [0u8; 4];
        self.ld_bytes(addr, &mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    /// Stores a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::st_bytes`].
    pub fn st_f64(&mut self, addr: Addr, v: f64) -> SimResult<()> {
        self.st_bytes(addr, &v.to_le_bytes())
    }

    /// Loads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::ld_bytes`].
    pub fn ld_f64(&mut self, addr: Addr) -> SimResult<f64> {
        let mut b = [0u8; 8];
        self.ld_bytes(addr, &mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    /// Atomic fetch-add on a `u32` (e.g. frontier queue tails). Returns the
    /// previous value.
    ///
    /// The whole read-modify-write is one fused operation: one unit of crash
    /// fuel, and — for PM-resident targets — one non-posted PCIe transaction,
    /// not a separate load plus store that would double-count PCIe traffic
    /// (the old value returns in the same completion the RMW request elicits).
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses and injected crashes surface as errors.
    pub fn atomic_add_u32(&mut self, addr: Addr, v: u32) -> SimResult<u32> {
        self.burn()?;
        let mut b = [0u8; 4];
        self.mem.read(addr, &mut b)?;
        let old = u32::from_le_bytes(b);
        let new = old.wrapping_add(v).to_le_bytes();
        match addr.space {
            MemSpace::Pm => {
                self.mem.store_pm(self.writer, addr.offset, &new)?;
                self.costs.pm_write_bytes += 4;
                self.scratch.group(self.op_seq).record_write(addr.offset, 4);
            }
            MemSpace::Hbm => {
                self.mem.store_vol(addr, &new)?;
                self.costs.hbm_bytes += 8;
            }
            MemSpace::Dram => {
                self.mem.store_vol(addr, &new)?;
                self.costs.dram_bytes += 8;
            }
        }
        Ok(old)
    }

    // ---- fences & modelling hooks ---------------------------------------------

    /// `__threadfence_system()`: orders prior writes with respect to the
    /// whole system. Under GPM's DDIO-disabled window (or eADR) this is the
    /// persist operation; with DDIO enabled it provides visibility only.
    ///
    /// # Errors
    ///
    /// Injected crashes surface as [`SimError::Crashed`].
    pub fn threadfence_system(&mut self) -> SimResult<()> {
        self.burn()?;
        self.mem.fence_system(self.writer);
        self.scratch.group(self.op_seq).sys_fence = true;
        // A system fence is where durable state advances: the crash
        // campaign's discovery pass notes the fuel consumed so far as an
        // interesting crash point.
        self.gauge.note_boundary();
        Ok(())
    }

    /// A synchronous drain fence: like [`ThreadCtx::threadfence_system`] but
    /// drains this writer's pending lines into media even under
    /// [`gpm_sim::PersistencyModel::Epoch`] (where the ordinary system fence
    /// only closes lines into the open epoch). The detectable-op layer uses
    /// this between publishing an operation's record and marking its
    /// descriptor: without the drain, a crash after the descriptor mark could
    /// drop the record while keeping the mark, breaking exactly-once
    /// recovery. Counts as one operation of crash fuel and one fence
    /// boundary, exactly like the plain system fence.
    ///
    /// # Errors
    ///
    /// Injected crashes surface as [`SimError::Crashed`].
    pub fn threadfence_system_sync(&mut self) -> SimResult<()> {
        self.burn()?;
        self.mem.fence_sync(self.writer);
        self.scratch.group(self.op_seq).sys_fence = true;
        self.gauge.note_boundary();
        Ok(())
    }

    /// `__threadfence()`: device-scope ordering (visibility to other blocks).
    ///
    /// # Errors
    ///
    /// Injected crashes surface as [`SimError::Crashed`].
    pub fn threadfence(&mut self) -> SimResult<()> {
        self.burn()?;
        self.scratch.group(self.op_seq).dev_fence = true;
        Ok(())
    }

    /// Declares `ns` of pure compute by this thread (hidden by parallelism).
    pub fn compute(&mut self, ns: Ns) {
        self.costs.compute += ns;
    }

    /// Declares serialized work behind contention key `key` (e.g. a lock on
    /// a log partition): chains on the same key cannot overlap.
    pub fn serialize(&mut self, key: u64, t: Ns) {
        self.costs.add_serial(key, t);
    }

    /// Whether a system fence currently guarantees durability (DDIO disabled
    /// or eADR) — what `gpm_persist` relies on.
    pub fn persist_guaranteed(&self) -> bool {
        self.mem.machine().gpu_persist_guaranteed()
    }

    /// Read-only access to platform configuration.
    pub fn config(&self) -> &gpm_sim::MachineConfig {
        &self.mem.machine().cfg
    }

    /// Emits a structured trace event at the thread's current machine state
    /// (no-op unless a sink is installed). Library layers running inside a
    /// kernel — log appends, checkpoint phases — mark themselves with this;
    /// under the block-parallel engine the event is staged with the block's
    /// other effects and replayed in block order, so traces stay identical
    /// across engine configurations.
    pub fn trace_marker(&mut self, kind: EventKind) {
        if self.mem.trace_enabled() {
            self.mem.trace(kind);
        }
    }
}

/// Largest vector operation: a full warp of 8-byte lanes.
const WARP_BYTES: usize = (WARP_SIZE as usize) * 8;

/// Execution context for one warp executing a phase in lockstep — the
/// vectorized counterpart of [`ThreadCtx`], handed to
/// [`Kernel::run_warp`].
///
/// Every vector operation is the lockstep-simultaneous issue of one
/// operation by each active lane: lane `i` (0-based within the warp)
/// accesses `addr + i * stride` and owns element `i` of the value slice. One
/// vector operation advances the warp's shared operation sequence number
/// once, so its accesses coalesce exactly as 32 per-lane operations at the
/// same program point would, and all cost, fuel-boundary, and
/// pattern-tracker accounting is identical to the per-lane walk.
pub struct WarpCtx<'a> {
    mem: EngineMem<'a>,
    costs: &'a mut KernelCosts,
    scratch: &'a mut WarpScratch,
    gauge: &'a mut FuelGauge,
    launch: LaunchConfig,
    block: u32,
    warp: u32,
    lanes: u32,
    writer0: WriterId,
    op_seq: u32,
}

impl fmt::Debug for WarpCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WarpCtx")
            .field("block", &self.block)
            .field("warp", &self.warp)
            .field("lanes", &self.lanes)
            .field("op_seq", &self.op_seq)
            .finish_non_exhaustive()
    }
}

impl WarpCtx<'_> {
    // ---- identity -----------------------------------------------------------

    /// Active lanes in this warp (32, or fewer for the tail warp of a block
    /// whose dimension is not a multiple of 32).
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Global linear thread index of lane 0; lane `i` is
    /// `first_global_id() + i`.
    pub fn first_global_id(&self) -> u64 {
        self.block as u64 * self.launch.block as u64 + (self.warp * WARP_SIZE) as u64
    }

    /// Block index within the grid.
    pub fn block_id(&self) -> u32 {
        self.block
    }

    /// Warp index within the block.
    pub fn warp_in_block(&self) -> u32 {
        self.warp
    }

    /// Threads per block of this launch.
    pub fn block_dim(&self) -> u32 {
        self.launch.block
    }

    /// Blocks in this launch's grid.
    pub fn grid_dim(&self) -> u32 {
        self.launch.grid
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.launch.total_threads()
    }

    /// Whether a system fence currently guarantees durability (DDIO disabled
    /// or eADR) — what `gpm_persist` relies on.
    pub fn persist_guaranteed(&self) -> bool {
        self.mem.machine().gpu_persist_guaranteed()
    }

    /// Read-only access to platform configuration.
    pub fn config(&self) -> &gpm_sim::MachineConfig {
        &self.mem.machine().cfg
    }

    // ---- vector memory operations -------------------------------------------

    /// One lockstep store of `N`-byte values: lane `i` stores `get(i)` at
    /// `addr + i * stride`. Contiguous PM stores (`stride == N`) take the
    /// batched single-call path; everything else issues per lane (same
    /// accounting either way).
    fn st_lanes<const N: usize>(
        &mut self,
        addr: Addr,
        stride: u64,
        get: impl Fn(usize) -> [u8; N],
    ) -> SimResult<()> {
        self.op_seq += 1;
        self.gauge.burn_lanes(self.lanes);
        let lanes = self.lanes as usize;
        let total = (lanes * N) as u64;
        match addr.space {
            MemSpace::Pm => {
                if stride == N as u64 {
                    let mut buf = [0u8; WARP_BYTES];
                    for i in 0..lanes {
                        buf[i * N..(i + 1) * N].copy_from_slice(&get(i));
                    }
                    self.mem.store_pm_lanes(
                        self.writer0,
                        N as u32,
                        addr.offset,
                        &buf[..lanes * N],
                    )?;
                    self.scratch
                        .group(self.op_seq)
                        .record_write(addr.offset, total);
                } else {
                    for i in 0..lanes {
                        let off = addr.offset + i as u64 * stride;
                        self.mem
                            .store_pm(self.writer0 + i as WriterId, off, &get(i))?;
                        self.scratch.group(self.op_seq).record_write(off, N as u64);
                    }
                }
                self.costs.pm_write_bytes += total;
            }
            MemSpace::Hbm | MemSpace::Dram => {
                if stride == N as u64 {
                    // Contiguous volatile span: one memory call. The
                    // per-call `host_write` has no counters, so batching is
                    // invisible to stats; byte totals are added below
                    // exactly as the per-lane walk sums them.
                    let mut buf = [0u8; WARP_BYTES];
                    for i in 0..lanes {
                        buf[i * N..(i + 1) * N].copy_from_slice(&get(i));
                    }
                    self.mem.store_vol(addr, &buf[..lanes * N])?;
                } else {
                    for i in 0..lanes {
                        let a = Addr {
                            space: addr.space,
                            offset: addr.offset + i as u64 * stride,
                        };
                        self.mem.store_vol(a, &get(i))?;
                    }
                }
                match addr.space {
                    MemSpace::Hbm => self.costs.hbm_bytes += total,
                    _ => self.costs.dram_bytes += total,
                }
            }
        }
        Ok(())
    }

    /// One lockstep load of `N`-byte values: lane `i` loads from
    /// `addr + i * stride` into `put(i, ..)`. Contiguous PM loads read the
    /// whole span in one call.
    fn ld_lanes<const N: usize>(
        &mut self,
        addr: Addr,
        stride: u64,
        mut put: impl FnMut(usize, [u8; N]),
    ) -> SimResult<()> {
        self.op_seq += 1;
        self.gauge.burn_lanes(self.lanes);
        let lanes = self.lanes as usize;
        let total = (lanes * N) as u64;
        match addr.space {
            MemSpace::Pm => {
                if stride == N as u64 {
                    let mut buf = [0u8; WARP_BYTES];
                    self.mem.load_pm(addr.offset, &mut buf[..lanes * N])?;
                    for i in 0..lanes {
                        put(i, buf[i * N..(i + 1) * N].try_into().unwrap());
                    }
                    self.scratch
                        .group(self.op_seq)
                        .record_read(addr.offset, total);
                } else {
                    for i in 0..lanes {
                        let off = addr.offset + i as u64 * stride;
                        let mut b = [0u8; N];
                        self.mem.load_pm(off, &mut b)?;
                        put(i, b);
                        self.scratch.group(self.op_seq).record_read(off, N as u64);
                    }
                }
                self.costs.pm_read_bytes += total;
            }
            MemSpace::Hbm | MemSpace::Dram => {
                if stride == N as u64 {
                    let mut buf = [0u8; WARP_BYTES];
                    self.mem.read(addr, &mut buf[..lanes * N])?;
                    for i in 0..lanes {
                        put(i, buf[i * N..(i + 1) * N].try_into().unwrap());
                    }
                } else {
                    for i in 0..lanes {
                        let a = Addr {
                            space: addr.space,
                            offset: addr.offset + i as u64 * stride,
                        };
                        let mut b = [0u8; N];
                        self.mem.read(a, &mut b)?;
                        put(i, b);
                    }
                }
                match addr.space {
                    MemSpace::Hbm => self.costs.hbm_bytes += total,
                    _ => self.costs.dram_bytes += total,
                }
            }
        }
        Ok(())
    }

    /// Lockstep store of little-endian `u64`s: lane `i` stores `vals[i]` at
    /// `addr + i * stride`.
    ///
    /// # Panics
    ///
    /// Panics unless `vals.len()` equals [`WarpCtx::lanes`].
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses surface as errors (see [`ThreadCtx::st_bytes`]).
    pub fn st_u64_lanes(&mut self, addr: Addr, stride: u64, vals: &[u64]) -> SimResult<()> {
        assert_eq!(vals.len(), self.lanes as usize, "one value per active lane");
        self.st_lanes(addr, stride, |i| vals[i].to_le_bytes())
    }

    /// Lockstep store of little-endian `u32`s: lane `i` stores `vals[i]` at
    /// `addr + i * stride`.
    ///
    /// # Panics
    ///
    /// Panics unless `vals.len()` equals [`WarpCtx::lanes`].
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses surface as errors (see [`ThreadCtx::st_bytes`]).
    pub fn st_u32_lanes(&mut self, addr: Addr, stride: u64, vals: &[u32]) -> SimResult<()> {
        assert_eq!(vals.len(), self.lanes as usize, "one value per active lane");
        self.st_lanes(addr, stride, |i| vals[i].to_le_bytes())
    }

    /// Lockstep load of little-endian `u64`s: lane `i` loads
    /// `addr + i * stride` into `out[i]`.
    ///
    /// # Panics
    ///
    /// Panics unless `out.len()` equals [`WarpCtx::lanes`].
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses surface as errors (see [`ThreadCtx::ld_bytes`]).
    pub fn ld_u64_lanes(&mut self, addr: Addr, stride: u64, out: &mut [u64]) -> SimResult<()> {
        assert_eq!(out.len(), self.lanes as usize, "one slot per active lane");
        self.ld_lanes(addr, stride, |i, b| out[i] = u64::from_le_bytes(b))
    }

    /// Lockstep load of little-endian `u32`s: lane `i` loads
    /// `addr + i * stride` into `out[i]`.
    ///
    /// # Panics
    ///
    /// Panics unless `out.len()` equals [`WarpCtx::lanes`].
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses surface as errors (see [`ThreadCtx::ld_bytes`]).
    pub fn ld_u32_lanes(&mut self, addr: Addr, stride: u64, out: &mut [u32]) -> SimResult<()> {
        assert_eq!(out.len(), self.lanes as usize, "one slot per active lane");
        self.ld_lanes(addr, stride, |i, b| out[i] = u32::from_le_bytes(b))
    }

    /// Lockstep store of little-endian `f32`s: lane `i` stores `vals[i]` at
    /// `addr + i * stride`.
    ///
    /// # Panics
    ///
    /// Panics unless `vals.len()` equals [`WarpCtx::lanes`].
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses surface as errors (see [`ThreadCtx::st_bytes`]).
    pub fn st_f32_lanes(&mut self, addr: Addr, stride: u64, vals: &[f32]) -> SimResult<()> {
        assert_eq!(vals.len(), self.lanes as usize, "one value per active lane");
        self.st_lanes(addr, stride, |i| vals[i].to_le_bytes())
    }

    /// Lockstep load of little-endian `f32`s: lane `i` loads
    /// `addr + i * stride` into `out[i]`.
    ///
    /// # Panics
    ///
    /// Panics unless `out.len()` equals [`WarpCtx::lanes`].
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses surface as errors (see [`ThreadCtx::ld_bytes`]).
    pub fn ld_f32_lanes(&mut self, addr: Addr, stride: u64, out: &mut [f32]) -> SimResult<()> {
        assert_eq!(out.len(), self.lanes as usize, "one slot per active lane");
        self.ld_lanes(addr, stride, |i, b| out[i] = f32::from_le_bytes(b))
    }

    /// Lockstep store of byte spans: lane `i` stores
    /// `data[i * lane_bytes ..][.. lane_bytes]` at `addr + i * stride` — the
    /// vector form of [`ThreadCtx::st_bytes`] for bulk movers (checkpoint
    /// chunks, table rows). A contiguous span (`stride == lane_bytes`) is
    /// issued as a single call; counters are identical either way.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len()` equals `lanes × lane_bytes` with
    /// `lane_bytes > 0`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses surface as errors (see [`ThreadCtx::st_bytes`]).
    pub fn st_bytes_lanes(
        &mut self,
        addr: Addr,
        stride: u64,
        lane_bytes: usize,
        data: &[u8],
    ) -> SimResult<()> {
        let lanes = self.lanes as usize;
        assert!(lane_bytes > 0, "lane span must be non-empty");
        assert_eq!(data.len(), lanes * lane_bytes, "one span per active lane");
        self.op_seq += 1;
        self.gauge.burn_lanes(self.lanes);
        let total = data.len() as u64;
        match addr.space {
            MemSpace::Pm => {
                if stride == lane_bytes as u64 {
                    self.mem
                        .store_pm_lanes(self.writer0, lane_bytes as u32, addr.offset, data)?;
                    self.scratch
                        .group(self.op_seq)
                        .record_write(addr.offset, total);
                } else {
                    for i in 0..lanes {
                        let off = addr.offset + i as u64 * stride;
                        let chunk = &data[i * lane_bytes..(i + 1) * lane_bytes];
                        self.mem
                            .store_pm(self.writer0 + i as WriterId, off, chunk)?;
                        self.scratch
                            .group(self.op_seq)
                            .record_write(off, lane_bytes as u64);
                    }
                }
                self.costs.pm_write_bytes += total;
            }
            MemSpace::Hbm | MemSpace::Dram => {
                if stride == lane_bytes as u64 {
                    self.mem.store_vol(addr, data)?;
                } else {
                    for i in 0..lanes {
                        let a = Addr {
                            space: addr.space,
                            offset: addr.offset + i as u64 * stride,
                        };
                        self.mem
                            .store_vol(a, &data[i * lane_bytes..(i + 1) * lane_bytes])?;
                    }
                }
                match addr.space {
                    MemSpace::Hbm => self.costs.hbm_bytes += total,
                    _ => self.costs.dram_bytes += total,
                }
            }
        }
        Ok(())
    }

    /// Lockstep load of byte spans: lane `i` loads `addr + i * stride` into
    /// `out[i * lane_bytes ..][.. lane_bytes]` — the vector form of
    /// [`ThreadCtx::ld_bytes`] for bulk movers.
    ///
    /// # Panics
    ///
    /// Panics unless `out.len()` equals `lanes × lane_bytes` with
    /// `lane_bytes > 0`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses surface as errors (see [`ThreadCtx::ld_bytes`]).
    pub fn ld_bytes_lanes(
        &mut self,
        addr: Addr,
        stride: u64,
        lane_bytes: usize,
        out: &mut [u8],
    ) -> SimResult<()> {
        let lanes = self.lanes as usize;
        assert!(lane_bytes > 0, "lane span must be non-empty");
        assert_eq!(out.len(), lanes * lane_bytes, "one span per active lane");
        self.op_seq += 1;
        self.gauge.burn_lanes(self.lanes);
        let total = out.len() as u64;
        match addr.space {
            MemSpace::Pm => {
                if stride == lane_bytes as u64 {
                    self.mem.load_pm(addr.offset, out)?;
                    self.scratch
                        .group(self.op_seq)
                        .record_read(addr.offset, total);
                } else {
                    for i in 0..lanes {
                        let off = addr.offset + i as u64 * stride;
                        self.mem
                            .load_pm(off, &mut out[i * lane_bytes..(i + 1) * lane_bytes])?;
                        self.scratch
                            .group(self.op_seq)
                            .record_read(off, lane_bytes as u64);
                    }
                }
                self.costs.pm_read_bytes += total;
            }
            MemSpace::Hbm | MemSpace::Dram => {
                if stride == lane_bytes as u64 {
                    self.mem.read(addr, out)?;
                } else {
                    for i in 0..lanes {
                        let a = Addr {
                            space: addr.space,
                            offset: addr.offset + i as u64 * stride,
                        };
                        self.mem
                            .read(a, &mut out[i * lane_bytes..(i + 1) * lane_bytes])?;
                    }
                }
                match addr.space {
                    MemSpace::Hbm => self.costs.hbm_bytes += total,
                    _ => self.costs.dram_bytes += total,
                }
            }
        }
        Ok(())
    }

    // ---- fences & modelling hooks ---------------------------------------------

    /// `__threadfence_system()` by every active lane simultaneously — the
    /// warp-coalesced persist operation. One fence event, like 32 lockstep
    /// per-lane fences.
    pub fn threadfence_system(&mut self) {
        self.op_seq += 1;
        self.gauge.burn_lanes(self.lanes);
        self.mem.fence_system_lanes(self.writer0, self.lanes);
        self.scratch.group(self.op_seq).sys_fence = true;
    }

    /// `__threadfence()` by every active lane simultaneously (device-scope
    /// ordering).
    pub fn threadfence(&mut self) {
        self.op_seq += 1;
        self.gauge.burn_lanes(self.lanes);
        self.scratch.group(self.op_seq).dev_fence = true;
    }

    /// Declares `ns` of pure compute by *each* active lane. Summed with one
    /// addition per lane so the floating-point total matches the per-lane
    /// walk bit for bit.
    pub fn compute(&mut self, ns: Ns) {
        for _ in 0..self.lanes {
            self.costs.compute += ns;
        }
    }

    /// Declares serialized work behind contention key `key` by each active
    /// lane (one addition per lane, like [`WarpCtx::compute`]).
    pub fn serialize(&mut self, key: u64, t: Ns) {
        for _ in 0..self.lanes {
            self.costs.add_serial(key, t);
        }
    }
}

/// Launches `kernel` over `cfg`, returning its report. The machine clock
/// advances by the kernel's elapsed time.
///
/// # Errors
///
/// Returns any functional error a thread hit (e.g. out-of-bounds).
pub fn launch<K: Kernel + Sync>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
) -> SimResult<KernelReport> {
    match launch_inner(machine, cfg, kernel, &mut FuelGauge::Unlimited) {
        Ok(r) => Ok(r),
        Err(LaunchError::Sim(e)) => Err(e),
        Err(LaunchError::Crashed(_)) => unreachable!("no fuel, no crash"),
    }
}

/// Launches `kernel` with crash injection: after `fuel` context operations
/// across all threads, the machine crashes (volatile state wiped, pending PM
/// lines partially applied) and [`LaunchError::Crashed`] is returned.
///
/// # Errors
///
/// [`LaunchError::Crashed`] on fuel exhaustion; [`LaunchError::Sim`] on
/// functional errors.
pub fn launch_with_fuel<K: Kernel + Sync>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
    fuel: u64,
) -> Result<KernelReport, LaunchError> {
    launch_inner(machine, cfg, kernel, &mut FuelGauge::crash(fuel))
}

/// Like [`launch_with_fuel`], but draws from (and writes back to) a shared
/// [`FuelGauge`], so a sequence of launches can share one crash budget —
/// or one recording schedule. [`FuelGauge::Unlimited`] means no injection.
///
/// # Errors
///
/// Same as [`launch_with_fuel`].
pub fn launch_with_gauge<K: Kernel + Sync>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
    gauge: &mut FuelGauge,
) -> Result<KernelReport, LaunchError> {
    launch_inner(machine, cfg, kernel, gauge)
}

/// Host worker threads for a launch: the `LaunchConfig` override, else the
/// `GPM_ENGINE_THREADS` environment variable, else the host's available
/// parallelism.
fn resolve_engine_threads(cfg: &LaunchConfig) -> u32 {
    if let Some(t) = cfg.engine_threads {
        return t.max(1);
    }
    if let Some(t) = std::env::var("GPM_ENGINE_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
    {
        if t >= 1 {
            return t;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
}

/// The host worker-thread count a launch with `cfg` would use, after
/// applying the [`LaunchConfig::engine_threads`] override, the
/// `GPM_ENGINE_THREADS` environment variable, and the host's available
/// parallelism — what [`KernelReport::threads_used`] reports when the
/// block-parallel path commits. Exposed for harnesses that record the
/// engine configuration alongside results.
pub fn resolved_engine_threads(cfg: &LaunchConfig) -> u32 {
    resolve_engine_threads(cfg)
}

/// Process-wide default persistency model: `GPM_PERSISTENCY=epoch` (case-
/// insensitive) selects [`PersistencyModel::Epoch`]; anything else — or the
/// variable unset — is [`PersistencyModel::Strict`]. Cached on first read.
static ENV_MODEL: OnceLock<PersistencyModel> = OnceLock::new();

fn env_persistency() -> PersistencyModel {
    *ENV_MODEL.get_or_init(|| match std::env::var("GPM_PERSISTENCY") {
        Ok(s) if s.trim().eq_ignore_ascii_case("epoch") => PersistencyModel::Epoch,
        _ => PersistencyModel::Strict,
    })
}

/// Pin the process-wide default persistency model before the first launch
/// resolves `GPM_PERSISTENCY`. Returns `false` (and changes nothing) when the
/// default has already been resolved or pinned. Per-launch
/// [`LaunchConfig::persistency`] overrides still apply. The crash-consistency
/// campaign uses this: its recovery oracles verify the strict durability
/// contract, which the epoch model deliberately weakens, so the campaign pins
/// [`PersistencyModel::Strict`] instead of letting the env knob silently
/// invalidate its verdicts.
pub fn pin_default_persistency(model: PersistencyModel) -> bool {
    ENV_MODEL.set(model).is_ok()
}

/// The persistency model a launch with `cfg` would run under, after applying
/// the [`LaunchConfig::persistency`] override and the `GPM_PERSISTENCY`
/// environment variable. Exposed for harnesses that record the engine
/// configuration alongside results.
pub fn resolved_persistency(cfg: &LaunchConfig) -> PersistencyModel {
    cfg.persistency.unwrap_or_else(env_persistency)
}

fn launch_inner<K: Kernel + Sync>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
    gauge: &mut FuelGauge,
) -> Result<KernelReport, LaunchError> {
    machine.stats.kernel_launches += 1;
    let launch_ord = machine.stats.kernel_launches;
    if machine.trace_enabled() {
        machine.trace(EventKind::KernelBegin {
            launch: launch_ord,
            grid: cfg.grid,
            block_dim: cfg.block,
        });
    }
    // The model is machine state for the duration of the launch: fences
    // consult it ([`Machine::gpu_system_fence`]), and the engines read it
    // back for the timing model.
    let model = resolved_persistency(&cfg);
    machine.set_persistency(model);
    let threads = resolve_engine_threads(&cfg);
    // The parallel path needs independent blocks (capability), more than
    // one block to spread, and an inert gauge (fuel and schedule recording
    // draw from a global operation order that only sequential execution
    // defines).
    let result = if threads > 1
        && cfg.grid > 1
        && gauge.is_inert()
        && kernel.capability() == KernelCapability::BlockParallel
    {
        match launch_parallel(machine, cfg, kernel, threads) {
            Some(report) => Ok(report),
            // A worker erred or a cross-block conflict surfaced: the machine
            // is untouched, so the sequential engine reruns from the same
            // state and produces the canonical outcome (including the
            // canonical error).
            None => launch_sequential(machine, cfg, kernel, gauge),
        }
    } else {
        launch_sequential(machine, cfg, kernel, gauge)
    };
    let report = match result {
        Ok(report) => report,
        Err(LaunchError::Sim(e)) => {
            if machine.trace_enabled() {
                machine.trace(EventKind::KernelEnd { launch: launch_ord });
            }
            return Err(LaunchError::Sim(e));
        }
        // A mid-kernel crash already closed its spans (the sequential
        // engine emits BlockCommit + KernelEnd before wiping state, and
        // the Crash event cuts anything still open in the sink). Closed
        // epoch lines stay pending: the crash resolves their fate, which is
        // exactly the crash-vulnerability window epoch persistency buys its
        // cheap fences with.
        Err(e) => return Err(e),
    };
    // Kernel completion is the epoch boundary: drain every line the
    // launch's fences closed. (Error paths skip the drain — an epoch is
    // only durable once its kernel completes.)
    if model == PersistencyModel::Epoch {
        machine.epoch_drain();
    }
    if machine.trace_enabled() {
        machine.trace(EventKind::KernelEnd { launch: launch_ord });
        machine.trace(EventKind::EngineCommit {
            threads: report.threads_used,
        });
    }
    // Launch completion is a commit boundary too: host-side work (log
    // clears, flag flips) between launches lands right after it, and a
    // crash budget equal to this op count fires at the *next* gauged
    // launch's first op — i.e. after that host work took effect.
    gauge.note_boundary();
    Ok(report)
}

/// The legacy engine: blocks run in order against the live machine. Costs
/// are still accumulated per block and merged in block order so
/// floating-point sums associate exactly as the parallel path's commit does.
fn launch_sequential<K: Kernel>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
    gauge: &mut FuelGauge,
) -> Result<KernelReport, LaunchError> {
    let pattern_before = machine.gpu_pm_pattern.clone();
    let launch_ord = machine.stats.kernel_launches;
    let mut total = KernelCosts::default();
    let mut scratch = WarpScratch::default();
    let mut states: Vec<K::State> = Vec::new();
    let mut shared = K::Shared::default();
    let phases = kernel.phases();
    // Per-lane trace events (SystemFence, EadrPersist) require the per-lane
    // operation order, so an installed sink forces the per-lane walk
    // launch-wide. Fuel is warp-granular: each warp vectorizes only if the
    // gauge provably cannot expire inside it (see FuelGauge::covers_warp),
    // re-checked per warp as the crash budget drains.
    let trace_blocks = machine.trace_enabled();

    for block in 0..cfg.grid {
        if machine.trace_enabled() {
            machine.trace(EventKind::BlockBegin { block });
        }
        kernel.reset_shared(&mut shared);
        states.clear();
        states.resize_with(cfg.block as usize, K::State::default);
        let mut costs = KernelCosts::default();
        for phase in 0..phases {
            let warp_fuel = kernel.warp_fuel(phase);
            for warp in 0..cfg.warps_per_block() {
                let first = warp * WARP_SIZE;
                let lanes = (cfg.block - first).min(WARP_SIZE);
                let mut vectored = false;
                if !trace_blocks && gauge.covers_warp(warp_fuel, lanes) {
                    let mut ctx = WarpCtx {
                        mem: EngineMem::Live(machine),
                        costs: &mut costs,
                        scratch: &mut scratch,
                        gauge,
                        launch: cfg,
                        block,
                        warp,
                        lanes,
                        writer0: (block as u64 * cfg.block as u64 + first as u64) as WriterId,
                        op_seq: 0,
                    };
                    let lo = first as usize;
                    match kernel.run_warp(
                        phase,
                        &mut ctx,
                        &mut states[lo..lo + lanes as usize],
                        &mut shared,
                    ) {
                        Ok(handled) => vectored = handled,
                        Err(SimError::Crashed) => {
                            let report = match gauge.policy() {
                                Some(p) => machine.crash_with_policy(p),
                                None => machine.crash(),
                            };
                            return Err(LaunchError::Crashed(report));
                        }
                        Err(e) => return Err(LaunchError::Sim(e)),
                    }
                }
                if !vectored {
                    for lane in 0..WARP_SIZE {
                        let thread = first + lane;
                        if thread >= cfg.block {
                            break;
                        }
                        let id = ThreadId { block, thread };
                        let writer = id.global(&cfg) as WriterId;
                        let mut ctx = ThreadCtx {
                            mem: EngineMem::Live(machine),
                            costs: &mut costs,
                            scratch: &mut scratch,
                            gauge,
                            launch: cfg,
                            id,
                            writer,
                            op_seq: 0,
                        };
                        match kernel.run(phase, &mut ctx, &mut states[thread as usize], &mut shared)
                        {
                            Ok(()) => {}
                            Err(SimError::Crashed) => {
                                // Close the open spans cleanly in the exported
                                // JSON before the crash event cuts them.
                                if machine.trace_enabled() {
                                    machine.trace(EventKind::BlockCommit { block });
                                    machine.trace(EventKind::KernelEnd { launch: launch_ord });
                                }
                                let report = match gauge.policy() {
                                    Some(p) => machine.crash_with_policy(p),
                                    None => machine.crash(),
                                };
                                return Err(LaunchError::Crashed(report));
                            }
                            Err(e) => return Err(LaunchError::Sim(e)),
                        }
                    }
                }
                scratch.drain(&mut EngineMem::Live(machine), &mut costs);
            }
        }
        total.merge(&costs);
        if machine.trace_enabled() {
            machine.trace(EventKind::BlockCommit { block });
        }
    }

    let pattern_delta: PatternTracker = machine.gpu_pm_pattern.delta(&pattern_before);
    let elapsed =
        total.elapsed_with_model(&machine.cfg, &cfg, &pattern_delta, machine.persistency());
    machine.clock.advance(elapsed);
    Ok(KernelReport {
        elapsed,
        costs: total,
        threads_used: 1,
    })
}

/// Reusable per-worker execution buffers: one allocation for the whole
/// chunk of blocks, mirroring the sequential engine's reuse of `states`,
/// `shared`, and the warp scratch.
struct WorkerScratch<K: Kernel> {
    scratch: WarpScratch,
    states: Vec<K::State>,
    shared: K::Shared,
}

impl<K: Kernel> WorkerScratch<K> {
    fn new() -> WorkerScratch<K> {
        WorkerScratch {
            scratch: WarpScratch::default(),
            states: Vec::new(),
            shared: K::Shared::default(),
        }
    }
}

/// Runs one block against a fresh stage over the frozen machine, returning
/// its buffered effects and costs, or `Err` on any functional error (the
/// caller falls back to the sequential engine for the canonical outcome).
fn run_block_staged<K: Kernel>(
    base: &Machine,
    cfg: LaunchConfig,
    kernel: &K,
    block: u32,
    ws: &mut WorkerScratch<K>,
) -> Result<(BlockStage, KernelCosts), ()> {
    let mut stage = BlockStage::new();
    let mut costs = KernelCosts::default();
    let WorkerScratch {
        scratch,
        states,
        shared,
    } = ws;
    kernel.reset_shared(shared);
    states.clear();
    states.resize_with(cfg.block as usize, K::State::default);
    let mut gauge = FuelGauge::Unlimited;
    // The parallel path already requires an inert gauge, so staged blocks
    // vectorize whenever no trace sink is installed — the same launch-wide
    // rule the sequential engine applies.
    let vectorize = !base.trace_enabled();

    for phase in 0..kernel.phases() {
        for warp in 0..cfg.warps_per_block() {
            let first = warp * WARP_SIZE;
            let lanes = (cfg.block - first).min(WARP_SIZE);
            let mut vectored = false;
            if vectorize {
                let mut ctx = WarpCtx {
                    mem: EngineMem::Staged {
                        base,
                        stage: &mut stage,
                    },
                    costs: &mut costs,
                    scratch,
                    gauge: &mut gauge,
                    launch: cfg,
                    block,
                    warp,
                    lanes,
                    writer0: (block as u64 * cfg.block as u64 + first as u64) as WriterId,
                    op_seq: 0,
                };
                let lo = first as usize;
                vectored = kernel
                    .run_warp(
                        phase,
                        &mut ctx,
                        &mut states[lo..lo + lanes as usize],
                        shared,
                    )
                    .map_err(|_| ())?;
            }
            if !vectored {
                for lane in 0..WARP_SIZE {
                    let thread = first + lane;
                    if thread >= cfg.block {
                        break;
                    }
                    let id = ThreadId { block, thread };
                    let writer = id.global(&cfg) as WriterId;
                    let mut ctx = ThreadCtx {
                        mem: EngineMem::Staged {
                            base,
                            stage: &mut stage,
                        },
                        costs: &mut costs,
                        scratch,
                        gauge: &mut gauge,
                        launch: cfg,
                        id,
                        writer,
                        op_seq: 0,
                    };
                    kernel
                        .run(phase, &mut ctx, &mut states[thread as usize], shared)
                        .map_err(|_| ())?;
                }
            }
            scratch.drain(
                &mut EngineMem::Staged {
                    base,
                    stage: &mut stage,
                },
                &mut costs,
            );
        }
    }
    Ok((stage, costs))
}

/// The block-parallel engine: a scoped worker pool runs each block against a
/// block-local stage over the frozen machine, then the main thread validates
/// and commits the stages serially in block-id order. Returns `None` —
/// machine untouched — when any worker erred or any block read a line a
/// lower-numbered block wrote (sequential execution would have shown it
/// newer data).
fn launch_parallel<K: Kernel + Sync>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
    threads: u32,
) -> Option<KernelReport> {
    let grid = cfg.grid as usize;
    let workers = (threads as usize).min(grid);
    let chunk = grid.div_ceil(workers);
    let mut slots: Vec<Option<Result<(BlockStage, KernelCosts), ()>>> = Vec::new();
    slots.resize_with(grid, || None);

    {
        let base: &Machine = machine;
        std::thread::scope(|s| {
            for (w, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                let first_block = (w * chunk) as u32;
                s.spawn(move || {
                    let mut ws = WorkerScratch::<K>::new();
                    for (i, slot) in slot_chunk.iter_mut().enumerate() {
                        let block = first_block + i as u32;
                        *slot = Some(run_block_staged(base, cfg, kernel, block, &mut ws));
                    }
                });
            }
        });
    }

    // Validate before committing anything: all-or-nothing, no rollback.
    let mut written: HashSet<LineKey> = HashSet::new();
    let mut stages = Vec::with_capacity(grid);
    for slot in slots {
        let (stage, costs) = slot.expect("worker filled its slot").ok()?;
        if stage.reads_conflict(&written) {
            return None;
        }
        stage.extend_writes(&mut written);
        stages.push((stage, costs));
    }

    let pattern_before = machine.gpu_pm_pattern.clone();
    let mut total = KernelCosts::default();
    for (block, (stage, costs)) in stages.iter().enumerate() {
        if machine.trace_enabled() {
            machine.trace(EventKind::BlockBegin {
                block: block as u32,
            });
        }
        stage.commit(machine);
        total.merge(costs);
        if machine.trace_enabled() {
            machine.trace(EventKind::BlockCommit {
                block: block as u32,
            });
        }
    }

    let pattern_delta: PatternTracker = machine.gpu_pm_pattern.delta(&pattern_before);
    let elapsed =
        total.elapsed_with_model(&machine.cfg, &cfg, &pattern_delta, machine.persistency());
    machine.clock.advance(elapsed);
    Some(KernelReport {
        elapsed,
        costs: total,
        threads_used: workers as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnKernel;

    #[test]
    fn coalesced_warp_writes_are_one_transaction() {
        // 32 lanes write 4 consecutive bytes each: one 128-byte line.
        let mut m = Machine::default();
        let pm = m.alloc_pm(4096).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u32(Addr::pm(pm + i * 4), i as u32)
        });
        let r = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap();
        assert_eq!(
            r.costs.pcie_write_txns, 1,
            "hardware coalescing merged the warp's stores"
        );
        assert_eq!(r.costs.pm_write_bytes, 128);
    }

    #[test]
    fn scattered_warp_writes_do_not_coalesce() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 20).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u32(Addr::pm(pm + i * 4096), i as u32)
        });
        let r = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap();
        assert_eq!(r.costs.pcie_write_txns, 32);
    }

    #[test]
    fn warp_fences_coalesce_to_one_event() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(4096).unwrap();
        m.set_ddio(false);
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u32(Addr::pm(pm + i * 4), 7)?;
            ctx.threadfence_system()
        });
        let r = launch(&mut m, LaunchConfig::new(1, 64), &k).unwrap();
        assert_eq!(r.costs.system_fence_events, 2, "one per warp");
        assert!(!m.pm().is_pending(pm, 256));
    }

    #[test]
    fn clock_advances_by_elapsed() {
        let mut m = Machine::default();
        let t0 = m.clock.now();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            ctx.compute(Ns::from_micros(10.0));
            Ok(())
        });
        let r = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap();
        assert_eq!(m.clock.now(), t0 + r.elapsed);
        assert!(r.elapsed >= m.cfg.kernel_launch_overhead);
    }

    #[test]
    fn fuel_exhaustion_crashes_machine() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 16).unwrap();
        let hbm = m.alloc_hbm(64).unwrap();
        m.host_write(Addr::hbm(hbm), &[9; 8]).unwrap();
        m.set_ddio(false);
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i)?;
            ctx.threadfence_system()
        });
        let err = launch_with_fuel(&mut m, LaunchConfig::new(4, 64), &k, 100).unwrap_err();
        match err {
            LaunchError::Crashed(_) => {}
            other => panic!("expected crash, got {other}"),
        }
        assert_eq!(m.stats.crashes, 1);
        assert_eq!(
            m.read_u64(Addr::hbm(hbm)).unwrap(),
            0,
            "volatile state wiped"
        );
        // Threads that fenced before the crash have durable data.
        assert_eq!(m.read_u64(Addr::pm(pm)).unwrap(), 0); // thread 0 wrote value 0
        assert_eq!(m.read_u64(Addr::pm(pm + 8)).unwrap(), 1);
    }

    #[test]
    fn generous_fuel_completes() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(4096).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.st_u32(Addr::pm(pm), 1));
        let r = launch_with_fuel(&mut m, LaunchConfig::new(1, 32), &k, 1_000_000).unwrap();
        assert!(r.elapsed.0 > 0.0);
        assert_eq!(m.stats.crashes, 0);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut m = Machine::default();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.st_u32(Addr::pm(m_capacity_plus()), 1));
        fn m_capacity_plus() -> u64 {
            u64::MAX - 16
        }
        let err = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn atomic_add_accumulates_across_threads() {
        let mut m = Machine::default();
        let ctr = m.alloc_hbm(4).unwrap();
        let k =
            FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.atomic_add_u32(Addr::hbm(ctr), 1).map(|_| ()));
        launch(&mut m, LaunchConfig::new(4, 64), &k).unwrap();
        assert_eq!(m.read_u32(Addr::hbm(ctr)).unwrap(), 256);
    }

    #[test]
    fn pm_atomic_is_one_fused_transaction() {
        let mut m = Machine::default();
        let ctr = m.alloc_pm(4).unwrap();
        let k =
            FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.atomic_add_u32(Addr::pm(ctr), 1).map(|_| ()));
        let r = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap();
        assert_eq!(m.read_u32(Addr::pm(ctr)).unwrap(), 32);
        // One warp, same program point, same line: one RMW transaction — and
        // in particular no separate read transactions doubling the traffic.
        assert_eq!(r.costs.pcie_write_txns, 1);
        assert_eq!(r.costs.pcie_read_txns, 0);
        assert_eq!(r.costs.pm_write_bytes, 32 * 4);
        assert_eq!(r.costs.pm_read_bytes, 0);
    }

    #[test]
    fn pm_atomic_consumes_one_fuel_unit() {
        let mut m = Machine::default();
        let ctr = m.alloc_pm(4).unwrap();
        let k =
            FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.atomic_add_u32(Addr::pm(ctr), 1).map(|_| ()));
        // 32 lanes, one fused op each: exactly 32 fuel completes the launch.
        launch_with_fuel(&mut m, LaunchConfig::new(1, 32), &k, 32).unwrap();
        let mut m2 = Machine::default();
        let ctr2 = m2.alloc_pm(4).unwrap();
        let k2 = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            ctx.atomic_add_u32(Addr::pm(ctr2), 1).map(|_| ())
        });
        let err = launch_with_fuel(&mut m2, LaunchConfig::new(1, 32), &k2, 31).unwrap_err();
        assert!(matches!(err, LaunchError::Crashed(_)));
    }

    #[test]
    fn record_gauge_notes_fences_and_launch_end() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 16).unwrap();
        m.set_ddio(false);
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i)?;
            ctx.threadfence_system()
        });
        let mut gauge = FuelGauge::record();
        launch_with_gauge(&mut m, LaunchConfig::new(1, 64), &k, &mut gauge).unwrap();
        let schedule = gauge.into_schedule().unwrap();
        // 64 threads × (store + fence) = 128 ops; every thread's fence is a
        // boundary, and the launch end coincides with the last fence.
        assert_eq!(schedule.total_ops(), 128);
        assert_eq!(schedule.boundaries().len(), 64);
        assert_eq!(schedule.boundaries().last(), Some(&128));
        assert_eq!(m.stats.crashes, 0, "recording never crashes");
    }

    #[test]
    fn recorded_boundary_replays_as_crash_budget() {
        // The engine is deterministic: a fuel budget equal to a recorded
        // boundary crashes exactly at that boundary — the thread that fenced
        // there has durable data, the next one does not.
        let run = |gauge: &mut FuelGauge| {
            let mut m = Machine::default();
            let pm = m.alloc_pm(1 << 16).unwrap();
            m.set_ddio(false);
            let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                ctx.st_u64(Addr::pm(pm + i * 8), i + 1)?;
                ctx.threadfence_system()
            });
            let res = launch_with_gauge(&mut m, LaunchConfig::new(1, 64), &k, gauge);
            (m, pm, res.is_err())
        };
        let mut rec = FuelGauge::record();
        run(&mut rec);
        let schedule = rec.into_schedule().unwrap();
        let boundary = schedule.boundaries()[9]; // thread 9's fence
        let mut crash = FuelGauge::crash_with_policy(boundary, CrashPolicy::NoneApplied);
        let (m, pm, crashed) = run(&mut crash);
        assert!(crashed);
        assert_eq!(m.read_u64(Addr::pm(pm + 9 * 8)).unwrap(), 10, "fenced");
        assert_eq!(m.read_u64(Addr::pm(pm + 10 * 8)).unwrap(), 0, "not yet");
    }

    #[test]
    fn crash_policy_steers_pending_line_fate() {
        let run = |policy| {
            let mut m = Machine::default();
            let pm = m.alloc_pm(1 << 16).unwrap();
            // DDIO on: stores stay pending, so the crash decides everything.
            let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                ctx.st_u64(Addr::pm(pm + i * 64), i + 1)
            });
            // 64 threads × 1 op: a 32-op budget crashes halfway with the
            // first 32 threads' lines pending.
            let mut gauge = FuelGauge::crash_with_policy(32, policy);
            let err =
                launch_with_gauge(&mut m, LaunchConfig::new(1, 64), &k, &mut gauge).unwrap_err();
            assert!(matches!(err, LaunchError::Crashed(_)));
            (0..32u64)
                .filter(|&i| m.read_u64(Addr::pm(pm + i * 64)).unwrap() == i + 1)
                .count()
        };
        assert_eq!(run(CrashPolicy::AllApplied), 32);
        assert_eq!(run(CrashPolicy::NoneApplied), 0);
        let some = run(CrashPolicy::Random(5));
        assert!(some > 0 && some < 32, "random subset is proper: {some}");
    }

    #[test]
    fn record_gauge_forces_sequential_engine() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 20).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i)
        });
        let mut gauge = FuelGauge::record();
        let r = launch_with_gauge(
            &mut m,
            LaunchConfig::new(8, 64).with_engine_threads(4),
            &k,
            &mut gauge,
        )
        .unwrap();
        assert_eq!(r.threads_used, 1, "recording needs the global op order");
    }

    #[test]
    fn hbm_traffic_counts_bytes_not_txns() {
        let mut m = Machine::default();
        let hbm = m.alloc_hbm(1 << 16).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::hbm(hbm + i * 8), i)
        });
        let r = launch(&mut m, LaunchConfig::new(1, 128), &k).unwrap();
        assert_eq!(r.costs.hbm_bytes, 128 * 8);
        assert_eq!(r.costs.pcie_write_txns, 0);
    }

    #[test]
    fn more_parallelism_hides_fence_latency() {
        // The §3.2 scaling experiment in miniature: same total persists,
        // more threads, shorter elapsed time — up to the in-flight limit.
        let total: u64 = 1 << 12;
        let mut times = Vec::new();
        for threads in [32u32, 128, 512] {
            let mut m = Machine::default();
            let pm = m.alloc_pm(1 << 20).unwrap();
            m.set_ddio(false);
            let per = total / threads as u64;
            let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                for j in 0..per {
                    ctx.st_u64(Addr::pm(pm + (i * per + j) * 8), j)?;
                    ctx.threadfence_system()?;
                }
                Ok(())
            });
            let r = launch(&mut m, LaunchConfig::for_elements(threads as u64, 32), &k).unwrap();
            times.push(r.elapsed);
        }
        assert!(times[0] > times[1] * 2.0, "{:?}", times);
        assert!(times[1] > times[2], "{:?}", times);
    }

    /// Two machines with identical setup for comparing engine modes.
    fn twin_machines(pm_bytes: u64) -> (Machine, Machine, u64) {
        let mut a = Machine::default();
        let mut b = Machine::default();
        let pa = a.alloc_pm(pm_bytes).unwrap();
        let pb = b.alloc_pm(pm_bytes).unwrap();
        assert_eq!(pa, pb);
        (a, b, pa)
    }

    #[test]
    fn parallel_commit_matches_sequential_bit_for_bit() {
        let (mut seq, mut par, pm) = twin_machines(1 << 20);
        seq.set_ddio(false);
        par.set_ddio(false);
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i * 3)?;
            ctx.compute(Ns(7.5));
            ctx.threadfence_system()
        });
        let r1 = launch(
            &mut seq,
            LaunchConfig::new(8, 64).with_engine_threads(1),
            &k,
        )
        .unwrap();
        let r4 = launch(
            &mut par,
            LaunchConfig::new(8, 64).with_engine_threads(4),
            &k,
        )
        .unwrap();
        assert_eq!(r1.threads_used, 1);
        assert_eq!(r4.threads_used, 4, "parallel path must have committed");
        assert_eq!(r1.costs, r4.costs);
        assert_eq!(r1.elapsed.0.to_bits(), r4.elapsed.0.to_bits());
        assert_eq!(format!("{:?}", seq.stats), format!("{:?}", par.stats));
        assert_eq!(seq.clock.now(), par.clock.now());
        let mut ba = vec![0u8; 8 * 64 * 8];
        let mut bb = ba.clone();
        seq.read(Addr::pm(pm), &mut ba).unwrap();
        par.read(Addr::pm(pm), &mut bb).unwrap();
        assert_eq!(ba, bb);
    }

    #[test]
    fn cross_block_read_conflict_falls_back_to_sequential() {
        // Block 1+ reads the line block 0 writes: the staged read would see
        // stale data, so the conflict check must reject the commit and the
        // sequential rerun must produce the canonical result.
        let (mut seq, mut par, pm) = twin_machines(1 << 16);
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            if ctx.block_id() == 0 {
                ctx.st_u64(Addr::pm(pm + i * 8), 42)
            } else {
                let v = ctx.ld_u64(Addr::pm(pm))?; // block 0, thread 0's slot
                ctx.st_u64(Addr::pm(pm + i * 8), v + 1)
            }
        });
        let r1 = launch(
            &mut seq,
            LaunchConfig::new(4, 32).with_engine_threads(1),
            &k,
        )
        .unwrap();
        let r4 = launch(
            &mut par,
            LaunchConfig::new(4, 32).with_engine_threads(4),
            &k,
        )
        .unwrap();
        assert_eq!(r4.threads_used, 1, "conflict must force the fallback");
        assert_eq!(r1.costs, r4.costs);
        assert_eq!(format!("{:?}", seq.stats), format!("{:?}", par.stats));
        assert_eq!(par.read_u64(Addr::pm(pm + 32 * 8)).unwrap(), 43);
    }

    #[test]
    fn cross_block_atomics_fall_back_via_conflict_check() {
        // An unannotated kernel whose blocks all RMW one HBM counter: the
        // atomic's read half touches a line earlier blocks wrote, so the
        // runtime check (not the capability flag) catches it.
        let mut m = Machine::default();
        let ctr = m.alloc_hbm(4).unwrap();
        let k =
            FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.atomic_add_u32(Addr::hbm(ctr), 1).map(|_| ()));
        let r = launch(&mut m, LaunchConfig::new(4, 64).with_engine_threads(4), &k).unwrap();
        assert_eq!(r.threads_used, 1);
        assert_eq!(m.read_u32(Addr::hbm(ctr)).unwrap(), 256);
    }

    #[test]
    fn communicating_capability_skips_parallel_path() {
        use crate::kernel::Communicating;
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 16).unwrap();
        let k = Communicating(FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i)
        }));
        let r = launch(&mut m, LaunchConfig::new(4, 32).with_engine_threads(4), &k).unwrap();
        assert_eq!(r.threads_used, 1, "capability flag must veto parallelism");
    }

    #[test]
    fn parallel_errors_rerun_sequentially_for_canonical_outcome() {
        // A worker hits out-of-bounds: the launch must surface the same
        // error (and leave the same machine state) sequential execution does.
        let (mut seq, mut par, _) = twin_machines(4096);
        let pm = seq.space_capacity(MemSpace::Pm) - 2048;
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 64), i) // blocks 1+ run off the end
        });
        let e1 = launch(
            &mut seq,
            LaunchConfig::new(4, 32).with_engine_threads(1),
            &k,
        )
        .unwrap_err();
        let e4 = launch(
            &mut par,
            LaunchConfig::new(4, 32).with_engine_threads(4),
            &k,
        )
        .unwrap_err();
        assert_eq!(format!("{e1}"), format!("{e4}"));
        assert_eq!(format!("{:?}", seq.stats), format!("{:?}", par.stats));
        let mut ba = vec![0u8; 2048];
        let mut bb = ba.clone();
        seq.read(Addr::pm(pm), &mut ba).unwrap();
        par.read(Addr::pm(pm), &mut bb).unwrap();
        assert_eq!(ba, bb, "partial effects of the failed launch must match");
    }

    #[test]
    fn env_thread_count_is_overridden_by_launch_config() {
        // `with_engine_threads(1)` pins the sequential path regardless of
        // the environment; grid=1 never parallelizes.
        let mut m = Machine::default();
        let pm = m.alloc_pm(4096).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.st_u32(Addr::pm(pm), 1));
        let r = launch(&mut m, LaunchConfig::new(1, 32).with_engine_threads(8), &k).unwrap();
        assert_eq!(r.threads_used, 1, "a single block cannot spread");
    }

    /// A store(+fence) kernel implemented both per-lane and vectorized, for
    /// engine-equivalence tests. Lane `i` stores `rounds` values at
    /// `pm + i * stride + j * 8`, optionally fencing each round; `vectorize:
    /// false` makes `run_warp` decline so the same kernel can drive the
    /// per-lane walk.
    struct VecStore {
        pm: u64,
        stride: u64,
        rounds: u64,
        fence: bool,
        vectorize: bool,
    }

    impl Kernel for VecStore {
        type State = ();
        type Shared = ();

        fn run(
            &self,
            _phase: u32,
            ctx: &mut ThreadCtx<'_>,
            _state: &mut (),
            _shared: &mut (),
        ) -> SimResult<()> {
            let i = ctx.global_id();
            for j in 0..self.rounds {
                ctx.st_u64(Addr::pm(self.pm + i * self.stride + j * 8), i ^ j)?;
                if self.fence {
                    ctx.threadfence_system()?;
                }
            }
            Ok(())
        }

        fn run_warp(
            &self,
            _phase: u32,
            ctx: &mut WarpCtx<'_>,
            states: &mut [()],
            _shared: &mut (),
        ) -> SimResult<bool> {
            if !self.vectorize {
                return Ok(false);
            }
            let base = ctx.first_global_id();
            let lanes = ctx.lanes() as usize;
            assert_eq!(states.len(), lanes, "one state slot per active lane");
            let mut vals = [0u64; WARP_SIZE as usize];
            for j in 0..self.rounds {
                for (l, v) in vals[..lanes].iter_mut().enumerate() {
                    *v = (base + l as u64) ^ j;
                }
                ctx.st_u64_lanes(
                    Addr::pm(self.pm + base * self.stride + j * 8),
                    self.stride,
                    &vals[..lanes],
                )?;
                if self.fence {
                    ctx.threadfence_system();
                }
            }
            Ok(true)
        }
    }

    /// Launches `VecStore` twice — per-lane and vectorized — on twin
    /// machines and returns both (machine, report) pairs.
    fn vec_twins(
        pm_bytes: u64,
        cfg: LaunchConfig,
        stride: u64,
        rounds: u64,
        fence: bool,
    ) -> ((Machine, KernelReport), (Machine, KernelReport)) {
        let (mut lane, mut vec, pm) = twin_machines(pm_bytes);
        lane.set_ddio(false);
        vec.set_ddio(false);
        let mut k = VecStore {
            pm,
            stride,
            rounds,
            fence,
            vectorize: false,
        };
        let rl = launch(&mut lane, cfg, &k).unwrap();
        k.vectorize = true;
        let rv = launch(&mut vec, cfg, &k).unwrap();
        ((lane, rl), (vec, rv))
    }

    #[test]
    fn vectorized_contiguous_store_matches_per_lane_bit_for_bit() {
        let cfg = LaunchConfig::new(4, 64).with_engine_threads(1);
        let ((mut lane, rl), (mut vec, rv)) = vec_twins(1 << 20, cfg, 8, 1, true);
        assert_eq!(rl.costs, rv.costs);
        assert_eq!(rl.elapsed.0.to_bits(), rv.elapsed.0.to_bits());
        // bytes_persisted is the documented exception: the lane-major walk
        // re-drains a CPU line for every lane that re-dirties it (here 8
        // lanes share each 64-byte line), where the warp-simultaneous fence
        // drains it once. Everything else must be identical.
        assert!(vec.stats.bytes_persisted < lane.stats.bytes_persisted);
        lane.stats.bytes_persisted = 0;
        vec.stats.bytes_persisted = 0;
        assert_eq!(format!("{:?}", lane.stats), format!("{:?}", vec.stats));
        assert_eq!(lane.clock.now(), vec.clock.now());
        let mut ba = vec![0u8; 4 * 64 * 8];
        let mut bb = ba.clone();
        lane.read(Addr::pm(0), &mut ba).unwrap();
        vec.read(Addr::pm(0), &mut bb).unwrap();
        assert_eq!(ba, bb);
    }

    #[test]
    fn vectorized_strided_fence_kernel_matches_costs_and_time() {
        // The fence_heavy shape: stride 32, 4 rounds, fence per round. The
        // vector path executes operation-major, so per-round drains touch
        // each line once where the lane-major walk re-drains lines its
        // neighbours re-dirty — bytes_persisted is the one documented
        // divergence; everything the timing model and the golden gates
        // consume must still match exactly.
        let cfg = LaunchConfig::new(2, 64).with_engine_threads(1);
        let ((lane, rl), (vec, rv)) = vec_twins(1 << 20, cfg, 32, 4, true);
        assert_eq!(rl.costs, rv.costs);
        assert_eq!(rl.elapsed.0.to_bits(), rv.elapsed.0.to_bits());
        assert_eq!(lane.stats.system_fences, vec.stats.system_fences);
        assert_eq!(lane.stats.pm_write_bytes_gpu, vec.stats.pm_write_bytes_gpu);
        assert_eq!(lane.clock.now(), vec.clock.now());
        assert!(
            vec.stats.bytes_persisted < lane.stats.bytes_persisted,
            "operation-major drains strictly less: {} vs {}",
            vec.stats.bytes_persisted,
            lane.stats.bytes_persisted
        );
        let mut ba = vec![0u8; 2 * 64 * 32];
        let mut bb = ba.clone();
        lane.read(Addr::pm(0), &mut ba).unwrap();
        vec.read(Addr::pm(0), &mut bb).unwrap();
        assert_eq!(ba, bb);
    }

    #[test]
    fn bytes_persisted_operation_major_invariant() {
        // The one counter allowed to differ between the per-lane and vector
        // paths obeys a precise invariant, not a vague inequality. With each
        // lane's store on its own CPU line (stride 64) no line is re-dirtied
        // between fences, so lane-major and operation-major drain exactly the
        // same bytes: 8 warps × 32 lanes × one 64-byte line each.
        let cfg = LaunchConfig::new(4, 64).with_engine_threads(1);
        let ((lane, _), (vec, _)) = vec_twins(1 << 20, cfg, 64, 1, true);
        assert_eq!(lane.stats.bytes_persisted, vec.stats.bytes_persisted);
        assert_eq!(vec.stats.bytes_persisted, 8 * 32 * 64);

        // With 8 lanes sharing each 64-byte line (stride 8), the
        // operation-major fence drains each of a warp's 4 dirty lines exactly
        // once, while the lane-major walk drains one line per lane because
        // every later lane re-dirties the line its predecessor just drained.
        let ((lane, _), (vec, _)) = vec_twins(1 << 20, cfg, 8, 1, true);
        assert_eq!(vec.stats.bytes_persisted, 8 * 4 * 64);
        assert_eq!(lane.stats.bytes_persisted, 8 * 32 * 64);
    }

    #[test]
    fn vectorized_partial_tail_warp() {
        // block = 48: a full warp plus a 16-lane tail. The tail's vector ops
        // must cover exactly 16 lanes.
        let cfg = LaunchConfig::new(2, 48).with_engine_threads(1);
        let ((lane, rl), (vec, rv)) = vec_twins(1 << 20, cfg, 8, 1, false);
        assert_eq!(rl.costs, rv.costs);
        assert_eq!(rl.elapsed.0.to_bits(), rv.elapsed.0.to_bits());
        assert_eq!(format!("{:?}", lane.stats), format!("{:?}", vec.stats));
        for i in 0..96u64 {
            assert_eq!(vec.read_u64(Addr::pm(i * 8)).unwrap(), i);
        }
    }

    /// Counts `run` invocations to observe which path the engine took.
    struct CountingKernel {
        pm: u64,
        runs: std::sync::atomic::AtomicU64,
    }

    impl Kernel for CountingKernel {
        type State = ();
        type Shared = ();

        fn run(
            &self,
            _phase: u32,
            ctx: &mut ThreadCtx<'_>,
            _state: &mut (),
            _shared: &mut (),
        ) -> SimResult<()> {
            self.runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(self.pm + i * 8), i)
        }

        fn run_warp(
            &self,
            _phase: u32,
            ctx: &mut WarpCtx<'_>,
            _states: &mut [()],
            _shared: &mut (),
        ) -> SimResult<bool> {
            let base = ctx.first_global_id();
            let lanes = ctx.lanes() as usize;
            let mut vals = [0u64; WARP_SIZE as usize];
            for (l, v) in vals[..lanes].iter_mut().enumerate() {
                *v = base + l as u64;
            }
            ctx.st_u64_lanes(Addr::pm(self.pm + base * 8), 8, &vals[..lanes])?;
            Ok(true)
        }
    }

    fn counting_kernel(m: &mut Machine) -> CountingKernel {
        CountingKernel {
            pm: m.alloc_pm(1 << 16).unwrap(),
            runs: std::sync::atomic::AtomicU64::new(0),
        }
    }

    #[test]
    fn vectorized_path_skips_per_lane_run() {
        let mut m = Machine::default();
        let k = counting_kernel(&mut m);
        launch(&mut m, LaunchConfig::new(2, 64).with_engine_threads(1), &k).unwrap();
        assert_eq!(k.runs.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn trace_sink_forces_per_lane_fallback() {
        let mut m = Machine::default();
        let k = counting_kernel(&mut m);
        m.set_trace_sink(Box::new(gpm_sim::RingSink::new(1 << 16)));
        launch(&mut m, LaunchConfig::new(2, 64).with_engine_threads(1), &k).unwrap();
        assert_eq!(
            k.runs.load(std::sync::atomic::Ordering::Relaxed),
            128,
            "per-lane trace events need the per-lane walk"
        );
    }

    #[test]
    fn counting_gauge_forces_per_lane_fallback() {
        let mut m = Machine::default();
        let k = counting_kernel(&mut m);
        launch_with_fuel(
            &mut m,
            LaunchConfig::new(2, 64).with_engine_threads(1),
            &k,
            1 << 20,
        )
        .unwrap();
        assert_eq!(
            k.runs.load(std::sync::atomic::Ordering::Relaxed),
            128,
            "fuel draws from the per-lane operation order"
        );
    }

    #[test]
    fn parallel_engine_commits_vectorized_blocks_bit_for_bit() {
        let (mut seq, mut par, pm) = twin_machines(1 << 20);
        seq.set_ddio(false);
        par.set_ddio(false);
        let k = VecStore {
            pm,
            stride: 8,
            rounds: 1,
            fence: true,
            vectorize: true,
        };
        let r1 = launch(
            &mut seq,
            LaunchConfig::new(8, 64).with_engine_threads(1),
            &k,
        )
        .unwrap();
        let r4 = launch(
            &mut par,
            LaunchConfig::new(8, 64).with_engine_threads(4),
            &k,
        )
        .unwrap();
        assert_eq!(r4.threads_used, 4, "parallel path must have committed");
        assert_eq!(r1.costs, r4.costs);
        assert_eq!(r1.elapsed.0.to_bits(), r4.elapsed.0.to_bits());
        assert_eq!(format!("{:?}", seq.stats), format!("{:?}", par.stats));
        assert_eq!(seq.clock.now(), par.clock.now());
    }

    /// One store then a storm of fences per thread: fence latency dominates
    /// the timing model, making the strict-vs-epoch gap unambiguous.
    struct FenceStorm {
        pm: u64,
        rounds: u64,
        vectorize: bool,
    }

    impl Kernel for FenceStorm {
        type State = ();
        type Shared = ();

        fn run(
            &self,
            _phase: u32,
            ctx: &mut ThreadCtx<'_>,
            _state: &mut (),
            _shared: &mut (),
        ) -> SimResult<()> {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(self.pm + i * 8), i)?;
            for _ in 0..self.rounds {
                ctx.threadfence_system()?;
            }
            Ok(())
        }

        fn run_warp(
            &self,
            _phase: u32,
            ctx: &mut WarpCtx<'_>,
            _states: &mut [()],
            _shared: &mut (),
        ) -> SimResult<bool> {
            if !self.vectorize {
                return Ok(false);
            }
            let base = ctx.first_global_id();
            let lanes = ctx.lanes() as usize;
            let mut vals = [0u64; WARP_SIZE as usize];
            for (l, v) in vals[..lanes].iter_mut().enumerate() {
                *v = base + l as u64;
            }
            ctx.st_u64_lanes(Addr::pm(self.pm + base * 8), 8, &vals[..lanes])?;
            for _ in 0..self.rounds {
                ctx.threadfence_system();
            }
            Ok(true)
        }
    }

    fn epoch_twins(vectorize: bool) -> ((Machine, KernelReport), (Machine, KernelReport), u64) {
        let (mut strict, mut epoch, pm) = twin_machines(1 << 20);
        strict.set_ddio(false);
        epoch.set_ddio(false);
        let k = FenceStorm {
            pm,
            rounds: 64,
            vectorize,
        };
        let cfg = LaunchConfig::new(4, 64).with_engine_threads(1);
        let rs = launch(
            &mut strict,
            cfg.with_persistency(PersistencyModel::Strict),
            &k,
        )
        .unwrap();
        let re = launch(
            &mut epoch,
            cfg.with_persistency(PersistencyModel::Epoch),
            &k,
        )
        .unwrap();
        ((strict, rs), (epoch, re), pm)
    }

    #[test]
    fn epoch_launch_defers_drain_to_kernel_boundary() {
        let ((strict, rs), (mut epoch, re), pm) = epoch_twins(true);
        // Same fences issued, far cheaper under epoch: ordering markers plus
        // one boundary drain instead of per-fence persist round trips.
        assert_eq!(strict.stats.system_fences, epoch.stats.system_fences);
        assert_eq!(rs.costs.system_fence_events, re.costs.system_fence_events);
        assert!(
            rs.elapsed > re.elapsed * 2.0,
            "strict {} vs epoch {}",
            rs.elapsed,
            re.elapsed
        );
        // The boundary drain ran: nothing is pending, and a crash right
        // after the launch loses nothing.
        assert_eq!(epoch.pm().pending_line_count(), 0);
        epoch.crash();
        for i in 0..(4 * 64u64) {
            assert_eq!(epoch.read_u64(Addr::pm(pm + i * 8)).unwrap(), i);
        }
    }

    #[test]
    fn epoch_applies_to_per_lane_walk_too() {
        // The model is orthogonal to vectorization: a per-lane kernel under
        // epoch gets the same deferred-drain semantics.
        let ((_, rs), (mut epoch, re), pm) = epoch_twins(false);
        assert!(
            rs.elapsed > re.elapsed * 2.0,
            "strict {} vs epoch {}",
            rs.elapsed,
            re.elapsed
        );
        assert_eq!(epoch.pm().pending_line_count(), 0, "boundary drain ran");
        epoch.crash();
        assert_eq!(epoch.read_u64(Addr::pm(pm + 8)).unwrap(), 1);
    }

    // ---- SeqGroup extent merging (the coalescer's core) ---------------------

    #[test]
    fn seq_group_merges_overlapping_extents() {
        let mut g = SeqGroup::default();
        g.record_write(0, 16);
        g.record_write(8, 16); // overlaps [8, 16)
        assert_eq!(g.write_lines.len(), 1);
        assert_eq!(
            (g.write_lines[0].start, g.write_lines[0].end),
            (0, 24),
            "overlapping extents merge to their union"
        );
    }

    #[test]
    fn seq_group_merges_adjacent_extents_within_a_line() {
        let mut g = SeqGroup::default();
        g.record_write(0, 8);
        g.record_write(8, 8);
        g.record_write(16, 8);
        assert_eq!(g.write_lines.len(), 1, "one 128-byte line, one extent");
        assert_eq!((g.write_lines[0].start, g.write_lines[0].end), (0, 24));
    }

    #[test]
    fn seq_group_keeps_contained_extent() {
        let mut g = SeqGroup::default();
        g.record_write(0, 64);
        g.record_write(16, 8); // fully contained
        assert_eq!(g.write_lines.len(), 1);
        assert_eq!((g.write_lines[0].start, g.write_lines[0].end), (0, 64));
    }

    #[test]
    fn seq_group_splits_line_crossing_writes() {
        let mut g = SeqGroup::default();
        // [120, 136) crosses the line-0/line-1 boundary at 128.
        g.record_write(120, 16);
        assert_eq!(g.write_lines.len(), 2);
        assert_eq!((g.write_lines[0].line, g.write_lines[0].start), (0, 120));
        assert_eq!((g.write_lines[1].line, g.write_lines[1].end), (1, 136));
        // Lines stay sorted when a lower line arrives later.
        g.record_write(0, 8);
        assert_eq!(g.write_lines[0].start, 0);
        assert_eq!(g.write_lines[0].end, 128, "merged with [120, 128)");
    }

    #[test]
    fn seq_group_read_lines_dedup() {
        let mut g = SeqGroup::default();
        g.record_read(0, 8);
        g.record_read(64, 8); // same 128-byte line
        g.record_read(256, 8); // line 2
        g.record_read(250, 16); // crosses lines 1 and 2; 2 already present
        assert_eq!(g.read_lines, vec![0, 2, 1]);
    }

    #[test]
    fn interleaved_reads_and_writes_group_by_program_point() {
        // Lanes read one line and write another at alternating program
        // points; groups must keep reads and writes separate per seq.
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 16).unwrap();
        m.host_write(Addr::pm(pm + 8192), &[3; 128]).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            let v = ctx.ld_u32(Addr::pm(pm + 8192 + i * 4))?;
            ctx.st_u32(Addr::pm(pm + i * 4), v + 1)
        });
        let r = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap();
        assert_eq!(r.costs.pcie_read_txns, 1, "one coalesced read line");
        assert_eq!(r.costs.pcie_write_txns, 1, "one coalesced write line");
        assert_eq!(m.read_u32(Addr::pm(pm)).unwrap(), 0x03030304);
    }
}
