//! The kernel launcher: phase-by-phase, warp-by-warp execution with
//! hardware coalescing, scoped fences, and crash injection.
//!
//! Execution is deterministic, but models the GPU's concurrency: threads of
//! a warp execute in lockstep, so their same-program-point accesses to one
//! 128-byte line coalesce into a single PCIe transaction (§2), and a warp's
//! simultaneous fences form one fence event. Phase boundaries implement
//! `__syncthreads()`.
//!
//! ## Block-parallel execution
//!
//! CUDA threadblocks are independent between launch boundaries unless a
//! kernel deliberately communicates across blocks, so the engine can run
//! blocks on a pool of host threads without changing any observable result.
//! Each worker executes its blocks against a [`BlockStage`] — a copy-on-
//! write overlay over the frozen machine plus an ordered effect log — and
//! the main thread *commits the stages serially in block-id order*, calling
//! the very same machine operations sequential execution would, in the same
//! order. Counters, pending-line state, the pattern tracker, and simulated
//! time are therefore bit-identical in both modes (the golden-counter gate
//! runs in both). Divergence is impossible rather than unlikely: the only
//! thing a stage cannot reproduce is a *read* of a lower-numbered block's
//! same-launch write, and every base read is checked against earlier blocks'
//! write sets at commit — any hit abandons the stages (machine untouched)
//! and reruns the launch sequentially. Kernels annotated
//! [`KernelCapability::Communicating`], single-block grids, and crash-fuel
//! launches skip the parallel path up front; thread count comes from
//! [`LaunchConfig::engine_threads`], then `GPM_ENGINE_THREADS`, then the
//! host's available parallelism (`1` forces the sequential engine).
//!
//! ## Hot-path design
//!
//! Coalescing is the engine's innermost loop: every PM access of every
//! simulated thread flows through it. Instead of buffering an `Event` per
//! operation and grouping events into freshly-allocated `BTreeMap`s at warp
//! drain (one heap allocation per warp, a tree probe per event), the engine
//! merges accesses *as they are issued* into a [`WarpScratch`]: a reusable
//! table of per-program-point groups, indexed directly by the thread's dense
//! operation sequence number. Each group keeps its coalesced line extents in
//! a small sorted array. All storage is reused across warps, blocks, and
//! launches, so steady-state execution allocates nothing per warp and the
//! drain is a linear sweep. The observable outcome — transaction counts,
//! pattern-tracker order, fence events, simulated time — is identical to the
//! event-buffer design, as the golden-counter tests pin down.

use std::collections::HashSet;
use std::fmt;

use gpm_sim::pattern::PatternTracker;
use gpm_sim::staged::{BlockStage, LineKey};
use gpm_sim::{
    Addr, CrashPolicy, CrashReport, CrashSchedule, EventKind, Machine, MemSpace, Ns, SimError,
    SimResult, WriterId, GPU_LINE,
};

use crate::dim::{LaunchConfig, ThreadId, WARP_SIZE};
use crate::kernel::{Kernel, KernelCapability};
use crate::timing::KernelCosts;

/// Result of a completed kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Simulated elapsed time of the launch (also added to the machine
    /// clock).
    pub elapsed: Ns,
    /// Resource usage that produced `elapsed`.
    pub costs: KernelCosts,
    /// Host worker threads the engine actually used: the resolved thread
    /// count when the block-parallel path committed, `1` when the
    /// sequential path ran (including conflict / capability fallbacks).
    /// Purely diagnostic — simulated results never depend on it.
    pub threads_used: u32,
}

/// Why a launch did not complete.
#[derive(Debug)]
pub enum LaunchError {
    /// A functional error (out-of-bounds access, etc.).
    Sim(SimError),
    /// The injected crash fuel ran out: the machine has crashed (volatile
    /// state wiped, pending PM lines partially applied).
    Crashed(CrashReport),
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::Sim(e) => write!(f, "kernel fault: {e}"),
            LaunchError::Crashed(r) => write!(
                f,
                "machine crashed mid-kernel ({} pending lines reached media, {} lost)",
                r.lines_applied, r.lines_dropped
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<SimError> for LaunchError {
    fn from(e: SimError) -> LaunchError {
        LaunchError::Sim(e)
    }
}

/// Crash-fuel accounting for a launch (or a sequence of launches sharing
/// one budget). Every context operation (load, store, atomic, fence) burns
/// one unit; the gauge decides what that means:
///
/// * [`FuelGauge::Unlimited`] — no counting, no crash. The only mode
///   eligible for the block-parallel path (fuel draws from the global
///   operation order that only sequential execution defines).
/// * [`FuelGauge::Crash`] — after `remaining` ops the machine crashes;
///   `policy` picks the pending-line subset ([`Machine::crash_with_policy`])
///   or falls back to the machine RNG ([`Machine::crash`]).
/// * [`FuelGauge::Record`] — counts ops and notes every system fence and
///   launch completion as a [`CrashSchedule`] boundary: the discovery pass
///   of the crash-consistency campaign.
///
/// A gauge threaded through *identical* launch sequences makes the recorded
/// boundary fuels directly replayable as `Crash` budgets — the engine is
/// deterministic, so op N of the recording run is op N of the replay.
#[derive(Debug, Default)]
pub enum FuelGauge {
    /// No crash injection; ops are not counted.
    #[default]
    Unlimited,
    /// Crash when the budget is exhausted.
    Crash {
        /// Ops left before the crash fires.
        remaining: u64,
        /// Pending-line subset to apply at the crash; `None` = machine RNG.
        policy: Option<CrashPolicy>,
    },
    /// Count ops and record persist/launch boundaries.
    Record(CrashSchedule),
}

impl FuelGauge {
    /// A budget that crashes via the machine RNG (the legacy fuel path).
    pub fn crash(fuel: u64) -> FuelGauge {
        FuelGauge::Crash {
            remaining: fuel,
            policy: None,
        }
    }

    /// A budget that crashes with a deterministic pending-line subset.
    pub fn crash_with_policy(fuel: u64, policy: CrashPolicy) -> FuelGauge {
        FuelGauge::Crash {
            remaining: fuel,
            policy: Some(policy),
        }
    }

    /// A recording gauge with an empty schedule.
    pub fn record() -> FuelGauge {
        FuelGauge::Record(CrashSchedule::new())
    }

    /// Whether the gauge neither counts nor crashes (the parallel path's
    /// eligibility requirement).
    pub fn is_inert(&self) -> bool {
        matches!(self, FuelGauge::Unlimited)
    }

    /// The crash policy carried by a `Crash` gauge, if any.
    pub fn policy(&self) -> Option<CrashPolicy> {
        match self {
            FuelGauge::Crash { policy, .. } => *policy,
            _ => None,
        }
    }

    /// The recorded schedule of a `Record` gauge.
    pub fn schedule(&self) -> Option<&CrashSchedule> {
        match self {
            FuelGauge::Record(s) => Some(s),
            _ => None,
        }
    }

    /// Consumes the gauge, yielding the recorded schedule if recording.
    pub fn into_schedule(self) -> Option<CrashSchedule> {
        match self {
            FuelGauge::Record(s) => Some(s),
            _ => None,
        }
    }

    /// One context operation completes (or, with an exhausted budget, the
    /// crash fires instead).
    #[inline]
    fn burn(&mut self) -> SimResult<()> {
        match self {
            FuelGauge::Unlimited => Ok(()),
            FuelGauge::Crash { remaining, .. } => {
                if *remaining == 0 {
                    return Err(SimError::Crashed);
                }
                *remaining -= 1;
                Ok(())
            }
            FuelGauge::Record(s) => {
                s.count_op();
                Ok(())
            }
        }
    }

    /// Notes a persist/commit boundary (recording mode only).
    #[inline]
    fn note_boundary(&mut self) {
        if let FuelGauge::Record(s) = self {
            s.note_boundary();
        }
    }
}

/// A coalesced write extent within one 128-byte GPU line.
#[derive(Debug, Clone, Copy)]
struct WriteExtent {
    line: u64,
    start: u64,
    end: u64,
}

/// Accesses issued by the warp's lanes at one program point (one operation
/// sequence number). Lockstep lanes hit the same group, so their line-sharing
/// accesses merge here — this *is* the hardware coalescer.
#[derive(Debug, Default)]
struct SeqGroup {
    /// Write extents, kept sorted by line index (matches the former
    /// `BTreeMap` emission order bit for bit).
    write_lines: Vec<WriteExtent>,
    /// Distinct lines read at this program point.
    read_lines: Vec<u64>,
    sys_fence: bool,
    dev_fence: bool,
}

impl SeqGroup {
    fn clear(&mut self) {
        self.write_lines.clear();
        self.read_lines.clear();
        self.sys_fence = false;
        self.dev_fence = false;
    }

    fn record_write(&mut self, offset: u64, len: u64) {
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let line = cur / GPU_LINE;
            let ext_end = end.min((line + 1) * GPU_LINE);
            match self.write_lines.binary_search_by_key(&line, |e| e.line) {
                Ok(i) => {
                    let e = &mut self.write_lines[i];
                    e.start = e.start.min(cur);
                    e.end = e.end.max(ext_end);
                }
                Err(i) => {
                    self.write_lines.insert(
                        i,
                        WriteExtent {
                            line,
                            start: cur,
                            end: ext_end,
                        },
                    );
                }
            }
            cur = ext_end;
        }
    }

    fn record_read(&mut self, offset: u64, len: u64) {
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let line = cur / GPU_LINE;
            if !self.read_lines.contains(&line) {
                self.read_lines.push(line);
            }
            cur = (line + 1) * GPU_LINE;
        }
    }
}

/// Retained-group cap: a pathological warp (one thread issuing millions of
/// ops) can grow the group table arbitrarily; anything beyond this is
/// released at drain so the scratch footprint stays bounded.
const MAX_RETAINED_GROUPS: usize = 1 << 14;

/// Reusable per-warp coalescing state. Groups are dense in the operation
/// sequence number, so lookup is an array index, and a drained group's
/// buffers are kept (cleared) for the next warp — zero allocation per warp
/// in steady state.
#[derive(Debug, Default)]
struct WarpScratch {
    groups: Vec<SeqGroup>,
    used: usize,
}

impl WarpScratch {
    /// The group for operation sequence number `seq` (1-based: the first
    /// `burn` of a thread yields seq 1).
    fn group(&mut self, seq: u32) -> &mut SeqGroup {
        let idx = (seq - 1) as usize;
        if idx >= self.used {
            if self.groups.len() <= idx {
                self.groups.resize_with(idx + 1, SeqGroup::default);
            }
            self.used = idx + 1;
        }
        &mut self.groups[idx]
    }

    /// Emits the warp's coalesced transactions and fence events, then resets
    /// for the next warp. Groups are visited in program order and lines in
    /// ascending order, mirroring the former sorted-map drain exactly. A
    /// warp that staged nothing (all lanes idle or pure compute) returns
    /// without touching the group table.
    fn drain(&mut self, mem: &mut EngineMem<'_>, costs: &mut KernelCosts) {
        if self.used == 0 {
            return;
        }
        for g in &mut self.groups[..self.used] {
            for e in &g.write_lines {
                costs.pcie_write_txns += 1;
                mem.pm_txn(e.start, e.end - e.start);
            }
            costs.pcie_read_txns += g.read_lines.len() as u64;
            if g.sys_fence {
                costs.system_fence_events += 1;
                mem.pattern_barrier();
            }
            if g.dev_fence {
                costs.device_fence_events += 1;
                if mem.trace_enabled() {
                    mem.trace(EventKind::DeviceFence);
                }
            }
            g.clear();
        }
        self.used = 0;
        if self.groups.len() > MAX_RETAINED_GROUPS {
            self.groups.truncate(MAX_RETAINED_GROUPS);
            self.groups.shrink_to_fit();
        }
    }
}

/// The memory the engine runs a block against: the live machine (sequential
/// path) or a frozen base plus a block-local stage (parallel path). Each
/// operation's staged branch buffers exactly what its live branch applies,
/// so replaying a stage's effect log in block order reproduces the live
/// sequence bit for bit.
enum EngineMem<'a> {
    /// Mutate the machine directly.
    Live(&'a mut Machine),
    /// Buffer effects in a block-local stage against the frozen `base`.
    Staged {
        base: &'a Machine,
        stage: &'a mut BlockStage,
    },
}

impl EngineMem<'_> {
    /// The machine for read-only queries (config, persist mode).
    fn machine(&self) -> &Machine {
        match self {
            EngineMem::Live(m) => m,
            EngineMem::Staged { base, .. } => base,
        }
    }

    /// A GPU store to PM (`Machine::gpu_store_pm`).
    fn store_pm(&mut self, writer: WriterId, offset: u64, bytes: &[u8]) -> SimResult<()> {
        match self {
            EngineMem::Live(m) => m.gpu_store_pm(writer, offset, bytes),
            EngineMem::Staged { base, stage } => stage.store_pm(base, writer, offset, bytes),
        }
    }

    /// A store to a volatile space (`Machine::host_write`).
    fn store_vol(&mut self, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        match self {
            EngineMem::Live(m) => m.host_write(addr, bytes),
            EngineMem::Staged { base, stage } => stage.store_vol(base, addr, bytes),
        }
    }

    /// A GPU load from PM (`Machine::gpu_load_pm`, which also counts the
    /// bytes read).
    fn load_pm(&mut self, offset: u64, buf: &mut [u8]) -> SimResult<()> {
        match self {
            EngineMem::Live(m) => m.gpu_load_pm(offset, buf),
            EngineMem::Staged { base, stage } => {
                stage.read(base, Addr::pm(offset), buf)?;
                stage.note_pm_read(buf.len() as u64);
                Ok(())
            }
        }
    }

    /// An uncounted coherent read (`Machine::read` — volatile loads and the
    /// read half of fused atomics).
    fn read(&mut self, addr: Addr, buf: &mut [u8]) -> SimResult<()> {
        match self {
            EngineMem::Live(m) => m.read(addr, buf),
            EngineMem::Staged { base, stage } => stage.read(base, addr, buf),
        }
    }

    /// A system-scope fence (`Machine::gpu_system_fence`).
    fn fence_system(&mut self, writer: WriterId) {
        match self {
            EngineMem::Live(m) => {
                m.gpu_system_fence(writer);
            }
            EngineMem::Staged { stage, .. } => stage.fence_persist(writer),
        }
    }

    /// One coalesced PCIe write transaction's machine-side accounting
    /// (issued by the warp drain).
    fn pm_txn(&mut self, offset: u64, len: u64) {
        match self {
            EngineMem::Live(m) => m.gpu_pm_txn(offset, len),
            EngineMem::Staged { stage, .. } => stage.pm_txn(offset, len),
        }
    }

    /// Whether a trace sink is installed on the underlying machine.
    fn trace_enabled(&self) -> bool {
        self.machine().trace_enabled()
    }

    /// Emits (live) or stages (parallel) one trace event. Callers gate on
    /// [`EngineMem::trace_enabled`], which keeps both engines' staged state
    /// identical when tracing is off.
    fn trace(&mut self, kind: EventKind) {
        match self {
            EngineMem::Live(m) => m.trace(kind),
            EngineMem::Staged { stage, .. } => stage.trace(kind),
        }
    }

    /// A pattern-tracker barrier (issued by the warp drain for coalesced
    /// system fences).
    fn pattern_barrier(&mut self) {
        match self {
            EngineMem::Live(m) => m.gpu_pm_pattern.barrier(),
            EngineMem::Staged { stage, .. } => stage.pattern_barrier(),
        }
    }
}

/// Execution context handed to each thread, wrapping the machine with the
/// thread's identity and the warp's coalescing buffer.
pub struct ThreadCtx<'a> {
    mem: EngineMem<'a>,
    costs: &'a mut KernelCosts,
    scratch: &'a mut WarpScratch,
    gauge: &'a mut FuelGauge,
    launch: LaunchConfig,
    id: ThreadId,
    writer: WriterId,
    op_seq: u32,
}

impl fmt::Debug for ThreadCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("id", &self.id)
            .field("op_seq", &self.op_seq)
            .finish_non_exhaustive()
    }
}

impl ThreadCtx<'_> {
    fn burn(&mut self) -> SimResult<()> {
        self.gauge.burn()?;
        self.op_seq += 1;
        Ok(())
    }

    // ---- identity -----------------------------------------------------------

    /// Globally unique linear thread index (`blockIdx.x * blockDim.x +
    /// threadIdx.x`).
    pub fn global_id(&self) -> u64 {
        self.id.global(&self.launch)
    }

    /// Block index within the grid.
    pub fn block_id(&self) -> u32 {
        self.id.block
    }

    /// Thread index within the block.
    pub fn thread_in_block(&self) -> u32 {
        self.id.thread
    }

    /// Lane within the warp (0..32).
    pub fn lane(&self) -> u32 {
        self.id.lane()
    }

    /// Threads per block of this launch.
    pub fn block_dim(&self) -> u32 {
        self.launch.block
    }

    /// Blocks in this launch's grid.
    pub fn grid_dim(&self) -> u32 {
        self.launch.grid
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.launch.total_threads()
    }

    // ---- memory operations ---------------------------------------------------

    /// Stores raw bytes. PM stores travel over PCIe and coalesce per warp;
    /// they require a [`ThreadCtx::threadfence_system`] (with persistence
    /// available) to become durable.
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses and injected crashes surface as errors.
    pub fn st_bytes(&mut self, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        self.burn()?;
        match addr.space {
            MemSpace::Pm => {
                self.mem.store_pm(self.writer, addr.offset, bytes)?;
                self.costs.pm_write_bytes += bytes.len() as u64;
                self.scratch
                    .group(self.op_seq)
                    .record_write(addr.offset, bytes.len() as u64);
            }
            MemSpace::Hbm => {
                self.mem.store_vol(addr, bytes)?;
                self.costs.hbm_bytes += bytes.len() as u64;
            }
            MemSpace::Dram => {
                self.mem.store_vol(addr, bytes)?;
                self.costs.dram_bytes += bytes.len() as u64;
            }
        }
        Ok(())
    }

    /// Loads raw bytes with coherent visibility.
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses and injected crashes surface as errors.
    pub fn ld_bytes(&mut self, addr: Addr, buf: &mut [u8]) -> SimResult<()> {
        self.burn()?;
        match addr.space {
            MemSpace::Pm => {
                self.mem.load_pm(addr.offset, buf)?;
                self.costs.pm_read_bytes += buf.len() as u64;
                self.scratch
                    .group(self.op_seq)
                    .record_read(addr.offset, buf.len() as u64);
            }
            MemSpace::Hbm => {
                self.mem.read(addr, buf)?;
                self.costs.hbm_bytes += buf.len() as u64;
            }
            MemSpace::Dram => {
                self.mem.read(addr, buf)?;
                self.costs.dram_bytes += buf.len() as u64;
            }
        }
        Ok(())
    }

    /// Stores a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::st_bytes`].
    pub fn st_u32(&mut self, addr: Addr, v: u32) -> SimResult<()> {
        self.st_bytes(addr, &v.to_le_bytes())
    }

    /// Loads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::ld_bytes`].
    pub fn ld_u32(&mut self, addr: Addr) -> SimResult<u32> {
        let mut b = [0u8; 4];
        self.ld_bytes(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Stores a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::st_bytes`].
    pub fn st_u64(&mut self, addr: Addr, v: u64) -> SimResult<()> {
        self.st_bytes(addr, &v.to_le_bytes())
    }

    /// Loads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::ld_bytes`].
    pub fn ld_u64(&mut self, addr: Addr) -> SimResult<u64> {
        let mut b = [0u8; 8];
        self.ld_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Stores a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::st_bytes`].
    pub fn st_f32(&mut self, addr: Addr, v: f32) -> SimResult<()> {
        self.st_bytes(addr, &v.to_le_bytes())
    }

    /// Loads a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::ld_bytes`].
    pub fn ld_f32(&mut self, addr: Addr) -> SimResult<f32> {
        let mut b = [0u8; 4];
        self.ld_bytes(addr, &mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    /// Stores a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::st_bytes`].
    pub fn st_f64(&mut self, addr: Addr, v: f64) -> SimResult<()> {
        self.st_bytes(addr, &v.to_le_bytes())
    }

    /// Loads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// See [`ThreadCtx::ld_bytes`].
    pub fn ld_f64(&mut self, addr: Addr) -> SimResult<f64> {
        let mut b = [0u8; 8];
        self.ld_bytes(addr, &mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    /// Atomic fetch-add on a `u32` (e.g. frontier queue tails). Returns the
    /// previous value.
    ///
    /// The whole read-modify-write is one fused operation: one unit of crash
    /// fuel, and — for PM-resident targets — one non-posted PCIe transaction,
    /// not a separate load plus store that would double-count PCIe traffic
    /// (the old value returns in the same completion the RMW request elicits).
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses and injected crashes surface as errors.
    pub fn atomic_add_u32(&mut self, addr: Addr, v: u32) -> SimResult<u32> {
        self.burn()?;
        let mut b = [0u8; 4];
        self.mem.read(addr, &mut b)?;
        let old = u32::from_le_bytes(b);
        let new = old.wrapping_add(v).to_le_bytes();
        match addr.space {
            MemSpace::Pm => {
                self.mem.store_pm(self.writer, addr.offset, &new)?;
                self.costs.pm_write_bytes += 4;
                self.scratch.group(self.op_seq).record_write(addr.offset, 4);
            }
            MemSpace::Hbm => {
                self.mem.store_vol(addr, &new)?;
                self.costs.hbm_bytes += 8;
            }
            MemSpace::Dram => {
                self.mem.store_vol(addr, &new)?;
                self.costs.dram_bytes += 8;
            }
        }
        Ok(old)
    }

    // ---- fences & modelling hooks ---------------------------------------------

    /// `__threadfence_system()`: orders prior writes with respect to the
    /// whole system. Under GPM's DDIO-disabled window (or eADR) this is the
    /// persist operation; with DDIO enabled it provides visibility only.
    ///
    /// # Errors
    ///
    /// Injected crashes surface as [`SimError::Crashed`].
    pub fn threadfence_system(&mut self) -> SimResult<()> {
        self.burn()?;
        self.mem.fence_system(self.writer);
        self.scratch.group(self.op_seq).sys_fence = true;
        // A system fence is where durable state advances: the crash
        // campaign's discovery pass notes the fuel consumed so far as an
        // interesting crash point.
        self.gauge.note_boundary();
        Ok(())
    }

    /// `__threadfence()`: device-scope ordering (visibility to other blocks).
    ///
    /// # Errors
    ///
    /// Injected crashes surface as [`SimError::Crashed`].
    pub fn threadfence(&mut self) -> SimResult<()> {
        self.burn()?;
        self.scratch.group(self.op_seq).dev_fence = true;
        Ok(())
    }

    /// Declares `ns` of pure compute by this thread (hidden by parallelism).
    pub fn compute(&mut self, ns: Ns) {
        self.costs.compute += ns;
    }

    /// Declares serialized work behind contention key `key` (e.g. a lock on
    /// a log partition): chains on the same key cannot overlap.
    pub fn serialize(&mut self, key: u64, t: Ns) {
        self.costs.add_serial(key, t);
    }

    /// Whether a system fence currently guarantees durability (DDIO disabled
    /// or eADR) — what `gpm_persist` relies on.
    pub fn persist_guaranteed(&self) -> bool {
        self.mem.machine().gpu_persist_guaranteed()
    }

    /// Read-only access to platform configuration.
    pub fn config(&self) -> &gpm_sim::MachineConfig {
        &self.mem.machine().cfg
    }

    /// Emits a structured trace event at the thread's current machine state
    /// (no-op unless a sink is installed). Library layers running inside a
    /// kernel — log appends, checkpoint phases — mark themselves with this;
    /// under the block-parallel engine the event is staged with the block's
    /// other effects and replayed in block order, so traces stay identical
    /// across engine configurations.
    pub fn trace_marker(&mut self, kind: EventKind) {
        if self.mem.trace_enabled() {
            self.mem.trace(kind);
        }
    }
}

/// Launches `kernel` over `cfg`, returning its report. The machine clock
/// advances by the kernel's elapsed time.
///
/// # Errors
///
/// Returns any functional error a thread hit (e.g. out-of-bounds).
pub fn launch<K: Kernel + Sync>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
) -> SimResult<KernelReport> {
    match launch_inner(machine, cfg, kernel, &mut FuelGauge::Unlimited) {
        Ok(r) => Ok(r),
        Err(LaunchError::Sim(e)) => Err(e),
        Err(LaunchError::Crashed(_)) => unreachable!("no fuel, no crash"),
    }
}

/// Launches `kernel` with crash injection: after `fuel` context operations
/// across all threads, the machine crashes (volatile state wiped, pending PM
/// lines partially applied) and [`LaunchError::Crashed`] is returned.
///
/// # Errors
///
/// [`LaunchError::Crashed`] on fuel exhaustion; [`LaunchError::Sim`] on
/// functional errors.
pub fn launch_with_fuel<K: Kernel + Sync>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
    fuel: u64,
) -> Result<KernelReport, LaunchError> {
    launch_inner(machine, cfg, kernel, &mut FuelGauge::crash(fuel))
}

/// Like [`launch_with_fuel`], but draws from (and writes back to) a shared
/// [`FuelGauge`], so a sequence of launches can share one crash budget —
/// or one recording schedule. [`FuelGauge::Unlimited`] means no injection.
///
/// # Errors
///
/// Same as [`launch_with_fuel`].
pub fn launch_with_gauge<K: Kernel + Sync>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
    gauge: &mut FuelGauge,
) -> Result<KernelReport, LaunchError> {
    launch_inner(machine, cfg, kernel, gauge)
}

/// Host worker threads for a launch: the `LaunchConfig` override, else the
/// `GPM_ENGINE_THREADS` environment variable, else the host's available
/// parallelism.
fn resolve_engine_threads(cfg: &LaunchConfig) -> u32 {
    if let Some(t) = cfg.engine_threads {
        return t.max(1);
    }
    if let Some(t) = std::env::var("GPM_ENGINE_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
    {
        if t >= 1 {
            return t;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
}

/// The host worker-thread count a launch with `cfg` would use, after
/// applying the [`LaunchConfig::engine_threads`] override, the
/// `GPM_ENGINE_THREADS` environment variable, and the host's available
/// parallelism — what [`KernelReport::threads_used`] reports when the
/// block-parallel path commits. Exposed for harnesses that record the
/// engine configuration alongside results.
pub fn resolved_engine_threads(cfg: &LaunchConfig) -> u32 {
    resolve_engine_threads(cfg)
}

fn launch_inner<K: Kernel + Sync>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
    gauge: &mut FuelGauge,
) -> Result<KernelReport, LaunchError> {
    machine.stats.kernel_launches += 1;
    let launch_ord = machine.stats.kernel_launches;
    if machine.trace_enabled() {
        machine.trace(EventKind::KernelBegin {
            launch: launch_ord,
            grid: cfg.grid,
            block_dim: cfg.block,
        });
    }
    let threads = resolve_engine_threads(&cfg);
    // The parallel path needs independent blocks (capability), more than
    // one block to spread, and an inert gauge (fuel and schedule recording
    // draw from a global operation order that only sequential execution
    // defines).
    let result = if threads > 1
        && cfg.grid > 1
        && gauge.is_inert()
        && kernel.capability() == KernelCapability::BlockParallel
    {
        match launch_parallel(machine, cfg, kernel, threads) {
            Some(report) => Ok(report),
            // A worker erred or a cross-block conflict surfaced: the machine
            // is untouched, so the sequential engine reruns from the same
            // state and produces the canonical outcome (including the
            // canonical error).
            None => launch_sequential(machine, cfg, kernel, gauge),
        }
    } else {
        launch_sequential(machine, cfg, kernel, gauge)
    };
    let report = match result {
        Ok(report) => report,
        Err(LaunchError::Sim(e)) => {
            if machine.trace_enabled() {
                machine.trace(EventKind::KernelEnd { launch: launch_ord });
            }
            return Err(LaunchError::Sim(e));
        }
        // A mid-kernel crash already closed its spans (the sequential
        // engine emits BlockCommit + KernelEnd before wiping state, and
        // the Crash event cuts anything still open in the sink).
        Err(e) => return Err(e),
    };
    if machine.trace_enabled() {
        machine.trace(EventKind::KernelEnd { launch: launch_ord });
        machine.trace(EventKind::EngineCommit {
            threads: report.threads_used,
        });
    }
    // Launch completion is a commit boundary too: host-side work (log
    // clears, flag flips) between launches lands right after it, and a
    // crash budget equal to this op count fires at the *next* gauged
    // launch's first op — i.e. after that host work took effect.
    gauge.note_boundary();
    Ok(report)
}

/// The legacy engine: blocks run in order against the live machine. Costs
/// are still accumulated per block and merged in block order so
/// floating-point sums associate exactly as the parallel path's commit does.
fn launch_sequential<K: Kernel>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
    gauge: &mut FuelGauge,
) -> Result<KernelReport, LaunchError> {
    let pattern_before = machine.gpu_pm_pattern.clone();
    let launch_ord = machine.stats.kernel_launches;
    let mut total = KernelCosts::default();
    let mut scratch = WarpScratch::default();
    let mut states: Vec<K::State> = Vec::new();
    let mut shared = K::Shared::default();
    let phases = kernel.phases();

    for block in 0..cfg.grid {
        if machine.trace_enabled() {
            machine.trace(EventKind::BlockBegin { block });
        }
        kernel.reset_shared(&mut shared);
        states.clear();
        states.resize_with(cfg.block as usize, K::State::default);
        let mut costs = KernelCosts::default();
        for phase in 0..phases {
            for warp in 0..cfg.warps_per_block() {
                for lane in 0..WARP_SIZE {
                    let thread = warp * WARP_SIZE + lane;
                    if thread >= cfg.block {
                        break;
                    }
                    let id = ThreadId { block, thread };
                    let writer = id.global(&cfg) as WriterId;
                    let mut ctx = ThreadCtx {
                        mem: EngineMem::Live(machine),
                        costs: &mut costs,
                        scratch: &mut scratch,
                        gauge,
                        launch: cfg,
                        id,
                        writer,
                        op_seq: 0,
                    };
                    match kernel.run(phase, &mut ctx, &mut states[thread as usize], &mut shared) {
                        Ok(()) => {}
                        Err(SimError::Crashed) => {
                            // Close the open spans cleanly in the exported
                            // JSON before the crash event cuts them.
                            if machine.trace_enabled() {
                                machine.trace(EventKind::BlockCommit { block });
                                machine.trace(EventKind::KernelEnd { launch: launch_ord });
                            }
                            let report = match gauge.policy() {
                                Some(p) => machine.crash_with_policy(p),
                                None => machine.crash(),
                            };
                            return Err(LaunchError::Crashed(report));
                        }
                        Err(e) => return Err(LaunchError::Sim(e)),
                    }
                }
                scratch.drain(&mut EngineMem::Live(machine), &mut costs);
            }
        }
        total.merge(&costs);
        if machine.trace_enabled() {
            machine.trace(EventKind::BlockCommit { block });
        }
    }

    let pattern_delta: PatternTracker = machine.gpu_pm_pattern.delta(&pattern_before);
    let elapsed = total.elapsed(&machine.cfg, &cfg, &pattern_delta);
    machine.clock.advance(elapsed);
    Ok(KernelReport {
        elapsed,
        costs: total,
        threads_used: 1,
    })
}

/// Reusable per-worker execution buffers: one allocation for the whole
/// chunk of blocks, mirroring the sequential engine's reuse of `states`,
/// `shared`, and the warp scratch.
struct WorkerScratch<K: Kernel> {
    scratch: WarpScratch,
    states: Vec<K::State>,
    shared: K::Shared,
}

impl<K: Kernel> WorkerScratch<K> {
    fn new() -> WorkerScratch<K> {
        WorkerScratch {
            scratch: WarpScratch::default(),
            states: Vec::new(),
            shared: K::Shared::default(),
        }
    }
}

/// Runs one block against a fresh stage over the frozen machine, returning
/// its buffered effects and costs, or `Err` on any functional error (the
/// caller falls back to the sequential engine for the canonical outcome).
fn run_block_staged<K: Kernel>(
    base: &Machine,
    cfg: LaunchConfig,
    kernel: &K,
    block: u32,
    ws: &mut WorkerScratch<K>,
) -> Result<(BlockStage, KernelCosts), ()> {
    let mut stage = BlockStage::new();
    let mut costs = KernelCosts::default();
    let WorkerScratch {
        scratch,
        states,
        shared,
    } = ws;
    kernel.reset_shared(shared);
    states.clear();
    states.resize_with(cfg.block as usize, K::State::default);
    let mut gauge = FuelGauge::Unlimited;

    for phase in 0..kernel.phases() {
        for warp in 0..cfg.warps_per_block() {
            for lane in 0..WARP_SIZE {
                let thread = warp * WARP_SIZE + lane;
                if thread >= cfg.block {
                    break;
                }
                let id = ThreadId { block, thread };
                let writer = id.global(&cfg) as WriterId;
                let mut ctx = ThreadCtx {
                    mem: EngineMem::Staged {
                        base,
                        stage: &mut stage,
                    },
                    costs: &mut costs,
                    scratch,
                    gauge: &mut gauge,
                    launch: cfg,
                    id,
                    writer,
                    op_seq: 0,
                };
                kernel
                    .run(phase, &mut ctx, &mut states[thread as usize], shared)
                    .map_err(|_| ())?;
            }
            scratch.drain(
                &mut EngineMem::Staged {
                    base,
                    stage: &mut stage,
                },
                &mut costs,
            );
        }
    }
    Ok((stage, costs))
}

/// The block-parallel engine: a scoped worker pool runs each block against a
/// block-local stage over the frozen machine, then the main thread validates
/// and commits the stages serially in block-id order. Returns `None` —
/// machine untouched — when any worker erred or any block read a line a
/// lower-numbered block wrote (sequential execution would have shown it
/// newer data).
fn launch_parallel<K: Kernel + Sync>(
    machine: &mut Machine,
    cfg: LaunchConfig,
    kernel: &K,
    threads: u32,
) -> Option<KernelReport> {
    let grid = cfg.grid as usize;
    let workers = (threads as usize).min(grid);
    let chunk = grid.div_ceil(workers);
    let mut slots: Vec<Option<Result<(BlockStage, KernelCosts), ()>>> = Vec::new();
    slots.resize_with(grid, || None);

    {
        let base: &Machine = machine;
        std::thread::scope(|s| {
            for (w, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                let first_block = (w * chunk) as u32;
                s.spawn(move || {
                    let mut ws = WorkerScratch::<K>::new();
                    for (i, slot) in slot_chunk.iter_mut().enumerate() {
                        let block = first_block + i as u32;
                        *slot = Some(run_block_staged(base, cfg, kernel, block, &mut ws));
                    }
                });
            }
        });
    }

    // Validate before committing anything: all-or-nothing, no rollback.
    let mut written: HashSet<LineKey> = HashSet::new();
    let mut stages = Vec::with_capacity(grid);
    for slot in slots {
        let (stage, costs) = slot.expect("worker filled its slot").ok()?;
        if stage.reads_conflict(&written) {
            return None;
        }
        stage.extend_writes(&mut written);
        stages.push((stage, costs));
    }

    let pattern_before = machine.gpu_pm_pattern.clone();
    let mut total = KernelCosts::default();
    for (block, (stage, costs)) in stages.iter().enumerate() {
        if machine.trace_enabled() {
            machine.trace(EventKind::BlockBegin {
                block: block as u32,
            });
        }
        stage.commit(machine);
        total.merge(costs);
        if machine.trace_enabled() {
            machine.trace(EventKind::BlockCommit {
                block: block as u32,
            });
        }
    }

    let pattern_delta: PatternTracker = machine.gpu_pm_pattern.delta(&pattern_before);
    let elapsed = total.elapsed(&machine.cfg, &cfg, &pattern_delta);
    machine.clock.advance(elapsed);
    Some(KernelReport {
        elapsed,
        costs: total,
        threads_used: workers as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnKernel;

    #[test]
    fn coalesced_warp_writes_are_one_transaction() {
        // 32 lanes write 4 consecutive bytes each: one 128-byte line.
        let mut m = Machine::default();
        let pm = m.alloc_pm(4096).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u32(Addr::pm(pm + i * 4), i as u32)
        });
        let r = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap();
        assert_eq!(
            r.costs.pcie_write_txns, 1,
            "hardware coalescing merged the warp's stores"
        );
        assert_eq!(r.costs.pm_write_bytes, 128);
    }

    #[test]
    fn scattered_warp_writes_do_not_coalesce() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 20).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u32(Addr::pm(pm + i * 4096), i as u32)
        });
        let r = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap();
        assert_eq!(r.costs.pcie_write_txns, 32);
    }

    #[test]
    fn warp_fences_coalesce_to_one_event() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(4096).unwrap();
        m.set_ddio(false);
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u32(Addr::pm(pm + i * 4), 7)?;
            ctx.threadfence_system()
        });
        let r = launch(&mut m, LaunchConfig::new(1, 64), &k).unwrap();
        assert_eq!(r.costs.system_fence_events, 2, "one per warp");
        assert!(!m.pm().is_pending(pm, 256));
    }

    #[test]
    fn clock_advances_by_elapsed() {
        let mut m = Machine::default();
        let t0 = m.clock.now();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            ctx.compute(Ns::from_micros(10.0));
            Ok(())
        });
        let r = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap();
        assert_eq!(m.clock.now(), t0 + r.elapsed);
        assert!(r.elapsed >= m.cfg.kernel_launch_overhead);
    }

    #[test]
    fn fuel_exhaustion_crashes_machine() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 16).unwrap();
        let hbm = m.alloc_hbm(64).unwrap();
        m.host_write(Addr::hbm(hbm), &[9; 8]).unwrap();
        m.set_ddio(false);
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i)?;
            ctx.threadfence_system()
        });
        let err = launch_with_fuel(&mut m, LaunchConfig::new(4, 64), &k, 100).unwrap_err();
        match err {
            LaunchError::Crashed(_) => {}
            other => panic!("expected crash, got {other}"),
        }
        assert_eq!(m.stats.crashes, 1);
        assert_eq!(
            m.read_u64(Addr::hbm(hbm)).unwrap(),
            0,
            "volatile state wiped"
        );
        // Threads that fenced before the crash have durable data.
        assert_eq!(m.read_u64(Addr::pm(pm)).unwrap(), 0); // thread 0 wrote value 0
        assert_eq!(m.read_u64(Addr::pm(pm + 8)).unwrap(), 1);
    }

    #[test]
    fn generous_fuel_completes() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(4096).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.st_u32(Addr::pm(pm), 1));
        let r = launch_with_fuel(&mut m, LaunchConfig::new(1, 32), &k, 1_000_000).unwrap();
        assert!(r.elapsed.0 > 0.0);
        assert_eq!(m.stats.crashes, 0);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut m = Machine::default();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.st_u32(Addr::pm(m_capacity_plus()), 1));
        fn m_capacity_plus() -> u64 {
            u64::MAX - 16
        }
        let err = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn atomic_add_accumulates_across_threads() {
        let mut m = Machine::default();
        let ctr = m.alloc_hbm(4).unwrap();
        let k =
            FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.atomic_add_u32(Addr::hbm(ctr), 1).map(|_| ()));
        launch(&mut m, LaunchConfig::new(4, 64), &k).unwrap();
        assert_eq!(m.read_u32(Addr::hbm(ctr)).unwrap(), 256);
    }

    #[test]
    fn pm_atomic_is_one_fused_transaction() {
        let mut m = Machine::default();
        let ctr = m.alloc_pm(4).unwrap();
        let k =
            FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.atomic_add_u32(Addr::pm(ctr), 1).map(|_| ()));
        let r = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap();
        assert_eq!(m.read_u32(Addr::pm(ctr)).unwrap(), 32);
        // One warp, same program point, same line: one RMW transaction — and
        // in particular no separate read transactions doubling the traffic.
        assert_eq!(r.costs.pcie_write_txns, 1);
        assert_eq!(r.costs.pcie_read_txns, 0);
        assert_eq!(r.costs.pm_write_bytes, 32 * 4);
        assert_eq!(r.costs.pm_read_bytes, 0);
    }

    #[test]
    fn pm_atomic_consumes_one_fuel_unit() {
        let mut m = Machine::default();
        let ctr = m.alloc_pm(4).unwrap();
        let k =
            FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.atomic_add_u32(Addr::pm(ctr), 1).map(|_| ()));
        // 32 lanes, one fused op each: exactly 32 fuel completes the launch.
        launch_with_fuel(&mut m, LaunchConfig::new(1, 32), &k, 32).unwrap();
        let mut m2 = Machine::default();
        let ctr2 = m2.alloc_pm(4).unwrap();
        let k2 = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            ctx.atomic_add_u32(Addr::pm(ctr2), 1).map(|_| ())
        });
        let err = launch_with_fuel(&mut m2, LaunchConfig::new(1, 32), &k2, 31).unwrap_err();
        assert!(matches!(err, LaunchError::Crashed(_)));
    }

    #[test]
    fn record_gauge_notes_fences_and_launch_end() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 16).unwrap();
        m.set_ddio(false);
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i)?;
            ctx.threadfence_system()
        });
        let mut gauge = FuelGauge::record();
        launch_with_gauge(&mut m, LaunchConfig::new(1, 64), &k, &mut gauge).unwrap();
        let schedule = gauge.into_schedule().unwrap();
        // 64 threads × (store + fence) = 128 ops; every thread's fence is a
        // boundary, and the launch end coincides with the last fence.
        assert_eq!(schedule.total_ops(), 128);
        assert_eq!(schedule.boundaries().len(), 64);
        assert_eq!(schedule.boundaries().last(), Some(&128));
        assert_eq!(m.stats.crashes, 0, "recording never crashes");
    }

    #[test]
    fn recorded_boundary_replays_as_crash_budget() {
        // The engine is deterministic: a fuel budget equal to a recorded
        // boundary crashes exactly at that boundary — the thread that fenced
        // there has durable data, the next one does not.
        let run = |gauge: &mut FuelGauge| {
            let mut m = Machine::default();
            let pm = m.alloc_pm(1 << 16).unwrap();
            m.set_ddio(false);
            let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                ctx.st_u64(Addr::pm(pm + i * 8), i + 1)?;
                ctx.threadfence_system()
            });
            let res = launch_with_gauge(&mut m, LaunchConfig::new(1, 64), &k, gauge);
            (m, pm, res.is_err())
        };
        let mut rec = FuelGauge::record();
        run(&mut rec);
        let schedule = rec.into_schedule().unwrap();
        let boundary = schedule.boundaries()[9]; // thread 9's fence
        let mut crash = FuelGauge::crash_with_policy(boundary, CrashPolicy::NoneApplied);
        let (m, pm, crashed) = run(&mut crash);
        assert!(crashed);
        assert_eq!(m.read_u64(Addr::pm(pm + 9 * 8)).unwrap(), 10, "fenced");
        assert_eq!(m.read_u64(Addr::pm(pm + 10 * 8)).unwrap(), 0, "not yet");
    }

    #[test]
    fn crash_policy_steers_pending_line_fate() {
        let run = |policy| {
            let mut m = Machine::default();
            let pm = m.alloc_pm(1 << 16).unwrap();
            // DDIO on: stores stay pending, so the crash decides everything.
            let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                ctx.st_u64(Addr::pm(pm + i * 64), i + 1)
            });
            // 64 threads × 1 op: a 32-op budget crashes halfway with the
            // first 32 threads' lines pending.
            let mut gauge = FuelGauge::crash_with_policy(32, policy);
            let err =
                launch_with_gauge(&mut m, LaunchConfig::new(1, 64), &k, &mut gauge).unwrap_err();
            assert!(matches!(err, LaunchError::Crashed(_)));
            (0..32u64)
                .filter(|&i| m.read_u64(Addr::pm(pm + i * 64)).unwrap() == i + 1)
                .count()
        };
        assert_eq!(run(CrashPolicy::AllApplied), 32);
        assert_eq!(run(CrashPolicy::NoneApplied), 0);
        let some = run(CrashPolicy::Random(5));
        assert!(some > 0 && some < 32, "random subset is proper: {some}");
    }

    #[test]
    fn record_gauge_forces_sequential_engine() {
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 20).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i)
        });
        let mut gauge = FuelGauge::record();
        let r = launch_with_gauge(
            &mut m,
            LaunchConfig::new(8, 64).with_engine_threads(4),
            &k,
            &mut gauge,
        )
        .unwrap();
        assert_eq!(r.threads_used, 1, "recording needs the global op order");
    }

    #[test]
    fn hbm_traffic_counts_bytes_not_txns() {
        let mut m = Machine::default();
        let hbm = m.alloc_hbm(1 << 16).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::hbm(hbm + i * 8), i)
        });
        let r = launch(&mut m, LaunchConfig::new(1, 128), &k).unwrap();
        assert_eq!(r.costs.hbm_bytes, 128 * 8);
        assert_eq!(r.costs.pcie_write_txns, 0);
    }

    #[test]
    fn more_parallelism_hides_fence_latency() {
        // The §3.2 scaling experiment in miniature: same total persists,
        // more threads, shorter elapsed time — up to the in-flight limit.
        let total: u64 = 1 << 12;
        let mut times = Vec::new();
        for threads in [32u32, 128, 512] {
            let mut m = Machine::default();
            let pm = m.alloc_pm(1 << 20).unwrap();
            m.set_ddio(false);
            let per = total / threads as u64;
            let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                for j in 0..per {
                    ctx.st_u64(Addr::pm(pm + (i * per + j) * 8), j)?;
                    ctx.threadfence_system()?;
                }
                Ok(())
            });
            let r = launch(&mut m, LaunchConfig::for_elements(threads as u64, 32), &k).unwrap();
            times.push(r.elapsed);
        }
        assert!(times[0] > times[1] * 2.0, "{:?}", times);
        assert!(times[1] > times[2], "{:?}", times);
    }

    /// Two machines with identical setup for comparing engine modes.
    fn twin_machines(pm_bytes: u64) -> (Machine, Machine, u64) {
        let mut a = Machine::default();
        let mut b = Machine::default();
        let pa = a.alloc_pm(pm_bytes).unwrap();
        let pb = b.alloc_pm(pm_bytes).unwrap();
        assert_eq!(pa, pb);
        (a, b, pa)
    }

    #[test]
    fn parallel_commit_matches_sequential_bit_for_bit() {
        let (mut seq, mut par, pm) = twin_machines(1 << 20);
        seq.set_ddio(false);
        par.set_ddio(false);
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i * 3)?;
            ctx.compute(Ns(7.5));
            ctx.threadfence_system()
        });
        let r1 = launch(
            &mut seq,
            LaunchConfig::new(8, 64).with_engine_threads(1),
            &k,
        )
        .unwrap();
        let r4 = launch(
            &mut par,
            LaunchConfig::new(8, 64).with_engine_threads(4),
            &k,
        )
        .unwrap();
        assert_eq!(r1.threads_used, 1);
        assert_eq!(r4.threads_used, 4, "parallel path must have committed");
        assert_eq!(r1.costs, r4.costs);
        assert_eq!(r1.elapsed.0.to_bits(), r4.elapsed.0.to_bits());
        assert_eq!(format!("{:?}", seq.stats), format!("{:?}", par.stats));
        assert_eq!(seq.clock.now(), par.clock.now());
        let mut ba = vec![0u8; 8 * 64 * 8];
        let mut bb = ba.clone();
        seq.read(Addr::pm(pm), &mut ba).unwrap();
        par.read(Addr::pm(pm), &mut bb).unwrap();
        assert_eq!(ba, bb);
    }

    #[test]
    fn cross_block_read_conflict_falls_back_to_sequential() {
        // Block 1+ reads the line block 0 writes: the staged read would see
        // stale data, so the conflict check must reject the commit and the
        // sequential rerun must produce the canonical result.
        let (mut seq, mut par, pm) = twin_machines(1 << 16);
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            if ctx.block_id() == 0 {
                ctx.st_u64(Addr::pm(pm + i * 8), 42)
            } else {
                let v = ctx.ld_u64(Addr::pm(pm))?; // block 0, thread 0's slot
                ctx.st_u64(Addr::pm(pm + i * 8), v + 1)
            }
        });
        let r1 = launch(
            &mut seq,
            LaunchConfig::new(4, 32).with_engine_threads(1),
            &k,
        )
        .unwrap();
        let r4 = launch(
            &mut par,
            LaunchConfig::new(4, 32).with_engine_threads(4),
            &k,
        )
        .unwrap();
        assert_eq!(r4.threads_used, 1, "conflict must force the fallback");
        assert_eq!(r1.costs, r4.costs);
        assert_eq!(format!("{:?}", seq.stats), format!("{:?}", par.stats));
        assert_eq!(par.read_u64(Addr::pm(pm + 32 * 8)).unwrap(), 43);
    }

    #[test]
    fn cross_block_atomics_fall_back_via_conflict_check() {
        // An unannotated kernel whose blocks all RMW one HBM counter: the
        // atomic's read half touches a line earlier blocks wrote, so the
        // runtime check (not the capability flag) catches it.
        let mut m = Machine::default();
        let ctr = m.alloc_hbm(4).unwrap();
        let k =
            FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.atomic_add_u32(Addr::hbm(ctr), 1).map(|_| ()));
        let r = launch(&mut m, LaunchConfig::new(4, 64).with_engine_threads(4), &k).unwrap();
        assert_eq!(r.threads_used, 1);
        assert_eq!(m.read_u32(Addr::hbm(ctr)).unwrap(), 256);
    }

    #[test]
    fn communicating_capability_skips_parallel_path() {
        use crate::kernel::Communicating;
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 16).unwrap();
        let k = Communicating(FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 8), i)
        }));
        let r = launch(&mut m, LaunchConfig::new(4, 32).with_engine_threads(4), &k).unwrap();
        assert_eq!(r.threads_used, 1, "capability flag must veto parallelism");
    }

    #[test]
    fn parallel_errors_rerun_sequentially_for_canonical_outcome() {
        // A worker hits out-of-bounds: the launch must surface the same
        // error (and leave the same machine state) sequential execution does.
        let (mut seq, mut par, _) = twin_machines(4096);
        let pm = seq.space_capacity(MemSpace::Pm) - 2048;
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u64(Addr::pm(pm + i * 64), i) // blocks 1+ run off the end
        });
        let e1 = launch(
            &mut seq,
            LaunchConfig::new(4, 32).with_engine_threads(1),
            &k,
        )
        .unwrap_err();
        let e4 = launch(
            &mut par,
            LaunchConfig::new(4, 32).with_engine_threads(4),
            &k,
        )
        .unwrap_err();
        assert_eq!(format!("{e1}"), format!("{e4}"));
        assert_eq!(format!("{:?}", seq.stats), format!("{:?}", par.stats));
        let mut ba = vec![0u8; 2048];
        let mut bb = ba.clone();
        seq.read(Addr::pm(pm), &mut ba).unwrap();
        par.read(Addr::pm(pm), &mut bb).unwrap();
        assert_eq!(ba, bb, "partial effects of the failed launch must match");
    }

    #[test]
    fn env_thread_count_is_overridden_by_launch_config() {
        // `with_engine_threads(1)` pins the sequential path regardless of
        // the environment; grid=1 never parallelizes.
        let mut m = Machine::default();
        let pm = m.alloc_pm(4096).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| ctx.st_u32(Addr::pm(pm), 1));
        let r = launch(&mut m, LaunchConfig::new(1, 32).with_engine_threads(8), &k).unwrap();
        assert_eq!(r.threads_used, 1, "a single block cannot spread");
    }

    #[test]
    fn interleaved_reads_and_writes_group_by_program_point() {
        // Lanes read one line and write another at alternating program
        // points; groups must keep reads and writes separate per seq.
        let mut m = Machine::default();
        let pm = m.alloc_pm(1 << 16).unwrap();
        m.host_write(Addr::pm(pm + 8192), &[3; 128]).unwrap();
        let k = FnKernel(|ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            let v = ctx.ld_u32(Addr::pm(pm + 8192 + i * 4))?;
            ctx.st_u32(Addr::pm(pm + i * 4), v + 1)
        });
        let r = launch(&mut m, LaunchConfig::new(1, 32), &k).unwrap();
        assert_eq!(r.costs.pcie_read_txns, 1, "one coalesced read line");
        assert_eq!(r.costs.pcie_write_txns, 1, "one coalesced write line");
        assert_eq!(m.read_u32(Addr::pm(pm)).unwrap(), 0x03030304);
    }
}
