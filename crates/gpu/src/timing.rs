//! The analytical kernel timing model.
//!
//! A kernel's elapsed time is the maximum over the resources it can overlap
//! (compute across resident threads, device-memory bandwidth, PCIe/PM
//! bandwidth, transaction issue, fence round-trips) plus any serialized
//! component (lock-protected log partitions), plus launch overhead. The
//! model reproduces the paper's scaling behaviour: massive parallelism hides
//! individual persist latency (§3.2) until the PCIe in-flight limit or the
//! PM's pattern-dependent bandwidth saturates.

use std::collections::HashMap;

use gpm_sim::config::MachineConfig;
use gpm_sim::pattern::PatternTracker;
use gpm_sim::{Ns, PersistencyModel};

use crate::dim::LaunchConfig;

/// Resource usage accumulated over one kernel launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelCosts {
    /// Total compute time declared by threads via `ThreadCtx::compute`.
    pub compute: Ns,
    /// Bytes moved to/from GPU device memory.
    pub hbm_bytes: u64,
    /// Bytes moved to/from host DRAM over PCIe (UVA).
    pub dram_bytes: u64,
    /// Bytes written to PM over PCIe.
    pub pm_write_bytes: u64,
    /// Bytes read from PM over PCIe.
    pub pm_read_bytes: u64,
    /// Coalesced PCIe write transactions to PM.
    pub pcie_write_txns: u64,
    /// Coalesced PCIe read transactions from PM.
    pub pcie_read_txns: u64,
    /// Warp-coalesced system-scope fence events.
    pub system_fence_events: u64,
    /// Warp-coalesced device-scope fence events.
    pub device_fence_events: u64,
    /// Serialized time per contention key (e.g. a lock-protected log
    /// partition): the slowest key adds directly to elapsed time.
    pub serial: HashMap<u64, Ns>,
}

impl KernelCosts {
    /// Adds serialized work attributed to contention key `key`.
    pub fn add_serial(&mut self, key: u64, t: Ns) {
        *self.serial.entry(key).or_insert(Ns::ZERO) += t;
    }

    /// Folds one block's costs into a launch total. Both engines accumulate
    /// per block and merge in block-id order, so the floating-point sums
    /// (`compute`, per-key `serial`) associate identically whether blocks
    /// ran sequentially or staged on worker threads.
    pub fn merge(&mut self, block: &KernelCosts) {
        self.compute += block.compute;
        self.hbm_bytes += block.hbm_bytes;
        self.dram_bytes += block.dram_bytes;
        self.pm_write_bytes += block.pm_write_bytes;
        self.pm_read_bytes += block.pm_read_bytes;
        self.pcie_write_txns += block.pcie_write_txns;
        self.pcie_read_txns += block.pcie_read_txns;
        self.system_fence_events += block.system_fence_events;
        self.device_fence_events += block.device_fence_events;
        for (&key, &t) in &block.serial {
            self.add_serial(key, t);
        }
    }

    /// The longest serialized chain.
    pub fn serial_time(&self) -> Ns {
        self.serial.values().copied().fold(Ns::ZERO, Ns::max)
    }

    /// Elapsed kernel time under `cfg` for a launch of shape `launch`, with
    /// `pattern` describing this kernel's PM write mix, assuming strict
    /// persistency. Equivalent to [`KernelCosts::elapsed_with_model`] with
    /// [`PersistencyModel::Strict`].
    pub fn elapsed(
        &self,
        cfg: &MachineConfig,
        launch: &LaunchConfig,
        pattern: &PatternTracker,
    ) -> Ns {
        self.elapsed_with_model(cfg, launch, pattern, PersistencyModel::Strict)
    }

    /// Elapsed kernel time under a chosen [`PersistencyModel`]. Under
    /// [`PersistencyModel::Strict`] every system fence pays the full
    /// persist round trip ([`MachineConfig::effective_system_fence_latency`]);
    /// under [`PersistencyModel::Epoch`] fences only order into the open
    /// epoch ([`MachineConfig::epoch_fence_latency`]) and the launch pays
    /// one terminal full-latency drain at the epoch boundary (when any
    /// system fence was issued at all).
    pub fn elapsed_with_model(
        &self,
        cfg: &MachineConfig,
        launch: &LaunchConfig,
        pattern: &PatternTracker,
        model: PersistencyModel,
    ) -> Ns {
        let cores = launch.total_threads().min(cfg.total_cuda_cores() as u64) as f64;
        let warps_overlap = launch
            .total_warps()
            .min(cfg.pcie_max_inflight as u64)
            .max(1) as f64;

        let compute_time = self.compute / cores.max(1.0);
        let hbm_time = Ns(self.hbm_bytes as f64 / cfg.hbm_bw);

        // Under eADR the LLC is inside the persistence domain: it absorbs
        // and write-combines bursts before they drain to the NVDIMMs, so
        // scattered writes behave no worse than unaligned sequential ones.
        let mut pm_write_bw = pattern.effective_bandwidth(cfg).min(cfg.pcie_bw);
        if cfg.persist_mode == gpm_sim::PersistMode::Eadr {
            pm_write_bw = pm_write_bw.max(cfg.pm_bw_seq_unaligned).min(cfg.pcie_bw);
        }
        let pm_read_bw = cfg.pm_read_bw.min(cfg.pcie_bw);
        let pcie_bytes_time = Ns(self.pm_write_bytes as f64 / pm_write_bw
            + self.pm_read_bytes as f64 / pm_read_bw
            + self.dram_bytes as f64 / cfg.pcie_bw);

        let txn_cost = self.pcie_write_txns as f64 * cfg.pcie_txn_overhead.0
            + self.pcie_read_txns as f64 * (cfg.pcie_txn_overhead.0 + cfg.pm_read_latency.0);
        let txn_time = Ns(txn_cost / warps_overlap);

        let sys_lat = cfg.effective_system_fence_latency();
        let dev_fence_time = self.device_fence_events as f64 * cfg.device_fence_latency.0
            / (launch.total_warps().max(1) as f64);
        let fence_time = match model {
            PersistencyModel::Strict => {
                Ns(self.system_fence_events as f64 * sys_lat.0 / warps_overlap + dev_fence_time)
            }
            PersistencyModel::Epoch => {
                // Each fence only posts an epoch-ordering marker; the one
                // deferred drain at kernel completion pays the full persist
                // round trip (it cannot overlap — the kernel is over).
                let drain = if self.system_fence_events > 0 {
                    sys_lat.0
                } else {
                    0.0
                };
                Ns(
                    self.system_fence_events as f64 * cfg.epoch_fence_latency.0 / warps_overlap
                        + drain
                        + dev_fence_time,
                )
            }
        };

        let overlapped = compute_time
            .max(hbm_time)
            .max(pcie_bytes_time)
            .max(txn_time)
            .max(fence_time);
        cfg.kernel_launch_overhead + overlapped + self.serial_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (MachineConfig, LaunchConfig, PatternTracker) {
        (
            MachineConfig::default(),
            LaunchConfig::new(64, 256),
            PatternTracker::new(),
        )
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let (cfg, launch, pat) = base();
        let t = KernelCosts::default().elapsed(&cfg, &launch, &pat);
        assert_eq!(t, cfg.kernel_launch_overhead);
    }

    #[test]
    fn compute_scales_with_parallelism() {
        let (cfg, _, pat) = base();
        let c = KernelCosts {
            compute: Ns::from_millis(1000.0),
            ..KernelCosts::default()
        };
        let small = LaunchConfig::new(1, 32);
        let big = LaunchConfig::new(1024, 256);
        assert!(c.elapsed(&cfg, &small, &pat) > c.elapsed(&cfg, &big, &pat) * 100.0);
    }

    #[test]
    fn fence_time_saturates_at_inflight_limit() {
        let (cfg, _, pat) = base();
        let c = KernelCosts {
            system_fence_events: 100_000,
            ..KernelCosts::default()
        };
        let one_warp = LaunchConfig::new(1, 32);
        let sixteen = LaunchConfig::new(16, 32);
        let many = LaunchConfig::new(1024, 32);
        let t1 = c.elapsed(&cfg, &one_warp, &pat);
        let t16 = c.elapsed(&cfg, &sixteen, &pat);
        let tmany = c.elapsed(&cfg, &many, &pat);
        assert!(t1 > t16 * 10.0);
        let ratio = t16 / tmany;
        assert!(
            ratio < 1.05,
            "beyond the in-flight limit, no further scaling: {ratio}"
        );
    }

    #[test]
    fn eadr_shrinks_fence_time() {
        let (cfg, launch, pat) = base();
        let eadr = cfg.clone().with_eadr();
        let c = KernelCosts {
            system_fence_events: 1_000_000,
            ..KernelCosts::default()
        };
        assert!(c.elapsed(&cfg, &launch, &pat) > c.elapsed(&eadr, &launch, &pat) * 5.0);
    }

    #[test]
    fn epoch_model_cuts_fence_time_but_pays_terminal_drain() {
        let (cfg, launch, pat) = base();
        let c = KernelCosts {
            system_fence_events: 100_000,
            ..KernelCosts::default()
        };
        let strict = c.elapsed_with_model(&cfg, &launch, &pat, PersistencyModel::Strict);
        let epoch = c.elapsed_with_model(&cfg, &launch, &pat, PersistencyModel::Epoch);
        assert_eq!(
            strict,
            c.elapsed(&cfg, &launch, &pat),
            "elapsed() is strict"
        );
        // epoch_fence_latency / system_fence_latency ≈ 150/1100: large win.
        assert!(strict > epoch * 5.0, "strict {strict} vs epoch {epoch}");
        // The terminal drain shows up: one fence under epoch still pays a
        // full system-fence round trip on top of its cheap ordering cost.
        let one = KernelCosts {
            system_fence_events: 1,
            ..KernelCosts::default()
        };
        let one_epoch = one.elapsed_with_model(&cfg, &launch, &pat, PersistencyModel::Epoch);
        assert!(one_epoch >= cfg.kernel_launch_overhead + cfg.system_fence_latency);
        // No fences ⇒ no drain: models agree exactly.
        let none = KernelCosts::default();
        assert_eq!(
            none.elapsed_with_model(&cfg, &launch, &pat, PersistencyModel::Epoch),
            none.elapsed(&cfg, &launch, &pat)
        );
    }

    #[test]
    fn pattern_governs_pm_write_bandwidth() {
        let (cfg, launch, _) = base();
        let mut seq = PatternTracker::new();
        let mut rnd = PatternTracker::new();
        for i in 0..4096u64 {
            seq.record(i * 256, 256);
            rnd.record((i * 7919 * 64) % (1 << 30), 8);
            rnd.barrier();
        }
        let c = KernelCosts {
            pm_write_bytes: 1 << 26,
            ..KernelCosts::default()
        };
        let t_seq = c.elapsed(&cfg, &launch, &seq);
        let t_rnd = c.elapsed(&cfg, &launch, &rnd);
        assert!(t_rnd > t_seq * 10.0, "random pattern must throttle writes");
    }

    #[test]
    fn serial_time_adds_to_elapsed() {
        let (cfg, launch, pat) = base();
        let mut c = KernelCosts::default();
        c.add_serial(1, Ns::from_millis(2.0));
        c.add_serial(1, Ns::from_millis(3.0));
        c.add_serial(2, Ns::from_millis(4.0));
        assert_eq!(c.serial_time(), Ns::from_millis(5.0));
        let t = c.elapsed(&cfg, &launch, &pat);
        assert!(t >= Ns::from_millis(5.0));
    }

    #[test]
    fn overlapping_resources_take_max_not_sum() {
        let (cfg, launch, pat) = base();
        let mut c = KernelCosts {
            hbm_bytes: 1 << 30,
            ..KernelCosts::default()
        };
        let hbm_only = c.elapsed(&cfg, &launch, &pat);
        c.compute = Ns::from_micros(1.0); // negligible compute
        let both = c.elapsed(&cfg, &launch, &pat);
        assert!((both.0 - hbm_only.0).abs() < 1.0);
    }
}
