//! The kernel abstraction.
//!
//! A CUDA `__global__` function maps to an implementation of [`Kernel`].
//! Block-wide barriers (`__syncthreads()`) are expressed as *phase
//! boundaries*: the engine runs phase `p` for every thread of a block before
//! any thread enters phase `p + 1`, which is exactly the synchronization a
//! barrier provides. Per-thread values that live across a barrier go in
//! [`Kernel::State`]; `__shared__` memory maps to [`Kernel::Shared`].

use gpm_sim::SimResult;

use crate::exec::{ThreadCtx, WarpCtx};

/// How a kernel's blocks may be scheduled relative to each other.
///
/// The engine runs [`KernelCapability::BlockParallel`] kernels across a host
/// thread pool (staged execution, deterministic block-order commit) when the
/// engine thread count allows; [`KernelCapability::Communicating`] kernels
/// always take the sequential path. The parallel path additionally runs a
/// line-granular runtime conflict check, so a mis-annotated `BlockParallel`
/// kernel that *does* read another block's writes falls back to sequential
/// execution rather than diverging — the annotation is a scheduling hint
/// plus a guard against non-terminating cross-block waits, not a soundness
/// obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelCapability {
    /// Blocks never observe each other's writes within one launch (they may
    /// share read-only data and may write disjoint lines). The common
    /// GPMbench shape.
    BlockParallel,
    /// Blocks communicate mid-kernel — inter-block atomics used as
    /// synchronization, shared append logs, spin-waits on another block's
    /// store. Must run sequentially: a spin-wait against a frozen snapshot
    /// would never terminate.
    Communicating,
}

/// A GPU kernel executed over a grid of threadblocks.
///
/// # Examples
///
/// A kernel with one barrier (two phases), accumulating a block-wide sum in
/// shared memory:
///
/// ```
/// use gpm_gpu::{Kernel, ThreadCtx, LaunchConfig, launch};
/// use gpm_sim::{Machine, Addr, SimResult};
///
/// struct BlockSum { input: u64, output: u64 }
///
/// impl Kernel for BlockSum {
///     type State = ();
///     type Shared = u64; // __shared__ accumulator
///     fn phases(&self) -> u32 { 2 }
///     fn run(&self, phase: u32, ctx: &mut ThreadCtx<'_>, _: &mut (), shared: &mut u64)
///         -> SimResult<()>
///     {
///         match phase {
///             0 => *shared += ctx.ld_u32(Addr::hbm(self.input + ctx.global_id() * 4))? as u64,
///             _ => {
///                 if ctx.thread_in_block() == 0 {
///                     ctx.st_u64(Addr::hbm(self.output + ctx.block_id() as u64 * 8), *shared)?;
///                 }
///             }
///         }
///         Ok(())
///     }
/// }
///
/// let mut m = Machine::default();
/// let input = m.alloc_hbm(4 * 64)?;
/// let output = m.alloc_hbm(8)?;
/// for i in 0..64 {
///     m.host_write(Addr::hbm(input + i * 4), &1u32.to_le_bytes())?;
/// }
/// launch(&mut m, LaunchConfig::new(1, 64), &BlockSum { input, output })?;
/// assert_eq!(m.read_u64(Addr::hbm(output))?, 64);
/// # Ok::<(), gpm_sim::SimError>(())
/// ```
pub trait Kernel {
    /// Per-thread state preserved across phase (barrier) boundaries.
    type State: Default;

    /// Block-shared state (`__shared__` memory analogue).
    type Shared: Default;

    /// Number of phases (barrier-separated sections). Defaults to one.
    fn phases(&self) -> u32 {
        1
    }

    /// Whether this kernel's blocks may execute on separate host threads.
    /// Defaults to [`KernelCapability::BlockParallel`]; override for kernels
    /// that communicate across blocks mid-launch (see [`Communicating`] for
    /// wrapping closure kernels).
    fn capability(&self) -> KernelCapability {
        KernelCapability::BlockParallel
    }

    /// Resets block-shared state for the next block, reusing its allocation
    /// where possible (the engine calls this instead of constructing a fresh
    /// `Shared` per block). The result must be indistinguishable from
    /// `Self::Shared::default()`; the default implementation simply replaces
    /// the value. Override to keep heap capacity, e.g. `shared.vals.clear()`.
    fn reset_shared(&self, shared: &mut Self::Shared) {
        *shared = Self::Shared::default();
    }

    /// Executes one phase for one thread.
    ///
    /// # Errors
    ///
    /// Propagate [`gpm_sim::SimError`] from context operations with `?`; in
    /// particular [`gpm_sim::SimError::Crashed`] must not be swallowed, or
    /// injected crashes will not terminate the kernel.
    fn run(
        &self,
        phase: u32,
        ctx: &mut ThreadCtx<'_>,
        state: &mut Self::State,
        shared: &mut Self::Shared,
    ) -> SimResult<()>;

    /// Executes one phase for *all* active lanes of one warp in lockstep —
    /// the vectorized fast path. `states` holds the warp's per-lane states
    /// (`states[i]` is lane `i`; fewer than 32 for a partial tail warp).
    ///
    /// Return `Ok(true)` after handling the whole phase through the
    /// [`WarpCtx`] vector operations, or `Ok(false)` — **before issuing any
    /// context operation** — to fall back to 32 per-lane [`Kernel::run`]
    /// walks. The default declines, so existing kernels are unaffected.
    ///
    /// An implementation must be *semantically equivalent* to running
    /// [`Kernel::run`] once per lane: same stores, loads, fences, and costs.
    /// The engine guarantees the equivalence is observable only through
    /// speed — it invokes `run_warp` solely when no trace sink wants
    /// per-lane events and the fuel gauge (if any) provably cannot expire
    /// inside the warp (see [`Kernel::warp_fuel`]), and vector operations
    /// account counters — fuel included — exactly as the per-lane walk
    /// would. The one documented divergence: a warp's vector operations
    /// execute *operation-major* (every lane's store, then every lane's
    /// fence) where the per-lane walk runs each lane to completion in turn,
    /// so `gpm_sim::Stats::bytes_persisted` can differ whenever several
    /// lanes dirty one CPU line between fences — the operation-major count
    /// is the SIMT-faithful one, and nothing in the timing model reads it.
    fn run_warp(
        &self,
        phase: u32,
        ctx: &mut WarpCtx<'_>,
        states: &mut [Self::State],
        shared: &mut Self::Shared,
    ) -> SimResult<bool> {
        let _ = (phase, ctx, states, shared);
        Ok(false)
    }

    /// An upper bound on the fuel (counted context operations: stores,
    /// loads, atomics, fences) *one lane* issues in `phase` — the contract
    /// that lets fuel-gauged (crash-injected) launches take the vector path.
    ///
    /// When this returns `Some(bound)`, a crash gauge with at least
    /// `bound × lanes` fuel remaining provably cannot expire inside the
    /// warp, so the engine may dispatch [`Kernel::run_warp`] and burn fuel
    /// warp-at-a-time ([`WarpCtx`] operations burn `lanes` fuel each); any
    /// warp the bound does not cover falls back to the per-lane walk, whose
    /// fuel accounting is exact. Returning an under-estimate is a contract
    /// violation (debug builds assert; release builds saturate), so prefer a
    /// generous bound — precision only affects how close to the crash point
    /// vectorization stops. The default `None` keeps gauged runs per-lane.
    ///
    /// Recording gauges ([`crate::FuelGauge::Record`]) never vectorize —
    /// boundary enumeration is inherently per-op — so crash schedules and
    /// their replayed cases stay bit-identical regardless of this hint.
    fn warp_fuel(&self, phase: u32) -> Option<u64> {
        let _ = phase;
        None
    }
}

/// Wraps a closure as a single-phase, stateless kernel.
///
/// # Examples
///
/// ```
/// use gpm_gpu::{FnKernel, LaunchConfig, launch};
/// use gpm_sim::{Machine, Addr};
///
/// let mut m = Machine::default();
/// let buf = m.alloc_hbm(4 * 128)?;
/// let k = FnKernel(|ctx: &mut gpm_gpu::ThreadCtx<'_>| {
///     let i = ctx.global_id();
///     ctx.st_u32(Addr::hbm(buf + i * 4), i as u32)
/// });
/// launch(&mut m, LaunchConfig::new(1, 128), &k)?;
/// assert_eq!(m.read_u32(Addr::hbm(buf + 4 * 99))?, 99);
/// # Ok::<(), gpm_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnKernel<F>(pub F);

impl<F> Kernel for FnKernel<F>
where
    F: Fn(&mut ThreadCtx<'_>) -> SimResult<()>,
{
    type State = ();
    type Shared = ();

    fn run(
        &self,
        _phase: u32,
        ctx: &mut ThreadCtx<'_>,
        _state: &mut (),
        _shared: &mut (),
    ) -> SimResult<()> {
        (self.0)(ctx)
    }
}

/// Marks the wrapped kernel as [`KernelCapability::Communicating`], forcing
/// sequential execution. Use for closure kernels whose blocks synchronize
/// with each other mid-launch (shared append logs, inter-block atomics):
///
/// ```
/// use gpm_gpu::{Communicating, FnKernel, Kernel, KernelCapability, ThreadCtx};
/// let k = Communicating(FnKernel(|_: &mut ThreadCtx<'_>| Ok(())));
/// assert_eq!(k.capability(), KernelCapability::Communicating);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Communicating<K>(pub K);

/// Wraps a kernel with an explicitly chosen capability, for kernels whose
/// cross-block behaviour depends on runtime configuration (e.g. gpKVS is
/// block-parallel with per-thread HCL undo logging but communicates through
/// shared partition tails under the conventional-logging baseline):
///
/// ```
/// use gpm_gpu::{Capable, FnKernel, Kernel, KernelCapability, ThreadCtx};
/// let k = Capable(KernelCapability::Communicating,
///                 FnKernel(|_: &mut ThreadCtx<'_>| Ok(())));
/// assert_eq!(k.capability(), KernelCapability::Communicating);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Capable<K>(pub KernelCapability, pub K);

impl<K: Kernel> Kernel for Capable<K> {
    type State = K::State;
    type Shared = K::Shared;

    fn phases(&self) -> u32 {
        self.1.phases()
    }

    fn capability(&self) -> KernelCapability {
        self.0
    }

    fn reset_shared(&self, shared: &mut Self::Shared) {
        self.1.reset_shared(shared);
    }

    fn run(
        &self,
        phase: u32,
        ctx: &mut ThreadCtx<'_>,
        state: &mut Self::State,
        shared: &mut Self::Shared,
    ) -> SimResult<()> {
        self.1.run(phase, ctx, state, shared)
    }

    fn run_warp(
        &self,
        phase: u32,
        ctx: &mut WarpCtx<'_>,
        states: &mut [Self::State],
        shared: &mut Self::Shared,
    ) -> SimResult<bool> {
        self.1.run_warp(phase, ctx, states, shared)
    }

    fn warp_fuel(&self, phase: u32) -> Option<u64> {
        self.1.warp_fuel(phase)
    }
}

impl<K: Kernel> Kernel for Communicating<K> {
    type State = K::State;
    type Shared = K::Shared;

    fn phases(&self) -> u32 {
        self.0.phases()
    }

    fn capability(&self) -> KernelCapability {
        KernelCapability::Communicating
    }

    fn reset_shared(&self, shared: &mut Self::Shared) {
        self.0.reset_shared(shared);
    }

    fn run(
        &self,
        phase: u32,
        ctx: &mut ThreadCtx<'_>,
        state: &mut Self::State,
        shared: &mut Self::Shared,
    ) -> SimResult<()> {
        self.0.run(phase, ctx, state, shared)
    }

    fn run_warp(
        &self,
        phase: u32,
        ctx: &mut WarpCtx<'_>,
        states: &mut [Self::State],
        shared: &mut Self::Shared,
    ) -> SimResult<bool> {
        self.0.run_warp(phase, ctx, states, shared)
    }

    fn warp_fuel(&self, phase: u32) -> Option<u64> {
        self.0.warp_fuel(phase)
    }
}
