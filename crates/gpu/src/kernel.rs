//! The kernel abstraction.
//!
//! A CUDA `__global__` function maps to an implementation of [`Kernel`].
//! Block-wide barriers (`__syncthreads()`) are expressed as *phase
//! boundaries*: the engine runs phase `p` for every thread of a block before
//! any thread enters phase `p + 1`, which is exactly the synchronization a
//! barrier provides. Per-thread values that live across a barrier go in
//! [`Kernel::State`]; `__shared__` memory maps to [`Kernel::Shared`].

use gpm_sim::SimResult;

use crate::exec::ThreadCtx;

/// A GPU kernel executed over a grid of threadblocks.
///
/// # Examples
///
/// A kernel with one barrier (two phases), accumulating a block-wide sum in
/// shared memory:
///
/// ```
/// use gpm_gpu::{Kernel, ThreadCtx, LaunchConfig, launch};
/// use gpm_sim::{Machine, Addr, SimResult};
///
/// struct BlockSum { input: u64, output: u64 }
///
/// impl Kernel for BlockSum {
///     type State = ();
///     type Shared = u64; // __shared__ accumulator
///     fn phases(&self) -> u32 { 2 }
///     fn run(&self, phase: u32, ctx: &mut ThreadCtx<'_>, _: &mut (), shared: &mut u64)
///         -> SimResult<()>
///     {
///         match phase {
///             0 => *shared += ctx.ld_u32(Addr::hbm(self.input + ctx.global_id() * 4))? as u64,
///             _ => {
///                 if ctx.thread_in_block() == 0 {
///                     ctx.st_u64(Addr::hbm(self.output + ctx.block_id() as u64 * 8), *shared)?;
///                 }
///             }
///         }
///         Ok(())
///     }
/// }
///
/// let mut m = Machine::default();
/// let input = m.alloc_hbm(4 * 64)?;
/// let output = m.alloc_hbm(8)?;
/// for i in 0..64 {
///     m.host_write(Addr::hbm(input + i * 4), &1u32.to_le_bytes())?;
/// }
/// launch(&mut m, LaunchConfig::new(1, 64), &BlockSum { input, output })?;
/// assert_eq!(m.read_u64(Addr::hbm(output))?, 64);
/// # Ok::<(), gpm_sim::SimError>(())
/// ```
pub trait Kernel {
    /// Per-thread state preserved across phase (barrier) boundaries.
    type State: Default;

    /// Block-shared state (`__shared__` memory analogue).
    type Shared: Default;

    /// Number of phases (barrier-separated sections). Defaults to one.
    fn phases(&self) -> u32 {
        1
    }

    /// Executes one phase for one thread.
    ///
    /// # Errors
    ///
    /// Propagate [`gpm_sim::SimError`] from context operations with `?`; in
    /// particular [`gpm_sim::SimError::Crashed`] must not be swallowed, or
    /// injected crashes will not terminate the kernel.
    fn run(
        &self,
        phase: u32,
        ctx: &mut ThreadCtx<'_>,
        state: &mut Self::State,
        shared: &mut Self::Shared,
    ) -> SimResult<()>;
}

/// Wraps a closure as a single-phase, stateless kernel.
///
/// # Examples
///
/// ```
/// use gpm_gpu::{FnKernel, LaunchConfig, launch};
/// use gpm_sim::{Machine, Addr};
///
/// let mut m = Machine::default();
/// let buf = m.alloc_hbm(4 * 128)?;
/// let k = FnKernel(|ctx: &mut gpm_gpu::ThreadCtx<'_>| {
///     let i = ctx.global_id();
///     ctx.st_u32(Addr::hbm(buf + i * 4), i as u32)
/// });
/// launch(&mut m, LaunchConfig::new(1, 128), &k)?;
/// assert_eq!(m.read_u32(Addr::hbm(buf + 4 * 99))?, 99);
/// # Ok::<(), gpm_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnKernel<F>(pub F);

impl<F> Kernel for FnKernel<F>
where
    F: Fn(&mut ThreadCtx<'_>) -> SimResult<()>,
{
    type State = ();
    type Shared = ();

    fn run(
        &self,
        _phase: u32,
        ctx: &mut ThreadCtx<'_>,
        _state: &mut (),
        _shared: &mut (),
    ) -> SimResult<()> {
        (self.0)(ctx)
    }
}
