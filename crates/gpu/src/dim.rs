//! Launch geometry: grids, threadblocks, warps.

use gpm_sim::PersistencyModel;

/// Threads per warp (lockstep SIMD group).
pub const WARP_SIZE: u32 = 32;

/// A 1-D kernel launch configuration (`<<<grid, block>>>` in CUDA).
///
/// The workloads in this reproduction are naturally 1-D (or linearized by
/// the kernel itself), so the engine keeps geometry one-dimensional.
///
/// # Examples
///
/// ```
/// use gpm_gpu::LaunchConfig;
/// let cfg = LaunchConfig::for_elements(1000, 256);
/// assert_eq!(cfg.grid, 4);
/// assert_eq!(cfg.block, 256);
/// assert_eq!(cfg.total_threads(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Number of threadblocks in the grid.
    pub grid: u32,
    /// Threads per threadblock.
    pub block: u32,
    /// Host worker threads for block-parallel execution. `None` defers to
    /// the `GPM_ENGINE_THREADS` environment variable, then to the host's
    /// available parallelism; `Some(1)` forces the sequential engine. Purely
    /// a host-side scheduling knob: simulated results and timing are
    /// identical at every setting.
    pub engine_threads: Option<u32>,
    /// GPU persistency model for this launch (see
    /// [`PersistencyModel`]). `None` defers to the `GPM_PERSISTENCY`
    /// environment variable (`strict` / `epoch`), then to
    /// [`PersistencyModel::Strict`]. Unlike `engine_threads` this is a
    /// *simulated-semantics* knob: epoch launches defer fence drains to the
    /// kernel boundary, changing both timing and crash vulnerability
    /// windows.
    pub persistency: Option<PersistencyModel>,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `block` exceeds CUDA's 1024
    /// threads-per-block limit.
    pub fn new(grid: u32, block: u32) -> LaunchConfig {
        assert!(grid > 0, "grid dimension must be non-zero");
        assert!(block > 0, "block dimension must be non-zero");
        assert!(block <= 1024, "at most 1024 threads per block");
        LaunchConfig {
            grid,
            block,
            engine_threads: None,
            persistency: None,
        }
    }

    /// Pins the host worker-thread count for this launch (overriding the
    /// `GPM_ENGINE_THREADS` environment variable). `1` forces the sequential
    /// engine.
    #[must_use]
    pub fn with_engine_threads(mut self, threads: u32) -> LaunchConfig {
        assert!(threads > 0, "engine thread count must be non-zero");
        self.engine_threads = Some(threads);
        self
    }

    /// Pins the persistency model for this launch (overriding the
    /// `GPM_PERSISTENCY` environment variable).
    #[must_use]
    pub fn with_persistency(mut self, model: PersistencyModel) -> LaunchConfig {
        self.persistency = Some(model);
        self
    }

    /// Smallest grid of `block`-sized blocks covering `elements` threads.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is zero or `block` is invalid.
    pub fn for_elements(elements: u64, block: u32) -> LaunchConfig {
        assert!(elements > 0, "cannot launch zero elements");
        let grid = elements.div_ceil(block as u64);
        LaunchConfig::new(u32::try_from(grid).expect("grid too large"), block)
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid as u64 * self.block as u64
    }

    /// Warps per threadblock.
    pub fn warps_per_block(&self) -> u32 {
        self.block.div_ceil(WARP_SIZE)
    }

    /// Total warps in the launch.
    pub fn total_warps(&self) -> u64 {
        self.grid as u64 * self.warps_per_block() as u64
    }
}

/// Identity of one thread within a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId {
    /// Block index within the grid.
    pub block: u32,
    /// Thread index within the block.
    pub thread: u32,
}

impl ThreadId {
    /// Globally unique linear thread index.
    pub fn global(&self, cfg: &LaunchConfig) -> u64 {
        self.block as u64 * cfg.block as u64 + self.thread as u64
    }

    /// Lane index within the warp (0..32).
    pub fn lane(&self) -> u32 {
        self.thread % WARP_SIZE
    }

    /// Warp index within the block.
    pub fn warp_in_block(&self) -> u32 {
        self.thread / WARP_SIZE
    }

    /// Globally unique warp index.
    pub fn warp_global(&self, cfg: &LaunchConfig) -> u64 {
        self.block as u64 * cfg.warps_per_block() as u64 + self.warp_in_block() as u64
    }
}

/// A 2-D launch shape, linearized onto the engine's 1-D grid
/// (row-major): convenience for stencil kernels like Hotspot and SRAD whose
/// CUDA versions launch 2-D grids.
///
/// # Examples
///
/// ```
/// use gpm_gpu::{Grid2, LaunchConfig};
/// let g = Grid2::new(100, 60, 16, 16);
/// let cfg: LaunchConfig = g.launch();
/// assert!(cfg.total_threads() >= 100 * 60);
/// // A linear thread id maps back to (x, y):
/// let (x, y) = g.coords(16 * 16 + 3); // second block, thread 3
/// assert!(x < 112 && y < 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2 {
    /// Logical width in elements.
    pub width: u64,
    /// Logical height in elements.
    pub height: u64,
    /// Block width (threads).
    pub block_x: u32,
    /// Block height (threads).
    pub block_y: u32,
}

impl Grid2 {
    /// Creates a 2-D shape covering `width × height` elements with
    /// `block_x × block_y` blocks.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the block exceeds 1024 threads.
    pub fn new(width: u64, height: u64, block_x: u32, block_y: u32) -> Grid2 {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        assert!(
            block_x > 0 && block_y > 0,
            "block dimensions must be non-zero"
        );
        assert!(block_x * block_y <= 1024, "at most 1024 threads per block");
        Grid2 {
            width,
            height,
            block_x,
            block_y,
        }
    }

    /// Blocks along x.
    pub fn blocks_x(&self) -> u64 {
        self.width.div_ceil(self.block_x as u64)
    }

    /// Blocks along y.
    pub fn blocks_y(&self) -> u64 {
        self.height.div_ceil(self.block_y as u64)
    }

    /// The linearized launch configuration.
    ///
    /// # Panics
    ///
    /// Panics if the grid exceeds `u32` blocks.
    pub fn launch(&self) -> LaunchConfig {
        let blocks = self.blocks_x() * self.blocks_y();
        LaunchConfig::new(
            u32::try_from(blocks).expect("grid too large"),
            self.block_x * self.block_y,
        )
    }

    /// Maps a linear `global_id` back to `(x, y)` element coordinates.
    /// Coordinates may exceed `width`/`height` for padding threads — guard
    /// with [`Grid2::in_bounds`].
    pub fn coords(&self, global_id: u64) -> (u64, u64) {
        let threads_per_block = (self.block_x * self.block_y) as u64;
        let block = global_id / threads_per_block;
        let t = global_id % threads_per_block;
        let (bx, by) = (block % self.blocks_x(), block / self.blocks_x());
        let (tx, ty) = (t % self.block_x as u64, t / self.block_x as u64);
        (bx * self.block_x as u64 + tx, by * self.block_y as u64 + ty)
    }

    /// Whether coordinates fall inside the logical grid.
    pub fn in_bounds(&self, x: u64, y: u64) -> bool {
        x < self.width && y < self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_elements_covers() {
        let cfg = LaunchConfig::for_elements(1, 32);
        assert_eq!((cfg.grid, cfg.block), (1, 32));
        let cfg = LaunchConfig::for_elements(33, 32);
        assert_eq!(cfg.grid, 2);
        assert!(cfg.total_threads() >= 33);
    }

    #[test]
    fn warp_accounting() {
        let cfg = LaunchConfig::new(3, 96);
        assert_eq!(cfg.warps_per_block(), 3);
        assert_eq!(cfg.total_warps(), 9);
        let cfg = LaunchConfig::new(2, 33);
        assert_eq!(cfg.warps_per_block(), 2);
    }

    #[test]
    fn thread_identity() {
        let cfg = LaunchConfig::new(4, 128);
        let t = ThreadId {
            block: 2,
            thread: 70,
        };
        assert_eq!(t.global(&cfg), 2 * 128 + 70);
        assert_eq!(t.lane(), 6);
        assert_eq!(t.warp_in_block(), 2);
        assert_eq!(t.warp_global(&cfg), 2 * 4 + 2);
    }

    #[test]
    #[should_panic(expected = "1024")]
    fn block_limit_enforced() {
        LaunchConfig::new(1, 2048);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_grid_rejected() {
        LaunchConfig::new(0, 32);
    }

    #[test]
    fn grid2_covers_every_element_exactly_once() {
        let g = Grid2::new(50, 34, 16, 8);
        let cfg = g.launch();
        let mut seen = std::collections::HashSet::new();
        for gid in 0..cfg.total_threads() {
            let (x, y) = g.coords(gid);
            if g.in_bounds(x, y) {
                assert!(seen.insert((x, y)), "duplicate ({x},{y})");
            }
        }
        assert_eq!(seen.len() as u64, 50 * 34);
    }

    #[test]
    fn grid2_block_geometry() {
        let g = Grid2::new(100, 60, 16, 16);
        assert_eq!(g.blocks_x(), 7);
        assert_eq!(g.blocks_y(), 4);
        assert_eq!(g.launch().grid, 28);
        assert_eq!(g.launch().block, 256);
    }

    #[test]
    #[should_panic(expected = "1024")]
    fn grid2_block_limit() {
        Grid2::new(10, 10, 64, 32);
    }
}
