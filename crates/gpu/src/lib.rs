//! # gpm-gpu — a CUDA-like execution engine over the simulated platform
//!
//! Runs [`Kernel`]s as grids of threadblocks of 32-lane warps against a
//! [`gpm_sim::Machine`], reproducing the GPU behaviours the GPM paper's
//! results rest on:
//!
//! * **hardware coalescing** — a warp's same-instruction stores into one
//!   128-byte line become a single PCIe transaction (the property HCL's log
//!   layout exploits, §5.2);
//! * **scoped fences** — `__threadfence()` (device) and
//!   `__threadfence_system()` (system); the latter is GPM's persist when
//!   DDIO is disabled (§3.1);
//! * **latency hiding** — elapsed time comes from an analytical overlap
//!   model: parallelism hides persist latency until the PCIe in-flight
//!   limit or Optane's pattern-dependent bandwidth saturates (§3.2);
//! * **crash injection** — [`launch_with_fuel`] aborts the kernel after a
//!   chosen number of operations and crashes the machine, as the paper does
//!   with NVBitFI (§6.2).
//!
//! Block barriers (`__syncthreads()`) are phase boundaries: see [`Kernel`].
//!
//! ## Example
//!
//! ```
//! use gpm_gpu::{FnKernel, LaunchConfig, ThreadCtx, launch};
//! use gpm_sim::{Machine, Addr};
//!
//! let mut m = Machine::default();
//! let out = m.alloc_pm(1 << 16)?;
//! m.set_ddio(false); // gpm_persist_begin
//! let kernel = FnKernel(|ctx: &mut ThreadCtx<'_>| {
//!     let i = ctx.global_id();
//!     ctx.st_u64(Addr::pm(out + i * 8), i * i)?;
//!     ctx.threadfence_system() // persist
//! });
//! let report = launch(&mut m, LaunchConfig::new(8, 256), &kernel)?;
//! m.set_ddio(true); // gpm_persist_end
//! m.crash(); // power failure: the persisted squares survive
//! assert_eq!(m.read_u64(Addr::pm(out + 100 * 8))?, 100 * 100);
//! println!("kernel took {}", report.elapsed);
//! # Ok::<(), gpm_sim::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod dim;
pub mod exec;
pub mod kernel;
pub mod timing;

pub use buffer::{Buf, Scalar};
pub use dim::{Grid2, LaunchConfig, ThreadId, WARP_SIZE};
pub use exec::{
    launch, launch_with_fuel, launch_with_gauge, pin_default_persistency, resolved_engine_threads,
    resolved_persistency, FuelGauge, KernelReport, LaunchError, ThreadCtx, WarpCtx,
};
pub use gpm_sim::PersistencyModel;
pub use kernel::{Capable, Communicating, FnKernel, Kernel, KernelCapability};
pub use timing::KernelCosts;
