//! Property-based tests of the execution engine's conservation laws:
//! coalescing may merge accesses but never lose bytes, and the timing model
//! is monotone in work.
//!
//! Compiled only with `--features slow-tests`, which requires the `proptest`
//! dev-dependency (and therefore network access); the default build stays
//! dependency-free.

#![cfg(feature = "slow-tests")]

use proptest::prelude::*;

use gpm_gpu::{launch, FnKernel, LaunchConfig, ThreadCtx};
use gpm_sim::{Addr, Machine, Ns};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bytes are conserved: the kernel's PM-write byte count equals the sum
    /// of the stores the threads issued, whatever the coalescer did to the
    /// transaction count.
    #[test]
    fn coalescing_conserves_bytes(
        threads in 1u64..300,
        stride in prop::sample::select(vec![4u64, 8, 16, 64, 128, 256, 4096]),
        width in prop::sample::select(vec![4usize, 8, 12, 32]),
    ) {
        prop_assume!(stride >= width as u64, "disjoint per-thread regions");
        let mut m = Machine::default();
        let span = threads * stride + width as u64;
        let pm = m.alloc_pm(span.max(4096)).unwrap();
        let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            if i >= threads {
                return Ok(());
            }
            ctx.st_bytes(Addr::pm(pm + i * stride), &vec![0xCD; width])
        });
        let r = launch(&mut m, LaunchConfig::for_elements(threads, 128), &k).unwrap();
        prop_assert_eq!(r.costs.pm_write_bytes, threads * width as u64);
        // Transactions never exceed stores (coalescing only merges) and
        // cover at least bytes/128.
        let min_txns = (threads * width as u64).div_ceil(128);
        prop_assert!(r.costs.pcie_write_txns >= min_txns.min(threads));
        prop_assert!(r.costs.pcie_write_txns <= threads * width.div_ceil(4) as u64);
    }

    /// Dense warp writes coalesce maximally: 32 lanes × 4 bytes contiguous
    /// is exactly one transaction per warp.
    #[test]
    fn dense_warp_writes_fully_coalesce(warps in 1u32..20) {
        let mut m = Machine::default();
        let pm = m.alloc_pm(warps as u64 * 128 + 256).unwrap();
        let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            ctx.st_u32(Addr::pm(pm + i * 4), i as u32)
        });
        let r = launch(&mut m, LaunchConfig::new(warps, 32), &k).unwrap();
        prop_assert_eq!(r.costs.pcie_write_txns, warps as u64);
    }

    /// The written data is readable back exactly (functional correctness of
    /// the coalescing path).
    #[test]
    fn stores_round_trip(threads in 1u64..200, seed in any::<u64>()) {
        let mut m = Machine::default();
        let pm = m.alloc_pm(threads * 8 + 64).unwrap();
        let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            if i >= threads {
                return Ok(());
            }
            ctx.st_u64(Addr::pm(pm + i * 8), seed ^ i)
        });
        launch(&mut m, LaunchConfig::for_elements(threads, 64), &k).unwrap();
        for i in 0..threads {
            prop_assert_eq!(m.read_u64(Addr::pm(pm + i * 8)).unwrap(), seed ^ i);
        }
    }

    /// Elapsed time is monotone in compute work.
    #[test]
    fn timing_monotone_in_compute(base_us in 1u64..50, extra_us in 1u64..200) {
        let run = |us: u64| -> Ns {
            let mut m = Machine::default();
            let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                ctx.compute(Ns::from_micros(us as f64));
                Ok(())
            });
            launch(&mut m, LaunchConfig::new(4, 128), &k).unwrap().elapsed
        };
        let t1 = run(base_us);
        let t2 = run(base_us + extra_us);
        prop_assert!(t2 > t1, "{t1} !< {t2}");
    }

    /// Elapsed time is monotone in PM traffic.
    #[test]
    fn timing_monotone_in_pm_traffic(kb in 1u64..64) {
        let run = |bytes: u64| -> Ns {
            let mut m = Machine::default();
            let pm = m.alloc_pm(bytes * 2 + 4096).unwrap();
            let n = bytes / 8;
            let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                if i >= n {
                    return Ok(());
                }
                ctx.st_u64(Addr::pm(pm + i * 8), i)
            });
            launch(&mut m, LaunchConfig::for_elements(n.max(1), 128), &k).unwrap().elapsed
        };
        let t1 = run(kb * 1024);
        let t2 = run(kb * 4096);
        prop_assert!(t2 >= t1);
    }

    /// The machine allocator returns non-overlapping, 256-byte-aligned
    /// regions.
    #[test]
    fn allocator_regions_disjoint(sizes in prop::collection::vec(1u64..5000, 1..40)) {
        let mut m = Machine::default();
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for &s in &sizes {
            let off = m.alloc_pm(s).unwrap();
            prop_assert_eq!(off % 256, 0);
            for &(o, l) in &regions {
                prop_assert!(off >= o + l || off + s <= o, "overlap");
            }
            regions.push((off, s));
        }
    }
}
