//! Black-Scholes option pricing with checkpointing (§4.2).
//!
//! From the CUDA SDK sample the paper uses: each thread prices one European
//! call/put option with the closed-form Black-Scholes model; predicted
//! prices are checkpointed each pricing round (the paper re-prices 256 M
//! options and checkpoints 4 GB; we scale the option count down, keeping
//! the real math).

use gpm_gpu::{launch, Kernel, LaunchConfig, ThreadCtx, WarpCtx};
use gpm_sim::{Addr, Machine, Ns, SimResult};

use crate::iterative::IterativeApp;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct BlkParams {
    /// Number of options priced.
    pub options: u64,
    /// Pricing rounds (volatility shifts per round).
    pub iterations: u32,
    /// Checkpoint cadence.
    pub checkpoint_every: u32,
    /// Risk-free rate.
    pub rate: f32,
}

impl Default for BlkParams {
    fn default() -> BlkParams {
        BlkParams {
            options: 1 << 17,
            iterations: 4,
            checkpoint_every: 1,
            rate: 0.02,
        }
    }
}

impl BlkParams {
    /// Small configuration for unit tests.
    pub fn quick() -> BlkParams {
        BlkParams {
            options: 1 << 11,
            iterations: 2,
            ..BlkParams::default()
        }
    }
}

/// The Black-Scholes workload.
#[derive(Debug)]
pub struct BlkWorkload {
    /// Parameters of this instance.
    pub params: BlkParams,
    inputs: u64, // HBM base of (S, K, T) triples
}

/// Cumulative standard normal distribution (Abramowitz & Stegun 7.1.26),
/// the approximation the CUDA SDK sample uses.
pub fn cnd(d: f32) -> f32 {
    const A1: f32 = 0.319_381_53;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_477_9;
    const A4: f32 = -1.821_255_9;
    const A5: f32 = 1.330_274_4;
    let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let w = 1.0 - 1.0 / (2.0 * std::f32::consts::PI).sqrt() * (-0.5 * d * d).exp() * poly;
    if d < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// Black-Scholes European call price.
pub fn call_price(s: f32, k: f32, t: f32, r: f32, sigma: f32) -> f32 {
    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r + 0.5 * sigma * sigma) * t) / (sigma * sqrt_t);
    let d2 = d1 - sigma * sqrt_t;
    s * cnd(d1) - k * (-r * t).exp() * cnd(d2)
}

fn option_inputs(i: u64) -> (f32, f32, f32) {
    let h = gpm_pmkv::hash64(i);
    let s = 5.0 + (h % 96) as f32; // spot 5..100
    let k = 5.0 + ((h >> 8) % 96) as f32; // strike
    let t = 0.25 + ((h >> 16) % 8) as f32 * 0.25; // 0.25..2.25 years
    (s, k, t)
}

fn sigma_for_round(iter: u32) -> f32 {
    0.20 + 0.05 * iter as f32
}

impl BlkWorkload {
    /// Creates the workload.
    pub fn new(params: BlkParams) -> BlkWorkload {
        BlkWorkload { params, inputs: 0 }
    }
}

/// One pricing round: gather each option's (S, K, T) triple, price it under
/// this round's volatility, scatter the price. The triple loads are strided
/// (12-byte records), the price store is contiguous; both are uniform across
/// a full warp, so only the guarded tail warp falls back to per-lane.
struct BlkPriceKernel {
    inputs: u64,
    prices: u64,
    n: u64,
    rate: f32,
    sigma: f32,
}

impl Kernel for BlkPriceKernel {
    type State = ();
    type Shared = ();

    fn run(&self, _phase: u32, ctx: &mut ThreadCtx<'_>, _: &mut (), _: &mut ()) -> SimResult<()> {
        let i = ctx.global_id();
        if i >= self.n {
            return Ok(());
        }
        let s = ctx.ld_f32(Addr::hbm(self.inputs + i * 12))?;
        let strike = ctx.ld_f32(Addr::hbm(self.inputs + i * 12 + 4))?;
        let t = ctx.ld_f32(Addr::hbm(self.inputs + i * 12 + 8))?;
        // Effective per-option work: the SDK sample re-prices each
        // option under multiple vol/rate scenarios per round; calibrated
        // to measured round times at the paper's 256M-option scale.
        ctx.compute(Ns(30_000.0));
        let price = call_price(s, strike, t, self.rate, self.sigma);
        ctx.st_f32(Addr::hbm(self.prices + i * 4), price)
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _: &mut [()],
        _: &mut (),
    ) -> SimResult<bool> {
        let first = ctx.first_global_id();
        let lanes = ctx.lanes() as u64;
        if first + lanes > self.n {
            return Ok(false); // guard diverges in the tail warp
        }
        let mut s = vec![0.0f32; lanes as usize];
        let mut strike = vec![0.0f32; lanes as usize];
        let mut t = vec![0.0f32; lanes as usize];
        ctx.ld_f32_lanes(Addr::hbm(self.inputs + first * 12), 12, &mut s)?;
        ctx.ld_f32_lanes(Addr::hbm(self.inputs + first * 12 + 4), 12, &mut strike)?;
        ctx.ld_f32_lanes(Addr::hbm(self.inputs + first * 12 + 8), 12, &mut t)?;
        ctx.compute(Ns(30_000.0));
        let prices: Vec<f32> = (0..lanes as usize)
            .map(|i| call_price(s[i], strike[i], t[i], self.rate, self.sigma))
            .collect();
        ctx.st_f32_lanes(Addr::hbm(self.prices + first * 4), 4, &prices)?;
        Ok(true)
    }

    fn warp_fuel(&self, _phase: u32) -> Option<u64> {
        Some(4) // 3 loads + 1 store per lane
    }
}

impl IterativeApp for BlkWorkload {
    fn name(&self) -> &'static str {
        "BLK"
    }

    fn setup(&mut self, machine: &mut Machine) -> SimResult<Vec<(u64, u64)>> {
        let n = self.params.options;
        self.inputs = machine.alloc_hbm(n * 12)?;
        let mut buf = Vec::with_capacity((n * 12) as usize);
        for i in 0..n {
            let (s, k, t) = option_inputs(i);
            buf.extend_from_slice(&s.to_le_bytes());
            buf.extend_from_slice(&k.to_le_bytes());
            buf.extend_from_slice(&t.to_le_bytes());
        }
        machine.host_write(Addr::hbm(self.inputs), &buf)?;
        let prices = machine.alloc_hbm(n * 4)?;
        Ok(vec![(prices, n * 4)])
    }

    fn iteration(&self, machine: &mut Machine, arrays: &[(u64, u64)], iter: u32) -> SimResult<()> {
        let n = self.params.options;
        let k = BlkPriceKernel {
            inputs: self.inputs,
            prices: arrays[0].0,
            n,
            rate: self.params.rate,
            sigma: sigma_for_round(iter),
        };
        launch(machine, LaunchConfig::for_elements(n, 256), &k)?;
        Ok(())
    }

    fn verify(&self, machine: &Machine, arrays: &[(u64, u64)], iters_done: u32) -> SimResult<bool> {
        if iters_done == 0 {
            return Ok(true);
        }
        let sigma = sigma_for_round(iters_done - 1);
        let n = self.params.options;
        for i in (0..n).step_by(131) {
            let (s, k, t) = option_inputs(i);
            let expect = call_price(s, k, t, self.params.rate, sigma);
            let got = machine.read_f32(Addr::hbm(arrays[0].0 + i * 4))?;
            if got != expect {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn iterations(&self) -> u32 {
        self.params.iterations
    }

    fn checkpoint_every(&self) -> u32 {
        self.params.checkpoint_every
    }

    fn paper_bytes(&self) -> u64 {
        4 << 30 // the paper checkpoints 4 GB of prices: GPUfs fails (§6.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{run_iterative, run_iterative_with_recovery};
    use crate::metrics::Mode;

    #[test]
    fn black_scholes_math_is_sane() {
        // Deep in the money, near-zero vol: price ≈ S - K·e^{-rT}.
        let p = call_price(100.0, 50.0, 1.0, 0.02, 0.01);
        assert!((p - (100.0 - 50.0 * (-0.02f32).exp())).abs() < 0.1, "{p}");
        // Far out of the money: worthless.
        assert!(call_price(10.0, 100.0, 0.5, 0.02, 0.2) < 0.01);
        // CND symmetry.
        assert!((cnd(0.0) - 0.5).abs() < 1e-4);
        assert!((cnd(3.0) + cnd(-3.0) - 1.0).abs() < 1e-4);
        // Monotonic in spot.
        assert!(call_price(60.0, 50.0, 1.0, 0.02, 0.3) > call_price(55.0, 50.0, 1.0, 0.02, 0.3));
    }

    #[test]
    fn pricing_verifies_under_gpm() {
        let mut m = Machine::default();
        let mut app = BlkWorkload::new(BlkParams::quick());
        let r = run_iterative(&mut m, &mut app, Mode::Gpm, 16).unwrap();
        assert!(r.verified);
    }

    #[test]
    fn gpufs_rejects_blk_at_paper_size() {
        let mut m = Machine::default();
        let mut app = BlkWorkload::new(BlkParams::quick());
        let err = run_iterative(&mut m, &mut app, Mode::Gpufs, 16).unwrap_err();
        assert!(matches!(err, gpm_sim::SimError::FileTooLarge { .. }));
    }

    #[test]
    fn recovery_restores_prices() {
        let mut m = Machine::default();
        let mut app = BlkWorkload::new(BlkParams::quick());
        let r = run_iterative_with_recovery(&mut m, &mut app).unwrap();
        assert!(r.verified);
    }
}
