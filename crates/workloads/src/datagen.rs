//! Synthetic input generation: deterministic uniform and Zipfian sources,
//! plus the behavioral-analytics user-event trace.
//!
//! The paper's KVS batches come from YCSB-style generators; real key-value
//! traffic is skewed, and skew changes the PM story (hot keys concentrate
//! updates into fewer cache lines, which coalesce and write-combine better).
//! [`Zipf`] provides a deterministic Zipfian sampler used by gpKVS's skewed
//! configuration and the `kvs_throughput` bench. [`EventTrace`] layers a
//! user-behaviour model on top of it — Zipfian user popularity, a per-user
//! Markov chain over event types, and per-user inter-arrival gaps — and is
//! the one event source shared by the gpAnalytics kernels (closed-loop
//! batches) and the `gpm-serve` analytics tenant (open-loop stream), so the
//! two paths fold identical traces.

use std::collections::HashMap;

/// A Zipf(θ) sampler over ranks `0..n`, using the cumulative-table method
/// (exact, O(n) setup, O(log n) per sample, deterministic).
///
/// # Examples
///
/// ```
/// use gpm_workloads::datagen::Zipf;
/// let z = Zipf::new(1000, 0.99);
/// let a = z.sample(1);
/// let b = z.sample(2);
/// assert!(a < 1000 && b < 1000);
/// assert_eq!(z.sample(7), z.sample(7), "deterministic");
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `theta` (0 = uniform;
    /// 0.99 = YCSB's default skew).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "need at least one rank");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Samples a rank from a deterministic stream position `i`.
    pub fn sample(&self, i: u64) -> u64 {
        let u = uniform01(i);
        // First rank whose cdf ≥ u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Deterministic uniform double in `[0, 1)` derived from `i` (SplitMix64).
pub fn uniform01(i: u64) -> f64 {
    let h = gpm_pmkv::hash64(i.wrapping_add(0x9E37_79B9));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// One simulated user event: who did what, on the *client's* clock.
///
/// `ts` is a logical per-user tick (clients stamp events locally; the
/// serving arrival instant is a separate, unrelated clock), monotone per
/// user, bounded to [`EventTrace::TS_BITS`] bits so a whole event packs
/// into one `u64` PM journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserEvent {
    /// User identifier in `1..=users` (0 is reserved as the session-store
    /// empty/sentinel key).
    pub user: u64,
    /// Event type in `0..types`.
    pub etype: u32,
    /// Client-side timestamp in ticks (monotone per user).
    pub ts: u64,
}

/// A seeded behavioral-analytics event trace: Zipfian user popularity, a
/// per-user Markov chain over event types, and per-user inter-arrival
/// gaps. Events are generated in stream order; per-user subsequences are
/// timestamp-monotone, which is all the sessionize/funnel state machines
/// require.
///
/// The Markov chain is funnel-friendly: from state `s` a user advances to
/// `s + 1` with probability `advance`, restarts at type 0 with probability
/// `restart`, and otherwise jumps uniformly — so multi-step funnels
/// actually complete at a measurable rate instead of almost never.
///
/// # Examples
///
/// ```
/// use gpm_workloads::datagen::EventTrace;
/// let mut a = EventTrace::new(64, 0.9, 6, 7);
/// let mut b = EventTrace::new(64, 0.9, 6, 7);
/// assert_eq!(a.next_event(), b.next_event(), "same seed, same trace");
/// ```
#[derive(Debug, Clone)]
pub struct EventTrace {
    zipf: Zipf,
    types: u32,
    seed: u64,
    pos: u64,
    /// Per-user `(markov state, clock ticks)`.
    state: HashMap<u64, (u32, u64)>,
}

impl EventTrace {
    /// Bits of [`UserEvent::ts`]: timestamps saturate at `2^26 - 1` ticks
    /// so a packed event (user, type, ts) fits one 64-bit journal word.
    pub const TS_BITS: u32 = 26;

    /// Probability the Markov chain advances to the next event type.
    const ADVANCE: f64 = 0.55;
    /// Probability the chain restarts at type 0 (a new visit).
    const RESTART: f64 = 0.25;
    /// Mean inter-arrival gap in ticks (geometric, in `1..=2·MEAN - 1`).
    const MEAN_GAP: u64 = 16;

    /// Builds the trace: `users` distinct users with Zipf(`theta`)
    /// popularity, `types` event types, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero (via [`Zipf::new`]) or `types` is zero.
    pub fn new(users: u64, theta: f64, types: u32, seed: u64) -> EventTrace {
        assert!(types > 0, "need at least one event type");
        EventTrace {
            zipf: Zipf::new(users, theta),
            types,
            seed,
            pos: 0,
            state: HashMap::new(),
        }
    }

    /// Number of distinct users.
    pub fn users(&self) -> u64 {
        self.zipf.n()
    }

    fn u01(&self, salt: u64) -> f64 {
        uniform01(
            gpm_pmkv::hash64(self.seed ^ salt).wrapping_add(self.pos.wrapping_mul(0x2545_F491)),
        )
    }

    /// Emits the next event of the stream.
    pub fn next_event(&mut self) -> UserEvent {
        let user = self.zipf.sample(gpm_pmkv::hash64(self.seed) ^ self.pos) + 1;
        let (mstate, clock) = self.state.get(&user).copied().unwrap_or((0, 0));
        // Per-user inter-arrival: a uniform gap in [1, 2·MEAN - 1] ticks
        // (a user's first event lands at its first gap).
        let gap = 1 + (self.u01(0x6741) * (2 * Self::MEAN_GAP - 1) as f64) as u64;
        let ts = (clock + gap).min((1 << Self::TS_BITS) - 1);
        let etype = mstate % self.types;
        // Markov step for this user's *next* event.
        let r = self.u01(0xBEEF ^ user);
        let next = if r < Self::ADVANCE {
            (etype + 1) % self.types
        } else if r < Self::ADVANCE + Self::RESTART {
            0
        } else {
            (self.u01(0xC0DE ^ user) * self.types as f64) as u32 % self.types
        };
        self.state.insert(user, (next, ts));
        self.pos += 1;
        UserEvent { user, etype, ts }
    }

    /// Emits the next `n` events.
    pub fn take_events(&mut self, n: u64) -> Vec<UserEvent> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform01_in_range_and_spread() {
        let mut sum = 0.0;
        for i in 0..10_000u64 {
            let u = uniform01(i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zipf_theta0_is_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut counts = vec![0u32; 100];
        for i in 0..100_000u64 {
            counts[z.sample(i) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "uniform spread expected: {min}..{max}");
    }

    #[test]
    fn zipf_high_theta_concentrates() {
        let z = Zipf::new(10_000, 0.99);
        let mut head = 0u64;
        let samples = 100_000u64;
        for i in 0..samples {
            if z.sample(i) < 100 {
                head += 1;
            }
        }
        // With θ=0.99 the top 1% of ranks draw roughly half the mass.
        let frac = head as f64 / samples as f64;
        assert!(frac > 0.35, "skew too weak: head fraction {frac:.3}");
    }

    #[test]
    fn zipf_rank_frequencies_decrease() {
        let z = Zipf::new(1_000, 1.2);
        let mut counts = vec![0u32; 1000];
        for i in 0..200_000u64 {
            counts[z.sample(i) as usize] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[99]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn event_trace_is_deterministic_and_seed_sensitive() {
        let mut a = EventTrace::new(128, 0.9, 6, 42);
        let mut b = EventTrace::new(128, 0.9, 6, 42);
        let mut c = EventTrace::new(128, 0.9, 6, 43);
        let ta = a.take_events(2_000);
        assert_eq!(ta, b.take_events(2_000), "same seed must replay exactly");
        assert_ne!(ta, c.take_events(2_000), "a different seed must diverge");
    }

    #[test]
    fn event_trace_users_types_and_clocks_are_well_formed() {
        let mut g = EventTrace::new(100, 0.99, 5, 7);
        let events = g.take_events(5_000);
        let mut last_ts: HashMap<u64, u64> = HashMap::new();
        let mut first_type: HashMap<u64, u32> = HashMap::new();
        for e in &events {
            assert!((1..=100).contains(&e.user), "user {}", e.user);
            assert!(e.etype < 5);
            assert!(e.ts < 1 << EventTrace::TS_BITS);
            if let Some(&prev) = last_ts.get(&e.user) {
                assert!(e.ts > prev, "per-user timestamps must be monotone");
            }
            last_ts.insert(e.user, e.ts);
            first_type.entry(e.user).or_insert(e.etype);
        }
        // Every user's first event enters the funnel at type 0.
        assert!(first_type.values().all(|&t| t == 0));
        // Zipfian skew: the most popular user out-draws the median user.
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for e in &events {
            *counts.entry(e.user).or_insert(0) += 1;
        }
        let max = counts.values().max().unwrap();
        assert!(*max > 2 * events.len() as u64 / 100, "skew too weak");
    }
}
