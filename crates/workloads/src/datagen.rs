//! Synthetic input generation: deterministic uniform and Zipfian sources.
//!
//! The paper's KVS batches come from YCSB-style generators; real key-value
//! traffic is skewed, and skew changes the PM story (hot keys concentrate
//! updates into fewer cache lines, which coalesce and write-combine better).
//! [`Zipf`] provides a deterministic Zipfian sampler used by gpKVS's skewed
//! configuration and the `kvs_throughput` bench.

/// A Zipf(θ) sampler over ranks `0..n`, using the cumulative-table method
/// (exact, O(n) setup, O(log n) per sample, deterministic).
///
/// # Examples
///
/// ```
/// use gpm_workloads::datagen::Zipf;
/// let z = Zipf::new(1000, 0.99);
/// let a = z.sample(1);
/// let b = z.sample(2);
/// assert!(a < 1000 && b < 1000);
/// assert_eq!(z.sample(7), z.sample(7), "deterministic");
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `theta` (0 = uniform;
    /// 0.99 = YCSB's default skew).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "need at least one rank");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Samples a rank from a deterministic stream position `i`.
    pub fn sample(&self, i: u64) -> u64 {
        let u = uniform01(i);
        // First rank whose cdf ≥ u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Deterministic uniform double in `[0, 1)` derived from `i` (SplitMix64).
pub fn uniform01(i: u64) -> f64 {
    let h = gpm_pmkv::hash64(i.wrapping_add(0x9E37_79B9));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform01_in_range_and_spread() {
        let mut sum = 0.0;
        for i in 0..10_000u64 {
            let u = uniform01(i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zipf_theta0_is_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut counts = vec![0u32; 100];
        for i in 0..100_000u64 {
            counts[z.sample(i) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "uniform spread expected: {min}..{max}");
    }

    #[test]
    fn zipf_high_theta_concentrates() {
        let z = Zipf::new(10_000, 0.99);
        let mut head = 0u64;
        let samples = 100_000u64;
        for i in 0..samples {
            if z.sample(i) < 100 {
                head += 1;
            }
        }
        // With θ=0.99 the top 1% of ranks draw roughly half the mass.
        let frac = head as f64 / samples as f64;
        assert!(frac > 0.35, "skew too weak: head fraction {frac:.3}");
    }

    #[test]
    fn zipf_rank_frequencies_decrease() {
        let z = Zipf::new(1_000, 1.2);
        let mut counts = vec![0u32; 1000];
        for i in 0..200_000u64 {
            counts[z.sample(i) as usize] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[99]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
