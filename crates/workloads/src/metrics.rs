//! Execution modes and per-run metrics for GPMbench.

use gpm_sim::{Machine, Ns, Stats};

/// How a workload persists its results (the systems compared in §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// GPM: in-kernel loads/stores to PM with `gpm_persist` (DDIO window).
    Gpm,
    /// CAP-fs: GPU computes in HBM; CPU persists through an ext4-DAX file.
    CapFs,
    /// CAP-mm: GPU computes in HBM; CPU persists through a memory-mapped
    /// file with `cpu_threads` flushing threads.
    CapMm,
    /// GPM-NDP: in-kernel stores to PM, but persistence guaranteed by the
    /// CPU afterwards (DDIO stays on; no in-kernel persist).
    GpmNdp,
    /// GPUfs: in-kernel file syscalls, persisted by the CPU+OS.
    Gpufs,
    /// CPU-only: compute *and* persist on the CPU (Figure 1 baselines).
    CpuPm,
}

impl Mode {
    /// All modes, in the order figures present them.
    pub const ALL: [Mode; 6] = [
        Mode::CapFs,
        Mode::CapMm,
        Mode::Gpm,
        Mode::GpmNdp,
        Mode::Gpufs,
        Mode::CpuPm,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Gpm => "GPM",
            Mode::CapFs => "CAP-fs",
            Mode::CapMm => "CAP-mm",
            Mode::GpmNdp => "GPM-NDP",
            Mode::Gpufs => "GPUfs",
            Mode::CpuPm => "CPU-PM",
        }
    }
}

/// Measurements from one workload run.
#[derive(Debug, Clone, Copy)]
pub struct RunMetrics {
    /// Operation time: kernel execution plus recurring persist work
    /// (excludes one-time setup, as in Table 5's definition).
    pub elapsed: Ns,
    /// Bytes written to PM by GPU kernels (numerator of Figure 12).
    pub pm_write_bytes_gpu: u64,
    /// Bytes written to PM by the CPU (CAP transfers).
    pub pm_write_bytes_cpu: u64,
    /// Bytes whose durability was guaranteed.
    pub bytes_persisted: u64,
    /// Warp-level system fences issued.
    pub system_fences: u64,
    /// Measured restoration latency, when the run exercised recovery.
    pub recovery: Option<Ns>,
    /// Whether the workload's functional check passed.
    pub verified: bool,
}

impl RunMetrics {
    /// Bytes moved to PM by whichever side persisted (CAP's write
    /// amplification numerator, Table 4).
    pub fn pm_write_bytes_total(&self) -> u64 {
        self.pm_write_bytes_gpu + self.pm_write_bytes_cpu
    }

    /// GPU→PM PCIe write bandwidth in GB/s (Figure 12).
    pub fn pcie_write_bw(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.pm_write_bytes_gpu as f64 / self.elapsed.0
    }
}

/// Meters a closure against the machine clock and counters, producing
/// [`RunMetrics`] (with `verified` filled by the caller).
///
/// # Errors
///
/// Propagates the closure's error.
pub fn metered<E>(
    machine: &mut Machine,
    f: impl FnOnce(&mut Machine) -> Result<bool, E>,
) -> Result<RunMetrics, E> {
    let t0 = machine.clock.now();
    let s0: Stats = machine.stats;
    let verified = f(machine)?;
    let d = machine.stats.delta(&s0);
    Ok(RunMetrics {
        elapsed: machine.clock.now() - t0,
        pm_write_bytes_gpu: d.pm_write_bytes_gpu,
        pm_write_bytes_cpu: d.pm_write_bytes_cpu,
        bytes_persisted: d.bytes_persisted,
        system_fences: d.system_fences,
        recovery: None,
        verified,
    })
}

/// Workload category (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Transactional updates to PM (gpKVS, gpDB).
    Transactional,
    /// Iterative long-running kernels that checkpoint (DNN, CFD, BLK, HS).
    Checkpointing,
    /// Native persistence: in-place recoverable updates (BFS, SRAD, PS).
    Native,
}

impl Category {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Transactional => "Transactional",
            Category::Checkpointing => "Checkpointing",
            Category::Native => "Native",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metered_captures_clock_and_stats() {
        let mut m = Machine::default();
        let r: Result<RunMetrics, gpm_sim::SimError> = metered(&mut m, |m| {
            m.clock.advance(Ns(500.0));
            let off = m.alloc_pm(64)?;
            m.set_ddio(false);
            m.gpu_store_pm(1, off, &[1; 8])?;
            m.gpu_system_fence(1);
            Ok(true)
        });
        let r = r.unwrap();
        assert_eq!(r.elapsed, Ns(500.0));
        assert_eq!(r.pm_write_bytes_gpu, 8);
        assert!(r.verified);
        assert!(r.pcie_write_bw() > 0.0);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = Mode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), Mode::ALL.len());
        assert_eq!(Category::Transactional.label(), "Transactional");
    }
}
