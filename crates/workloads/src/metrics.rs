//! Execution modes and per-run metrics for GPMbench.

use gpm_sim::{Machine, Ns, Stats};

/// How a workload persists its results (the systems compared in §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// GPM: in-kernel loads/stores to PM with `gpm_persist` (DDIO window).
    Gpm,
    /// CAP-fs: GPU computes in HBM; CPU persists through an ext4-DAX file.
    CapFs,
    /// CAP-mm: GPU computes in HBM; CPU persists through a memory-mapped
    /// file with `cpu_threads` flushing threads.
    CapMm,
    /// GPM-NDP: in-kernel stores to PM, but persistence guaranteed by the
    /// CPU afterwards (DDIO stays on; no in-kernel persist).
    GpmNdp,
    /// GPUfs: in-kernel file syscalls, persisted by the CPU+OS.
    Gpufs,
    /// CPU-only: compute *and* persist on the CPU (Figure 1 baselines).
    CpuPm,
}

impl Mode {
    /// All modes, in the order figures present them.
    pub const ALL: [Mode; 6] = [
        Mode::CapFs,
        Mode::CapMm,
        Mode::Gpm,
        Mode::GpmNdp,
        Mode::Gpufs,
        Mode::CpuPm,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Gpm => "GPM",
            Mode::CapFs => "CAP-fs",
            Mode::CapMm => "CAP-mm",
            Mode::GpmNdp => "GPM-NDP",
            Mode::Gpufs => "GPUfs",
            Mode::CpuPm => "CPU-PM",
        }
    }
}

/// Measurements from one workload run.
#[derive(Debug, Clone, Copy)]
pub struct RunMetrics {
    /// Operation time: kernel execution plus recurring persist work
    /// (excludes one-time setup, as in Table 5's definition).
    pub elapsed: Ns,
    /// Bytes written to PM by GPU kernels (numerator of Figure 12).
    pub pm_write_bytes_gpu: u64,
    /// Bytes written to PM by the CPU (CAP transfers).
    pub pm_write_bytes_cpu: u64,
    /// Bytes whose durability was guaranteed.
    pub bytes_persisted: u64,
    /// Warp-level system fences issued.
    pub system_fences: u64,
    /// Measured restoration latency, when the run exercised recovery.
    pub recovery: Option<Ns>,
    /// Whether the workload's functional check passed.
    pub verified: bool,
}

impl RunMetrics {
    /// Bytes moved to PM by whichever side persisted (CAP's write
    /// amplification numerator, Table 4).
    pub fn pm_write_bytes_total(&self) -> u64 {
        self.pm_write_bytes_gpu + self.pm_write_bytes_cpu
    }

    /// GPU→PM PCIe write bandwidth in GB/s (Figure 12).
    pub fn pcie_write_bw(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.pm_write_bytes_gpu as f64 / self.elapsed.0
    }
}

/// Measurements from one batched kernel launch (the unit of work shared by
/// the closed-loop suite and the `gpm-serve` frontend).
#[derive(Debug, Clone, Copy)]
pub struct BatchMetrics {
    /// Operations packed into the batch.
    pub ops: u64,
    /// Sim time from upload start to commit (includes request ingestion,
    /// DMA, the kernel, and the persist/commit protocol).
    pub elapsed: Ns,
    /// Bytes written to PM by the batch's kernel.
    pub pm_write_bytes_gpu: u64,
    /// Bytes whose durability was guaranteed by the batch.
    pub bytes_persisted: u64,
}

/// Sub-buckets per power of two: each bucket spans 1/8 of its octave, so a
/// reported quantile is at most 12.5% above the true value.
const HIST_SUB: u64 = 8;
/// Total buckets: values `0..8` get exact buckets, then 8 per octave up to
/// `u64::MAX` nanoseconds (~584 years — effectively unbounded).
const HIST_BUCKETS: usize = 496;

/// A fixed-size log-bucketed latency histogram (HDR-style).
///
/// Buckets are a pure function of the value, so histograms recorded on
/// different shards [`merge`](LatencyHistogram::merge) exactly and every
/// quantile is deterministic. Values are nanoseconds truncated to `u64`;
/// negative durations clamp to zero.
///
/// # Examples
///
/// ```
/// use gpm_sim::Ns;
/// use gpm_workloads::metrics::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for i in 1..=100u64 {
///     h.record(Ns(i as f64 * 1_000.0));
/// }
/// assert_eq!(h.count(), 100);
/// assert!(h.percentile(0.99) >= Ns(99_000.0));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: f64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// Bucket index for a nanosecond value.
fn hist_bucket(ns: u64) -> usize {
    if ns < HIST_SUB {
        return ns as usize;
    }
    let log2 = 63 - ns.leading_zeros() as u64; // ns in [2^log2, 2^(log2+1))
    let sub = (ns >> (log2 - 3)) & (HIST_SUB - 1);
    ((log2 - 2) * HIST_SUB + sub) as usize
}

/// Inclusive lower edge of a bucket.
fn hist_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < HIST_SUB {
        return idx;
    }
    let g = idx / HIST_SUB;
    let sub = idx % HIST_SUB;
    (HIST_SUB + sub) << (g - 1)
}

/// Inclusive upper edge of a bucket (the largest integer value it holds).
fn hist_upper(idx: usize) -> u64 {
    if idx + 1 >= HIST_BUCKETS {
        return u64::MAX;
    }
    hist_lower(idx + 1) - 1
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0.0,
            max_ns: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: Ns) {
        let ns = if d.0 <= 0.0 { 0 } else { d.0 as u64 };
        self.counts[hist_bucket(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as f64;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Adds every sample of `other` into `self`. Bucketing is value-stable,
    /// so merging per-shard histograms equals recording centrally.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples ([`Ns::ZERO`] when empty).
    pub fn mean(&self) -> Ns {
        if self.count == 0 {
            return Ns::ZERO;
        }
        Ns(self.sum_ns / self.count as f64)
    }

    /// Largest recorded sample (exact, not bucket-rounded).
    pub fn max(&self) -> Ns {
        Ns(self.max_ns as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), reported as the inclusive upper
    /// edge of the bucket holding that rank — never an underestimate, and
    /// at most 12.5% above the true value. An empty histogram reports
    /// [`Ns::ZERO`].
    pub fn percentile(&self, q: f64) -> Ns {
        if self.count == 0 {
            return Ns::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Ns(hist_upper(idx).min(self.max_ns) as f64);
            }
        }
        Ns(self.max_ns as f64)
    }

    /// The quantiles for every `q` in `qs`, answered in one cumulative
    /// pass over the buckets — each element equals
    /// [`percentile`](LatencyHistogram::percentile)`(q)` exactly, but the
    /// cost is O(buckets + qs·log qs) instead of O(buckets × qs). The
    /// serve reporting paths pull four or five quantiles per histogram
    /// across a whole sweep matrix, which is where the repeated walks
    /// were going.
    ///
    /// # Examples
    ///
    /// ```
    /// use gpm_sim::Ns;
    /// use gpm_workloads::metrics::LatencyHistogram;
    /// let mut h = LatencyHistogram::new();
    /// for i in 1..=100u64 {
    ///     h.record(Ns(i as f64 * 1_000.0));
    /// }
    /// let q = h.quantiles(&[0.50, 0.99]);
    /// assert_eq!(q[0], h.percentile(0.50));
    /// assert_eq!(q[1], h.percentile(0.99));
    /// ```
    pub fn quantiles(&self, qs: &[f64]) -> Vec<Ns> {
        let mut out = vec![Ns::ZERO; qs.len()];
        if self.count == 0 {
            return out;
        }
        let rank =
            |q: f64| ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        // Answer in ascending rank order so one cumulative walk serves
        // every request; `out` keeps the caller's order.
        let mut order: Vec<usize> = (0..qs.len()).collect();
        order.sort_by_key(|&i| rank(qs[i]));
        let mut seen = 0u64;
        let mut next = 0usize;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            while next < order.len() && seen >= rank(qs[order[next]]) {
                out[order[next]] = Ns(hist_upper(idx).min(self.max_ns) as f64);
                next += 1;
            }
            if next == order.len() {
                break;
            }
        }
        for &i in &order[next..] {
            out[i] = Ns(self.max_ns as f64);
        }
        out
    }

    /// Fraction of samples at or below `bound` — the SLO-attainment metric.
    /// Counts whole buckets whose upper edge fits under the bound, so the
    /// result is a (tight) lower bound. An empty histogram attains every
    /// SLO (`1.0`).
    pub fn fraction_le(&self, bound: Ns) -> f64 {
        if self.count == 0 {
            return 1.0;
        }
        let bound = if bound.0 <= 0.0 { 0 } else { bound.0 as u64 };
        let mut under = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if hist_upper(idx) <= bound {
                under += c;
            } else {
                break;
            }
        }
        under as f64 / self.count as f64
    }
}

/// Meters a closure against the machine clock and counters, producing
/// [`RunMetrics`] (with `verified` filled by the caller).
///
/// # Errors
///
/// Propagates the closure's error.
pub fn metered<E>(
    machine: &mut Machine,
    f: impl FnOnce(&mut Machine) -> Result<bool, E>,
) -> Result<RunMetrics, E> {
    let t0 = machine.clock.now();
    let s0: Stats = machine.stats;
    let verified = f(machine)?;
    let d = machine.stats.delta(&s0);
    Ok(RunMetrics {
        elapsed: machine.clock.now() - t0,
        pm_write_bytes_gpu: d.pm_write_bytes_gpu,
        pm_write_bytes_cpu: d.pm_write_bytes_cpu,
        bytes_persisted: d.bytes_persisted,
        system_fences: d.system_fences,
        recovery: None,
        verified,
    })
}

/// Workload category (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Transactional updates to PM (gpKVS, gpDB).
    Transactional,
    /// Iterative long-running kernels that checkpoint (DNN, CFD, BLK, HS).
    Checkpointing,
    /// Native persistence: in-place recoverable updates (BFS, SRAD, PS).
    Native,
}

impl Category {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Transactional => "Transactional",
            Category::Checkpointing => "Checkpointing",
            Category::Native => "Native",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metered_captures_clock_and_stats() {
        let mut m = Machine::default();
        let r: Result<RunMetrics, gpm_sim::SimError> = metered(&mut m, |m| {
            m.clock.advance(Ns(500.0));
            let off = m.alloc_pm(64)?;
            m.set_ddio(false);
            m.gpu_store_pm(1, off, &[1; 8])?;
            m.gpu_system_fence(1);
            Ok(true)
        });
        let r = r.unwrap();
        assert_eq!(r.elapsed, Ns(500.0));
        assert_eq!(r.pm_write_bytes_gpu, 8);
        assert!(r.verified);
        assert!(r.pcie_write_bw() > 0.0);
    }

    #[test]
    fn histogram_bucket_edges_are_exact_and_contiguous() {
        // Values below 8 ns get exact buckets; every larger value lands in
        // a bucket whose edges bracket it with ≤12.5% overshoot.
        for v in [
            0u64,
            1,
            3,
            7,
            8,
            9,
            15,
            16,
            17,
            255,
            256,
            1023,
            1024,
            1 << 40,
        ] {
            let idx = hist_bucket(v);
            assert!(
                hist_lower(idx) <= v && v <= hist_upper(idx),
                "v={v} idx={idx}"
            );
            let mut h = LatencyHistogram::new();
            h.record(Ns(v as f64));
            let p = h.percentile(1.0).0 as u64;
            assert!(p >= v, "quantile must not underestimate: v={v} p={p}");
            assert!(p <= v + v / 8 + 1, "≤12.5% overshoot: v={v} p={p}");
        }
        // Buckets tile the axis with no gaps or overlaps.
        for idx in 0..HIST_BUCKETS - 1 {
            assert_eq!(hist_upper(idx) + 1, hist_lower(idx + 1), "idx={idx}");
        }
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_merge_equals_central_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut central = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = Ns((i * 37 % 50_000) as f64);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            central.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), central.count());
        assert_eq!(a.max(), central.max());
        assert_eq!(a.mean(), central.mean());
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(a.percentile(q), central.percentile(q), "q={q}");
        }
        assert_eq!(
            a.fraction_le(Ns(25_000.0)),
            central.fraction_le(Ns(25_000.0))
        );
    }

    #[test]
    fn histogram_merge_then_quantiles_matches_percentile() {
        // Shard-merge first, then pull a whole quantile vector at once:
        // every element must equal the per-q `percentile` answer on the
        // merged histogram (including out-of-order and duplicate qs, the
        // clamped extremes, and q past the last bucket with samples).
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..5_000u64 {
            let v = Ns((i * 131 % 1_000_000) as f64);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        let qs = [0.99, 0.5, 0.0, 1.0, 0.5, 0.999, -0.5, 1.5];
        let got = a.quantiles(&qs);
        assert_eq!(got.len(), qs.len());
        for (q, g) in qs.iter().zip(&got) {
            assert_eq!(*g, a.percentile(*q), "q={q}");
        }
        assert_eq!(got[1], got[4], "duplicate qs answer identically");
        // Empty histogram: a zero vector, same as `percentile`.
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantiles(&[0.5, 0.99]), vec![Ns::ZERO; 2]);
        assert!(empty.quantiles(&[]).is_empty());
    }

    #[test]
    fn histogram_empty_behaviour() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), Ns::ZERO);
        assert_eq!(h.mean(), Ns::ZERO);
        assert_eq!(h.max(), Ns::ZERO);
        assert_eq!(h.fraction_le(Ns(1.0)), 1.0, "an empty stream meets any SLO");
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_negative_clamps() {
        let mut h = LatencyHistogram::new();
        h.record(Ns(-5.0)); // clamps to zero
        for i in 1..=10_000u64 {
            h.record(Ns(i as f64));
        }
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        let p999 = h.percentile(0.999);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
        assert!(p50.0 >= 5_000.0 && p50.0 <= 5_700.0, "p50={p50}");
        assert!(h.fraction_le(Ns(10_000.0)) >= 0.875);
        // A negative bound clamps to zero: only the clamped sample fits.
        assert!(h.fraction_le(Ns(-1.0)) < 0.001);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = Mode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), Mode::ALL.len());
        assert_eq!(Category::Transactional.label(), "Transactional");
    }
}
