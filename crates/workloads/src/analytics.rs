//! gpAnalytics: crash-recoverable behavioral analytics over PM.
//!
//! The GPMbench suite is dominated by point-op transactional workloads
//! (gpKVS, gpDB) and bulk checkpointing; this module adds the missing
//! scan/aggregate access pattern: streaming *behavioral analytics* in the
//! style of ClickHouse/duckdb-behavioral aggregates — `sessionize` with an
//! idle timeout, an N-step `window_funnel`, retention cohorts, and
//! `sequence_match` over event-type bitmaps — maintained as persistent
//! per-user state machines that GPU kernels fold forward from batches of
//! simulated user events.
//!
//! Durable layout, two structures:
//!
//! 1. **The event journal** — a PM append-only array of packed 8-byte
//!    events. Each batch appends its events with one vectorized kernel
//!    ([`Kernel::run_warp`] streams 32 events per warp through strided
//!    vector ops); the append is *idempotent by construction* (a retried
//!    batch rewrites the same bytes at the same offsets), so it needs no
//!    logging. Large sequential appends with one persist fence per warp
//!    are exactly where the Epoch persistency model should shine over
//!    Strict — the `analytics_*` enginebench legs measure that delta.
//! 2. **The session store** — an open-addressed 8-way table over PM
//!    reusing the 32-byte-slot atomic-publish discipline of
//!    [`crate::hash_shard`]: key = user id, value = the packed per-user
//!    analytics state (see [`AnalyticsParams::step_state`]). The fold
//!    kernel groups each batch's events per user (one thread per distinct
//!    user, same-set users packed into the same threadblock, so the kernel
//!    commits under the block-parallel engine) and publishes the folded
//!    state through [`shard_apply_detectable`] — the descriptor/record
//!    checks make the *non-idempotent* fold exactly-once under
//!    crash-and-retry, which the campaign's `--double-recovery` oracle
//!    verifies.
//!
//! Rollback recovery (the undo-log drain of Figure 6b) remains available
//! for boot-time recovery; retry recovery is a mirror rebuild only. The
//! valid journal prefix is defined by the embedding system's committed
//! sequence number (closed loop: committed batches × batch size; a serving
//! shard tracks the same watermark), so a torn in-flight append past the
//! watermark is dead data, not corruption.
//!
//! # Examples
//!
//! ```
//! use gpm_sim::Machine;
//! use gpm_workloads::analytics::{AnalyticsParams, AnalyticsWorkload};
//! use gpm_workloads::Mode;
//!
//! let w = AnalyticsWorkload::new(AnalyticsParams::quick());
//! let mut m = Machine::default();
//! let r = w.run(&mut m, Mode::Gpm)?;
//! assert!(r.verified, "session store must match the host replay");
//! # Ok::<(), gpm_sim::SimError>(())
//! ```

use std::collections::HashMap;

use gpm_core::{
    detect_create, gpm_map, gpm_persist_begin, gpm_persist_end, gpmlog_create_hcl, op_tag,
    DetectArea, GpmLog, GpmThreadExt, GpmWarpExt, TxnFlag,
};
use gpm_gpu::{
    launch_with_gauge, Capable, Communicating, FnKernel, FuelGauge, Kernel, KernelCapability,
    LaunchConfig, LaunchError, ThreadCtx, WarpCtx,
};
use gpm_sim::{
    Addr, CrashPolicy, CrashSchedule, EventKind, Machine, Ns, OracleVerdict, SimError, SimResult,
};

use crate::datagen::{EventTrace, UserEvent};
use crate::hash_shard::{
    shard_apply_detectable, shard_bytes, ShardDev, ShardModel, SLOT_BYTES, UNDO_BYTES, WAYS,
};
use crate::metrics::{metered, BatchMetrics, Mode, RunMetrics};
use crate::oracle::RecoveryOracle;

/// Distinct users one 256-thread fold block carries (one thread per user).
const USERS_PER_BLOCK: u64 = 256;

// ---- packed event word ----------------------------------------------------

/// Bit position of the event type in a packed event word.
const EV_TYPE_SHIFT: u32 = EventTrace::TS_BITS;
/// Bit position of the user id in a packed event word.
const EV_USER_SHIFT: u32 = EventTrace::TS_BITS + 8;

/// Packs a [`UserEvent`] into one 8-byte journal word:
/// `user` in bits `[34..64)`, `etype` in `[26..34)`, `ts` in `[0..26)`.
pub fn pack_event(e: &UserEvent) -> u64 {
    debug_assert!(e.user < 1 << (64 - EV_USER_SHIFT));
    debug_assert!(e.etype < 1 << 8);
    debug_assert!(e.ts < 1 << EventTrace::TS_BITS);
    (e.user << EV_USER_SHIFT) | ((e.etype as u64) << EV_TYPE_SHIFT) | e.ts
}

/// Inverse of [`pack_event`].
pub fn unpack_event(w: u64) -> UserEvent {
    UserEvent {
        user: w >> EV_USER_SHIFT,
        etype: ((w >> EV_TYPE_SHIFT) & 0xFF) as u32,
        ts: w & ((1 << EventTrace::TS_BITS) - 1),
    }
}

// ---- packed per-user state word -------------------------------------------

// Field layout of the 64-bit per-user state stored as the slot value:
//   [0..5)   funnel stage            (next expected funnel step)
//   [5..8)   sequence-match stage
//   [8..24)  event-type bitmap       (types seen, mod 16)
//   [24..32) session count           (saturating)
//   [32..36) funnel completions      (saturating)
//   [36..38) sequence matches        (saturating)
//   [38..64) last event timestamp    (26 bits, = EventTrace::TS_BITS)
const ST_SEQ_SHIFT: u32 = 5;
const ST_BITMAP_SHIFT: u32 = 8;
const ST_SESSIONS_SHIFT: u32 = 24;
const ST_COMPLETIONS_SHIFT: u32 = 32;
const ST_MATCHES_SHIFT: u32 = 36;
const ST_TS_SHIFT: u32 = 38;

/// Session count of a packed state (saturates at 255).
pub fn sessions_of(state: u64) -> u64 {
    (state >> ST_SESSIONS_SHIFT) & 0xFF
}

/// Funnel completions of a packed state (saturates at 15).
pub fn completions_of(state: u64) -> u64 {
    (state >> ST_COMPLETIONS_SHIFT) & 0xF
}

/// Sequence matches of a packed state (saturates at 3).
pub fn seq_matches_of(state: u64) -> u64 {
    (state >> ST_MATCHES_SHIFT) & 0x3
}

/// Event-type bitmap of a packed state (types taken mod 16).
pub fn bitmap_of(state: u64) -> u64 {
    (state >> ST_BITMAP_SHIFT) & 0xFFFF
}

/// Timestamp of the user's most recent event.
pub fn last_ts_of(state: u64) -> u64 {
    state >> ST_TS_SHIFT
}

// ---- parameters -----------------------------------------------------------

/// Workload parameters. The behavioral-aggregate definitions (idle
/// timeout, funnel shape, sequence pattern) live here because the kernel
/// fold and the host reference replay must share them exactly.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticsParams {
    /// Session-store sets (the table holds `sets × 8` users). Size this so
    /// the user population never fills a set — exactly-once verification
    /// requires an eviction-free run.
    pub sets: u64,
    /// Distinct users in the event trace.
    pub users: u64,
    /// Event types (the Markov chain's alphabet).
    pub event_types: u32,
    /// Events per batch.
    pub events_per_batch: u64,
    /// Batches executed by the closed-loop run.
    pub batches: u32,
    /// Zipf exponent of user popularity.
    pub user_skew: f64,
    /// `sessionize` idle timeout in ticks: a gap above this starts a new
    /// session.
    pub idle_timeout: u64,
    /// `window_funnel` steps: completing the funnel means seeing event
    /// types `0, 1, …, funnel_steps-1` in order.
    pub funnel_steps: u32,
    /// `window_funnel` per-step window in ticks: a funnel step only counts
    /// if the gap since the user's previous event is within the window.
    pub funnel_window: u64,
    /// `sequence_match` pattern: three event-type bitmaps matched in order
    /// (`.*` between steps, as in ClickHouse's `sequenceMatch`).
    pub seq_pattern: [u16; 3],
    /// Trace seed.
    pub seed: u64,
    /// Per-event CPU ingestion cost (parse + route).
    pub pipeline_ns: f64,
    /// GPU persistency model for every kernel this workload launches
    /// (`None` defers to `GPM_PERSISTENCY`, then strict).
    pub persistency: Option<gpm_gpu::PersistencyModel>,
}

impl Default for AnalyticsParams {
    fn default() -> AnalyticsParams {
        AnalyticsParams {
            sets: 65_536,
            users: 8_192,
            event_types: 6,
            events_per_batch: 16_384,
            batches: 4,
            user_skew: 0.9,
            idle_timeout: 24,
            funnel_steps: 3,
            funnel_window: 12,
            seq_pattern: [0x0001, 0x0006, 0x0018],
            seed: 42,
            pipeline_ns: 120.0,
            persistency: None,
        }
    }
}

impl AnalyticsParams {
    /// Small configuration for unit tests.
    pub fn quick() -> AnalyticsParams {
        AnalyticsParams {
            sets: 4_096,
            users: 512,
            events_per_batch: 2_048,
            batches: 2,
            ..AnalyticsParams::default()
        }
    }

    /// Pins the GPU persistency model for every launch of this workload.
    pub fn with_persistency(mut self, model: gpm_gpu::PersistencyModel) -> AnalyticsParams {
        self.persistency = Some(model);
        self
    }

    fn table_bytes(&self) -> u64 {
        shard_bytes(self.sets)
    }

    /// Journal capacity in events (the closed-loop run appends
    /// `batches × events_per_batch`; serving embedders size `batches` to
    /// cover their stream).
    pub fn journal_events(&self) -> u64 {
        self.batches as u64 * self.events_per_batch
    }

    /// Fold-kernel thread capacity: distinct users per batch plus headroom
    /// for the sentinel padding set-partitioning inserts at block
    /// boundaries.
    fn user_capacity(&self) -> u64 {
        self.events_per_batch + self.events_per_batch / 3 + USERS_PER_BLOCK
    }

    /// Folds one event into a packed per-user state word. This is *the*
    /// aggregate definition — the GPU fold kernel and the host reference
    /// replay both call it, so the session store is verifiable bit-exactly.
    ///
    /// Per event: `sessionize` (gap above [`idle_timeout`] opens a
    /// session), the seen-types bitmap, `window_funnel` (type 0 enters the
    /// funnel; type `k` advances stage `k` when the gap is within
    /// [`funnel_window`]; reaching [`funnel_steps`] counts a completion),
    /// and `sequence_match` (an event whose type is in the current
    /// [`seq_pattern`] stage's bitmap advances it; finishing all three
    /// stages counts a match).
    ///
    /// [`idle_timeout`]: AnalyticsParams::idle_timeout
    /// [`funnel_window`]: AnalyticsParams::funnel_window
    /// [`funnel_steps`]: AnalyticsParams::funnel_steps
    /// [`seq_pattern`]: AnalyticsParams::seq_pattern
    pub fn step_state(&self, state: u64, etype: u32, ts: u64) -> u64 {
        let fresh = state == 0;
        let last = last_ts_of(state);
        let gap = ts.saturating_sub(last);
        let mut stage = state & 0x1F;
        let mut seq_stage = (state >> ST_SEQ_SHIFT) & 0x7;
        let mut bitmap = bitmap_of(state);
        let mut sessions = sessions_of(state);
        let mut completions = completions_of(state);
        let mut seq_matches = seq_matches_of(state);
        // sessionize: first event, or an idle gap, opens a session.
        if fresh || gap > self.idle_timeout {
            sessions = (sessions + 1).min(0xFF);
        }
        bitmap |= 1 << (etype as u64 % 16);
        // window_funnel: type 0 (re-)enters; type k advances stage k in-window.
        if etype == 0 {
            stage = 1;
        } else if etype as u64 == stage && !fresh && gap <= self.funnel_window {
            stage += 1;
        }
        if stage as u32 == self.funnel_steps {
            completions = (completions + 1).min(0xF);
            stage = 0;
        }
        // sequence_match over event-type bitmaps.
        if self.seq_pattern[seq_stage as usize] & (1u16 << (etype % 16)) != 0 {
            seq_stage += 1;
            if seq_stage as usize == self.seq_pattern.len() {
                seq_matches = (seq_matches + 1).min(0x3);
                seq_stage = 0;
            }
        }
        stage
            | (seq_stage << ST_SEQ_SHIFT)
            | (bitmap << ST_BITMAP_SHIFT)
            | (sessions << ST_SESSIONS_SHIFT)
            | (completions << ST_COMPLETIONS_SHIFT)
            | (seq_matches << ST_MATCHES_SHIFT)
            | (ts << ST_TS_SHIFT)
    }

    /// Folds a packed event slice over `state` (host-side helper shared by
    /// the reference model and the serving tenant).
    pub fn fold_packed(&self, mut state: u64, packed: &[u64]) -> u64 {
        for &w in packed {
            let e = unpack_event(w);
            state = self.step_state(state, e.etype, e.ts);
        }
        state
    }
}

// ---- live state -----------------------------------------------------------

/// Live gpAnalytics instance state: the PM session store and its HBM
/// mirror, the PM event journal, the batch buffers, the undo log and the
/// transaction flag. Created once by [`AnalyticsWorkload::setup`] and
/// reused across batches.
#[derive(Debug)]
pub struct AnalyticsState {
    pm_table: u64,
    hbm_table: u64,
    journal: u64,
    flag: TxnFlag,
    detect: DetectArea,
    ev_packed: u64,
    ev_users: u64,
    ev_start: u64,
    ev_count: u64,
    log: GpmLog,
}

impl AnalyticsState {
    /// The device-side shard handle over this state's table and mirror.
    pub fn shard(&self, sets: u64) -> ShardDev {
        ShardDev {
            pm_base: self.pm_table,
            hbm_base: self.hbm_table,
            sets,
        }
    }
}

/// Whole-store aggregates read back from the durable session store — the
/// retention-cohort report (a host scan; retention is derived, not stored).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CohortStats {
    /// Users with any state.
    pub users: u64,
    /// Total sessions across users.
    pub sessions: u64,
    /// Retained users: came back for a second session.
    pub retained: u64,
    /// Total funnel completions.
    pub completions: u64,
    /// Users with at least one sequence match.
    pub matched: u64,
}

// ---- the journal-append kernel --------------------------------------------

/// One batch's journal append: each thread copies one packed event from
/// the HBM staging buffer to its PM journal slot and persists it. Uniform
/// and divergence-free, so full warps stream through the vector path.
struct JournalKernel {
    src: u64,
    dst: u64,
    n_events: u64,
}

impl Kernel for JournalKernel {
    type State = ();
    type Shared = ();

    fn capability(&self) -> KernelCapability {
        KernelCapability::BlockParallel
    }

    fn run(&self, _phase: u32, ctx: &mut ThreadCtx<'_>, _: &mut (), _: &mut ()) -> SimResult<()> {
        let i = ctx.global_id();
        if i >= self.n_events {
            return Ok(());
        }
        let w = ctx.ld_u64(Addr::hbm(self.src + i * 8))?;
        ctx.st_u64(Addr::pm(self.dst + i * 8), w)?;
        ctx.gpm_persist()
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _: &mut [()],
        _: &mut (),
    ) -> SimResult<bool> {
        let first = ctx.first_global_id();
        let lanes = ctx.lanes() as u64;
        if first + lanes > self.n_events {
            return Ok(false); // guard diverges in the tail warp
        }
        let mut vals = vec![0u64; lanes as usize];
        ctx.ld_u64_lanes(Addr::hbm(self.src + first * 8), 8, &mut vals)?;
        ctx.st_u64_lanes(Addr::pm(self.dst + first * 8), 8, &vals)?;
        ctx.gpm_persist()?;
        Ok(true)
    }

    fn warp_fuel(&self, _phase: u32) -> Option<u64> {
        // One HBM load, one PM store, one persist fence per lane.
        Some(3)
    }
}

// ---- the workload ---------------------------------------------------------

/// The gpAnalytics workload instance.
#[derive(Debug)]
pub struct AnalyticsWorkload {
    /// Parameters of this instance.
    pub params: AnalyticsParams,
    /// Campaign self-test knob: rollback recovery deliberately skips the
    /// newest undo-log entry. The campaign oracle must catch this.
    pub inject_recovery_bug: bool,
    /// Campaign self-test knob: folds skip the descriptor and record
    /// checks (a double-applying publish). Harmless on clean runs; a
    /// crash-and-retry folds a user's batch twice. The double-recovery
    /// oracle must catch this.
    pub inject_double_apply: bool,
}

/// One set-partitioned batch ready for upload: `users[i]` is the distinct
/// user thread `i` folds (0 = block-padding sentinel), `start[i]/count[i]`
/// its slice of `packed` (user-grouped, per-user arrival order preserved).
struct PackedEvents {
    users: Vec<u64>,
    start: Vec<u32>,
    count: Vec<u32>,
    packed: Vec<u64>,
    real_events: usize,
}

/// Groups a batch per user: returns users in first-appearance order plus
/// each user's packed events in arrival order.
fn group_events(events: &[UserEvent]) -> (Vec<u64>, HashMap<u64, Vec<u64>>) {
    let mut order = Vec::new();
    let mut groups: HashMap<u64, Vec<u64>> = HashMap::new();
    for e in events {
        groups
            .entry(e.user)
            .or_insert_with(|| {
                order.push(e.user);
                Vec::new()
            })
            .push(pack_event(e));
    }
    (order, groups)
}

impl AnalyticsWorkload {
    /// Creates the workload.
    pub fn new(params: AnalyticsParams) -> AnalyticsWorkload {
        AnalyticsWorkload {
            params,
            inject_recovery_bug: false,
            inject_double_apply: false,
        }
    }

    /// Enables the deliberate recovery bug (campaign self-test).
    pub fn with_recovery_bug(mut self) -> AnalyticsWorkload {
        self.inject_recovery_bug = true;
        self
    }

    /// Enables the deliberate double-applying fold (campaign self-test for
    /// `--double-recovery`).
    pub fn with_double_apply_bug(mut self) -> AnalyticsWorkload {
        self.inject_double_apply = true;
        self
    }

    /// The event trace this instance replays (shared with the serving
    /// tenant, which streams the same generator open-loop).
    pub fn trace(&self) -> EventTrace {
        let p = &self.params;
        EventTrace::new(p.users, p.user_skew, p.event_types, p.seed)
    }

    /// The closed-loop run's batches, in submission order.
    pub fn gen_batches(&self) -> Vec<Vec<UserEvent>> {
        let mut trace = self.trace();
        (0..self.params.batches)
            .map(|_| trace.take_events(self.params.events_per_batch))
            .collect()
    }

    fn cfg(&self, elements: u64) -> LaunchConfig {
        let cfg = LaunchConfig::for_elements(elements.max(1), 256);
        match self.params.persistency {
            Some(model) => cfg.with_persistency(model),
            None => cfg,
        }
    }

    /// The launch shape of a full-capacity fold (log geometry and the
    /// recovery drain are sized for this).
    fn fold_cfg_full(&self) -> LaunchConfig {
        self.cfg(self.params.user_capacity())
    }

    /// Allocates the session store, journal, batch buffers, undo log and
    /// transaction flag on `machine` (durable setup, untimed).
    ///
    /// # Errors
    ///
    /// Fails on allocation or PM-file errors.
    pub fn setup(&self, machine: &mut Machine) -> SimResult<AnalyticsState> {
        let p = &self.params;
        let ucap = p.user_capacity();
        let pm_table = gpm_map(machine, "/pm/gpanalytics/table", p.table_bytes(), true)?.offset;
        let journal = gpm_map(
            machine,
            "/pm/gpanalytics/journal",
            p.journal_events() * 8,
            true,
        )?
        .offset;
        let flag = TxnFlag::create(machine, "/pm/gpanalytics/flag")?;
        let detect = detect_create(machine, "/pm/gpanalytics/detect", ucap)
            .map_err(|_| SimError::Invalid("failed to create gpAnalytics descriptor area"))?;
        let hbm_table = machine.alloc_hbm(p.table_bytes())?;
        let ev_packed = machine.alloc_hbm(p.events_per_batch * 8)?;
        let ev_users = machine.alloc_hbm(ucap * 8)?;
        let ev_start = machine.alloc_hbm(ucap * 4)?;
        let ev_count = machine.alloc_hbm(ucap * 4)?;
        let cfg = self.fold_cfg_full();
        // Same headroom rationale as gpKVS: the log only truncates at
        // commit, so crashed attempts' entries stay behind across retries.
        let log_size = cfg.total_threads() * UNDO_BYTES as u64 * 4;
        let log = gpmlog_create_hcl(
            machine,
            "/pm/gpanalytics/log",
            log_size,
            cfg.grid,
            cfg.block,
        )
        .map_err(|_| SimError::Invalid("failed to create gpAnalytics log"))?;
        Ok(AnalyticsState {
            pm_table,
            hbm_table,
            journal,
            flag,
            detect,
            ev_packed,
            ev_users,
            ev_start,
            ev_count,
            log,
        })
    }

    /// Set-partitions a batch: groups events per user (arrival order
    /// preserved within a user), stable-sorts the distinct users by table
    /// set, and packs them into 256-user blocks such that no set group
    /// straddles a block boundary (padding with user-0 sentinels). Blocks
    /// therefore never touch each other's table lines and the fold kernel
    /// commits under the block-parallel engine. Falls back to the
    /// first-appearance layout if padding would overflow the buffers (the
    /// engine then serializes that batch; the kernel stays correct).
    fn pack_batch(&self, events: &[UserEvent]) -> PackedEvents {
        let sets = self.params.sets;
        let (mut order, mut groups) = group_events(events);
        order.sort_by_key(|&u| gpm_pmkv::hash64(u) % sets);
        let capacity = self.params.user_capacity() as usize;
        let mut pe = PackedEvents {
            users: Vec::new(),
            start: Vec::new(),
            count: Vec::new(),
            packed: Vec::with_capacity(events.len()),
            real_events: events.len(),
        };
        let mut identity = false;
        let mut g = 0usize;
        while g < order.len() {
            let set = gpm_pmkv::hash64(order[g]) % sets;
            let mut e = g + 1;
            while e < order.len() && gpm_pmkv::hash64(order[e]) % sets == set {
                e += 1;
            }
            let group = e - g;
            let used = pe.users.len() % USERS_PER_BLOCK as usize;
            if group > USERS_PER_BLOCK as usize {
                identity = true;
                break;
            }
            if used + group > USERS_PER_BLOCK as usize {
                for _ in used..USERS_PER_BLOCK as usize {
                    pe.users.push(0);
                    pe.start.push(0);
                    pe.count.push(0);
                }
            }
            if pe.users.len() + group > capacity {
                identity = true;
                break;
            }
            for &u in &order[g..e] {
                let evs = &groups[&u];
                pe.users.push(u);
                pe.start.push(pe.packed.len() as u32);
                pe.count.push(evs.len() as u32);
                pe.packed.extend_from_slice(evs);
            }
            g = e;
        }
        if identity {
            pe.users.clear();
            pe.start.clear();
            pe.count.clear();
            pe.packed.clear();
            let (order, _) = group_events(events);
            for u in order {
                let evs = groups.remove(&u).unwrap_or_default();
                pe.users.push(u);
                pe.start.push(pe.packed.len() as u32);
                pe.count.push(evs.len() as u32);
                pe.packed.extend_from_slice(&evs);
            }
        }
        pe
    }

    fn upload_batch(
        &self,
        machine: &mut Machine,
        st: &AnalyticsState,
        pe: &PackedEvents,
    ) -> SimResult<()> {
        let mut users = Vec::with_capacity(pe.users.len() * 8);
        let mut start = Vec::with_capacity(pe.start.len() * 4);
        let mut count = Vec::with_capacity(pe.count.len() * 4);
        let mut packed = Vec::with_capacity(pe.packed.len() * 8);
        for &u in &pe.users {
            users.extend_from_slice(&u.to_le_bytes());
        }
        for &s in &pe.start {
            start.extend_from_slice(&s.to_le_bytes());
        }
        for &c in &pe.count {
            count.extend_from_slice(&c.to_le_bytes());
        }
        for &w in &pe.packed {
            packed.extend_from_slice(&w.to_le_bytes());
        }
        machine.host_write(Addr::hbm(st.ev_users), &users)?;
        machine.host_write(Addr::hbm(st.ev_start), &start)?;
        machine.host_write(Addr::hbm(st.ev_count), &count)?;
        machine.host_write(Addr::hbm(st.ev_packed), &packed)?;
        // Event ingestion (parse + route, real events only) plus the DMA
        // of the staged batch to the GPU.
        let bytes = users.len() + start.len() + count.len() + packed.len();
        let t = Ns(pe.real_events as f64 * self.params.pipeline_ns)
            + machine.cfg.dma_init_overhead
            + Ns(bytes as f64 / machine.cfg.pcie_bw);
        machine.clock.advance(t);
        Ok(())
    }

    /// The per-user fold kernel: one thread per packed distinct user loads
    /// its event slice, folds [`AnalyticsParams::step_state`] over it, and
    /// publishes the new state through the detectable RMW protocol with
    /// the tag `op_tag(epoch, thread)`. Per-lane by design (event counts
    /// diverge); block-parallel thanks to the set partitioning.
    fn fold_kernel(
        &self,
        st: &AnalyticsState,
        n_users: u64,
        epoch: u64,
    ) -> impl Kernel<State = (), Shared = ()> + '_ {
        let p = self.params;
        let shard = st.shard(p.sets);
        let detect = st.detect.dev();
        let log = st.log.dev();
        let (ev_users, ev_start, ev_count, ev_packed) =
            (st.ev_users, st.ev_start, st.ev_count, st.ev_packed);
        let inject = self.inject_double_apply;
        Capable(
            KernelCapability::BlockParallel,
            FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let tid = ctx.global_id();
                if tid >= n_users {
                    return Ok(());
                }
                let user = ctx.ld_u64(Addr::hbm(ev_users + tid * 8))?;
                if user == 0 {
                    return Ok(()); // block-boundary padding sentinel
                }
                let start = ctx.ld_u32(Addr::hbm(ev_start + tid * 4))? as u64;
                let count = ctx.ld_u32(Addr::hbm(ev_count + tid * 4))? as u64;
                let mut evs = Vec::with_capacity(count as usize);
                for i in 0..count {
                    evs.push(ctx.ld_u64(Addr::hbm(ev_packed + (start + i) * 8))?);
                }
                ctx.compute(Ns(18.0 * count as f64)); // state-machine scan
                shard_apply_detectable(
                    ctx,
                    &shard,
                    &detect,
                    &log,
                    tid,
                    op_tag(epoch, tid),
                    user,
                    |old| p.fold_packed(old.unwrap_or(0), &evs),
                    inject,
                )
            }),
        )
    }

    /// Opens (or, on a retry, re-enters) the detect epoch for transaction
    /// `seq` — same discipline as gpKVS: a still-armed flag for this very
    /// `seq` means a crashed batch is being resubmitted, so the epoch
    /// minted before the crash is reused.
    fn enter_epoch(&self, machine: &mut Machine, st: &AnalyticsState, seq: u64) -> SimResult<u64> {
        if st.flag.active(machine)? == seq + 1 {
            st.detect
                .epoch(machine)
                .map_err(|_| SimError::Invalid("detect epoch read failed"))
        } else {
            st.flag.begin(machine, seq + 1)?;
            st.detect
                .begin_epoch(machine)
                .map_err(|_| SimError::Invalid("detect epoch advance failed"))
        }
    }

    /// Applies one batch of events: upload, journal append (vectorized),
    /// per-user fold (detectable RMW), commit. `seq` numbers the
    /// transaction; `journal_base` is the event index the batch's journal
    /// records land at (the caller's committed watermark — a retry must
    /// pass the same base so the append rewrites the same bytes).
    ///
    /// # Errors
    ///
    /// Fails on oversized batches, journal overflow, or platform errors.
    pub fn apply_batch(
        &self,
        machine: &mut Machine,
        st: &AnalyticsState,
        seq: u64,
        journal_base: u64,
        events: &[UserEvent],
    ) -> SimResult<BatchMetrics> {
        match self.apply_batch_gauged(
            machine,
            st,
            seq,
            journal_base,
            events,
            &mut FuelGauge::Unlimited,
        ) {
            Ok(m) => Ok(m),
            Err(LaunchError::Crashed(_)) => unreachable!("unlimited gauge never crashes"),
            Err(LaunchError::Sim(e)) => Err(e),
        }
    }

    /// [`apply_batch`](AnalyticsWorkload::apply_batch) driven through a
    /// [`FuelGauge`] (crash-schedule recording and mid-batch crash
    /// injection ride this).
    ///
    /// # Errors
    ///
    /// [`LaunchError::Crashed`] when the gauge's fuel runs out mid-kernel;
    /// [`LaunchError::Sim`] on functional errors.
    pub fn apply_batch_gauged(
        &self,
        machine: &mut Machine,
        st: &AnalyticsState,
        seq: u64,
        journal_base: u64,
        events: &[UserEvent],
        gauge: &mut FuelGauge,
    ) -> Result<BatchMetrics, LaunchError> {
        let p = &self.params;
        if events.len() as u64 > p.events_per_batch {
            return Err(LaunchError::Sim(SimError::Invalid(
                "batch exceeds the events_per_batch buffer capacity",
            )));
        }
        if journal_base + events.len() as u64 > p.journal_events() {
            return Err(LaunchError::Sim(SimError::Invalid(
                "batch exceeds the journal capacity",
            )));
        }
        let t0 = machine.clock.now();
        let s0 = machine.stats;
        let pe = self.pack_batch(events);
        self.upload_batch(machine, st, &pe)
            .map_err(LaunchError::Sim)?;
        let epoch = self
            .enter_epoch(machine, st, seq)
            .map_err(LaunchError::Sim)?;
        gpm_persist_begin(machine);
        let n_events = pe.packed.len() as u64;
        if n_events > 0 {
            launch_with_gauge(
                machine,
                self.cfg(n_events),
                &JournalKernel {
                    src: st.ev_packed,
                    dst: st.journal + journal_base * 8,
                    n_events,
                },
                gauge,
            )?;
        }
        let n_users = pe.users.len() as u64;
        if n_users > 0 {
            launch_with_gauge(
                machine,
                self.cfg(n_users),
                &self.fold_kernel(st, n_users, epoch),
                gauge,
            )?;
        }
        gpm_persist_end(machine);
        st.flag.commit(machine).map_err(LaunchError::Sim)?;
        st.log
            .host_clear(machine)
            .map_err(|_| LaunchError::Sim(SimError::Invalid("log clear failed")))?;
        let d = machine.stats.delta(&s0);
        Ok(BatchMetrics {
            ops: events.len() as u64,
            elapsed: machine.clock.now() - t0,
            pm_write_bytes_gpu: d.pm_write_bytes_gpu,
            bytes_persisted: d.bytes_persisted,
        })
    }

    /// Gauge-driven closed-loop batch sequence for the campaign oracle.
    /// `committed` tracks how many batches fully committed before a crash.
    fn run_batches_gauged(
        &self,
        machine: &mut Machine,
        st: &AnalyticsState,
        gauge: &mut FuelGauge,
        committed: &mut u32,
    ) -> Result<(), LaunchError> {
        let mut trace = self.trace();
        let epb = self.params.events_per_batch;
        for b in 0..self.params.batches {
            let events = trace.take_events(epb);
            self.apply_batch_gauged(machine, st, b as u64, b as u64 * epb, &events, gauge)?;
            *committed = b + 1;
        }
        Ok(())
    }

    /// Rebuilds the volatile HBM mirror from the durable PM session store
    /// after a crash (one PM→GPU sweep over PCIe).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn rebuild_mirror(&self, machine: &mut Machine, st: &AnalyticsState) -> SimResult<()> {
        let bytes = self.params.table_bytes();
        let mut buf = vec![0u8; bytes as usize];
        machine.read(Addr::pm(st.pm_table), &mut buf)?;
        machine.host_write(Addr::hbm(st.hbm_table), &buf)?;
        let t = machine.cfg.dma_init_overhead + Ns(bytes as f64 / machine.cfg.pcie_bw);
        machine.clock.advance(t);
        Ok(())
    }

    /// In-place *retry* recovery: rebuilds the HBM mirror and touches
    /// nothing else — the store, the descriptor area and the transaction
    /// flag stay exactly as the crash left them, so resubmitting the
    /// in-flight batch (same `seq`, same events, same `journal_base`)
    /// folds precisely the users that had not yet applied. Idempotent.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn recover_for_retry(&self, machine: &mut Machine, st: &AnalyticsState) -> SimResult<()> {
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryBegin);
        }
        let result = self.rebuild_mirror(machine, st);
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryEnd);
        }
        result
    }

    /// Rollback recovery: undo logged session-store publishes, newest
    /// first, removing each entry only after the store is persisted (the
    /// Figure 6b drain, shared layout with gpKVS). The journal needs no
    /// undo — entries past the committed watermark are dead by definition.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn recover(&self, machine: &mut Machine, st: &AnalyticsState) -> SimResult<()> {
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryBegin);
        }
        let result = match self.recover_gauged(machine, st, &mut FuelGauge::Unlimited) {
            Ok(()) => Ok(()),
            Err(LaunchError::Crashed(_)) => unreachable!("unlimited gauge never crashes"),
            Err(LaunchError::Sim(e)) => Err(e),
        };
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryEnd);
        }
        result
    }

    fn recover_gauged(
        &self,
        machine: &mut Machine,
        st: &AnalyticsState,
        gauge: &mut FuelGauge,
    ) -> Result<(), LaunchError> {
        if st.flag.active(machine).map_err(LaunchError::Sim)? == 0 {
            return Ok(()); // no transaction was active
        }
        let victim = if self.inject_recovery_bug {
            let mut v = None;
            for tid in 0..self.fold_cfg_full().total_threads() {
                let tail = st
                    .log
                    .host_tail(machine, tid)
                    .map_err(|_| LaunchError::Sim(SimError::Invalid("log tail")))?;
                if tail as usize * 4 >= UNDO_BYTES {
                    v = Some(tid);
                    break;
                }
            }
            v
        } else {
            None
        };
        let log = st.log.dev();
        let pm_table = st.pm_table;
        gpm_persist_begin(machine);
        let k = Communicating(FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            if Some(ctx.global_id()) == victim && log.tail(ctx)? as usize * 4 >= UNDO_BYTES {
                log.remove(ctx, UNDO_BYTES)?;
            }
            while log.tail(ctx)? as usize * 4 >= UNDO_BYTES {
                let mut entry = [0u8; UNDO_BYTES];
                log.read_top(ctx, &mut entry)?;
                let set = u32::from_le_bytes(entry[0..4].try_into().unwrap()) as u64;
                let way = u32::from_le_bytes(entry[4..8].try_into().unwrap()) as u64;
                let slot = pm_table + (set * WAYS + way) * SLOT_BYTES;
                ctx.st_bytes(Addr::pm(slot), &entry[8..40])?;
                ctx.gpm_persist()?;
                log.remove(ctx, UNDO_BYTES)?;
            }
            Ok(())
        }));
        launch_with_gauge(machine, self.fold_cfg_full(), &k, gauge)?;
        gpm_persist_end(machine);
        st.flag.commit(machine).map_err(LaunchError::Sim)?;
        Ok(())
    }

    /// Host reference model: replays the first `batches` batches through
    /// [`ShardModel::apply`] with the same per-user grouping and fold the
    /// kernel uses.
    fn reference_model(&self, batches: u32) -> ShardModel {
        let p = &self.params;
        let mut model = ShardModel::new(p.sets);
        let mut trace = self.trace();
        for _ in 0..batches {
            let events = trace.take_events(p.events_per_batch);
            let (order, groups) = group_events(&events);
            for u in order {
                model.apply(u, |old| p.fold_packed(old.unwrap_or(0), &groups[&u]));
            }
        }
        model
    }

    /// Verifies the durable session store against the host replay of the
    /// first `batches` batches (key, packed state, and version — the
    /// version counts the batches that touched the user).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn verify(&self, machine: &Machine, st: &AnalyticsState, batches: u32) -> SimResult<bool> {
        let model = self.reference_model(batches);
        for (&(set, way), &(k, v, ver)) in model.entries() {
            let slot = st.pm_table + (set * WAYS + way) * SLOT_BYTES;
            if machine.read_u64(Addr::pm(slot))? != k
                || machine.read_u64(Addr::pm(slot + 8))? != v
                || machine.read_u64(Addr::pm(slot + 16))? != ver
            {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Verifies the journal's committed prefix byte-matches the reference
    /// packed batches (the append is deterministic, so this is exact).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn verify_journal(
        &self,
        machine: &Machine,
        st: &AnalyticsState,
        batches: u32,
    ) -> SimResult<bool> {
        let p = &self.params;
        let mut trace = self.trace();
        for b in 0..batches {
            let events = trace.take_events(p.events_per_batch);
            let pe = self.pack_batch(&events);
            let base = st.journal + b as u64 * p.events_per_batch * 8;
            for (i, &w) in pe.packed.iter().enumerate() {
                if machine.read_u64(Addr::pm(base + i as u64 * 8))? != w {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Scans the durable session store and aggregates the retention-cohort
    /// report (host-side, untimed — the analyst's read path).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn cohort_stats(&self, machine: &Machine, st: &AnalyticsState) -> SimResult<CohortStats> {
        let mut out = CohortStats::default();
        for set in 0..self.params.sets {
            for way in 0..WAYS {
                let slot = st.pm_table + (set * WAYS + way) * SLOT_BYTES;
                let key = machine.read_u64(Addr::pm(slot))?;
                if key == 0 {
                    continue;
                }
                let state = machine.read_u64(Addr::pm(slot + 8))?;
                out.users += 1;
                out.sessions += sessions_of(state);
                out.retained += u64::from(sessions_of(state) >= 2);
                out.completions += completions_of(state);
                out.matched += u64::from(seq_matches_of(state) >= 1);
            }
        }
        Ok(out)
    }

    /// Runs the closed-loop workload under `mode` (GPM only — the CAP
    /// baselines have no detectable-RMW discipline to compare against).
    ///
    /// # Errors
    ///
    /// Fails for unsupported modes or on platform errors.
    pub fn run(&self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        if mode != Mode::Gpm {
            return Err(SimError::Invalid("mode unsupported for gpAnalytics"));
        }
        let st = self.setup(machine)?;
        let mut metrics = metered(machine, |m| {
            let mut committed = 0;
            match self.run_batches_gauged(m, &st, &mut FuelGauge::Unlimited, &mut committed) {
                Ok(()) => Ok::<bool, SimError>(true),
                Err(LaunchError::Crashed(_)) => unreachable!("unlimited gauge never crashes"),
                Err(LaunchError::Sim(e)) => Err(e),
            }
        })?;
        metrics.verified = self.verify(machine, &st, self.params.batches)?
            && self.verify_journal(machine, &st, self.params.batches)?;
        Ok(metrics)
    }
}

impl RecoveryOracle for AnalyticsWorkload {
    fn name(&self) -> &'static str {
        "gpAnalytics"
    }

    fn record(&mut self, machine: &mut Machine) -> SimResult<CrashSchedule> {
        let st = self.setup(machine)?;
        let mut gauge = FuelGauge::record();
        let mut committed = 0;
        crate::oracle::expect_clean(self.run_batches_gauged(
            machine,
            &st,
            &mut gauge,
            &mut committed,
        ))?;
        Ok(gauge.into_schedule().expect("recording gauge"))
    }

    fn run_case(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        let st = self.setup(machine)?;
        let mut committed = 0u32;
        let res = self.run_batches_gauged(
            machine,
            &st,
            &mut FuelGauge::crash_with_policy(fuel, policy),
            &mut committed,
        );
        crate::oracle::settle_crash(machine, policy, res)?;
        self.recover(machine, &st)?;
        // After undo, the store must hold exactly the committed batches...
        if !self.verify(machine, &st, committed)? {
            return Ok(OracleVerdict::Fail(format!(
                "session store diverges from the {committed} committed batches"
            )));
        }
        // ...the committed journal prefix must be intact...
        if !self.verify_journal(machine, &st, committed)? {
            return Ok(OracleVerdict::Fail(format!(
                "journal prefix diverges over the {committed} committed batches"
            )));
        }
        // ...and every user of the in-flight batch must be rolled back to
        // its committed state (absent if the batch introduced it).
        if committed < self.params.batches {
            let model = self.reference_model(committed);
            let shard = st.shard(self.params.sets);
            let in_flight = &self.gen_batches()[committed as usize];
            let (users, _) = group_events(in_flight);
            for user in users {
                let durable = shard.host_find(machine, user)?.map(|rec| (rec[1], rec[2]));
                if durable != model.find(user) {
                    return Ok(OracleVerdict::Fail(format!(
                        "user {user} of the in-flight batch survived rollback"
                    )));
                }
            }
        }
        Ok(OracleVerdict::Pass)
    }

    fn supports_double_recovery(&self) -> bool {
        true
    }

    fn run_case_double_recovery(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        let model = self.reference_model(self.params.batches);
        assert!(
            !model.evicted,
            "exactly-once verification requires an eviction-free user population"
        );
        let st = self.setup(machine)?;
        let mut committed = 0u32;
        let res = self.run_batches_gauged(
            machine,
            &st,
            &mut FuelGauge::crash_with_policy(fuel, policy),
            &mut committed,
        );
        crate::oracle::settle_crash(machine, policy, res)?;
        // Retry recovery, run TWICE: it must be idempotent.
        self.recover_for_retry(machine, &st)?;
        self.recover_for_retry(machine, &st)?;
        // Resubmit the in-flight batch verbatim, then the remaining ones.
        let batches = self.gen_batches();
        let epb = self.params.events_per_batch;
        let shard = st.shard(self.params.sets);
        for b in committed..self.params.batches {
            let events = &batches[b as usize];
            self.apply_batch(machine, &st, b as u64, b as u64 * epb, events)?;
            if b == committed {
                // Exactly-once check immediately after the retried batch:
                // every touched user must hold exactly the state and
                // version of the host replay through batch b — a zero
                // apply leaves it behind, a double apply folds the batch
                // twice and bumps the version past the replay's.
                let model_b = self.reference_model(b + 1);
                let (users, _) = group_events(events);
                for user in users {
                    let expect = model_b.find(user);
                    match shard.host_find(machine, user)? {
                        None => {
                            return Ok(OracleVerdict::Fail(format!(
                                "user {user} of retried batch {b} applied zero times"
                            )))
                        }
                        Some(rec) if Some((rec[1], rec[2])) != expect => {
                            return Ok(OracleVerdict::Fail(format!(
                                "user {user} of retried batch {b} diverges from \
                                 exactly-once replay (version {} vs {:?})",
                                rec[2], expect
                            )))
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        if !self.verify(machine, &st, self.params.batches)?
            || !self.verify_journal(machine, &st, self.params.batches)?
        {
            return Ok(OracleVerdict::Fail(
                "state diverges from the uncrashed reference after retry".into(),
            ));
        }
        Ok(OracleVerdict::Pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> AnalyticsWorkload {
        AnalyticsWorkload::new(AnalyticsParams::quick())
    }

    #[test]
    fn event_word_roundtrips() {
        let e = UserEvent {
            user: 12_345,
            etype: 7,
            ts: (1 << EventTrace::TS_BITS) - 1,
        };
        assert_eq!(unpack_event(pack_event(&e)), e);
    }

    #[test]
    fn step_state_counts_sessions_funnels_and_sequences() {
        let p = AnalyticsParams::quick();
        // A clean funnel 0→1→2 within the window, one session.
        let mut s = 0u64;
        s = p.step_state(s, 0, 100);
        s = p.step_state(s, 1, 110);
        s = p.step_state(s, 2, 120);
        assert_eq!(sessions_of(s), 1);
        assert_eq!(completions_of(s), 1);
        assert_eq!(bitmap_of(s), 0b111);
        // The same sequence also matches [type0][types1|2][types3|4]? No —
        // stage 3 needs type 3 or 4; one more event finishes it and, with a
        // big gap, opens a second session without advancing the funnel.
        assert_eq!(seq_matches_of(s), 0);
        s = p.step_state(s, 3, 120 + p.idle_timeout + 1);
        assert_eq!(seq_matches_of(s), 1);
        assert_eq!(sessions_of(s), 2);
        assert_eq!(completions_of(s), 1, "out-of-window events do not funnel");
        assert_eq!(last_ts_of(s), 120 + p.idle_timeout + 1);
    }

    #[test]
    fn funnel_respects_the_step_window() {
        let p = AnalyticsParams::quick();
        let mut s = 0u64;
        s = p.step_state(s, 0, 100);
        // Step arrives outside the window: the funnel must not advance.
        s = p.step_state(s, 1, 100 + p.funnel_window + 1);
        s = p.step_state(s, 2, 100 + p.funnel_window + 2);
        assert_eq!(completions_of(s), 0);
    }

    #[test]
    fn gpm_run_verifies_store_and_journal() {
        let mut m = Machine::default();
        let r = quick().run(&mut m, Mode::Gpm).unwrap();
        assert!(r.verified, "store and journal must match the host replay");
        assert!(r.elapsed.0 > 0.0);
        assert!(r.pm_write_bytes_gpu > 0);
    }

    #[test]
    fn unsupported_modes_error() {
        let mut m = Machine::default();
        assert!(quick().run(&mut m, Mode::CapFs).is_err());
    }

    #[test]
    fn cohort_stats_match_the_host_replay() {
        let w = quick();
        let mut m = Machine::default();
        let st = w.setup(&mut m).unwrap();
        let mut committed = 0;
        w.run_batches_gauged(&mut m, &st, &mut FuelGauge::Unlimited, &mut committed)
            .unwrap();
        let stats = w.cohort_stats(&m, &st).unwrap();
        let model = w.reference_model(w.params.batches);
        let mut expect = CohortStats::default();
        for (_, &(_, state, _)) in model.entries() {
            expect.users += 1;
            expect.sessions += sessions_of(state);
            expect.retained += u64::from(sessions_of(state) >= 2);
            expect.completions += completions_of(state);
            expect.matched += u64::from(seq_matches_of(state) >= 1);
        }
        assert_eq!(stats, expect);
        assert!(stats.users > 0 && stats.sessions >= stats.users);
        assert!(stats.retained > 0, "the trace must produce return visits");
        assert!(stats.completions > 0, "the funnel must complete sometimes");
        assert!(stats.matched > 0, "the sequence must match sometimes");
    }

    /// Drives one batch end-to-end with the given engine-thread pin;
    /// returns the fold kernel's report plus PM write/persist deltas.
    fn drive_one_batch(m: &mut Machine, engine_threads: u32) -> (gpm_gpu::KernelReport, u64, u64) {
        let w = quick();
        let st = w.setup(m).unwrap();
        let events = w.trace().take_events(w.params.events_per_batch);
        let pe = w.pack_batch(&events);
        w.upload_batch(m, &st, &pe).unwrap();
        let epoch = w.enter_epoch(m, &st, 0).unwrap();
        let s0 = m.stats;
        gpm_persist_begin(m);
        gpm_gpu::launch(
            m,
            w.cfg(pe.packed.len() as u64)
                .with_engine_threads(engine_threads),
            &JournalKernel {
                src: st.ev_packed,
                dst: st.journal,
                n_events: pe.packed.len() as u64,
            },
        )
        .unwrap();
        let r = gpm_gpu::launch(
            m,
            w.cfg(pe.users.len() as u64)
                .with_engine_threads(engine_threads),
            &w.fold_kernel(&st, pe.users.len() as u64, epoch),
        )
        .unwrap();
        gpm_persist_end(m);
        st.flag.commit(m).unwrap();
        let d = m.stats.delta(&s0);
        (r, d.pm_write_bytes_gpu, d.bytes_persisted)
    }

    /// Set-partitioned fold batches carry no cross-block conflicts, so the
    /// kernel must *commit* under the block-parallel engine.
    #[test]
    fn fold_kernel_commits_block_parallel() {
        let mut m = Machine::default();
        let (r, _, _) = drive_one_batch(&mut m, 4);
        assert!(
            r.threads_used > 1,
            "set-partitioned fold must commit block-parallel (used {})",
            r.threads_used
        );
    }

    /// Engine threads are a host-side scheduling knob only: counters and
    /// PM media must be bit-identical across thread counts.
    #[test]
    fn engine_threads_do_not_change_counters_or_media() {
        let mut m1 = Machine::default();
        let (r1, w1, p1) = drive_one_batch(&mut m1, 1);
        let mut m4 = Machine::default();
        let (r4, w4, p4) = drive_one_batch(&mut m4, 4);
        assert_eq!(r1.threads_used, 1);
        assert!(r4.threads_used > 1);
        assert_eq!(w1, w4, "PM write bytes must not depend on engine threads");
        assert_eq!(p1, p4, "persisted bytes must not depend on engine threads");
        let bytes = AnalyticsParams::quick().table_bytes() as usize;
        let (mut t1, mut t4) = (vec![0u8; bytes], vec![0u8; bytes]);
        let st = quick().setup(&mut Machine::default()).unwrap();
        m1.read(Addr::pm(st.pm_table), &mut t1).unwrap();
        m4.read(Addr::pm(st.pm_table), &mut t4).unwrap();
        assert_eq!(t1, t4, "PM media must be bit-identical");
    }

    /// The oracle's rollback cases pass at sampled crash boundaries under
    /// both extreme pending-line policies, and the injected rollback bug
    /// is caught.
    #[test]
    fn rollback_cases_pass_and_injected_bug_caught() {
        let mut w = quick();
        let mut m = Machine::default();
        let sched = w.record(&mut m).unwrap();
        let bounds = sched.boundaries().to_vec();
        assert!(!bounds.is_empty());
        for fuel in bounds.iter().step_by(bounds.len() / 6 + 1) {
            for policy in [CrashPolicy::AllApplied, CrashPolicy::NoneApplied] {
                let mut m = Machine::default();
                let v = w.run_case(&mut m, *fuel, policy).unwrap();
                assert!(v.passed(), "fuel={fuel} policy={policy}: {v:?}");
            }
        }
        let mut buggy = AnalyticsWorkload::new(AnalyticsParams::quick()).with_recovery_bug();
        let caught = bounds.iter().any(|&fuel| {
            let mut m = Machine::default();
            !buggy
                .run_case(&mut m, fuel, CrashPolicy::AllApplied)
                .unwrap()
                .passed()
        });
        assert!(caught, "deliberate recovery bug went undetected");
    }

    /// The double-recovery oracle passes at sampled crash boundaries, and
    /// the injected double-applying fold is caught.
    #[test]
    fn double_recovery_exactly_once_and_injected_bug_caught() {
        let mut w = quick();
        let mut m = Machine::default();
        let sched = w.record(&mut m).unwrap();
        let bounds = sched.boundaries().to_vec();
        assert!(w.supports_double_recovery());
        for fuel in bounds.iter().step_by(bounds.len() / 6 + 1) {
            let mut m = Machine::default();
            let v = w
                .run_case_double_recovery(&mut m, *fuel, CrashPolicy::AllApplied)
                .unwrap();
            assert!(v.passed(), "fuel={fuel}: {v:?}");
        }
        let mut buggy = AnalyticsWorkload::new(AnalyticsParams::quick()).with_double_apply_bug();
        let caught = bounds.iter().any(|&fuel| {
            let mut m = Machine::default();
            !buggy
                .run_case_double_recovery(&mut m, fuel, CrashPolicy::AllApplied)
                .unwrap()
                .passed()
        });
        assert!(caught, "deliberate double-apply bug went undetected");
    }

    /// The journal's sequential appends are where Epoch persistency should
    /// beat Strict: deferring fence drains to the kernel boundary
    /// coalesces the per-warp persists.
    #[test]
    fn epoch_beats_strict() {
        use gpm_gpu::PersistencyModel;
        let mut ms = Machine::default();
        let strict = quick().run(&mut ms, Mode::Gpm).unwrap();
        let mut me = Machine::default();
        let epoch = AnalyticsWorkload::new(
            AnalyticsParams::quick().with_persistency(PersistencyModel::Epoch),
        )
        .run(&mut me, Mode::Gpm)
        .unwrap();
        assert!(epoch.verified);
        assert!(
            epoch.elapsed < strict.elapsed,
            "epoch={} strict={}",
            epoch.elapsed,
            strict.elapsed
        );
    }
}
