//! BFS with native persistence (§4.3).
//!
//! Level-synchronous breadth-first search over a PM-resident graph. The
//! read-only CSR graph is loaded into device memory once (as the paper does
//! to avoid slow PM reads, §4.3); the per-node cost array and the node
//! search sequence are persisted *as they are computed*, so after a crash
//! the traversal resumes from the last completed level instead of
//! restarting.
//!
//! The paper's input is the USA road network (high diameter, ~6000
//! iterations); we substitute a 2-D grid graph, which has the same defining
//! property — a huge number of small frontiers — scaled to a few hundred
//! levels.

use gpm_cap::{cap_persist_region, flush_from_cpu, CapFlavor};
use gpm_core::{gpm_map, gpm_persist_begin, gpm_persist_end, GpmThreadExt};
use gpm_gpu::{
    launch_with_gauge, Communicating, FnKernel, FuelGauge, LaunchConfig, LaunchError, ThreadCtx,
};
use gpm_sim::cpu::CpuCtx;
use gpm_sim::{
    Addr, CrashPolicy, CrashSchedule, Machine, Ns, OracleVerdict, SimError, SimResult, HOST_WRITER,
};

use crate::metrics::{metered, Mode, RunMetrics};
use crate::oracle::RecoveryOracle;

/// Unvisited marker in the cost array.
pub const INF: u32 = u32::MAX;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct BfsParams {
    /// Grid width (graph has `width × height` nodes, 4-neighbor edges).
    pub width: u64,
    /// Grid height.
    pub height: u64,
    /// Source node.
    pub source: u64,
    /// CPU threads for CAP-mm persisting.
    pub cap_threads: u32,
}

impl Default for BfsParams {
    fn default() -> BfsParams {
        BfsParams {
            width: 384,
            height: 384,
            source: 0,
            cap_threads: 32,
        }
    }
}

impl BfsParams {
    /// Small configuration for unit tests.
    pub fn quick() -> BfsParams {
        BfsParams {
            width: 32,
            height: 32,
            ..BfsParams::default()
        }
    }

    fn nodes(&self) -> u64 {
        self.width * self.height
    }
}

/// The BFS workload.
#[derive(Debug)]
pub struct BfsWorkload {
    /// Parameters of this instance.
    pub params: BfsParams,
}

struct BfsState {
    // HBM (volatile working set)
    row_ptr: u64,
    cols: u64,
    pm_graph: u64,
    graph_bytes: u64,
    n_rows: u64,
    hbm_cost: u64,
    queue_a: u64,
    queue_b: u64,
    next_count: u64,
    // PM (recoverable)
    pm_cost: u64,
    visit_seq: u64,
    level_meta: u64, // [level u32, seq_len u32]
    // CAP
    staging_dram: u64,
    cap_pm: u64,
}

impl BfsWorkload {
    /// Creates the workload.
    pub fn new(params: BfsParams) -> BfsWorkload {
        BfsWorkload { params }
    }

    fn neighbors(&self, node: u64) -> Vec<u64> {
        let (w, h) = (self.params.width, self.params.height);
        let (x, y) = (node % w, node / w);
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push(node - 1);
        }
        if x + 1 < w {
            out.push(node + 1);
        }
        if y > 0 {
            out.push(node - w);
        }
        if y + 1 < h {
            out.push(node + w);
        }
        out
    }

    fn setup(&self, machine: &mut Machine, mode: Mode) -> SimResult<BfsState> {
        let n = self.params.nodes();
        // Build the CSR graph on PM (the persistent input set).
        let mut row_ptr_v: Vec<u32> = Vec::with_capacity(n as usize + 1);
        let mut cols_v: Vec<u32> = Vec::new();
        row_ptr_v.push(0);
        for node in 0..n {
            for nb in self.neighbors(node) {
                cols_v.push(nb as u32);
            }
            row_ptr_v.push(cols_v.len() as u32);
        }
        let graph_bytes = (row_ptr_v.len() + cols_v.len()) as u64 * 4;
        let pm_graph = gpm_map(machine, "/pm/bfs/graph", graph_bytes, true)?.offset;
        let mut flat = Vec::with_capacity(graph_bytes as usize);
        for v in row_ptr_v.iter().chain(cols_v.iter()) {
            flat.extend_from_slice(&v.to_le_bytes());
        }
        machine.host_write(Addr::pm(pm_graph), &flat)?;

        // Load the read-only graph into HBM once (timed recurring load).
        let row_ptr = machine.alloc_hbm((n + 1) * 4)?;
        let cols = machine.alloc_hbm(cols_v.len() as u64 * 4)?;
        let mut buf = vec![0u8; graph_bytes as usize];
        machine.read(Addr::pm(pm_graph), &mut buf)?;
        machine.host_write(Addr::hbm(row_ptr), &buf[..(n as usize + 1) * 4])?;
        machine.host_write(Addr::hbm(cols), &buf[(n as usize + 1) * 4..])?;
        machine.clock.advance(Ns(
            graph_bytes as f64 / machine.cfg.pm_read_bw.min(machine.cfg.pcie_bw)
        ));

        let hbm_cost = machine.alloc_hbm(n * 4)?;
        let queue_a = machine.alloc_hbm(n * 4)?;
        let queue_b = machine.alloc_hbm(n * 4)?;
        let next_count = machine.alloc_hbm(4)?;
        let pm_cost = gpm_map(machine, "/pm/bfs/cost", n * 4, true)?.offset;
        let visit_seq = gpm_map(machine, "/pm/bfs/visit_seq", n * 4, true)?.offset;
        let level_meta = gpm_map(machine, "/pm/bfs/meta", 256, true)?.offset;
        let staging_dram = machine.alloc_dram(n * 4)?;
        let cap_pm = if matches!(mode, Mode::CapFs | Mode::CapMm) {
            machine.alloc_pm(n * 4)?
        } else {
            0
        };

        // Initialize costs to INF (durable for PM; host for HBM).
        let inf = vec![0xFFu8; (n * 4) as usize];
        machine.host_write(Addr::pm(pm_cost), &inf)?;
        machine.host_write(Addr::hbm(hbm_cost), &inf)?;
        Ok(BfsState {
            row_ptr,
            cols,
            pm_graph,
            graph_bytes,
            n_rows: n,
            hbm_cost,
            queue_a,
            queue_b,
            next_count,
            pm_cost,
            visit_seq,
            level_meta,
            staging_dram,
            cap_pm,
        })
    }

    /// One frontier-expansion kernel (costs of discovered nodes persist in
    /// place under GPM).
    #[allow(clippy::too_many_arguments)]
    fn level_kernel(
        &self,
        st: &BfsState,
        frontier_len: u64,
        level: u32,
        seq_base: u64,
        cur_queue: u64,
        next_queue: u64,
        to_pm: bool,
        persist: bool,
    ) -> impl gpm_gpu::Kernel<State = (), Shared = ()> {
        let (row_ptr, cols, hbm_cost, next_count) =
            (st.row_ptr, st.cols, st.hbm_cost, st.next_count);
        let (pm_cost, visit_seq) = (st.pm_cost, st.visit_seq);
        // Blocks share the frontier queue through `next_count`: genuine
        // cross-block communication, so the block-parallel engine must not
        // try this kernel.
        Communicating(FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            let t = ctx.global_id();
            if t >= frontier_len {
                return Ok(());
            }
            let node = ctx.ld_u32(Addr::hbm(cur_queue + t * 4))? as u64;
            let start = ctx.ld_u32(Addr::hbm(row_ptr + node * 4))? as u64;
            let end = ctx.ld_u32(Addr::hbm(row_ptr + node * 4 + 4))? as u64;
            ctx.compute(Ns(30.0));
            for e in start..end {
                let nb = ctx.ld_u32(Addr::hbm(cols + e * 4))? as u64;
                if ctx.ld_u32(Addr::hbm(hbm_cost + nb * 4))? != INF {
                    continue;
                }
                ctx.st_u32(Addr::hbm(hbm_cost + nb * 4), level + 1)?;
                let idx = ctx.atomic_add_u32(Addr::hbm(next_count), 1)? as u64;
                ctx.st_u32(Addr::hbm(next_queue + idx * 4), nb as u32)?;
                if to_pm {
                    // Persist the cost and the search sequence in place.
                    ctx.st_u32(Addr::pm(pm_cost + nb * 4), level + 1)?;
                    ctx.st_u32(Addr::pm(visit_seq + (seq_base + idx) * 4), nb as u32)?;
                    if persist {
                        ctx.gpm_persist()?;
                    }
                }
            }
            Ok(())
        }))
    }

    fn persist_meta(
        &self,
        machine: &mut Machine,
        st: &BfsState,
        level: u32,
        seq: u32,
    ) -> SimResult<()> {
        let mut cpu = CpuCtx::new(machine, HOST_WRITER);
        let mut b = [0u8; 8];
        b[0..4].copy_from_slice(&level.to_le_bytes());
        b[4..8].copy_from_slice(&seq.to_le_bytes());
        cpu.store(Addr::pm(st.level_meta), &b)?;
        cpu.persist(st.level_meta, 8);
        let t = cpu.elapsed();
        machine.clock.advance(t);
        Ok(())
    }

    /// Runs the traversal from an initialized frontier (`start_level`,
    /// `frontier` already set up) until the frontier drains.
    #[allow(clippy::too_many_arguments)]
    fn traverse(
        &self,
        machine: &mut Machine,
        st: &BfsState,
        mode: Mode,
        mut level: u32,
        mut frontier_len: u64,
        mut seq_base: u64,
        gauge: &mut FuelGauge,
    ) -> Result<(), LaunchError> {
        let p = &self.params;
        let n = p.nodes();
        let mut cur = st.queue_a;
        let mut next = st.queue_b;
        while frontier_len > 0 {
            machine.host_write(Addr::hbm(st.next_count), &0u32.to_le_bytes())?;
            let cfg = LaunchConfig::for_elements(frontier_len, 256);
            let to_pm = matches!(mode, Mode::Gpm | Mode::GpmNdp);
            let persist = mode == Mode::Gpm;
            let kernel =
                self.level_kernel(st, frontier_len, level, seq_base, cur, next, to_pm, persist);
            if persist {
                gpm_persist_begin(machine);
            }
            let res = launch_with_gauge(machine, cfg, &kernel, gauge);
            if persist {
                gpm_persist_end(machine);
            }
            let _ = res?;
            let produced = machine.read_u32(Addr::hbm(st.next_count))? as u64;
            match mode {
                Mode::Gpm => {
                    self.persist_meta(machine, st, level + 1, (seq_base + produced) as u32)?;
                }
                Mode::GpmNdp => {
                    flush_from_cpu(machine, st.pm_cost, n * 4, p.cap_threads);
                    flush_from_cpu(machine, st.visit_seq, n * 4, p.cap_threads);
                    self.persist_meta(machine, st, level + 1, (seq_base + produced) as u32)?;
                }
                Mode::CapFs | Mode::CapMm => {
                    let flavor = if mode == Mode::CapFs {
                        CapFlavor::Fs
                    } else {
                        CapFlavor::Mm {
                            threads: p.cap_threads,
                        }
                    };
                    // The cost array (and queue) must round-trip through the
                    // CPU every iteration (§6.1: BFS's 85× CAP overhead).
                    cap_persist_region(
                        machine,
                        flavor,
                        st.hbm_cost,
                        st.staging_dram,
                        st.cap_pm,
                        n * 4,
                    )
                    .map_err(LaunchError::Sim)?;
                }
                Mode::Gpufs | Mode::CpuPm => {
                    return Err(LaunchError::Sim(SimError::Invalid(
                        "mode handled elsewhere for BFS",
                    )))
                }
            }
            seq_base += produced;
            frontier_len = produced;
            level += 1;
            std::mem::swap(&mut cur, &mut next);
        }
        Ok(())
    }

    fn start(&self, machine: &mut Machine, st: &BfsState, mode: Mode) -> SimResult<()> {
        let src = self.params.source;
        machine.host_write(Addr::hbm(st.queue_a), &(src as u32).to_le_bytes())?;
        machine.host_write(Addr::hbm(st.hbm_cost + src * 4), &0u32.to_le_bytes())?;
        if matches!(mode, Mode::Gpm | Mode::GpmNdp) {
            let mut cpu = CpuCtx::new(machine, HOST_WRITER);
            cpu.store(Addr::pm(st.pm_cost + src * 4), &0u32.to_le_bytes())?;
            cpu.persist(st.pm_cost + src * 4, 4);
            let t = cpu.elapsed();
            machine.clock.advance(t);
            self.persist_meta(machine, st, 0, 0)?;
        }
        Ok(())
    }

    /// Host-side reference BFS.
    fn reference(&self) -> Vec<u32> {
        let n = self.params.nodes() as usize;
        let mut cost = vec![INF; n];
        let mut frontier = vec![self.params.source];
        cost[self.params.source as usize] = 0;
        let mut level = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &node in &frontier {
                for nb in self.neighbors(node) {
                    if cost[nb as usize] == INF {
                        cost[nb as usize] = level + 1;
                        next.push(nb);
                    }
                }
            }
            frontier = next;
            level += 1;
        }
        cost
    }

    fn verify(&self, machine: &Machine, st: &BfsState, mode: Mode) -> SimResult<bool> {
        let reference = self.reference();
        let base = match mode {
            Mode::Gpm | Mode::GpmNdp => st.pm_cost,
            Mode::CapFs | Mode::CapMm => st.cap_pm,
            _ => return Ok(false),
        };
        for (i, &expect) in reference.iter().enumerate() {
            if machine.read_u32(Addr::pm(base + i as u64 * 4))? != expect {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Runs the workload under `mode`.
    ///
    /// # Errors
    ///
    /// Fails for unsupported modes or on platform errors.
    pub fn run(&self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        if mode == Mode::CpuPm {
            return self.run_cpu(machine);
        }
        if mode == Mode::Gpufs {
            return Err(SimError::Invalid(
                "GPUfs deadlocks on per-thread fine-grained writes (§6.1)",
            ));
        }
        let st = self.setup(machine, mode)?;
        let mut metrics = metered(machine, |m| {
            self.start(m, &st, mode)?;
            self.traverse(m, &st, mode, 0, 1, 0, &mut FuelGauge::Unlimited)
                .map_err(|e| match e {
                    LaunchError::Sim(e) => e,
                    LaunchError::Crashed(_) => SimError::Crashed,
                })?;
            Ok::<bool, SimError>(true)
        })?;
        metrics.verified = self.verify(machine, &st, mode)?;
        Ok(metrics)
    }

    /// CPU-with-PM baseline (Figure 1b): multithreaded level-synchronous
    /// BFS persisting each discovered cost with CLFLUSH+SFENCE.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_cpu(&self, machine: &mut Machine) -> SimResult<RunMetrics> {
        let st = self.setup(machine, Mode::Gpm)?;
        let reference = self.reference();
        let mut metrics = metered(machine, |m| {
            let mut serial = Ns::ZERO;
            let mut frontier = vec![self.params.source];
            let mut cost = vec![INF; self.params.nodes() as usize];
            cost[self.params.source as usize] = 0;
            {
                let mut cpu = CpuCtx::new(m, HOST_WRITER);
                cpu.store(
                    Addr::pm(st.pm_cost + self.params.source * 4),
                    &0u32.to_le_bytes(),
                )?;
                cpu.persist(st.pm_cost + self.params.source * 4, 4);
                serial += cpu.elapsed();
            }
            let mut level = 0u32;
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for &node in &frontier {
                    let mut cpu = CpuCtx::new(m, HOST_WRITER);
                    cpu.compute(Ns(30.0));
                    for nb in self.neighbors(node) {
                        cpu.load(Addr::pm(st.pm_cost + nb * 4), &mut [0u8; 4])?;
                        if cost[nb as usize] == INF {
                            cost[nb as usize] = level + 1;
                            cpu.store(Addr::pm(st.pm_cost + nb * 4), &(level + 1).to_le_bytes())?;
                            cpu.persist(st.pm_cost + nb * 4, 4);
                            next.push(nb);
                        }
                    }
                    serial += cpu.elapsed();
                }
                frontier = next;
                level += 1;
            }
            // BFS's CPU persists are sparse (each node's cost once), so the
            // run is read/compute-bound and scales with cores until frontier
            // synchronization limits it (~8x effective on 64 cores), unlike
            // the PM-write-bound SRAD/PS.
            let t = serial / 8.0;
            m.clock.advance(t);
            Ok::<bool, SimError>(true)
        })?;
        metrics.verified = {
            let mut ok = true;
            for (i, &expect) in reference.iter().enumerate() {
                if machine.read_u32(Addr::pm(st.pm_cost + i as u64 * 4))? != expect {
                    ok = false;
                    break;
                }
            }
            ok
        };
        Ok(metrics)
    }

    /// Crash-injected GPM run: aborts mid-traversal after `fuel` operations,
    /// then *resumes* (not restarts) from the persisted level and search
    /// sequence, and verifies the final costs.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_crash_resume(&self, machine: &mut Machine, fuel: u64) -> SimResult<RunMetrics> {
        let st = self.setup(machine, Mode::Gpm)?;
        self.start(machine, &st, Mode::Gpm)?;
        match self.traverse(
            machine,
            &st,
            Mode::Gpm,
            0,
            1,
            0,
            &mut FuelGauge::crash(fuel),
        ) {
            Ok(()) => {} // fuel outlasted the traversal
            Err(LaunchError::Crashed(_)) => {}
            Err(LaunchError::Sim(e)) => return Err(e),
        }
        machine.crash();
        self.resume(machine, &st)
    }

    /// Post-crash resume: reloads the graph, rolls uncommitted discoveries
    /// back to the last committed level, rebuilds the frontier, finishes the
    /// traversal, and verifies.
    fn resume(&self, machine: &mut Machine, st: &BfsState) -> SimResult<RunMetrics> {
        let t0 = machine.clock.now();
        // Volatile state is gone: reload the read-only graph from its
        // PM-resident input file into device memory.
        let n = self.params.nodes();
        let mut graph = vec![0u8; st.graph_bytes as usize];
        machine.read(Addr::pm(st.pm_graph), &mut graph)?;
        machine.host_write(
            Addr::hbm(st.row_ptr),
            &graph[..(st.n_rows as usize + 1) * 4],
        )?;
        machine.host_write(Addr::hbm(st.cols), &graph[(st.n_rows as usize + 1) * 4..])?;
        machine.clock.advance(Ns(
            st.graph_bytes as f64 / machine.cfg.pm_read_bw.min(machine.cfg.pcie_bw)
        ));
        let level = machine.read_u32(Addr::pm(st.level_meta))?;
        let seq_len = machine.read_u32(Addr::pm(st.level_meta + 4))? as u64;
        // Rebuild the HBM cost mirror from the persisted costs (bulk read).
        let mut cost_img = vec![0u8; (n * 4) as usize];
        machine.read(Addr::pm(st.pm_cost), &mut cost_img)?;
        machine.clock.advance(Ns(
            (n * 4) as f64 / machine.cfg.pm_read_bw.min(machine.cfg.pcie_bw)
        ));
        // Roll back partially-persisted discoveries of the in-flight level:
        // any cost greater than the last *committed* level belongs to an
        // uncommitted kernel and must be re-discovered, or its subtree would
        // never be expanded.
        {
            let mut cpu = CpuCtx::new(machine, HOST_WRITER);
            for i in 0..n as usize {
                let c = u32::from_le_bytes(cost_img[i * 4..i * 4 + 4].try_into().unwrap());
                if c != INF && c > level {
                    cost_img[i * 4..i * 4 + 4].copy_from_slice(&INF.to_le_bytes());
                    cpu.store(Addr::pm(st.pm_cost + i as u64 * 4), &INF.to_le_bytes())?;
                    cpu.persist(st.pm_cost + i as u64 * 4, 4);
                }
            }
            let t = cpu.elapsed();
            machine.clock.advance(t);
        }
        machine.host_write(Addr::hbm(st.hbm_cost), &cost_img)?;
        // The frontier for the next level: nodes whose persisted cost equals
        // the last completed level. (The search sequence makes this a simple
        // suffix read; costs are scanned here for robustness against a
        // partially-persisted sequence tail.)
        let mut frontier = Vec::new();
        for i in 0..n {
            let c = u32::from_le_bytes(
                cost_img[(i * 4) as usize..(i * 4 + 4) as usize]
                    .try_into()
                    .unwrap(),
            );
            if c == level {
                frontier.push(i as u32);
            }
        }
        let mut q = Vec::with_capacity(frontier.len() * 4);
        for f in &frontier {
            q.extend_from_slice(&f.to_le_bytes());
        }
        machine.host_write(Addr::hbm(st.queue_a), &q)?;
        #[cfg(feature = "bfs-debug")]
        eprintln!(
            "resume: level={} frontier={} seq_len={}",
            level,
            frontier.len(),
            seq_len
        );
        let resume_setup = machine.clock.now() - t0;

        let mut metrics = metered(machine, |m| {
            self.traverse(
                m,
                st,
                Mode::Gpm,
                level,
                frontier.len() as u64,
                seq_len,
                &mut FuelGauge::Unlimited,
            )
            .map_err(|e| match e {
                LaunchError::Sim(e) => e,
                LaunchError::Crashed(_) => SimError::Crashed,
            })?;
            Ok::<bool, SimError>(true)
        })?;
        metrics.recovery = Some(resume_setup);
        metrics.verified = self.verify(machine, st, Mode::Gpm)?;
        Ok(metrics)
    }
}

impl RecoveryOracle for BfsWorkload {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn record(&mut self, machine: &mut Machine) -> SimResult<CrashSchedule> {
        let st = self.setup(machine, Mode::Gpm)?;
        self.start(machine, &st, Mode::Gpm)?;
        let mut gauge = FuelGauge::record();
        crate::oracle::expect_clean(self.traverse(machine, &st, Mode::Gpm, 0, 1, 0, &mut gauge))?;
        Ok(gauge.into_schedule().expect("recording gauge"))
    }

    fn run_case(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        let st = self.setup(machine, Mode::Gpm)?;
        self.start(machine, &st, Mode::Gpm)?;
        let res = self.traverse(
            machine,
            &st,
            Mode::Gpm,
            0,
            1,
            0,
            &mut FuelGauge::crash_with_policy(fuel, policy),
        );
        crate::oracle::settle_crash(machine, policy, res)?;
        let metrics = self.resume(machine, &st)?;
        Ok(if metrics.verified {
            OracleVerdict::Pass
        } else {
            OracleVerdict::Fail("resumed traversal diverges from reference costs".into())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BfsWorkload {
        BfsWorkload::new(BfsParams::quick())
    }

    #[test]
    fn gpm_traversal_matches_reference() {
        let mut m = Machine::default();
        let r = quick().run(&mut m, Mode::Gpm).unwrap();
        assert!(r.verified);
        assert!(r.pm_write_bytes_gpu > 0);
    }

    #[test]
    fn cap_traversal_matches_reference_but_is_slow() {
        let mut m1 = Machine::default();
        let g = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let c = quick().run(&mut m2, Mode::CapFs).unwrap();
        assert!(c.verified);
        // Per-iteration DMA + CPU persist of the whole cost array dominates.
        assert!(
            c.elapsed / g.elapsed > 3.0,
            "gpm={} capfs={}",
            g.elapsed,
            c.elapsed
        );
    }

    #[test]
    fn cpu_pm_variant_is_slower_than_gpm() {
        // At tiny grids kernel-launch overhead dominates GPM (few hundred
        // tiny frontiers), so use a mid-size graph for a robust comparison
        // (Figure 1b runs the full size).
        let params = BfsParams {
            width: 192,
            height: 192,
            ..BfsParams::default()
        };
        let w = BfsWorkload::new(params);
        let mut m1 = Machine::default();
        let g = w.run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let c = w.run(&mut m2, Mode::CpuPm).unwrap();
        assert!(c.verified);
        assert!(c.elapsed > g.elapsed, "gpm={} cpu={}", g.elapsed, c.elapsed);
    }

    #[test]
    fn crash_resume_completes_traversal() {
        for fuel in [2_000u64, 20_000, 200_000] {
            let mut m = Machine::default();
            let r = quick().run_crash_resume(&mut m, fuel).unwrap();
            assert!(r.verified, "fuel={fuel}");
        }
    }

    #[test]
    fn gpufs_unsupported() {
        let mut m = Machine::default();
        assert!(quick().run(&mut m, Mode::Gpufs).is_err());
    }

    #[test]
    fn write_amplification_is_large_for_cap() {
        let mut m1 = Machine::default();
        let g = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let c = quick().run(&mut m2, Mode::CapMm).unwrap();
        // CAP persists the whole cost array every level.
        assert!(c.pm_write_bytes_total() > 5 * g.pm_write_bytes_total());
    }
}
