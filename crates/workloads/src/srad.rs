//! SRAD: speckle-reducing anisotropic diffusion with native persistence
//! (§4.3).
//!
//! Rodinia's SRAD denoises an ultrasound image by iteratively computing a
//! per-pixel diffusion coefficient and diffusing the image with it. As in
//! the paper, the output image and the diffusion-coefficient matrix are
//! persisted in place while computing (Table 1), and an iteration counter
//! lets the kernel resume after a crash. The image is double-buffered so
//! results are independent of thread execution order.

use gpm_cap::{cap_persist_region, flush_from_cpu, CapFlavor};
use gpm_core::{gpm_map, gpm_persist_begin, gpm_persist_end, GpmThreadExt, GpmWarpExt};
use gpm_gpu::{
    launch_with_gauge, FuelGauge, Kernel, LaunchConfig, LaunchError, ThreadCtx, WarpCtx,
};
use gpm_sim::cpu::CpuCtx;
use gpm_sim::{
    Addr, CrashPolicy, CrashSchedule, Machine, Ns, OracleVerdict, SimError, SimResult, HOST_WRITER,
};

use crate::metrics::{metered, Mode, RunMetrics};
use crate::oracle::RecoveryOracle;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct SradParams {
    /// Image edge length (image is `edge × edge` f32).
    pub edge: u64,
    /// Diffusion iterations.
    pub iterations: u32,
    /// Diffusion strength.
    pub lambda: f32,
    /// CPU threads for CAP-mm persisting.
    pub cap_threads: u32,
}

impl Default for SradParams {
    fn default() -> SradParams {
        SradParams {
            edge: 256,
            iterations: 4,
            lambda: 0.5,
            cap_threads: 32,
        }
    }
}

impl SradParams {
    /// Small configuration for unit tests.
    pub fn quick() -> SradParams {
        SradParams {
            edge: 48,
            iterations: 3,
            ..SradParams::default()
        }
    }

    fn pixels(&self) -> u64 {
        self.edge * self.edge
    }
}

/// The SRAD workload.
#[derive(Debug)]
pub struct SradWorkload {
    /// Parameters of this instance.
    pub params: SradParams,
}

struct SradState {
    hbm_img_a: u64,
    hbm_img_b: u64,
    hbm_coeff: u64,
    /// Double-buffered persistent image: the output of iteration `k` lives
    /// in buffer `(k + 1) % 2`, so an interrupted iteration never corrupts
    /// the last committed image.
    pm_img: [u64; 2],
    pm_coeff: u64,
    pm_iter: u64,
    staging_dram: u64,
    cap_pm: u64,
}

fn init_pixel(x: u64, y: u64) -> f32 {
    100.0 + ((gpm_pmkv::hash64(x ^ (y << 32) ^ 0x5AAD) % 1000) as f32) / 10.0
}

/// Diffusion coefficient from the local gradient magnitude.
fn coeff(center: f32, up: f32, down: f32, left: f32, right: f32) -> f32 {
    let g2 = (up - center).powi(2)
        + (down - center).powi(2)
        + (left - center).powi(2)
        + (right - center).powi(2);
    let q = g2 / (center * center).max(1e-6);
    1.0 / (1.0 + q)
}

fn diffuse(center: f32, up: f32, down: f32, left: f32, right: f32, c: f32, lambda: f32) -> f32 {
    center + 0.25 * lambda * c * (up + down + left + right - 4.0 * center)
}

/// One diffusion sweep. Every lane issues the same operation sequence —
/// the clamped neighbour gathers still load (only the *address* clamps at
/// the image border), so interior *row-aligned* warps are uniform and run
/// vectorized; warps touching the border or straddling rows diverge in
/// address pattern and fall back to the per-lane walk. The kernel runs
/// under crash gauges (`run_crash_resume`, the recovery oracle), so
/// `warp_fuel` must bound the per-lane operation count exactly.
struct SradIterKernel {
    e: u64,
    lambda: f32,
    src: u64,
    dst: u64,
    hbm_coeff: u64,
    pm_coeff: u64,
    pm_img: u64,
    to_pm: bool,
    persist: bool,
}

impl Kernel for SradIterKernel {
    type State = ();
    type Shared = ();

    fn run(&self, _phase: u32, ctx: &mut ThreadCtx<'_>, _: &mut (), _: &mut ()) -> SimResult<()> {
        let e = self.e;
        let i = ctx.global_id();
        if i >= e * e {
            return Ok(());
        }
        let (x, y) = (i % e, i / e);
        ctx.compute(Ns(35.0));
        let at = |ctx: &mut ThreadCtx<'_>, xx: i64, yy: i64| -> SimResult<f32> {
            let xx = xx.clamp(0, e as i64 - 1) as u64;
            let yy = yy.clamp(0, e as i64 - 1) as u64;
            ctx.ld_f32(Addr::hbm(self.src + (yy * e + xx) * 4))
        };
        let (xi, yi) = (x as i64, y as i64);
        let ctr = at(ctx, xi, yi)?;
        let up = at(ctx, xi, yi - 1)?;
        let down = at(ctx, xi, yi + 1)?;
        let left = at(ctx, xi - 1, yi)?;
        let right = at(ctx, xi + 1, yi)?;
        let c = coeff(ctr, up, down, left, right);
        let out = diffuse(ctr, up, down, left, right, c, self.lambda);
        ctx.st_f32(Addr::hbm(self.dst + i * 4), out)?;
        ctx.st_f32(Addr::hbm(self.hbm_coeff + i * 4), c)?;
        if self.to_pm {
            // Native persistence: coefficient and output pixel go to PM
            // as they are computed.
            ctx.st_f32(Addr::pm(self.pm_coeff + i * 4), c)?;
            ctx.st_f32(Addr::pm(self.pm_img + i * 4), out)?;
            if self.persist {
                ctx.gpm_persist()?;
            }
        }
        Ok(())
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _: &mut [()],
        _: &mut (),
    ) -> SimResult<bool> {
        let e = self.e;
        let lanes = ctx.lanes() as u64;
        let first = ctx.first_global_id();
        let (x0, y) = (first % e, first / e);
        // Vectorize warps that sit on one interior row: border lanes clamp
        // neighbour addresses (breaking the uniform stride) and warps that
        // straddle a row boundary gather from two rows.
        if x0 + lanes > e || first + lanes > e * e {
            return Ok(false);
        }
        if y == 0 || y + 1 >= e || x0 == 0 || x0 + lanes >= e {
            return Ok(false);
        }
        ctx.compute(Ns(35.0));
        let n = lanes as usize;
        let row = |yy: u64, xx: u64| (yy * e + xx) * 4;
        let mut ctr = vec![0.0f32; n];
        let mut up = vec![0.0f32; n];
        let mut down = vec![0.0f32; n];
        let mut left = vec![0.0f32; n];
        let mut right = vec![0.0f32; n];
        ctx.ld_f32_lanes(Addr::hbm(self.src + row(y, x0)), 4, &mut ctr)?;
        ctx.ld_f32_lanes(Addr::hbm(self.src + row(y - 1, x0)), 4, &mut up)?;
        ctx.ld_f32_lanes(Addr::hbm(self.src + row(y + 1, x0)), 4, &mut down)?;
        ctx.ld_f32_lanes(Addr::hbm(self.src + row(y, x0 - 1)), 4, &mut left)?;
        ctx.ld_f32_lanes(Addr::hbm(self.src + row(y, x0 + 1)), 4, &mut right)?;
        let mut cs = vec![0.0f32; n];
        let mut outs = vec![0.0f32; n];
        for i in 0..n {
            cs[i] = coeff(ctr[i], up[i], down[i], left[i], right[i]);
            outs[i] = diffuse(
                ctr[i],
                up[i],
                down[i],
                left[i],
                right[i],
                cs[i],
                self.lambda,
            );
        }
        ctx.st_f32_lanes(Addr::hbm(self.dst + row(y, x0)), 4, &outs)?;
        ctx.st_f32_lanes(Addr::hbm(self.hbm_coeff + row(y, x0)), 4, &cs)?;
        if self.to_pm {
            ctx.st_f32_lanes(Addr::pm(self.pm_coeff + row(y, x0)), 4, &cs)?;
            ctx.st_f32_lanes(Addr::pm(self.pm_img + row(y, x0)), 4, &outs)?;
            if self.persist {
                ctx.gpm_persist()?;
            }
        }
        Ok(true)
    }

    fn warp_fuel(&self, _phase: u32) -> Option<u64> {
        // 5 gathers + 2 HBM stores, plus under GPM 2 PM stores and the
        // persist fence. Exact, so gauged crash campaigns vectorize right
        // up to the warp that would expire.
        Some(7 + if self.to_pm { 2 } else { 0 } + u64::from(self.persist))
    }
}

impl SradWorkload {
    /// Creates the workload.
    pub fn new(params: SradParams) -> SradWorkload {
        SradWorkload { params }
    }

    fn setup(&self, machine: &mut Machine, mode: Mode) -> SimResult<SradState> {
        let e = self.params.edge;
        let bytes = self.params.pixels() * 4;
        let hbm_img_a = machine.alloc_hbm(bytes)?;
        let hbm_img_b = machine.alloc_hbm(bytes)?;
        let hbm_coeff = machine.alloc_hbm(bytes)?;
        let pm_img = [
            gpm_map(machine, "/pm/srad/image_a", bytes, true)?.offset,
            gpm_map(machine, "/pm/srad/image_b", bytes, true)?.offset,
        ];
        let pm_coeff = gpm_map(machine, "/pm/srad/coeff", bytes, true)?.offset;
        let pm_iter = gpm_map(machine, "/pm/srad/iter", 256, true)?.offset;
        let staging_dram = machine.alloc_dram(bytes)?;
        let cap_pm = if matches!(mode, Mode::CapFs | Mode::CapMm) {
            machine.alloc_pm(2 * bytes)?
        } else {
            0
        };
        let mut init = Vec::with_capacity(bytes as usize);
        for y in 0..e {
            for x in 0..e {
                init.extend_from_slice(&init_pixel(x, y).to_le_bytes());
            }
        }
        machine.host_write(Addr::hbm(hbm_img_a), &init)?;
        machine.host_write(Addr::pm(pm_img[0]), &init)?;
        Ok(SradState {
            hbm_img_a,
            hbm_img_b,
            hbm_coeff,
            pm_img,
            pm_coeff,
            pm_iter,
            staging_dram,
            cap_pm,
        })
    }

    /// One diffusion iteration (reads `src`, writes `dst`; persists image
    /// and coefficients in place under GPM).
    fn iter_kernel(
        &self,
        st: &SradState,
        src: u64,
        dst: u64,
        pm_out: u64,
        to_pm: bool,
        persist: bool,
    ) -> SradIterKernel {
        SradIterKernel {
            e: self.params.edge,
            lambda: self.params.lambda,
            src,
            dst,
            hbm_coeff: st.hbm_coeff,
            pm_coeff: st.pm_coeff,
            pm_img: pm_out,
            to_pm,
            persist,
        }
    }

    fn persist_iter(&self, machine: &mut Machine, st: &SradState, iter: u32) -> SimResult<()> {
        let mut cpu = CpuCtx::new(machine, HOST_WRITER);
        cpu.store(Addr::pm(st.pm_iter), &iter.to_le_bytes())?;
        cpu.persist(st.pm_iter, 4);
        let t = cpu.elapsed();
        machine.clock.advance(t);
        Ok(())
    }

    fn run_iters(
        &self,
        machine: &mut Machine,
        st: &SradState,
        mode: Mode,
        start_iter: u32,
        gauge: &mut FuelGauge,
    ) -> Result<(), LaunchError> {
        let p = &self.params;
        let bytes = p.pixels() * 4;
        for iter in start_iter..p.iterations {
            let (src, dst) = if iter % 2 == 0 {
                (st.hbm_img_a, st.hbm_img_b)
            } else {
                (st.hbm_img_b, st.hbm_img_a)
            };
            let pm_out = st.pm_img[((iter + 1) % 2) as usize];
            let cfg = LaunchConfig::for_elements(p.pixels(), 256);
            let to_pm = matches!(mode, Mode::Gpm | Mode::GpmNdp);
            let persist = mode == Mode::Gpm;
            let kernel = self.iter_kernel(st, src, dst, pm_out, to_pm, persist);
            if persist {
                gpm_persist_begin(machine);
            }
            let res = launch_with_gauge(machine, cfg, &kernel, gauge);
            if persist {
                gpm_persist_end(machine);
            }
            let _ = res?;
            match mode {
                Mode::Gpm => self.persist_iter(machine, st, iter + 1)?,
                Mode::GpmNdp => {
                    flush_from_cpu(
                        machine,
                        st.pm_img[((iter + 1) % 2) as usize],
                        bytes,
                        p.cap_threads,
                    );
                    flush_from_cpu(machine, st.pm_coeff, bytes, p.cap_threads);
                    self.persist_iter(machine, st, iter + 1)?;
                }
                Mode::CapFs | Mode::CapMm => {
                    let flavor = if mode == Mode::CapFs {
                        CapFlavor::Fs
                    } else {
                        CapFlavor::Mm {
                            threads: p.cap_threads,
                        }
                    };
                    // Both the output image and the diffusion-coefficient
                    // matrix are persisted (Table 1).
                    cap_persist_region(machine, flavor, dst, st.staging_dram, st.cap_pm, bytes)
                        .map_err(LaunchError::Sim)?;
                    cap_persist_region(
                        machine,
                        flavor,
                        st.hbm_coeff,
                        st.staging_dram,
                        st.cap_pm + bytes,
                        bytes,
                    )
                    .map_err(LaunchError::Sim)?;
                }
                Mode::Gpufs | Mode::CpuPm => {
                    return Err(LaunchError::Sim(SimError::Invalid(
                        "mode handled elsewhere for SRAD",
                    )))
                }
            }
        }
        Ok(())
    }

    /// Host-side reference: image after `iters` diffusion steps.
    fn reference(&self, iters: u32) -> (Vec<f32>, Vec<f32>) {
        let e = self.params.edge as usize;
        let mut cur: Vec<f32> = (0..e * e)
            .map(|i| init_pixel((i % e) as u64, (i / e) as u64))
            .collect();
        let mut next = cur.clone();
        let mut coeffs = vec![0.0f32; e * e];
        for _ in 0..iters {
            for y in 0..e {
                for x in 0..e {
                    let at = |xx: i64, yy: i64| -> f32 {
                        let xx = xx.clamp(0, e as i64 - 1) as usize;
                        let yy = yy.clamp(0, e as i64 - 1) as usize;
                        cur[yy * e + xx]
                    };
                    let (xi, yi) = (x as i64, y as i64);
                    let ctr = at(xi, yi);
                    let (up, down, left, right) = (
                        at(xi, yi - 1),
                        at(xi, yi + 1),
                        at(xi - 1, yi),
                        at(xi + 1, yi),
                    );
                    let c = coeff(ctr, up, down, left, right);
                    coeffs[y * e + x] = c;
                    next[y * e + x] = diffuse(ctr, up, down, left, right, c, self.params.lambda);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        (cur, coeffs)
    }

    fn verify(&self, machine: &Machine, st: &SradState, mode: Mode) -> SimResult<bool> {
        let (img, coeffs) = self.reference(self.params.iterations);
        match mode {
            Mode::Gpm | Mode::GpmNdp => {
                let final_buf = st.pm_img[(self.params.iterations % 2) as usize];
                for i in (0..self.params.pixels()).step_by(97) {
                    if machine.read_f32(Addr::pm(final_buf + i * 4))? != img[i as usize]
                        || machine.read_f32(Addr::pm(st.pm_coeff + i * 4))? != coeffs[i as usize]
                    {
                        return Ok(false);
                    }
                }
            }
            Mode::CapFs | Mode::CapMm => {
                for i in (0..self.params.pixels()).step_by(97) {
                    if machine.read_f32(Addr::pm(st.cap_pm + i * 4))? != img[i as usize] {
                        return Ok(false);
                    }
                }
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Runs the workload under `mode`.
    ///
    /// # Errors
    ///
    /// Fails for GPUfs at the paper's 3 GB input (file > 2 GB) and on
    /// platform errors.
    pub fn run(&self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        if mode == Mode::CpuPm {
            return self.run_cpu(machine);
        }
        if mode == Mode::Gpufs {
            // SRAD runs on GPUfs in the paper (coarse-grain writes), with
            // heavy syscall overheads; its 3 GB diffuse matrix exceeds the
            // 2 GB file limit only when persisted as one file — the paper
            // reports it running at 0.1× CAP-fs. Modelled as coarse writes.
            return self.run_gpufs(machine);
        }
        let st = self.setup(machine, mode)?;
        let mut metrics = metered(machine, |m| {
            self.run_iters(m, &st, mode, 0, &mut FuelGauge::Unlimited)
                .map_err(|e| match e {
                    LaunchError::Sim(e) => e,
                    LaunchError::Crashed(_) => SimError::Crashed,
                })?;
            Ok::<bool, SimError>(true)
        })?;
        metrics.verified = self.verify(machine, &st, mode)?;
        Ok(metrics)
    }

    fn run_gpufs(&self, machine: &mut Machine) -> SimResult<RunMetrics> {
        let p = self.params;
        let st = self.setup(machine, Mode::CapFs)?;
        let bytes = p.pixels() * 4;
        let mut metrics = metered(machine, |m| {
            for iter in 0..p.iterations {
                let (src, dst) = if iter % 2 == 0 {
                    (st.hbm_img_a, st.hbm_img_b)
                } else {
                    (st.hbm_img_b, st.hbm_img_a)
                };
                let cfg = LaunchConfig::for_elements(p.pixels(), 256);
                let kernel = self.iter_kernel(&st, src, dst, 0, false, false);
                gpm_gpu::launch(m, cfg, &kernel)?;
                // Every threadblock gwrite()s its tile through GPUfs.
                let calls = p.pixels().div_ceil(256);
                gpm_cap::gpufs_persist(m, dst, st.staging_dram, st.cap_pm, bytes, calls)?;
            }
            Ok::<bool, SimError>(true)
        })?;
        metrics.verified = self.verify(machine, &st, Mode::CapFs)?;
        Ok(metrics)
    }

    /// CPU-with-PM baseline (Figure 1b).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_cpu(&self, machine: &mut Machine) -> SimResult<RunMetrics> {
        let p = self.params;
        let st = self.setup(machine, Mode::Gpm)?;
        let e = p.edge as usize;
        let mut metrics = metered(machine, |m| {
            let mut serial = Ns::ZERO;
            let mut cur: Vec<f32> = (0..e * e)
                .map(|i| init_pixel((i % e) as u64, (i / e) as u64))
                .collect();
            let mut next = cur.clone();
            for it in 0..p.iterations {
                for y in 0..e {
                    for x in 0..e {
                        let mut cpu = CpuCtx::new(m, HOST_WRITER);
                        cpu.compute(Ns(35.0));
                        let at = |xx: i64, yy: i64| -> f32 {
                            let xx = xx.clamp(0, e as i64 - 1) as usize;
                            let yy = yy.clamp(0, e as i64 - 1) as usize;
                            cur[yy * e + xx]
                        };
                        let (xi, yi) = (x as i64, y as i64);
                        let ctr = at(xi, yi);
                        let (up, down, left, right) = (
                            at(xi, yi - 1),
                            at(xi, yi + 1),
                            at(xi - 1, yi),
                            at(xi + 1, yi),
                        );
                        let c = coeff(ctr, up, down, left, right);
                        let out = diffuse(ctr, up, down, left, right, c, p.lambda);
                        let i = (y * e + x) as u64;
                        next[y * e + x] = out;
                        cpu.store(Addr::pm(st.pm_coeff + i * 4), &c.to_le_bytes())?;
                        let pm_out = st.pm_img[((it + 1) % 2) as usize];
                        cpu.store(Addr::pm(pm_out + i * 4), &out.to_le_bytes())?;
                        // A CPU implementation flushes at cache-line
                        // granularity: one CLFLUSH covers 16 pixels.
                        if i % 16 == 15 || x == e - 1 {
                            cpu.persist(pm_out + (i - i % 16) * 4, 64);
                        }
                        serial += cpu.elapsed();
                    }
                }
                std::mem::swap(&mut cur, &mut next);
            }
            let t = serial / m.cfg.cpu_persist_scaling(m.cfg.cpu_cores);
            m.clock.advance(t);
            Ok::<bool, SimError>(true)
        })?;
        // The CPU path persisted the same final image.
        let (img, _) = self.reference(p.iterations);
        let final_buf = st.pm_img[(p.iterations % 2) as usize];
        metrics.verified = {
            let mut ok = true;
            for i in (0..p.pixels()).step_by(97) {
                if machine.read_f32(Addr::pm(final_buf + i * 4))? != img[i as usize] {
                    ok = false;
                    break;
                }
            }
            ok
        };
        Ok(metrics)
    }

    /// Crash-injected GPM run: aborts mid-iteration, then resumes from the
    /// persisted iteration counter and image.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_crash_resume(&self, machine: &mut Machine, fuel: u64) -> SimResult<RunMetrics> {
        let st = self.setup(machine, Mode::Gpm)?;
        self.persist_iter(machine, &st, 0)?;
        match self.run_iters(machine, &st, Mode::Gpm, 0, &mut FuelGauge::crash(fuel)) {
            Ok(()) => {}
            Err(LaunchError::Crashed(_)) => {}
            Err(LaunchError::Sim(e)) => return Err(e),
        }
        machine.crash();
        self.resume(machine, &st)
    }

    /// Post-crash resume: reads the committed iteration counter, reloads the
    /// consistent image buffer, finishes the diffusion, and verifies.
    fn resume(&self, machine: &mut Machine, st: &SradState) -> SimResult<RunMetrics> {
        let t0 = machine.clock.now();
        let done = machine.read_u32(Addr::pm(st.pm_iter))?;
        // The image after `done` committed iterations lives in PM buffer
        // `done % 2`; the interrupted iteration only touched the *other*
        // buffer, so this copy is consistent. Reload it into the HBM buffer
        // iteration `done` reads from.
        let bytes = self.params.pixels() * 4;
        let src = if done % 2 == 0 {
            st.hbm_img_a
        } else {
            st.hbm_img_b
        };
        let mut buf = vec![0u8; bytes as usize];
        machine.read(Addr::pm(st.pm_img[(done % 2) as usize]), &mut buf)?;
        machine.host_write(Addr::hbm(src), &buf)?;
        machine.clock.advance(Ns(
            bytes as f64 / machine.cfg.pm_read_bw.min(machine.cfg.pcie_bw)
        ));
        let resume_setup = machine.clock.now() - t0;

        let mut metrics = metered(machine, |m| {
            self.run_iters(m, st, Mode::Gpm, done, &mut FuelGauge::Unlimited)
                .map_err(|e| match e {
                    LaunchError::Sim(e) => e,
                    LaunchError::Crashed(_) => SimError::Crashed,
                })?;
            Ok::<bool, SimError>(true)
        })?;
        metrics.recovery = Some(resume_setup);
        metrics.verified = self.verify(machine, st, Mode::Gpm)?;
        Ok(metrics)
    }
}

impl RecoveryOracle for SradWorkload {
    fn name(&self) -> &'static str {
        "SRAD"
    }

    fn record(&mut self, machine: &mut Machine) -> SimResult<CrashSchedule> {
        let st = self.setup(machine, Mode::Gpm)?;
        self.persist_iter(machine, &st, 0)?;
        let mut gauge = FuelGauge::record();
        crate::oracle::expect_clean(self.run_iters(machine, &st, Mode::Gpm, 0, &mut gauge))?;
        Ok(gauge.into_schedule().expect("recording gauge"))
    }

    fn run_case(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        let st = self.setup(machine, Mode::Gpm)?;
        self.persist_iter(machine, &st, 0)?;
        let res = self.run_iters(
            machine,
            &st,
            Mode::Gpm,
            0,
            &mut FuelGauge::crash_with_policy(fuel, policy),
        );
        crate::oracle::settle_crash(machine, policy, res)?;
        let metrics = self.resume(machine, &st)?;
        Ok(if metrics.verified {
            OracleVerdict::Pass
        } else {
            OracleVerdict::Fail("resumed diffusion diverges from reference image".into())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SradWorkload {
        SradWorkload::new(SradParams::quick())
    }

    #[test]
    fn diffusion_verifies_under_gpm_and_cap() {
        for mode in [Mode::Gpm, Mode::GpmNdp, Mode::CapMm, Mode::Gpufs] {
            let mut m = Machine::default();
            let r = quick().run(&mut m, mode).unwrap();
            assert!(r.verified, "{mode:?}");
        }
    }

    #[test]
    fn cpu_variant_verifies_and_is_much_slower() {
        let mut m1 = Machine::default();
        let g = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let c = quick().run(&mut m2, Mode::CpuPm).unwrap();
        assert!(c.verified);
        // Figure 1b: SRAD speeds up ~27× over the CPU-PM version.
        let speedup = c.elapsed / g.elapsed;
        assert!(
            speedup > 4.0,
            "expected a large GPM speedup, got {speedup:.1}"
        );
    }

    #[test]
    fn crash_resume_produces_correct_image() {
        for fuel in [3_000u64, 30_000] {
            let mut m = Machine::default();
            let r = quick().run_crash_resume(&mut m, fuel).unwrap();
            assert!(r.verified, "fuel={fuel}");
        }
    }

    #[test]
    fn coefficients_are_bounded() {
        // c ∈ (0, 1]: smoothness of the diffusion operator.
        for i in 0..100u64 {
            let v = init_pixel(i, i * 3);
            let c = coeff(v, v + 1.0, v - 1.0, v + 2.0, v - 2.0);
            assert!(c > 0.0 && c <= 1.0);
        }
    }
}
