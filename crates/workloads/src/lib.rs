//! # gpm-workloads — GPMbench
//!
//! The paper's nine-workload suite (Table 1), each runnable under every
//! persistence system of the evaluation (GPM, CAP-fs, CAP-mm, GPM-NDP,
//! GPUfs, CPU-only) with recovery paths and functional verification.
//!
//! ## Example
//!
//! Run one workload under two systems and compare:
//!
//! ```
//! use gpm_sim::Machine;
//! use gpm_workloads::{KvsParams, KvsWorkload, Mode};
//!
//! let w = KvsWorkload::new(KvsParams::quick());
//! let mut m1 = Machine::default();
//! let gpm = w.run(&mut m1, Mode::Gpm)?;
//! let mut m2 = Machine::default();
//! let cap = w.run(&mut m2, Mode::CapFs)?;
//! assert!(gpm.verified && cap.verified);
//! assert!(gpm.elapsed < cap.elapsed, "in-kernel persistence wins");
//! # Ok::<(), gpm_sim::SimError>(())
//! ```
//!
//! Or drive the whole suite uniformly:
//!
//! ```no_run
//! use gpm_sim::Machine;
//! use gpm_workloads::{suite, Mode, Scale};
//!
//! for w in suite(Scale::Quick).iter_mut() {
//!     let mut m = Machine::default();
//!     if w.supports(Mode::Gpm) {
//!         let r = w.run(&mut m, Mode::Gpm).unwrap();
//!         println!("{}: {}", w.name(), r.elapsed);
//!     }
//! }
//! ```

#![warn(missing_docs)]

pub mod analytics;
pub mod bfs;
pub mod blackscholes;
pub mod cfd;
pub mod datagen;
pub mod db;
pub mod dnn;
pub mod hash_shard;
pub mod hotspot;
pub mod iterative;
pub mod kvs;
pub mod metrics;
pub mod oracle;
pub mod prefix_sum;
pub mod srad;
pub mod suite;

pub use analytics::{AnalyticsParams, AnalyticsState, AnalyticsWorkload, CohortStats};
pub use bfs::{BfsParams, BfsWorkload};
pub use blackscholes::{BlkParams, BlkWorkload};
pub use cfd::{CfdParams, CfdWorkload};
pub use db::{DbOp, DbParams, DbState, DbWorkload};
pub use dnn::{DnnParams, DnnWorkload};
pub use hash_shard::{
    shard_bytes, shard_set_detectable, shard_set_legacy, ShardDev, ShardModel, SLOT_BYTES,
    UNDO_BYTES, WAYS,
};
pub use hotspot::{HotspotParams, HotspotWorkload};
pub use iterative::{
    checkpoint_latency, checkpoint_oracle, run_iterative, run_iterative_with_recovery,
    CheckpointOracle, IterativeApp,
};
pub use kvs::{KvsOp, KvsParams, KvsState, KvsWorkload};
pub use metrics::{metered, BatchMetrics, Category, LatencyHistogram, Mode, RunMetrics};
pub use oracle::{oracle_suite, RecoveryOracle, ServeConsistency};
pub use prefix_sum::{PsParams, PsWorkload};
pub use srad::{SradParams, SradWorkload};
pub use suite::{suite, Scale, Workload};
