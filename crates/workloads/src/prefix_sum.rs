//! Prefix sum (PS) with native persistence (§4.3, Figure 8).
//!
//! The input array is divided among threadblocks; each thread persists the
//! partial (within-block inclusive prefix) sum for one element. Following
//! the paper's recovery protocol, the *last* thread of a block persists its
//! partial sum only after a block barrier — its value is the sentinel: if
//! it is present after a crash, the whole block's partials are known
//! durable and the block is skipped on resume. A second stage combines
//! per-block totals into block offsets, and a third produces the final
//! prefix array on PM under the same sentinel protocol.

use gpm_cap::{cap_persist_region, flush_from_cpu, CapFlavor};
use gpm_core::{gpm_map, gpm_persist_begin, gpm_persist_end, GpmThreadExt, GpmWarpExt};
use gpm_gpu::{
    launch_with_gauge, FuelGauge, Kernel, LaunchConfig, LaunchError, ThreadCtx, WarpCtx,
};
use gpm_sim::cpu::CpuCtx;
use gpm_sim::{
    Addr, CrashPolicy, CrashSchedule, Machine, Ns, OracleVerdict, SimError, SimResult, HOST_WRITER,
};

use crate::metrics::{metered, Mode, RunMetrics};
use crate::oracle::RecoveryOracle;

/// Threads (elements) per block.
pub const BLOCK: u64 = 256;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct PsParams {
    /// Elements (must be a multiple of [`BLOCK`]).
    pub n: u64,
    /// CPU threads for CAP-mm persisting.
    pub cap_threads: u32,
}

impl Default for PsParams {
    fn default() -> PsParams {
        PsParams {
            n: 1 << 18,
            cap_threads: 32,
        }
    }
}

impl PsParams {
    /// Small configuration for unit tests.
    pub fn quick() -> PsParams {
        PsParams {
            n: 4096,
            ..PsParams::default()
        }
    }

    fn blocks(&self) -> u64 {
        self.n / BLOCK
    }
}

/// The prefix-sum workload.
#[derive(Debug)]
pub struct PsWorkload {
    /// Parameters of this instance.
    pub params: PsParams,
}

struct PsState {
    pm_input: u64,
    hbm_input: u64,
    pm_p_sums: u64,
    hbm_p_sums: u64,
    pm_offsets: u64, // blocks × u64 + flag word after them
    hbm_offsets: u64,
    pm_out: u64,
    staging_dram: u64,
    cap_pm: u64,
}

fn input_value(i: u64) -> u64 {
    1 + gpm_pmkv::hash64(i ^ 0x5053) % 100
}

/// Shared (`__shared__`) state of the partial-sum kernel.
#[derive(Debug, Default)]
pub struct PsShared {
    vals: Vec<u64>,
    done: bool,
}

/// Stage-1 kernel: within-block inclusive prefix, persisted per Figure 8.
struct PartialSumKernel {
    input: u64,
    pm_p_sums: u64,
    hbm_p_sums: u64,
    n: u64,
    to_pm: bool,
    persist: bool,
}

impl Kernel for PartialSumKernel {
    type State = ();
    type Shared = PsShared;

    fn phases(&self) -> u32 {
        4
    }

    fn reset_shared(&self, shared: &mut PsShared) {
        // Keep the `vals` allocation: the engine reuses one `PsShared`
        // across every block of the launch.
        shared.vals.clear();
        shared.done = false;
    }

    fn run(
        &self,
        phase: u32,
        ctx: &mut ThreadCtx<'_>,
        _state: &mut (),
        shared: &mut PsShared,
    ) -> SimResult<()> {
        let gid = ctx.global_id();
        if gid >= self.n {
            return Ok(());
        }
        let t = ctx.thread_in_block() as u64;
        let last = (ctx.block_dim() - 1) as u64;
        match phase {
            0 => {
                // Figure 8 line 3: if the block's sentinel partial sum is
                // already on PM, the whole block survived a previous run.
                if t == 0 && self.to_pm {
                    let block_last = ctx.block_id() as u64 * BLOCK + last;
                    shared.done = ctx.ld_u64(Addr::pm(self.pm_p_sums + block_last * 8))? != 0;
                }
                let v = ctx.ld_u32(Addr::hbm(self.input + gid * 4))? as u64;
                shared.vals.push(v);
                Ok(())
            }
            1 => {
                // Block-cooperative scan (done by one lane here; the real
                // kernel tree-reduces — the persisted values are identical).
                if t == 0 && !shared.done {
                    ctx.compute(Ns(2.0) * BLOCK as f64);
                    let mut running = 0u64;
                    for v in shared.vals.iter_mut() {
                        running += *v;
                        *v = running;
                    }
                }
                Ok(())
            }
            2 => {
                // All but the last thread persist their partial sums.
                if shared.done || t == last {
                    return Ok(());
                }
                let v = shared.vals[t as usize];
                ctx.st_u64(Addr::hbm(self.hbm_p_sums + gid * 8), v)?;
                if self.to_pm {
                    ctx.st_u64(Addr::pm(self.pm_p_sums + gid * 8), v)?;
                    if self.persist {
                        ctx.gpm_persist()?;
                    }
                }
                Ok(())
            }
            _ => {
                // After the barrier, the last thread persists the sentinel.
                if t != last {
                    return Ok(());
                }
                if shared.done {
                    // Resumed block: refresh the volatile mirror only.
                    return Ok(());
                }
                let v = shared.vals[t as usize];
                ctx.st_u64(Addr::hbm(self.hbm_p_sums + gid * 8), v)?;
                if self.to_pm {
                    ctx.st_u64(Addr::pm(self.pm_p_sums + gid * 8), v)?;
                    if self.persist {
                        ctx.gpm_persist()?;
                    }
                }
                Ok(())
            }
        }
    }

    fn run_warp(
        &self,
        phase: u32,
        ctx: &mut WarpCtx<'_>,
        _states: &mut [()],
        shared: &mut PsShared,
    ) -> SimResult<bool> {
        let lanes = ctx.lanes() as u64;
        let first = ctx.first_global_id();
        if first + lanes > self.n {
            return Ok(false);
        }
        let t0 = first - ctx.block_id() as u64 * ctx.block_dim() as u64;
        // The warp holding the block's last thread runs the divergent
        // sentinel protocol (phases 2/3 skip or isolate that thread).
        let holds_last = t0 + lanes == ctx.block_dim() as u64;
        match phase {
            0 => {
                if t0 == 0 && self.to_pm {
                    return Ok(false); // thread 0 also probes the sentinel
                }
                let mut v = vec![0u32; lanes as usize];
                ctx.ld_u32_lanes(Addr::hbm(self.input + first * 4), 4, &mut v)?;
                shared.vals.extend(v.iter().map(|&x| x as u64));
                Ok(true)
            }
            1 => {
                // The block scan runs on thread 0 alone; every other warp
                // is a uniform no-op.
                Ok(t0 != 0)
            }
            2 => {
                if shared.done {
                    return Ok(true); // resumed block: every lane skips
                }
                if holds_last {
                    return Ok(false);
                }
                let vals = &shared.vals[t0 as usize..(t0 + lanes) as usize];
                ctx.st_u64_lanes(Addr::hbm(self.hbm_p_sums + first * 8), 8, vals)?;
                if self.to_pm {
                    ctx.st_u64_lanes(Addr::pm(self.pm_p_sums + first * 8), 8, vals)?;
                    if self.persist {
                        ctx.gpm_persist()?;
                    }
                }
                Ok(true)
            }
            // The sentinel phase touches only the last thread.
            _ => Ok(!holds_last),
        }
    }

    fn warp_fuel(&self, phase: u32) -> Option<u64> {
        Some(match phase {
            0 => 2,                                                   // sentinel probe + input load
            1 => 0,                                                   // scan is pure compute
            _ => 1 + u64::from(self.to_pm) + u64::from(self.persist), // HBM + PM store + fence
        })
    }
}

/// Stage-3 kernel: final prefix = block offset + partial, same protocol.
struct FinalKernel {
    hbm_p_sums: u64,
    hbm_offsets: u64,
    pm_out: u64,
    n: u64,
    to_pm: bool,
    persist: bool,
}

impl Kernel for FinalKernel {
    type State = ();
    type Shared = PsShared;

    fn phases(&self) -> u32 {
        2
    }

    fn reset_shared(&self, shared: &mut PsShared) {
        shared.vals.clear();
        shared.done = false;
    }

    fn run(
        &self,
        phase: u32,
        ctx: &mut ThreadCtx<'_>,
        _state: &mut (),
        shared: &mut PsShared,
    ) -> SimResult<()> {
        let gid = ctx.global_id();
        if gid >= self.n {
            return Ok(());
        }
        let t = ctx.thread_in_block() as u64;
        let last = (ctx.block_dim() - 1) as u64;
        let block = ctx.block_id() as u64;
        if phase == 0 {
            if t == 0 && self.to_pm {
                let block_last = block * BLOCK + last;
                shared.done = ctx.ld_u64(Addr::pm(self.pm_out + block_last * 8))? != 0;
            }
            if shared.done || t == last {
                return Ok(());
            }
        } else if shared.done || t != last {
            return Ok(());
        }
        let partial = ctx.ld_u64(Addr::hbm(self.hbm_p_sums + gid * 8))?;
        let offset = ctx.ld_u64(Addr::hbm(self.hbm_offsets + block * 8))?;
        if self.to_pm {
            ctx.st_u64(Addr::pm(self.pm_out + gid * 8), offset + partial)?;
            if self.persist {
                ctx.gpm_persist()?;
            }
        } else {
            ctx.st_u64(Addr::hbm(self.hbm_p_sums + gid * 8), offset + partial)?;
        }
        Ok(())
    }

    fn run_warp(
        &self,
        phase: u32,
        ctx: &mut WarpCtx<'_>,
        _states: &mut [()],
        shared: &mut PsShared,
    ) -> SimResult<bool> {
        let lanes = ctx.lanes() as u64;
        let first = ctx.first_global_id();
        if first + lanes > self.n {
            return Ok(false);
        }
        let t0 = first - ctx.block_id() as u64 * ctx.block_dim() as u64;
        let holds_last = t0 + lanes == ctx.block_dim() as u64;
        if phase == 0 {
            if t0 == 0 && self.to_pm {
                return Ok(false); // thread 0 also probes the sentinel
            }
            if shared.done {
                return Ok(true); // resumed block: every lane skips
            }
            if holds_last {
                return Ok(false); // the last thread defers to phase 1
            }
        } else {
            // Only the last thread writes in the sentinel phase.
            return Ok(!holds_last);
        }
        let n = lanes as usize;
        let mut partial = vec![0u64; n];
        let mut offset = vec![0u64; n];
        ctx.ld_u64_lanes(Addr::hbm(self.hbm_p_sums + first * 8), 8, &mut partial)?;
        // Every lane reads the same block offset word (stride 0); the
        // coalescer dedups it to one transaction, as in the per-lane walk.
        let block = ctx.block_id() as u64;
        ctx.ld_u64_lanes(Addr::hbm(self.hbm_offsets + block * 8), 0, &mut offset)?;
        let out: Vec<u64> = (0..n).map(|i| offset[i] + partial[i]).collect();
        if self.to_pm {
            ctx.st_u64_lanes(Addr::pm(self.pm_out + first * 8), 8, &out)?;
            if self.persist {
                ctx.gpm_persist()?;
            }
        } else {
            ctx.st_u64_lanes(Addr::hbm(self.hbm_p_sums + first * 8), 8, &out)?;
        }
        Ok(true)
    }

    fn warp_fuel(&self, phase: u32) -> Option<u64> {
        // Worst lane of phase 0 is thread 0 under GPM: sentinel probe, two
        // gathers, the store and the persist fence.
        let _ = phase;
        Some(3 + u64::from(self.to_pm) + u64::from(self.persist))
    }
}

impl PsWorkload {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a multiple of [`BLOCK`].
    pub fn new(params: PsParams) -> PsWorkload {
        assert!(
            params.n.is_multiple_of(BLOCK),
            "n must be a multiple of the block size"
        );
        PsWorkload { params }
    }

    fn setup(&self, machine: &mut Machine, mode: Mode) -> SimResult<PsState> {
        let n = self.params.n;
        let blocks = self.params.blocks();
        let pm_input = gpm_map(machine, "/pm/ps/input", n * 4, true)?.offset;
        let pm_p_sums = gpm_map(machine, "/pm/ps/p_sums", n * 8, true)?.offset;
        let pm_offsets = gpm_map(machine, "/pm/ps/offsets", blocks * 8 + 8, true)?.offset;
        let pm_out = gpm_map(machine, "/pm/ps/out", n * 8, true)?.offset;
        let hbm_input = machine.alloc_hbm(n * 4)?;
        let hbm_p_sums = machine.alloc_hbm(n * 8)?;
        let hbm_offsets = machine.alloc_hbm(blocks * 8)?;
        let staging_dram = machine.alloc_dram(n * 8)?;
        let cap_pm = if matches!(mode, Mode::CapFs | Mode::CapMm) {
            machine.alloc_pm(n * 8)?
        } else {
            0
        };
        let mut input = Vec::with_capacity((n * 4) as usize);
        for i in 0..n {
            input.extend_from_slice(&(input_value(i) as u32).to_le_bytes());
        }
        machine.host_write(Addr::pm(pm_input), &input)?;
        machine.host_write(Addr::hbm(hbm_input), &input)?;
        machine.clock.advance(Ns(
            (n * 4) as f64 / machine.cfg.pm_read_bw.min(machine.cfg.pcie_bw)
        ));
        Ok(PsState {
            pm_input,
            hbm_input,
            pm_p_sums,
            hbm_p_sums,
            pm_offsets,
            hbm_offsets,
            pm_out,
            staging_dram,
            cap_pm,
        })
    }

    /// Stage 2: derive block offsets from the (persisted) per-block totals,
    /// persist them with a trailing flag, and mirror them into HBM.
    fn compute_offsets(&self, machine: &mut Machine, st: &PsState, to_pm: bool) -> SimResult<()> {
        let blocks = self.params.blocks();
        let mut cpu = CpuCtx::new(machine, HOST_WRITER);
        if to_pm && cpu.load_u64(Addr::pm(st.pm_offsets + blocks * 8))? == 1 {
            // Offsets already committed by a previous run.
            let t = cpu.elapsed();
            machine.clock.advance(t);
            let mut buf = vec![0u8; (blocks * 8) as usize];
            machine.read(Addr::pm(st.pm_offsets), &mut buf)?;
            machine.host_write(Addr::hbm(st.hbm_offsets), &buf)?;
            return Ok(());
        }
        let mut running = 0u64;
        let mut flat = Vec::with_capacity((blocks * 8) as usize);
        for b in 0..blocks {
            flat.extend_from_slice(&running.to_le_bytes());
            let src = if to_pm {
                Addr::pm(st.pm_p_sums + ((b + 1) * BLOCK - 1) * 8)
            } else {
                Addr::hbm(st.hbm_p_sums + ((b + 1) * BLOCK - 1) * 8)
            };
            running += cpu.load_u64(src)?;
        }
        if to_pm {
            cpu.store(Addr::pm(st.pm_offsets), &flat)?;
            cpu.persist(st.pm_offsets, blocks * 8);
            cpu.store(Addr::pm(st.pm_offsets + blocks * 8), &1u64.to_le_bytes())?;
            cpu.persist(st.pm_offsets + blocks * 8, 8);
        }
        let t = cpu.elapsed();
        machine.clock.advance(t);
        machine.host_write(Addr::hbm(st.hbm_offsets), &flat)?;
        Ok(())
    }

    fn run_pipeline(
        &self,
        machine: &mut Machine,
        st: &PsState,
        mode: Mode,
        gauge: &mut FuelGauge,
    ) -> Result<(), LaunchError> {
        let p = &self.params;
        let n = p.n;
        let cfg = LaunchConfig::for_elements(n, BLOCK as u32);
        let to_pm = matches!(mode, Mode::Gpm | Mode::GpmNdp);
        let persist = mode == Mode::Gpm;

        let k1 = PartialSumKernel {
            input: st.hbm_input,
            pm_p_sums: st.pm_p_sums,
            hbm_p_sums: st.hbm_p_sums,
            n,
            to_pm,
            persist,
        };
        if persist {
            gpm_persist_begin(machine);
        }
        let res = launch_with_gauge(machine, cfg, &k1, gauge);
        if persist {
            gpm_persist_end(machine);
        }
        let _ = res?;
        match mode {
            Mode::Gpm => {}
            Mode::GpmNdp => {
                flush_from_cpu(machine, st.pm_p_sums, n * 8, p.cap_threads);
            }
            Mode::CapFs | Mode::CapMm => {
                let flavor = if mode == Mode::CapFs {
                    CapFlavor::Fs
                } else {
                    CapFlavor::Mm {
                        threads: p.cap_threads,
                    }
                };
                cap_persist_region(
                    machine,
                    flavor,
                    st.hbm_p_sums,
                    st.staging_dram,
                    st.cap_pm,
                    n * 8,
                )
                .map_err(LaunchError::Sim)?;
            }
            _ => {
                return Err(LaunchError::Sim(SimError::Invalid(
                    "mode handled elsewhere",
                )))
            }
        }

        self.compute_offsets(machine, st, to_pm)?;

        let k3 = FinalKernel {
            hbm_p_sums: st.hbm_p_sums,
            hbm_offsets: st.hbm_offsets,
            pm_out: st.pm_out,
            n,
            to_pm,
            persist,
        };
        if persist {
            gpm_persist_begin(machine);
        }
        let res = launch_with_gauge(machine, cfg, &k3, gauge);
        if persist {
            gpm_persist_end(machine);
        }
        let _ = res?;
        match mode {
            Mode::Gpm => {}
            Mode::GpmNdp => {
                flush_from_cpu(machine, st.pm_out, n * 8, p.cap_threads);
            }
            Mode::CapFs | Mode::CapMm => {
                let flavor = if mode == Mode::CapFs {
                    CapFlavor::Fs
                } else {
                    CapFlavor::Mm {
                        threads: p.cap_threads,
                    }
                };
                cap_persist_region(
                    machine,
                    flavor,
                    st.hbm_p_sums,
                    st.staging_dram,
                    st.cap_pm,
                    n * 8,
                )
                .map_err(LaunchError::Sim)?;
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    fn reference(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.params.n as usize);
        let mut running = 0u64;
        for i in 0..self.params.n {
            running += input_value(i);
            out.push(running);
        }
        out
    }

    fn verify(&self, machine: &Machine, st: &PsState, mode: Mode) -> SimResult<bool> {
        let reference = self.reference();
        let base = match mode {
            Mode::Gpm | Mode::GpmNdp => st.pm_out,
            Mode::CapFs | Mode::CapMm => st.cap_pm,
            _ => return Ok(false),
        };
        for i in (0..self.params.n).step_by(61) {
            if machine.read_u64(Addr::pm(base + i * 8))? != reference[i as usize] {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Runs the workload under `mode`.
    ///
    /// # Errors
    ///
    /// Fails for unsupported modes (GPUfs deadlocks on per-thread writes)
    /// or on platform errors.
    pub fn run(&self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        if mode == Mode::CpuPm {
            return self.run_cpu(machine);
        }
        if mode == Mode::Gpufs {
            return Err(SimError::Invalid(
                "GPUfs deadlocks on per-thread fine-grained writes (§6.1)",
            ));
        }
        let st = self.setup(machine, mode)?;
        let mut metrics = metered(machine, |m| {
            self.run_pipeline(m, &st, mode, &mut FuelGauge::Unlimited)
                .map_err(|e| match e {
                    LaunchError::Sim(e) => e,
                    LaunchError::Crashed(_) => SimError::Crashed,
                })?;
            Ok::<bool, SimError>(true)
        })?;
        metrics.verified = self.verify(machine, &st, mode)?;
        Ok(metrics)
    }

    /// CPU-with-PM baseline (Figure 1b): a scan persisting each output.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_cpu(&self, machine: &mut Machine) -> SimResult<RunMetrics> {
        let st = self.setup(machine, Mode::Gpm)?;
        let reference = self.reference();
        let mut metrics = metered(machine, |m| {
            let mut serial = Ns::ZERO;
            let mut running = 0u64;
            for i in 0..self.params.n {
                let mut cpu = CpuCtx::new(m, HOST_WRITER);
                running += input_value(i);
                cpu.compute(Ns(3.0));
                cpu.store(Addr::pm(st.pm_out + i * 8), &running.to_le_bytes())?;
                // Line-granular flushing: one CLFLUSH per 8 outputs.
                if i % 8 == 7 || i + 1 == self.params.n {
                    cpu.persist(st.pm_out + (i - i % 8) * 8, 64);
                }
                serial += cpu.elapsed();
            }
            let t = serial / m.cfg.cpu_persist_scaling(m.cfg.cpu_cores);
            m.clock.advance(t);
            Ok::<bool, SimError>(true)
        })?;
        metrics.verified = {
            let mut ok = true;
            for i in (0..self.params.n).step_by(61) {
                if machine.read_u64(Addr::pm(st.pm_out + i * 8))? != reference[i as usize] {
                    ok = false;
                    break;
                }
            }
            ok
        };
        Ok(metrics)
    }

    /// Crash-injected GPM run: aborts mid-pipeline, then resumes. Blocks
    /// whose sentinel partial sum survived are not recomputed (Figure 8's
    /// recovery). Returns metrics of the resumed run.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_crash_resume(&self, machine: &mut Machine, fuel: u64) -> SimResult<RunMetrics> {
        let st = self.setup(machine, Mode::Gpm)?;
        match self.run_pipeline(machine, &st, Mode::Gpm, &mut FuelGauge::crash(fuel)) {
            Ok(()) => {}
            Err(LaunchError::Crashed(_)) => {}
            Err(LaunchError::Sim(e)) => return Err(e),
        }
        machine.crash();
        self.resume(machine, &st)
    }

    /// Post-crash resume: reloads the input and surviving partial sums into
    /// HBM, reruns the pipeline (completed blocks are skipped), verifies.
    fn resume(&self, machine: &mut Machine, st: &PsState) -> SimResult<RunMetrics> {
        let t0 = machine.clock.now();
        let n = self.params.n;
        // Reload the input and the surviving partial sums into HBM.
        let mut buf = vec![0u8; (n * 4) as usize];
        machine.read(Addr::pm(st.pm_input), &mut buf)?;
        machine.host_write(Addr::hbm(st.hbm_input), &buf)?;
        let mut ps = vec![0u8; (n * 8) as usize];
        machine.read(Addr::pm(st.pm_p_sums), &mut ps)?;
        machine.host_write(Addr::hbm(st.hbm_p_sums), &ps)?;
        machine.clock.advance(Ns(
            (n * 12) as f64 / machine.cfg.pm_read_bw.min(machine.cfg.pcie_bw)
        ));
        let resume_setup = machine.clock.now() - t0;

        let mut metrics = metered(machine, |m| {
            self.run_pipeline(m, st, Mode::Gpm, &mut FuelGauge::Unlimited)
                .map_err(|e| match e {
                    LaunchError::Sim(e) => e,
                    LaunchError::Crashed(_) => SimError::Crashed,
                })?;
            Ok::<bool, SimError>(true)
        })?;
        metrics.recovery = Some(resume_setup);
        metrics.verified = self.verify(machine, st, Mode::Gpm)?;
        Ok(metrics)
    }
}

impl RecoveryOracle for PsWorkload {
    fn name(&self) -> &'static str {
        "PS"
    }

    fn record(&mut self, machine: &mut Machine) -> SimResult<CrashSchedule> {
        let st = self.setup(machine, Mode::Gpm)?;
        let mut gauge = FuelGauge::record();
        crate::oracle::expect_clean(self.run_pipeline(machine, &st, Mode::Gpm, &mut gauge))?;
        Ok(gauge.into_schedule().expect("recording gauge"))
    }

    fn run_case(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        let st = self.setup(machine, Mode::Gpm)?;
        let res = self.run_pipeline(
            machine,
            &st,
            Mode::Gpm,
            &mut FuelGauge::crash_with_policy(fuel, policy),
        );
        crate::oracle::settle_crash(machine, policy, res)?;
        let metrics = self.resume(machine, &st)?;
        Ok(if metrics.verified {
            OracleVerdict::Pass
        } else {
            OracleVerdict::Fail("resumed prefix sums diverge from reference".into())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PsWorkload {
        PsWorkload::new(PsParams::quick())
    }

    #[test]
    fn prefix_sum_verifies_under_all_modes() {
        for mode in [
            Mode::Gpm,
            Mode::GpmNdp,
            Mode::CapFs,
            Mode::CapMm,
            Mode::CpuPm,
        ] {
            let mut m = Machine::default();
            let r = quick().run(&mut m, mode).unwrap();
            assert!(r.verified, "{mode:?}");
        }
    }

    #[test]
    fn gpm_beats_cap_and_cpu() {
        let t = |mode| {
            let mut m = Machine::default();
            quick().run(&mut m, mode).unwrap().elapsed
        };
        let gpm = t(Mode::Gpm);
        assert!(t(Mode::CapFs) > gpm);
        assert!(t(Mode::CpuPm) > gpm);
    }

    #[test]
    fn crash_resume_skips_completed_blocks() {
        let mut m = Machine::default();
        let r = quick().run_crash_resume(&mut m, 4_000).unwrap();
        assert!(r.verified);

        // A clean run writes every partial to PM; the resumed run must have
        // written less (completed blocks were skipped).
        let mut m2 = Machine::default();
        let clean = quick().run(&mut m2, Mode::Gpm).unwrap();
        assert!(
            r.pm_write_bytes_gpu < clean.pm_write_bytes_gpu,
            "resume rewrote everything: {} vs {}",
            r.pm_write_bytes_gpu,
            clean.pm_write_bytes_gpu
        );
    }

    #[test]
    fn sentinel_ordering_holds_under_crash() {
        // Whenever a block's last partial is present on PM after a crash,
        // every other partial of that block must be present too (Figure 8's
        // invariant).
        for fuel in [1_000u64, 5_000, 20_000] {
            let mut m = Machine::default();
            let w = quick();
            let st_offsets = {
                let st = w.setup(&mut m, Mode::Gpm).unwrap();
                match w.run_pipeline(&mut m, &st, Mode::Gpm, &mut FuelGauge::crash(fuel)) {
                    Ok(()) | Err(LaunchError::Crashed(_)) => {}
                    Err(LaunchError::Sim(e)) => panic!("{e}"),
                }
                m.crash();
                st
            };
            let reference = w.reference();
            for b in 0..w.params.blocks() {
                let last = (b + 1) * BLOCK - 1;
                let sentinel = m
                    .read_u64(Addr::pm(st_offsets.pm_p_sums + last * 8))
                    .unwrap();
                if sentinel != 0 {
                    for t in 0..BLOCK {
                        let i = b * BLOCK + t;
                        let v = m.read_u64(Addr::pm(st_offsets.pm_p_sums + i * 8)).unwrap();
                        let block_base = if b == 0 {
                            0
                        } else {
                            reference[(b * BLOCK - 1) as usize]
                        };
                        assert_eq!(
                            v,
                            reference[i as usize] - block_base,
                            "fuel={fuel} block={b} thread={t}: sentinel present but partial missing"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_multiple_rejected() {
        PsWorkload::new(PsParams {
            n: 1000,
            ..PsParams::default()
        });
    }
}
