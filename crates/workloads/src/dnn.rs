//! DNN training with fine-grained checkpointing (§4.2).
//!
//! The paper trains LeNet on MNIST with cuDNN and checkpoints weights and
//! biases every N passes. cuDNN is unavailable, so per the substitution rule
//! this workload trains a real two-layer MLP (softmax cross-entropy,
//! mini-batch SGD) on a synthetic MNIST-like digit set: the *gradient math
//! runs on the host* standing in for cuDNN's kernels (their cost is modelled
//! as kernel compute), while the *weight updates and all checkpoint traffic
//! run through the GPU engine and PM*, which is what the experiment
//! measures — ≈3.2 MB of weights/biases per checkpoint, ≈8.26 ms per 10
//! passes vs ≈0.22 ms per checkpoint (§6.1). Training is deterministic, so
//! recovery is verified bit-exactly and the loss verifiably decreases.

use gpm_gpu::{launch, Kernel, LaunchConfig, ThreadCtx, WarpCtx};
use gpm_sim::{Addr, Machine, Ns, SimResult};

use crate::iterative::IterativeApp;

/// Parameters of the model and training loop.
#[derive(Debug, Clone, Copy)]
pub struct DnnParams {
    /// Input dimension (synthetic digits: 784, as MNIST).
    pub input: u64,
    /// Hidden layer width.
    pub hidden: u64,
    /// Output classes.
    pub output: u64,
    /// Training samples in the synthetic set.
    pub samples: u64,
    /// Mini-batch size per pass.
    pub batch: u64,
    /// Total training iterations (forward+backward passes).
    pub iterations: u32,
    /// Checkpoint cadence.
    pub checkpoint_every: u32,
    /// Learning rate.
    pub lr: f32,
    /// Modelled per-thread compute per pass — the cuDNN forward+backward
    /// time each thread's weight slice shares in (calibrated so 10 passes ≈
    /// 8.26 ms at the paper's model size, §6.1).
    pub pass_compute: Ns,
}

impl Default for DnnParams {
    fn default() -> DnnParams {
        DnnParams {
            input: 784,
            hidden: 1024, // 784×1024 weights ≈ 3.2 MB: the paper's checkpoint
            output: 10,
            samples: 64,
            batch: 16,
            iterations: 30,
            checkpoint_every: 10,
            lr: 0.05,
            pass_compute: Ns::from_micros(300.0),
        }
    }
}

impl DnnParams {
    /// Small configuration for unit tests.
    pub fn quick() -> DnnParams {
        DnnParams {
            input: 64,
            hidden: 32,
            samples: 32,
            batch: 8,
            iterations: 6,
            checkpoint_every: 2,
            ..DnnParams::default()
        }
    }

    fn n_params(&self) -> u64 {
        self.input * self.hidden + self.hidden + self.hidden * self.output + self.output
    }
}

/// The DNN training workload.
#[derive(Debug)]
pub struct DnnWorkload {
    /// Parameters of this instance.
    pub params: DnnParams,
    grads_hbm: u64,
}

/// Parameters each GPU thread updates per pass.
const PARAMS_PER_THREAD: u64 = 64;

fn init_weight(i: u64) -> f32 {
    ((gpm_pmkv::hash64(i) % 2000) as f32 - 1000.0) / 10_000.0
}

/// Synthetic "digit": class-dependent blob with hash noise, in [0, 1].
fn pixel(sample: u64, dim: u64, input: u64, classes: u64) -> f32 {
    let class = sample % classes;
    // Each class lights a band of the input.
    let band = (dim * classes) / input.max(1);
    let base = if band == class { 0.8 } else { 0.1 };
    base + ((gpm_pmkv::hash64(sample ^ (dim << 32)) % 100) as f32) / 1000.0
}

fn label(sample: u64, classes: u64) -> usize {
    (sample % classes) as usize
}

/// Host-side replica of the model (the reference for verification, and the
/// stand-in for cuDNN's gradient computation).
#[derive(Debug, Clone)]
struct HostModel {
    p: DnnParams,
    /// All parameters flattened: [w1 | b1 | w2 | b2].
    w: Vec<f32>,
}

impl HostModel {
    fn new(p: DnnParams) -> HostModel {
        let w = (0..p.n_params()).map(init_weight).collect();
        HostModel { p, w }
    }

    fn slices(&self) -> (usize, usize, usize) {
        let p = &self.p;
        let w1 = (p.input * p.hidden) as usize;
        let b1 = w1 + p.hidden as usize;
        let w2 = b1 + (p.hidden * p.output) as usize;
        (w1, b1, w2)
    }

    /// One forward+backward pass over a deterministic mini-batch; returns
    /// `(gradients, mean loss)`.
    fn grads(&self, iter: u32) -> (Vec<f32>, f32) {
        let p = &self.p;
        let (w1e, b1e, w2e) = self.slices();
        let (nh, no) = (p.hidden as usize, p.output as usize);
        let mut g = vec![0.0f32; self.w.len()];
        let mut loss = 0.0f32;
        for bi in 0..p.batch {
            let s = (iter as u64 * p.batch + bi) % p.samples;
            let x: Vec<f32> = (0..p.input)
                .map(|d| pixel(s, d, p.input, p.output))
                .collect();
            let y = label(s, p.output);
            // Forward: h = relu(W1ᵀx + b1); z = W2ᵀh + b2; softmax.
            let mut h = vec![0.0f32; nh];
            for (j, hj) in h.iter_mut().enumerate() {
                let mut a = self.w[w1e + j]; // b1[j]
                for (i, &xi) in x.iter().enumerate() {
                    a += self.w[i * nh + j] * xi;
                }
                *hj = a.max(0.0);
            }
            let mut z = vec![0.0f32; no];
            for (k, zk) in z.iter_mut().enumerate() {
                let mut a = self.w[w2e + k]; // b2[k]
                for (j, &hj) in h.iter().enumerate() {
                    a += self.w[b1e + j * no + k] * hj;
                }
                *zk = a;
            }
            let zmax = z.iter().cloned().fold(f32::MIN, f32::max);
            let exps: Vec<f32> = z.iter().map(|&v| (v - zmax).exp()).collect();
            let denom: f32 = exps.iter().sum();
            let probs: Vec<f32> = exps.iter().map(|&e| e / denom).collect();
            loss -= probs[y].max(1e-12).ln();
            // Backward.
            let dz: Vec<f32> = (0..no)
                .map(|k| probs[k] - if k == y { 1.0 } else { 0.0 })
                .collect();
            // b2 gradients (the tail of the flattened layout).
            for k in 0..no {
                g[w2e + k] += dz[k];
            }
            let mut dh = vec![0.0f32; nh];
            for j in 0..nh {
                for k in 0..no {
                    g[b1e + j * no + k] += h[j] * dz[k];
                    dh[j] += self.w[b1e + j * no + k] * dz[k];
                }
                if h[j] <= 0.0 {
                    dh[j] = 0.0;
                }
            }
            for j in 0..nh {
                g[w1e + j] += dh[j]; // b1
                for (i, &xi) in x.iter().enumerate() {
                    g[i * nh + j] += xi * dh[j];
                }
            }
        }
        let scale = 1.0 / p.batch as f32;
        for v in &mut g {
            *v *= scale;
        }
        (g, loss / p.batch as f32)
    }

    /// Applies the SGD update exactly as the GPU kernel does.
    fn step(&mut self, g: &[f32]) {
        for (w, gv) in self.w.iter_mut().zip(g) {
            *w -= self.p.lr * gv;
        }
    }

    fn mean_loss(&self, iter: u32) -> f32 {
        self.grads(iter).1
    }
}

/// The SGD update kernel: each thread owns [`PARAMS_PER_THREAD`] consecutive
/// parameters of the flattened `[w1 | b1 | w2 | b2]` layout and applies
/// `w -= lr * g`, moving weights and gradients as byte spans (one load/store
/// per array segment rather than per scalar — everything lives in HBM, where
/// byte totals alone drive the timing model). A warp whose combined span
/// stays inside one parameter array is fully uniform and runs vectorized;
/// warps straddling an array boundary or the grid tail fall back per-lane.
struct DnnSgdKernel {
    /// Per-array `(hbm base, words)`.
    bases: [(u64, u64); 4],
    /// First flattened parameter index of each array.
    starts: [u64; 4],
    grads_hbm: u64,
    total_params: u64,
    threads: u64,
    lr: f32,
    pass_compute: Ns,
}

impl DnnSgdKernel {
    fn array_of(&self, idx: u64) -> usize {
        let mut a = 0;
        while a + 1 < 4 && idx >= self.starts[a + 1] {
            a += 1;
        }
        a
    }

    fn update_span(&self, wbuf: &mut [u8], gbuf: &[u8]) {
        for (wc, gc) in wbuf.chunks_exact_mut(4).zip(gbuf.chunks_exact(4)) {
            let w = f32::from_le_bytes(wc.try_into().unwrap());
            let g = f32::from_le_bytes(gc.try_into().unwrap());
            wc.copy_from_slice(&(w - self.lr * g).to_le_bytes());
        }
    }
}

impl Kernel for DnnSgdKernel {
    type State = ();
    type Shared = ();

    fn run(&self, _phase: u32, ctx: &mut ThreadCtx<'_>, _: &mut (), _: &mut ()) -> SimResult<()> {
        let t = ctx.global_id();
        if t >= self.threads {
            return Ok(());
        }
        ctx.compute(self.pass_compute);
        let end = (t * PARAMS_PER_THREAD + PARAMS_PER_THREAD).min(self.total_params);
        let mut idx = t * PARAMS_PER_THREAD;
        while idx < end {
            let a = self.array_of(idx);
            let seg_end = end.min(self.starts[a] + self.bases[a].1);
            let bytes = ((seg_end - idx) * 4) as usize;
            let addr = Addr::hbm(self.bases[a].0 + (idx - self.starts[a]) * 4);
            let mut wbuf = vec![0u8; bytes];
            ctx.ld_bytes(addr, &mut wbuf)?;
            let mut gbuf = vec![0u8; bytes];
            ctx.ld_bytes(Addr::hbm(self.grads_hbm + idx * 4), &mut gbuf)?;
            self.update_span(&mut wbuf, &gbuf);
            ctx.st_bytes(addr, &wbuf)?;
            idx = seg_end;
        }
        Ok(())
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _: &mut [()],
        _: &mut (),
    ) -> SimResult<bool> {
        let first = ctx.first_global_id();
        let lanes = ctx.lanes() as u64;
        if first + lanes > self.threads {
            return Ok(false);
        }
        let idx0 = first * PARAMS_PER_THREAD;
        let end = idx0 + lanes * PARAMS_PER_THREAD;
        let a = self.array_of(idx0);
        if end > self.total_params || end > self.starts[a] + self.bases[a].1 {
            return Ok(false); // warp straddles an array boundary
        }
        ctx.compute(self.pass_compute);
        let lane_bytes = (PARAMS_PER_THREAD * 4) as usize;
        let total = lane_bytes * lanes as usize;
        let addr = Addr::hbm(self.bases[a].0 + (idx0 - self.starts[a]) * 4);
        let mut wbuf = vec![0u8; total];
        ctx.ld_bytes_lanes(addr, lane_bytes as u64, lane_bytes, &mut wbuf)?;
        let mut gbuf = vec![0u8; total];
        ctx.ld_bytes_lanes(
            Addr::hbm(self.grads_hbm + idx0 * 4),
            lane_bytes as u64,
            lane_bytes,
            &mut gbuf,
        )?;
        self.update_span(&mut wbuf, &gbuf);
        ctx.st_bytes_lanes(addr, lane_bytes as u64, lane_bytes, &wbuf)?;
        Ok(true)
    }

    fn warp_fuel(&self, _phase: u32) -> Option<u64> {
        // 3 span operations per array segment; a 64-parameter span can touch
        // at most all four arrays.
        Some(12)
    }
}

impl DnnWorkload {
    /// Creates the workload.
    pub fn new(params: DnnParams) -> DnnWorkload {
        DnnWorkload {
            params,
            grads_hbm: 0,
        }
    }

    /// Host-reference weights after `iters` passes (deterministic replay).
    fn reference(&self, iters: u32) -> HostModel {
        let mut model = HostModel::new(self.params);
        for it in 0..iters {
            let (g, _) = model.grads(it);
            model.step(&g);
        }
        model
    }

    /// Mean training loss of the reference after `iters` passes — exposed so
    /// tests and examples can show learning actually happens.
    pub fn loss_after(&self, iters: u32) -> f32 {
        self.reference(iters).mean_loss(iters)
    }

    fn sizes(&self) -> [u64; 4] {
        let p = &self.params;
        [
            p.input * p.hidden * 4,
            p.hidden * 4,
            p.hidden * p.output * 4,
            p.output * 4,
        ]
    }
}

impl IterativeApp for DnnWorkload {
    fn name(&self) -> &'static str {
        "DNN"
    }

    fn setup(&mut self, machine: &mut Machine) -> SimResult<Vec<(u64, u64)>> {
        let model = HostModel::new(self.params);
        let mut arrays = Vec::new();
        let mut cursor = 0usize;
        for bytes in self.sizes() {
            let hbm = machine.alloc_hbm(bytes)?;
            let n = (bytes / 4) as usize;
            let mut init = Vec::with_capacity(bytes as usize);
            for v in &model.w[cursor..cursor + n] {
                init.extend_from_slice(&v.to_le_bytes());
            }
            machine.host_write(Addr::hbm(hbm), &init)?;
            arrays.push((hbm, bytes));
            cursor += n;
        }
        self.grads_hbm = machine.alloc_hbm(self.params.n_params() * 4)?;
        Ok(arrays)
    }

    fn iteration(&self, machine: &mut Machine, arrays: &[(u64, u64)], iter: u32) -> SimResult<()> {
        let p = self.params;
        // cuDNN stand-in: the gradients of this pass, recomputed on the
        // current weights (read back from HBM so crashes/restores flow
        // through naturally).
        let mut w = Vec::with_capacity(p.n_params() as usize);
        for &(hbm, bytes) in arrays {
            let mut buf = vec![0u8; bytes as usize];
            machine.read(Addr::hbm(hbm), &mut buf)?;
            for c in buf.chunks(4) {
                w.push(f32::from_le_bytes(c.try_into().unwrap()));
            }
        }
        let model = HostModel { p, w };
        let (grads, _) = model.grads(iter);
        let mut gbytes = Vec::with_capacity(grads.len() * 4);
        for g in &grads {
            gbytes.extend_from_slice(&g.to_le_bytes());
        }
        machine.host_write(Addr::hbm(self.grads_hbm), &gbytes)?;

        // The GPU applies the SGD update (and carries the modelled
        // forward/backward compute time).
        let total_params = p.n_params();
        let threads = total_params.div_ceil(PARAMS_PER_THREAD);
        let mut bases = [(0u64, 0u64); 4];
        let mut starts = [0u64; 4];
        let mut acc = 0;
        for (j, &(hbm, bytes)) in arrays.iter().enumerate() {
            bases[j] = (hbm, bytes / 4);
            starts[j] = acc;
            acc += bytes / 4;
        }
        let k = DnnSgdKernel {
            bases,
            starts,
            grads_hbm: self.grads_hbm,
            total_params,
            threads,
            lr: p.lr,
            pass_compute: p.pass_compute,
        };
        launch(machine, LaunchConfig::for_elements(threads, 256), &k)?;
        Ok(())
    }

    fn verify(&self, machine: &Machine, arrays: &[(u64, u64)], iters_done: u32) -> SimResult<bool> {
        let reference = self.reference(iters_done);
        let mut cursor = 0usize;
        for &(hbm, bytes) in arrays {
            let n = (bytes / 4) as usize;
            let mut buf = vec![0u8; bytes as usize];
            machine.read(Addr::hbm(hbm), &mut buf)?;
            for (k, c) in buf.chunks(4).enumerate() {
                let got = f32::from_le_bytes(c.try_into().unwrap());
                if got != reference.w[cursor + k] {
                    return Ok(false);
                }
            }
            cursor += n;
        }
        Ok(true)
    }

    fn iterations(&self) -> u32 {
        self.params.iterations
    }

    fn checkpoint_every(&self) -> u32 {
        self.params.checkpoint_every
    }

    fn paper_bytes(&self) -> u64 {
        3_355_443 // the paper's 3.2 MB of weights/biases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{run_iterative, run_iterative_with_recovery};
    use crate::metrics::Mode;

    #[test]
    fn training_verifies_bit_exactly_under_gpm() {
        let mut m = Machine::default();
        let mut app = DnnWorkload::new(DnnParams::quick());
        let r = run_iterative(&mut m, &mut app, Mode::Gpm, 16).unwrap();
        assert!(r.verified, "device weights must equal the host replica");
    }

    #[test]
    fn the_model_actually_learns() {
        // Longer horizon and a hotter learning rate than the quick config
        // (host-side math only, so this is cheap).
        let app = DnnWorkload::new(DnnParams {
            iterations: 60,
            lr: 0.5,
            ..DnnParams::quick()
        });
        let before = app.loss_after(0);
        let after = app.loss_after(app.params.iterations);
        assert!(
            after < before * 0.8,
            "loss should drop with training: {before:.4} -> {after:.4}"
        );
    }

    #[test]
    fn recovery_restores_last_checkpoint_weights() {
        let mut m = Machine::default();
        let mut app = DnnWorkload::new(DnnParams::quick());
        let r = run_iterative_with_recovery(&mut m, &mut app).unwrap();
        assert!(
            r.verified,
            "restored weights must equal the last checkpoint"
        );
        assert!(r.recovery.unwrap().0 > 0.0);
    }

    #[test]
    fn checkpoint_and_pass_costs_match_paper_ratios() {
        // §6.1: 10 passes ≈ 8.26 ms; restore ≈ 0.342 ms (full-size model,
        // fewer iterations to keep the host math cheap).
        let mut m = Machine::default();
        let mut app = DnnWorkload::new(DnnParams {
            iterations: 10,
            checkpoint_every: 10,
            samples: 16,
            batch: 4,
            ..DnnParams::default()
        });
        let r = run_iterative_with_recovery(&mut m, &mut app).unwrap();
        let total_ms = r.elapsed.as_millis();
        assert!(
            (6.0..14.0).contains(&total_ms),
            "10 passes ≈ 8.26 ms, got {total_ms:.2}"
        );
        let restore_ms = r.recovery.unwrap().as_millis();
        assert!(restore_ms < 1.5, "restore ≈ 0.342 ms, got {restore_ms:.3}");
    }
}
