//! Recovery oracles: one judge per GPMbench workload.
//!
//! The campaign engine (`gpm_sim::campaign`) is workload-agnostic — it only
//! enumerates `(fuel, policy)` cases and tallies verdicts. This module
//! supplies the workload side: a [`RecoveryOracle`] knows how to
//!
//! 1. **record** the workload's crash schedule (one clean run under
//!    `FuelGauge::Record`, noting the fuel at every persist boundary), and
//! 2. **replay** any `(fuel, policy)` case on a fresh machine — crash
//!    mid-run, execute the workload's own recovery path, and judge the
//!    recovered state against a host-side reference.
//!
//! It replaces the previous ad-hoc trio of per-workload entry points
//! (`run_crash_injected` / `run_crash_resume` / `run_with_recovery`) behind
//! one interface; those remain as thin wrappers for existing tests.
//!
//! [`oracle_suite`] returns the full bench lineup — the same eleven
//! configurations as Figure 9, minus the GET-mix variant (its crash
//! behaviour is identical to gpKVS's: GETs never log), plus the
//! gpAnalytics session-store workload. It is the single workload registry;
//! [`oracle_names`] is the derived view that the campaign binary's
//! `--workload` handling and the EXPERIMENTS.md workload list consume.

use gpm_gpu::LaunchError;
use gpm_sim::{CrashPolicy, CrashSchedule, Machine, OracleVerdict, SimResult};

use crate::analytics::{AnalyticsParams, AnalyticsWorkload};
use crate::bfs::{BfsParams, BfsWorkload};
use crate::blackscholes::{BlkParams, BlkWorkload};
use crate::cfd::{CfdParams, CfdWorkload};
use crate::db::{DbOp, DbParams, DbWorkload};
use crate::dnn::{DnnParams, DnnWorkload};
use crate::hotspot::{HotspotParams, HotspotWorkload};
use crate::iterative::checkpoint_oracle;
use crate::kvs::{KvsParams, KvsWorkload};
use crate::prefix_sum::{PsParams, PsWorkload};
use crate::srad::{SradParams, SradWorkload};
use crate::suite::Scale;

/// A per-workload crash-recovery judge.
///
/// Implementations drive the workload's fueled region with a
/// [`FuelGauge`](gpm_gpu::FuelGauge), so the op counts recorded by [`record`] are exactly the
/// op counts at which [`run_case`] crashes — the schedule and the replay
/// share one clock.
///
/// [`record`]: RecoveryOracle::record
/// [`run_case`]: RecoveryOracle::run_case
pub trait RecoveryOracle {
    /// Display name; matches the Figure 9 configuration label.
    fn name(&self) -> &'static str;

    /// Runs the workload once on `machine` under a recording gauge and
    /// returns the crash schedule (fuel at every persist/fence/commit
    /// boundary).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    fn record(&mut self, machine: &mut Machine) -> SimResult<CrashSchedule>;

    /// Replays the workload on a fresh `machine`, crashing after `fuel`
    /// ops with pending lines settled by `policy`, then runs the
    /// workload's recovery path and judges the recovered state.
    ///
    /// # Errors
    ///
    /// Propagates platform errors (an inconsistent recovered state is a
    /// [`OracleVerdict::Fail`], not an error).
    fn run_case(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict>;

    /// Whether this oracle implements the double-recovery discipline
    /// ([`run_case_double_recovery`]): recovery runs *twice*, the in-flight
    /// batch is resubmitted, and the oracle judges exactly-once application
    /// (no op lands zero or two times). Workloads whose recovery is a
    /// whole-run restart (checkpointing and iterative kernels) have nothing
    /// to resubmit and keep the default `false`.
    ///
    /// [`run_case_double_recovery`]: RecoveryOracle::run_case_double_recovery
    fn supports_double_recovery(&self) -> bool {
        false
    }

    /// Like [`run_case`](RecoveryOracle::run_case), but exercises the
    /// *retry* discipline: crash after `fuel` ops, run the workload's
    /// recovery path twice back-to-back (it must be idempotent — a crash
    /// during recovery only means running it again), resubmit the in-flight
    /// batch verbatim, and judge that every operation applied exactly once.
    ///
    /// # Errors
    ///
    /// Propagates platform errors (an exactly-once violation is a
    /// [`OracleVerdict::Fail`], not an error).
    fn run_case_double_recovery(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        let _ = (machine, fuel, policy);
        Ok(OracleVerdict::Fail(
            "oracle does not support double recovery".into(),
        ))
    }
}

/// Settles a fueled drive that was *supposed* to crash: if the region ran
/// out of fuel the engine already crashed the machine with `policy`; if
/// the fuel outlasted the region (fuels past the last boundary model a
/// crash after the workload finishes), crash now with the same policy.
///
/// # Errors
///
/// Propagates platform errors from the drive.
pub fn settle_crash(
    machine: &mut Machine,
    policy: CrashPolicy,
    res: Result<(), LaunchError>,
) -> SimResult<()> {
    match res {
        Ok(()) => {
            machine.crash_with_policy(policy);
            Ok(())
        }
        Err(LaunchError::Crashed(_)) => Ok(()),
        Err(LaunchError::Sim(e)) => Err(e),
    }
}

/// Unwraps a recording drive, which must never crash.
///
/// # Errors
///
/// Propagates platform errors from the drive.
pub fn expect_clean(res: Result<(), LaunchError>) -> SimResult<()> {
    match res {
        Ok(()) => Ok(()),
        Err(LaunchError::Crashed(_)) => unreachable!("recording gauge never crashes"),
        Err(LaunchError::Sim(e)) => Err(e),
    }
}

/// The full oracle lineup at `scale`: gpKVS, gpDB (insert and update),
/// gpAnalytics, the four checkpointing apps (DNN, CFD, BLK, HS), and the
/// three long-running kernels (BFS, SRAD, PS).
///
/// This is the *single* workload registry: `campaign --workload` name
/// resolution, its unknown-name listing, and the EXPERIMENTS.md workload
/// table all derive from it (via [`oracle_names`]), so a new oracle cannot
/// be silently omitted from any of them.
pub fn oracle_suite(scale: Scale) -> Vec<Box<dyn RecoveryOracle>> {
    let quick = scale == Scale::Quick;
    let kvs = if quick {
        KvsParams::quick()
    } else {
        KvsParams::default()
    };
    let analytics = if quick {
        AnalyticsParams::quick()
    } else {
        AnalyticsParams::default()
    };
    let db = if quick {
        DbParams::quick()
    } else {
        DbParams::default()
    };
    let bfs = if quick {
        BfsParams::quick()
    } else {
        BfsParams::default()
    };
    let srad = if quick {
        SradParams::quick()
    } else {
        SradParams::default()
    };
    let ps = if quick {
        PsParams::quick()
    } else {
        PsParams::default()
    };
    vec![
        Box::new(KvsWorkload::new(kvs)),
        Box::new(DbWorkload::new(DbParams {
            op: DbOp::Insert,
            ..db
        })),
        Box::new(DbWorkload::new(DbParams {
            op: DbOp::Update,
            ..db
        })),
        Box::new(AnalyticsWorkload::new(analytics)),
        Box::new(checkpoint_oracle(DnnWorkload::new(if quick {
            DnnParams::quick()
        } else {
            DnnParams::default()
        }))),
        Box::new(checkpoint_oracle(CfdWorkload::new(if quick {
            CfdParams::quick()
        } else {
            CfdParams::default()
        }))),
        Box::new(checkpoint_oracle(BlkWorkload::new(if quick {
            BlkParams::quick()
        } else {
            BlkParams::default()
        }))),
        Box::new(checkpoint_oracle(HotspotWorkload::new(if quick {
            HotspotParams::quick()
        } else {
            HotspotParams::default()
        }))),
        Box::new(BfsWorkload::new(bfs)),
        Box::new(SradWorkload::new(srad)),
        Box::new(PsWorkload::new(ps)),
    ]
}

/// Display names of every oracle in [`oracle_suite`], in lineup order —
/// the derived view the campaign binary and documentation checks consume.
pub fn oracle_names() -> Vec<&'static str> {
    oracle_suite(Scale::Quick)
        .iter()
        .map(|o| o.name())
        .collect()
}

/// A deliberately broken variant of the named oracle for the campaign's
/// `--inject-bug` self-test: with `double_recovery` the bug is a
/// double-applying publish (the detectable-op skip checks are bypassed),
/// otherwise a rollback that drops the newest undo entry. Returns `None`
/// for oracles without self-test knobs (checkpoint/iterative workloads).
pub fn buggy_oracle(
    name: &str,
    double_recovery: bool,
    scale: Scale,
) -> Option<Box<dyn RecoveryOracle>> {
    let quick = scale == Scale::Quick;
    if name.eq_ignore_ascii_case("gpKVS") {
        let params = if quick {
            KvsParams::quick()
        } else {
            KvsParams::default()
        };
        let w = KvsWorkload::new(params);
        return Some(Box::new(if double_recovery {
            w.with_double_apply_bug()
        } else {
            w.with_recovery_bug()
        }));
    }
    if name.eq_ignore_ascii_case("gpAnalytics") {
        let params = if quick {
            AnalyticsParams::quick()
        } else {
            AnalyticsParams::default()
        };
        let w = AnalyticsWorkload::new(params);
        return Some(Box::new(if double_recovery {
            w.with_double_apply_bug()
        } else {
            w.with_recovery_bug()
        }));
    }
    // gpDB's only self-test knob is the double-applying publish.
    if double_recovery
        && (name.eq_ignore_ascii_case("gpDB (I)") || name.eq_ignore_ascii_case("gpDB (U)"))
    {
        let db = if quick {
            DbParams::quick()
        } else {
            DbParams::default()
        };
        let op = if name.eq_ignore_ascii_case("gpDB (I)") {
            DbOp::Insert
        } else {
            DbOp::Update
        };
        return Some(Box::new(
            DbWorkload::new(DbParams { op, ..db }).with_double_apply_bug(),
        ));
    }
    None
}

/// Replica-consistency judge for the serving stack: zero lost
/// acknowledged writes.
///
/// The serving layers feed it two things, both in **apply order** (the
/// order SETs reached a shard's kernel, which for the serve scheduler is
/// admission order — batches launch FIFO and packing preserves per-set
/// order):
///
/// * every SET applied to the judged table (acknowledged client PUTs,
///   but also unacknowledged work such as resharding's migrated entries),
///   via [`apply_set`](ServeConsistency::apply_set);
/// * which of those SETs were *acknowledged* to a client, via
///   [`acked_set`](ServeConsistency::acked_set).
///
/// [`verify`](ServeConsistency::verify) then replays the whole SET
/// sequence through the host [`ShardModel`] (the kernels' probe-order
/// twin) and checks that every acknowledged key is present in the durable
/// PM table with the model's final value. A replica that silently dropped
/// a shipped log batch, or a migration that lost a key range, fails with
/// the first missing or stale key named.
///
/// The judge deliberately refuses ([`OracleVerdict::Fail`]) when the
/// replayed mix evicted a live key: an 8-way set-associative store may
/// legitimately displace an acked write under extreme skew, and "evicted
/// by design" is indistinguishable from "lost by a bug" at the table. The
/// serve scenarios size their key spaces to stay eviction-free, so a
/// refusal there is itself a red flag.
#[derive(Debug, Clone)]
pub struct ServeConsistency {
    model: crate::hash_shard::ShardModel,
    acked: Vec<u64>,
}

impl ServeConsistency {
    /// A judge for one shard table of `sets` sets.
    pub fn new(sets: u64) -> ServeConsistency {
        ServeConsistency {
            model: crate::hash_shard::ShardModel::new(sets),
            acked: Vec::new(),
        }
    }

    /// Records one applied-but-not-client-acknowledged SET (e.g. a
    /// migrated entry landing on its new owner).
    pub fn apply_set(&mut self, key: u64, value: u64) {
        self.model.set(key, value);
    }

    /// Records one SET that was acknowledged to a client.
    pub fn acked_set(&mut self, key: u64, value: u64) {
        self.model.set(key, value);
        self.acked.push(key);
    }

    /// Number of acknowledged writes recorded so far.
    pub fn acked_writes(&self) -> u64 {
        self.acked.len() as u64
    }

    /// Judges the durable table behind `shard` on `machine`: every
    /// acknowledged key present with the model's final value.
    ///
    /// # Errors
    ///
    /// Propagates platform errors (a lost or stale write is an
    /// [`OracleVerdict::Fail`], not an error).
    pub fn verify(
        &self,
        machine: &Machine,
        shard: &crate::hash_shard::ShardDev,
    ) -> SimResult<OracleVerdict> {
        if self.model.evicted {
            return Ok(OracleVerdict::Fail(
                "mix evicted a live key; the judge cannot distinguish \
                 eviction from loss — size the key space down"
                    .into(),
            ));
        }
        for &key in &self.acked {
            let want = self
                .model
                .get(key)
                .expect("eviction-free model holds every acked key");
            match shard.host_find(machine, key)? {
                None => {
                    return Ok(OracleVerdict::Fail(format!(
                        "acked write lost: key {key:#x} missing from the durable table"
                    )));
                }
                Some(rec) if rec[1] != want => {
                    return Ok(OracleVerdict::Fail(format!(
                        "acked write stale: key {key:#x} holds {:#x}, expected {want:#x}",
                        rec[1]
                    )));
                }
                Some(_) => {}
            }
        }
        Ok(OracleVerdict::Pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every oracle records a non-empty schedule, and a mid-schedule crash
    /// under the two extreme pending-line policies recovers cleanly.
    #[test]
    fn every_oracle_records_and_passes_a_midpoint_case() {
        for mut o in oracle_suite(Scale::Quick) {
            let mut m = Machine::default();
            let sched = o.record(&mut m).unwrap();
            assert!(
                !sched.boundaries().is_empty(),
                "{}: empty crash schedule",
                o.name()
            );
            let mid = sched.boundaries()[sched.boundaries().len() / 2];
            for policy in [CrashPolicy::AllApplied, CrashPolicy::NoneApplied] {
                let mut m = Machine::default();
                let v = o.run_case(&mut m, mid, policy).unwrap();
                assert!(v.passed(), "{} fuel={mid} policy={policy}: {v:?}", o.name());
            }
        }
    }

    /// The workload list in EXPERIMENTS.md derives from the same registry:
    /// every oracle name must appear verbatim, so a new oracle cannot ship
    /// undocumented.
    #[test]
    fn experiments_doc_lists_every_oracle() {
        let doc = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md"));
        for name in oracle_names() {
            assert!(
                doc.contains(name),
                "EXPERIMENTS.md is missing workload {name:?} — the list must cover oracle_names()"
            );
        }
    }

    /// Every oracle that advertises double recovery has an `--inject-bug`
    /// self-test variant, and the registry resolves names case-insensitively.
    #[test]
    fn buggy_oracle_covers_double_recovery_oracles() {
        for o in oracle_suite(Scale::Quick) {
            if o.supports_double_recovery() {
                assert!(
                    buggy_oracle(o.name(), true, Scale::Quick).is_some(),
                    "{}: no --inject-bug variant",
                    o.name()
                );
            }
        }
        assert!(buggy_oracle("GPANALYTICS", false, Scale::Quick).is_some());
        assert!(buggy_oracle("no-such-workload", false, Scale::Quick).is_none());
    }

    /// The deliberately buggy recovery (skip the newest undo entry) must be
    /// caught by the gpKVS oracle at some crash point.
    #[test]
    fn injected_recovery_bug_is_caught() {
        let mut w = KvsWorkload::new(KvsParams::quick()).with_recovery_bug();
        let mut m = Machine::default();
        let sched = w.record(&mut m).unwrap();
        let caught = sched.boundaries().iter().any(|&fuel| {
            let mut m = Machine::default();
            !w.run_case(&mut m, fuel, CrashPolicy::AllApplied)
                .unwrap()
                .passed()
        });
        assert!(caught, "deliberate recovery bug went undetected");
    }
}
