//! Driver for the iterative long-running workloads (§4.2): DNN, CFD,
//! Black-Scholes, Hotspot.
//!
//! These applications iterate a GPU kernel over volatile (HBM) state and
//! periodically checkpoint semantically-related arrays for fault tolerance.
//! The driver runs the same iteration kernels under every persistence
//! system; only the checkpoint step differs:
//!
//! * **GPM** — `gpmcp_checkpoint` (GPU streams to PM, double-buffered);
//! * **GPM-NDP** — the same copy kernel unfenced, then a CPU flush;
//! * **CAP-fs / CAP-mm** — DMA each array to DRAM, CPU persists;
//! * **GPUfs** — in-kernel `gwrite` RPCs (fails beyond its 2 GB file limit,
//!   judged against the *paper's* input sizes).

use gpm_cap::{cap_persist_region, flush_from_cpu, gpufs_persist, CapFlavor};
use gpm_core::{
    gpmcp_checkpoint, gpmcp_checkpoint_gauged, gpmcp_create, gpmcp_fill_working, gpmcp_publish,
    gpmcp_register, gpmcp_restore, CoreError, GpmCheckpoint,
};
use gpm_gpu::FuelGauge;
use gpm_sim::{CrashPolicy, CrashSchedule, Machine, Ns, OracleVerdict, SimError, SimResult};

use crate::metrics::{metered, Mode, RunMetrics};
use crate::oracle::RecoveryOracle;

/// Bytes GPUfs moves per in-kernel `gwrite` call.
const GPUFS_CALL_BYTES: u64 = 16 << 10;

/// An iterative GPU application with checkpointable state.
pub trait IterativeApp {
    /// Workload name as the figures label it.
    fn name(&self) -> &'static str;

    /// Allocates and initializes state; returns the `(hbm offset, bytes)`
    /// arrays to checkpoint, in registration order.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    fn setup(&mut self, machine: &mut Machine) -> SimResult<Vec<(u64, u64)>>;

    /// Runs one iteration's kernel(s) over the arrays.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    fn iteration(&self, machine: &mut Machine, arrays: &[(u64, u64)], iter: u32) -> SimResult<()>;

    /// Checks the final state against a host-side reference.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    fn verify(&self, machine: &Machine, arrays: &[(u64, u64)], iters_done: u32) -> SimResult<bool>;

    /// Total iterations.
    fn iterations(&self) -> u32;

    /// Checkpoint cadence (every `n` iterations).
    fn checkpoint_every(&self) -> u32;

    /// The input size the *paper* ran (GPUfs' 2 GB limit is judged against
    /// this, reproducing the BLK/HS failures of Figure 9).
    fn paper_bytes(&self) -> u64;
}

fn checkpoint_once(
    machine: &mut Machine,
    mode: Mode,
    cp: &GpmCheckpoint,
    arrays: &[(u64, u64)],
    scratch: &Scratch,
    cap_threads: u32,
    paper_bytes: u64,
) -> SimResult<Ns> {
    let total: u64 = arrays.iter().map(|a| a.1).sum();
    match mode {
        Mode::Gpm => gpmcp_checkpoint(machine, cp, 0).map_err(|_| SimError::Invalid("checkpoint")),
        Mode::GpmNdp => {
            let (base, len, t_copy) = gpmcp_fill_working(machine, cp, 0, false)
                .map_err(|_| SimError::Invalid("checkpoint"))?;
            let t_flush = flush_from_cpu(machine, base.offset, len, cap_threads);
            let t_pub = gpmcp_publish(machine, cp, 0).map_err(|_| SimError::Invalid("publish"))?;
            Ok(t_copy + t_flush + t_pub)
        }
        Mode::CapFs | Mode::CapMm => {
            let flavor = if mode == Mode::CapFs {
                CapFlavor::Fs
            } else {
                CapFlavor::Mm {
                    threads: cap_threads,
                }
            };
            let mut t = Ns::ZERO;
            let mut off = 0;
            for &(hbm, len) in arrays {
                t += cap_persist_region(machine, flavor, hbm, scratch.dram, scratch.pm + off, len)?;
                off += len;
            }
            Ok(t)
        }
        Mode::Gpufs => {
            if paper_bytes >= machine.cfg.gpufs_file_limit {
                return Err(SimError::FileTooLarge {
                    path: "<gpufs checkpoint>".to_owned(),
                    size: paper_bytes,
                    limit: machine.cfg.gpufs_file_limit,
                });
            }
            let calls = total.div_ceil(GPUFS_CALL_BYTES);
            let mut t = Ns::ZERO;
            let mut off = 0;
            for &(hbm, len) in arrays {
                let c = calls * len / total.max(1);
                t += gpufs_persist(machine, hbm, scratch.dram, scratch.pm + off, len, c.max(1))?;
                off += len;
            }
            Ok(t)
        }
        Mode::CpuPm => Err(SimError::Invalid(
            "checkpointing workloads have no CPU-only counterpart (§6.1)",
        )),
    }
}

struct Scratch {
    dram: u64,
    pm: u64,
}

fn build_checkpoint(
    machine: &mut Machine,
    app: &mut dyn IterativeApp,
    arrays: &[(u64, u64)],
) -> SimResult<GpmCheckpoint> {
    let total: u64 = arrays.iter().map(|a| a.1).sum();
    let path = format!("/pm/cp/{}", app.name());
    let mut cp = gpmcp_create(machine, &path, total, arrays.len() as u32, 1)
        .map_err(|_| SimError::Invalid("gpmcp_create"))?;
    for &(hbm, len) in arrays {
        gpmcp_register(&mut cp, gpm_sim::Addr::hbm(hbm), len, 0)
            .map_err(|_| SimError::Invalid("gpmcp_register"))?;
    }
    Ok(cp)
}

/// Runs an iterative app to completion under `mode`, checkpointing on its
/// cadence.
///
/// # Errors
///
/// Fails for unsupported modes (GPUfs beyond 2 GB, CPU-only) or on platform
/// errors.
pub fn run_iterative(
    machine: &mut Machine,
    app: &mut dyn IterativeApp,
    mode: Mode,
    cap_threads: u32,
) -> SimResult<RunMetrics> {
    let arrays = app.setup(machine)?;
    let cp = build_checkpoint(machine, app, &arrays)?;
    let total: u64 = arrays.iter().map(|a| a.1).sum();
    let scratch = Scratch {
        dram: machine.alloc_dram(total)?,
        pm: machine.alloc_pm(total)?,
    };
    let mut metrics = metered(machine, |m| {
        for iter in 0..app.iterations() {
            app.iteration(m, &arrays, iter)?;
            if (iter + 1) % app.checkpoint_every() == 0 {
                checkpoint_once(
                    m,
                    mode,
                    &cp,
                    &arrays,
                    &scratch,
                    cap_threads,
                    app.paper_bytes(),
                )?;
            }
        }
        Ok::<bool, SimError>(true)
    })?;
    metrics.verified = app.verify(machine, &arrays, app.iterations())?;
    Ok(metrics)
}

/// Measures checkpoint-only time under `mode` (the Figure 9 comparison for
/// this class isolates persist cost; compute is identical in every mode).
///
/// # Errors
///
/// Same conditions as [`run_iterative`].
pub fn checkpoint_latency(
    machine: &mut Machine,
    app: &mut dyn IterativeApp,
    mode: Mode,
    cap_threads: u32,
) -> SimResult<Ns> {
    let arrays = app.setup(machine)?;
    let cp = build_checkpoint(machine, app, &arrays)?;
    let total: u64 = arrays.iter().map(|a| a.1).sum();
    let scratch = Scratch {
        dram: machine.alloc_dram(total)?,
        pm: machine.alloc_pm(total)?,
    };
    checkpoint_once(
        machine,
        mode,
        &cp,
        &arrays,
        &scratch,
        cap_threads,
        app.paper_bytes(),
    )
}

/// GPM run that crashes after the last checkpoint and measures restoration
/// latency (Table 5): wipes volatile state, reopens the checkpoint,
/// restores, and verifies the arrays match the state at the last
/// checkpoint.
///
/// # Errors
///
/// Propagates platform errors.
pub fn run_iterative_with_recovery(
    machine: &mut Machine,
    app: &mut dyn IterativeApp,
) -> SimResult<RunMetrics> {
    let arrays = app.setup(machine)?;
    let cp = build_checkpoint(machine, app, &arrays)?;
    let every = app.checkpoint_every();
    let mut last_cp_iter = 0;
    let mut metrics = metered(machine, |m| {
        for iter in 0..app.iterations() {
            app.iteration(m, &arrays, iter)?;
            if (iter + 1) % every == 0 {
                gpmcp_checkpoint(m, &cp, 0).map_err(|_| SimError::Invalid("checkpoint"))?;
                last_cp_iter = iter + 1;
            }
        }
        Ok::<bool, SimError>(true)
    })?;
    machine.crash();
    let t0 = machine.clock.now();
    gpmcp_restore(machine, &cp, 0).map_err(|_| SimError::Invalid("restore"))?;
    metrics.recovery = Some(machine.clock.now() - t0);
    metrics.verified = app.verify(machine, &arrays, last_cp_iter)?;
    Ok(metrics)
}

/// Runs the iteration/checkpoint loop with the checkpoint copy kernels on
/// the caller's gauge. Iteration kernels stay ungauged — they touch only
/// volatile state, so the campaign's op clock advances exclusively inside
/// the persist path, and record and replay share one clock.
fn iterate_gauged(
    machine: &mut Machine,
    app: &dyn IterativeApp,
    cp: &GpmCheckpoint,
    arrays: &[(u64, u64)],
    gauge: &mut FuelGauge,
) -> SimResult<()> {
    let every = app.checkpoint_every();
    for iter in 0..app.iterations() {
        app.iteration(machine, arrays, iter)?;
        if (iter + 1) % every == 0 {
            gpmcp_checkpoint_gauged(machine, cp, 0, gauge).map_err(|e| match e {
                CoreError::Sim(e) => e,
                _ => SimError::Invalid("checkpoint"),
            })?;
        }
    }
    Ok(())
}

/// Wraps an [`IterativeApp`] as a campaign [`RecoveryOracle`]: crashes land
/// inside `gpm-core`'s double-buffer flip (the only gauged region), and the
/// verdict checks that restoration returns exactly the state of the last
/// *published* checkpoint.
#[derive(Debug)]
pub struct CheckpointOracle<A: IterativeApp> {
    app: A,
}

/// Wraps `app` for the campaign.
pub fn checkpoint_oracle<A: IterativeApp>(app: A) -> CheckpointOracle<A> {
    CheckpointOracle { app }
}

impl<A: IterativeApp> RecoveryOracle for CheckpointOracle<A> {
    fn name(&self) -> &'static str {
        self.app.name()
    }

    fn record(&mut self, machine: &mut Machine) -> SimResult<CrashSchedule> {
        let arrays = self.app.setup(machine)?;
        let cp = build_checkpoint(machine, &mut self.app, &arrays)?;
        let mut gauge = FuelGauge::record();
        iterate_gauged(machine, &self.app, &cp, &arrays, &mut gauge)?;
        Ok(gauge.into_schedule().expect("recording gauge"))
    }

    fn run_case(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        let arrays = self.app.setup(machine)?;
        let cp = build_checkpoint(machine, &mut self.app, &arrays)?;
        let mut gauge = FuelGauge::crash_with_policy(fuel, policy);
        match iterate_gauged(machine, &self.app, &cp, &arrays, &mut gauge) {
            // Fuel outlasted the run: crash after the final checkpoint.
            Ok(()) => {
                machine.crash_with_policy(policy);
            }
            // The gauge crashed the machine mid-checkpoint already.
            Err(SimError::Crashed) => {}
            Err(e) => return Err(e),
        }
        let (_, seq) = cp
            .consistent(machine, 0)
            .map_err(|_| SimError::Invalid("checkpoint flag"))?;
        let every = self.app.checkpoint_every();
        let published = seq * every;
        if published > self.app.iterations() {
            return Ok(OracleVerdict::Fail(format!(
                "flag claims {seq} checkpoints but only {} iterations exist",
                self.app.iterations()
            )));
        }
        if seq == 0 {
            // Nothing ever published: recovery restarts from the input;
            // there is no checkpoint state to judge.
            return Ok(OracleVerdict::Pass);
        }
        gpmcp_restore(machine, &cp, 0).map_err(|_| SimError::Invalid("restore"))?;
        Ok(if self.app.verify(machine, &arrays, published)? {
            OracleVerdict::Pass
        } else {
            OracleVerdict::Fail(format!(
                "restored state diverges from published checkpoint #{seq} ({published} iterations)"
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_gpu::{launch, FnKernel, LaunchConfig, ThreadCtx};
    use gpm_sim::Addr;

    /// A miniature iterative app: an array of f32 counters incremented per
    /// iteration.
    struct Counters {
        n: u64,
    }

    impl IterativeApp for Counters {
        fn name(&self) -> &'static str {
            "counters"
        }
        fn setup(&mut self, machine: &mut Machine) -> SimResult<Vec<(u64, u64)>> {
            let a = machine.alloc_hbm(self.n * 4)?;
            Ok(vec![(a, self.n * 4)])
        }
        fn iteration(
            &self,
            machine: &mut Machine,
            arrays: &[(u64, u64)],
            _iter: u32,
        ) -> SimResult<()> {
            let base = arrays[0].0;
            let n = self.n;
            let k = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                if i >= n {
                    return Ok(());
                }
                let v = ctx.ld_f32(Addr::hbm(base + i * 4))?;
                ctx.st_f32(Addr::hbm(base + i * 4), v + 1.0)
            });
            launch(machine, LaunchConfig::for_elements(n, 128), &k)?;
            Ok(())
        }
        fn verify(
            &self,
            machine: &Machine,
            arrays: &[(u64, u64)],
            iters_done: u32,
        ) -> SimResult<bool> {
            for i in (0..self.n).step_by(17) {
                let v = machine.read_f32(Addr::hbm(arrays[0].0 + i * 4))?;
                if v != iters_done as f32 {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        fn iterations(&self) -> u32 {
            6
        }
        fn checkpoint_every(&self) -> u32 {
            2
        }
        fn paper_bytes(&self) -> u64 {
            1 << 20
        }
    }

    #[test]
    fn all_modes_complete_and_verify() {
        for mode in [
            Mode::Gpm,
            Mode::GpmNdp,
            Mode::CapFs,
            Mode::CapMm,
            Mode::Gpufs,
        ] {
            let mut m = Machine::default();
            let r = run_iterative(&mut m, &mut Counters { n: 4096 }, mode, 16).unwrap();
            assert!(r.verified, "{mode:?}");
        }
    }

    #[test]
    fn gpm_checkpoints_fastest() {
        let lat = |mode| {
            let mut m = Machine::default();
            checkpoint_latency(&mut m, &mut Counters { n: 1 << 16 }, mode, 16).unwrap()
        };
        let gpm = lat(Mode::Gpm);
        let ndp = lat(Mode::GpmNdp);
        let fs = lat(Mode::CapFs);
        let mm = lat(Mode::CapMm);
        assert!(gpm < ndp, "NDP adds a CPU flush: {gpm} vs {ndp}");
        assert!(gpm < mm, "CAP adds DMA + CPU persist: {gpm} vs {mm}");
        assert!(mm < fs, "the fs path is slowest: {mm} vs {fs}");
        assert!(
            fs / gpm > 5.0,
            "Figure 9: checkpointing gains are large ({})",
            fs / gpm
        );
    }

    #[test]
    fn recovery_restores_last_checkpoint() {
        let mut m = Machine::default();
        let mut app = Counters { n: 4096 };
        let r = run_iterative_with_recovery(&mut m, &mut app).unwrap();
        // 6 iterations, checkpoint every 2: last checkpoint at iteration 6.
        assert!(r.verified);
        let rl = r.recovery.unwrap();
        assert!(rl.0 > 0.0);
        assert!(rl < r.elapsed, "restores are quick (Table 5)");
    }

    #[test]
    fn gpufs_fails_beyond_paper_size() {
        struct Huge;
        impl IterativeApp for Huge {
            fn name(&self) -> &'static str {
                "huge"
            }
            fn setup(&mut self, machine: &mut Machine) -> SimResult<Vec<(u64, u64)>> {
                let a = machine.alloc_hbm(4096)?;
                Ok(vec![(a, 4096)])
            }
            fn iteration(&self, _: &mut Machine, _: &[(u64, u64)], _: u32) -> SimResult<()> {
                Ok(())
            }
            fn verify(&self, _: &Machine, _: &[(u64, u64)], _: u32) -> SimResult<bool> {
                Ok(true)
            }
            fn iterations(&self) -> u32 {
                1
            }
            fn checkpoint_every(&self) -> u32 {
                1
            }
            fn paper_bytes(&self) -> u64 {
                4 << 30 // BLK checkpoints 4 GB in the paper
            }
        }
        let mut m = Machine::default();
        let err = run_iterative(&mut m, &mut Huge, Mode::Gpufs, 16).unwrap_err();
        assert!(matches!(err, SimError::FileTooLarge { .. }));
    }
}
