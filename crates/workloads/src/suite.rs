//! The GPMbench suite: one registry over all nine workloads (eleven
//! configurations, counting gpKVS 95:5 and gpDB I/U separately as Figure 9
//! does).

use gpm_sim::{Machine, SimResult};

use crate::bfs::{BfsParams, BfsWorkload};
use crate::blackscholes::{BlkParams, BlkWorkload};
use crate::cfd::{CfdParams, CfdWorkload};
use crate::db::{DbOp, DbParams, DbWorkload};
use crate::dnn::{DnnParams, DnnWorkload};
use crate::hotspot::{HotspotParams, HotspotWorkload};
use crate::iterative::{run_iterative, run_iterative_with_recovery, IterativeApp};
use crate::kvs::{KvsParams, KvsWorkload};
use crate::metrics::{Category, Mode, RunMetrics};
use crate::prefix_sum::{PsParams, PsWorkload};
use crate::srad::{SradParams, SradWorkload};

/// Input scale: full evaluation sizes or fast test sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Evaluation-sized inputs (benchmark harness).
    Full,
    /// Small inputs (tests, smoke runs).
    Quick,
}

/// A uniformly-drivable GPMbench workload configuration.
pub trait Workload {
    /// Name as Figure 9 labels it.
    fn name(&self) -> &'static str;

    /// Workload class (Table 1).
    fn category(&self) -> Category;

    /// Whether the persistence system can run this workload at all
    /// (GPUfs' limitations, CPU-only counterparts).
    fn supports(&self, mode: Mode) -> bool;

    /// Runs the workload on a fresh machine region under `mode`.
    ///
    /// # Errors
    ///
    /// Propagates platform errors; unsupported modes error.
    fn run(&mut self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics>;

    /// Runs under GPM and measures worst-case restoration latency
    /// (Table 5). Native workloads return `None` metrics here — their
    /// recovery is embedded (§6.2) and exercised by `run`-with-crash tests.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    fn run_with_recovery(&mut self, machine: &mut Machine) -> SimResult<Option<RunMetrics>> {
        let _ = machine;
        Ok(None)
    }

    /// For checkpointing workloads, the time of the *persist phase alone*
    /// (one checkpoint) — what Figure 9 compares for this class, since the
    /// compute between checkpoints is identical under every system and the
    /// total-time impact depends only on the chosen cadence (§6.1). `None`
    /// for the other classes, whose persistence is inseparable from
    /// computation.
    fn persist_phase(
        &mut self,
        machine: &mut Machine,
        mode: Mode,
    ) -> SimResult<Option<gpm_sim::Ns>> {
        let _ = (machine, mode);
        Ok(None)
    }
}

macro_rules! delegate_native {
    ($ty:ty, $name:expr) => {
        impl Workload for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn category(&self) -> Category {
                Category::Native
            }
            fn supports(&self, mode: Mode) -> bool {
                // Per-thread fine-grained writes deadlock GPUfs (§6.1).
                mode != Mode::Gpufs
            }
            fn run(&mut self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
                <$ty>::run(self, machine, mode)
            }
            // Native workloads embed their recovery in the kernels (§5.4);
            // the default `run_with_recovery` (None) applies, and crash
            // resume is exercised through `run_crash_resume`.
        }
    };
}

/// gpKVS (100% SETs).
#[derive(Debug)]
pub struct GpKvs(pub KvsWorkload);

/// gpKVS with the 95:5 GET:SET mix.
#[derive(Debug)]
pub struct GpKvsMixed(pub KvsWorkload);

/// gpDB INSERTs.
#[derive(Debug)]
pub struct GpDbInsert(pub DbWorkload);

/// gpDB UPDATEs.
#[derive(Debug)]
pub struct GpDbUpdate(pub DbWorkload);

macro_rules! kvs_like {
    ($ty:ty, $name:expr) => {
        impl Workload for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn category(&self) -> Category {
                Category::Transactional
            }
            fn supports(&self, mode: Mode) -> bool {
                matches!(mode, Mode::Gpm | Mode::CapFs | Mode::CapMm | Mode::GpmNdp)
            }
            fn run(&mut self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
                self.0.run(machine, mode)
            }
            fn run_with_recovery(
                &mut self,
                machine: &mut Machine,
            ) -> SimResult<Option<RunMetrics>> {
                self.0.run_with_recovery(machine).map(Some)
            }
        }
    };
}

kvs_like!(GpKvs, "gpKVS");
kvs_like!(GpKvsMixed, "gpKVS (95:5)");

impl Workload for GpDbInsert {
    fn name(&self) -> &'static str {
        "gpDB (I)"
    }
    fn category(&self) -> Category {
        Category::Transactional
    }
    fn supports(&self, mode: Mode) -> bool {
        matches!(
            mode,
            Mode::Gpm | Mode::CapFs | Mode::CapMm | Mode::GpmNdp | Mode::CpuPm
        )
    }
    fn run(&mut self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        if mode == Mode::CpuPm {
            self.0.run_cpu(machine)
        } else {
            self.0.run(machine, mode)
        }
    }
    fn run_with_recovery(&mut self, machine: &mut Machine) -> SimResult<Option<RunMetrics>> {
        self.0.run_with_recovery(machine).map(Some)
    }
}

impl Workload for GpDbUpdate {
    fn name(&self) -> &'static str {
        "gpDB (U)"
    }
    fn category(&self) -> Category {
        Category::Transactional
    }
    fn supports(&self, mode: Mode) -> bool {
        matches!(
            mode,
            Mode::Gpm | Mode::CapFs | Mode::CapMm | Mode::GpmNdp | Mode::CpuPm
        )
    }
    fn run(&mut self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        if mode == Mode::CpuPm {
            self.0.run_cpu(machine)
        } else {
            self.0.run(machine, mode)
        }
    }
    fn run_with_recovery(&mut self, machine: &mut Machine) -> SimResult<Option<RunMetrics>> {
        self.0.run_with_recovery(machine).map(Some)
    }
}

/// Wraps an [`IterativeApp`] (DNN/CFD/BLK/HS) as a suite workload.
#[derive(Debug)]
pub struct Iterative<A: IterativeApp> {
    app: A,
    cap_threads: u32,
    gpufs_ok: bool,
}

impl<A: IterativeApp> Iterative<A> {
    /// Wraps an app; `gpufs_ok` reflects the paper's Figure 9 support.
    pub fn new(app: A, gpufs_ok: bool) -> Iterative<A> {
        Iterative {
            app,
            cap_threads: 32,
            gpufs_ok,
        }
    }
}

impl<A: IterativeApp + std::fmt::Debug> Workload for Iterative<A> {
    fn name(&self) -> &'static str {
        self.app.name()
    }
    fn category(&self) -> Category {
        Category::Checkpointing
    }
    fn supports(&self, mode: Mode) -> bool {
        match mode {
            Mode::CpuPm => false, // no CPU counterpart (§6.1)
            Mode::Gpufs => self.gpufs_ok,
            _ => true,
        }
    }
    fn run(&mut self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        run_iterative(machine, &mut self.app, mode, self.cap_threads)
    }
    fn run_with_recovery(&mut self, machine: &mut Machine) -> SimResult<Option<RunMetrics>> {
        run_iterative_with_recovery(machine, &mut self.app).map(Some)
    }
    fn persist_phase(
        &mut self,
        machine: &mut Machine,
        mode: Mode,
    ) -> SimResult<Option<gpm_sim::Ns>> {
        crate::iterative::checkpoint_latency(machine, &mut self.app, mode, self.cap_threads)
            .map(Some)
    }
}

delegate_native!(BfsWorkload, "BFS");
delegate_native!(PsWorkload, "PS");

impl Workload for SradWorkload {
    fn name(&self) -> &'static str {
        "SRAD"
    }
    fn category(&self) -> Category {
        Category::Native
    }
    fn supports(&self, _mode: Mode) -> bool {
        // SRAD's coarse-grain writes run everywhere, GPUfs included (§6.1).
        true
    }
    fn run(&mut self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        SradWorkload::run(self, machine, mode)
    }
}

/// Builds the full suite: the eleven Figure-9 configurations in order.
pub fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    let quick = scale == Scale::Quick;
    let kvs = |mix: bool| {
        let mut p = if quick {
            KvsParams::quick()
        } else {
            KvsParams::default()
        };
        if mix {
            p = p.with_get_mix();
        }
        KvsWorkload::new(p)
    };
    let db = |op: DbOp| {
        let mut p = if quick {
            DbParams::quick()
        } else {
            DbParams::default()
        };
        p.op = op;
        DbWorkload::new(p)
    };
    vec![
        Box::new(GpKvs(kvs(false))),
        Box::new(GpKvsMixed(kvs(true))),
        Box::new(GpDbInsert(db(DbOp::Insert))),
        Box::new(GpDbUpdate(db(DbOp::Update))),
        Box::new(Iterative::new(
            DnnWorkload::new(if quick {
                DnnParams::quick()
            } else {
                DnnParams::default()
            }),
            true,
        )),
        Box::new(Iterative::new(
            CfdWorkload::new(if quick {
                CfdParams::quick()
            } else {
                CfdParams::default()
            }),
            true,
        )),
        Box::new(Iterative::new(
            BlkWorkload::new(if quick {
                BlkParams::quick()
            } else {
                BlkParams::default()
            }),
            true, // size gate inside the driver reproduces the failure
        )),
        Box::new(Iterative::new(
            HotspotWorkload::new(if quick {
                HotspotParams::quick()
            } else {
                HotspotParams::default()
            }),
            true,
        )),
        Box::new(BfsWorkload::new(if quick {
            BfsParams::quick()
        } else {
            BfsParams::default()
        })),
        Box::new(SradWorkload::new(if quick {
            SradParams::quick()
        } else {
            SradParams::default()
        })),
        Box::new(PsWorkload::new(if quick {
            PsParams::quick()
        } else {
            PsParams::default()
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_eleven_figure9_configs() {
        let s = suite(Scale::Quick);
        let names: Vec<&str> = s.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            [
                "gpKVS",
                "gpKVS (95:5)",
                "gpDB (I)",
                "gpDB (U)",
                "DNN",
                "CFD",
                "BLK",
                "HS",
                "BFS",
                "SRAD",
                "PS"
            ]
        );
    }

    #[test]
    fn every_workload_runs_gpm_and_verifies() {
        for w in suite(Scale::Quick).iter_mut() {
            let mut m = Machine::default();
            let r = w.run(&mut m, Mode::Gpm).unwrap();
            assert!(r.verified, "{} failed verification", w.name());
        }
    }

    #[test]
    fn categories_partition_as_table1() {
        let s = suite(Scale::Quick);
        let count = |c: Category| s.iter().filter(|w| w.category() == c).count();
        assert_eq!(count(Category::Transactional), 4);
        assert_eq!(count(Category::Checkpointing), 4);
        assert_eq!(count(Category::Native), 3);
    }

    #[test]
    fn gpufs_support_matches_figure9() {
        let s = suite(Scale::Quick);
        for w in &s {
            let expect = matches!(w.name(), "DNN" | "CFD" | "BLK" | "HS" | "SRAD");
            assert_eq!(w.supports(Mode::Gpufs), expect, "{}", w.name());
        }
    }
}
