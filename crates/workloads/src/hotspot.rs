//! Hotspot: thermal simulation with checkpointing (§4.2).
//!
//! Rodinia's Hotspot estimates processor temperature from power dissipation
//! with an iterative 5-point stencil. We run the same stencil on a
//! double-buffered grid (reads from one buffer, writes to the other, so the
//! result is order-independent) and checkpoint the temperature matrix
//! periodically. The paper's input is a 16K×16K grid (2 GB); scaled down
//! here, with the paper size driving the GPUfs failure.

use gpm_gpu::{launch, Grid2, Kernel, ThreadCtx, WarpCtx};
use gpm_sim::{Addr, Machine, Ns, SimResult};

use crate::iterative::IterativeApp;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct HotspotParams {
    /// Grid edge length (grid is `edge × edge`).
    pub edge: u64,
    /// Stencil iterations (must be even so the result lands in buffer A).
    pub iterations: u32,
    /// Checkpoint cadence.
    pub checkpoint_every: u32,
}

impl Default for HotspotParams {
    fn default() -> HotspotParams {
        HotspotParams {
            edge: 512,
            iterations: 8,
            checkpoint_every: 2,
        }
    }
}

impl HotspotParams {
    /// Small configuration for unit tests.
    pub fn quick() -> HotspotParams {
        HotspotParams {
            edge: 64,
            iterations: 4,
            checkpoint_every: 2,
        }
    }
}

/// The Hotspot workload.
#[derive(Debug)]
pub struct HotspotWorkload {
    /// Parameters of this instance.
    pub params: HotspotParams,
    temp_b: u64,
    power: u64,
}

const AMBIENT: f32 = 80.0;
const K_DIFFUSE: f32 = 0.1;
const K_POWER: f32 = 0.02;

fn init_temp(x: u64, y: u64) -> f32 {
    AMBIENT + ((gpm_pmkv::hash64(x ^ (y << 32)) % 100) as f32) / 10.0
}

fn init_power(x: u64, y: u64) -> f32 {
    ((gpm_pmkv::hash64(x.wrapping_mul(31) ^ (y << 20) ^ 0xBEEF) % 100) as f32) / 100.0
}

fn stencil(center: f32, up: f32, down: f32, left: f32, right: f32, power: f32) -> f32 {
    center + K_DIFFUSE * (up + down + left + right - 4.0 * center) + K_POWER * power
}

impl HotspotWorkload {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is odd (the double buffer must end in A).
    pub fn new(params: HotspotParams) -> HotspotWorkload {
        assert!(
            params.iterations.is_multiple_of(2),
            "iterations must be even"
        );
        HotspotWorkload {
            params,
            temp_b: 0,
            power: 0,
        }
    }

    fn reference(&self, iters: u32) -> Vec<f32> {
        let e = self.params.edge as usize;
        let mut cur: Vec<f32> = (0..e * e)
            .map(|i| init_temp((i % e) as u64, (i / e) as u64))
            .collect();
        let power: Vec<f32> = (0..e * e)
            .map(|i| init_power((i % e) as u64, (i / e) as u64))
            .collect();
        let mut next = cur.clone();
        for _ in 0..iters {
            for y in 0..e {
                for x in 0..e {
                    let at = |xx: isize, yy: isize| -> f32 {
                        if xx < 0 || yy < 0 || xx >= e as isize || yy >= e as isize {
                            AMBIENT
                        } else {
                            cur[yy as usize * e + xx as usize]
                        }
                    };
                    let (x, y) = (x as isize, y as isize);
                    next[y as usize * e + x as usize] = stencil(
                        at(x, y),
                        at(x, y - 1),
                        at(x, y + 1),
                        at(x - 1, y),
                        at(x + 1, y),
                        power[y as usize * e + x as usize],
                    );
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }
}

/// One stencil sweep: each thread reads its 5-point neighbourhood and the
/// power map from the source buffer and writes the relaxed temperature to
/// the destination buffer. Interior row-aligned warps (the 32×8 tiles put a
/// warp on one row) are uniform — five strided gathers, one power load, one
/// store — and run vectorized; warps touching the grid boundary diverge
/// (edge cells substitute the ambient temperature instead of loading) and
/// fall back to the per-lane walk.
struct HsStencilKernel {
    grid: Grid2,
    src: u64,
    dst: u64,
    power: u64,
    e: u64,
}

impl Kernel for HsStencilKernel {
    type State = ();
    type Shared = ();

    fn run(&self, _phase: u32, ctx: &mut ThreadCtx<'_>, _: &mut (), _: &mut ()) -> SimResult<()> {
        let (x, y) = self.grid.coords(ctx.global_id());
        if !self.grid.in_bounds(x, y) {
            return Ok(());
        }
        let e = self.e;
        let i = y * e + x;
        // Effective per-cell work of Rodinia's pyramidal multi-step
        // kernel, calibrated to its measured iteration times.
        ctx.compute(Ns(10_000.0));
        let at = |ctx: &mut ThreadCtx<'_>, xx: i64, yy: i64| -> SimResult<f32> {
            if xx < 0 || yy < 0 || xx >= e as i64 || yy >= e as i64 {
                Ok(AMBIENT)
            } else {
                ctx.ld_f32(Addr::hbm(self.src + (yy as u64 * e + xx as u64) * 4))
            }
        };
        let (xi, yi) = (x as i64, y as i64);
        let c = at(ctx, xi, yi)?;
        let up = at(ctx, xi, yi - 1)?;
        let down = at(ctx, xi, yi + 1)?;
        let left = at(ctx, xi - 1, yi)?;
        let right = at(ctx, xi + 1, yi)?;
        let pw = ctx.ld_f32(Addr::hbm(self.power + i * 4))?;
        ctx.st_f32(
            Addr::hbm(self.dst + i * 4),
            stencil(c, up, down, left, right, pw),
        )
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _: &mut [()],
        _: &mut (),
    ) -> SimResult<bool> {
        let e = self.e;
        let lanes = ctx.lanes() as u64;
        let first = ctx.first_global_id();
        let (x0, y) = self.grid.coords(first);
        let (x_last, y_last) = self.grid.coords(first + lanes - 1);
        // Vectorize only warps that sit on one row, strictly inside the
        // grid: boundary lanes skip neighbour loads (ambient substitution),
        // which diverges from the uniform 6-load shape.
        if y_last != y || x_last != x0 + lanes - 1 {
            return Ok(false);
        }
        if y == 0 || y + 1 >= e || x0 == 0 || x_last + 1 >= e {
            return Ok(false);
        }
        ctx.compute(Ns(10_000.0));
        let n = lanes as usize;
        let row = |yy: u64, xx: u64| (yy * e + xx) * 4;
        let mut c = vec![0.0f32; n];
        let mut up = vec![0.0f32; n];
        let mut down = vec![0.0f32; n];
        let mut left = vec![0.0f32; n];
        let mut right = vec![0.0f32; n];
        let mut pw = vec![0.0f32; n];
        ctx.ld_f32_lanes(Addr::hbm(self.src + row(y, x0)), 4, &mut c)?;
        ctx.ld_f32_lanes(Addr::hbm(self.src + row(y - 1, x0)), 4, &mut up)?;
        ctx.ld_f32_lanes(Addr::hbm(self.src + row(y + 1, x0)), 4, &mut down)?;
        ctx.ld_f32_lanes(Addr::hbm(self.src + row(y, x0 - 1)), 4, &mut left)?;
        ctx.ld_f32_lanes(Addr::hbm(self.src + row(y, x0 + 1)), 4, &mut right)?;
        ctx.ld_f32_lanes(Addr::hbm(self.power + row(y, x0)), 4, &mut pw)?;
        let out: Vec<f32> = (0..n)
            .map(|i| stencil(c[i], up[i], down[i], left[i], right[i], pw[i]))
            .collect();
        ctx.st_f32_lanes(Addr::hbm(self.dst + row(y, x0)), 4, &out)?;
        Ok(true)
    }

    fn warp_fuel(&self, _phase: u32) -> Option<u64> {
        Some(7) // 5 stencil loads + 1 power load + 1 store per lane
    }
}

impl IterativeApp for HotspotWorkload {
    fn name(&self) -> &'static str {
        "HS"
    }

    fn setup(&mut self, machine: &mut Machine) -> SimResult<Vec<(u64, u64)>> {
        let e = self.params.edge;
        let bytes = e * e * 4;
        let temp_a = machine.alloc_hbm(bytes)?;
        self.temp_b = machine.alloc_hbm(bytes)?;
        self.power = machine.alloc_hbm(bytes)?;
        let mut t = Vec::with_capacity(bytes as usize);
        let mut p = Vec::with_capacity(bytes as usize);
        for y in 0..e {
            for x in 0..e {
                t.extend_from_slice(&init_temp(x, y).to_le_bytes());
                p.extend_from_slice(&init_power(x, y).to_le_bytes());
            }
        }
        machine.host_write(Addr::hbm(temp_a), &t)?;
        machine.host_write(Addr::hbm(self.power), &p)?;
        // Temperature and power are checkpointed together (Table 1: "16K*16K
        // power and temp matrix").
        Ok(vec![(temp_a, bytes), (self.power, bytes)])
    }

    fn iteration(&self, machine: &mut Machine, arrays: &[(u64, u64)], iter: u32) -> SimResult<()> {
        let e = self.params.edge;
        let temp_a = arrays[0].0;
        let (src, dst) = if iter.is_multiple_of(2) {
            (temp_a, self.temp_b)
        } else {
            (self.temp_b, temp_a)
        };
        // Hotspot launches a 2-D grid of 256-thread tiles like the Rodinia
        // kernel; 32×8 keeps each warp on a single row so interior warps
        // coalesce into whole-row vector operations.
        let grid = Grid2::new(e, e, 32, 8);
        let k = HsStencilKernel {
            grid,
            src,
            dst,
            power: self.power,
            e,
        };
        launch(machine, grid.launch(), &k)?;
        Ok(())
    }

    fn verify(&self, machine: &Machine, arrays: &[(u64, u64)], iters_done: u32) -> SimResult<bool> {
        let e = self.params.edge;
        let expect = self.reference(iters_done);
        // Even iteration counts land in buffer A (the checkpointed one).
        debug_assert!(iters_done.is_multiple_of(2));
        for i in (0..e * e).step_by(241) {
            let got = machine.read_f32(Addr::hbm(arrays[0].0 + i * 4))?;
            if got != expect[i as usize] {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn iterations(&self) -> u32 {
        self.params.iterations
    }

    fn checkpoint_every(&self) -> u32 {
        self.params.checkpoint_every
    }

    fn paper_bytes(&self) -> u64 {
        2 << 30 // the paper's 2 GB temp+power matrices: GPUfs fails (§6.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{run_iterative, run_iterative_with_recovery};
    use crate::metrics::Mode;

    #[test]
    fn stencil_verifies_under_gpm() {
        let mut m = Machine::default();
        let mut app = HotspotWorkload::new(HotspotParams::quick());
        let r = run_iterative(&mut m, &mut app, Mode::Gpm, 16).unwrap();
        assert!(r.verified);
    }

    #[test]
    fn gpufs_rejects_hs_at_paper_size() {
        let mut m = Machine::default();
        let mut app = HotspotWorkload::new(HotspotParams::quick());
        let err = run_iterative(&mut m, &mut app, Mode::Gpufs, 16).unwrap_err();
        assert!(matches!(err, gpm_sim::SimError::FileTooLarge { .. }));
    }

    #[test]
    fn recovery_restores_checkpointed_grid() {
        let mut m = Machine::default();
        let mut app = HotspotWorkload::new(HotspotParams::quick());
        let r = run_iterative_with_recovery(&mut m, &mut app).unwrap();
        assert!(r.verified);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_iterations_rejected() {
        HotspotWorkload::new(HotspotParams {
            iterations: 3,
            ..HotspotParams::quick()
        });
    }
}
