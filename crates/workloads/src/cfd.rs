//! CFD: an iteratively-invoked grid solver with checkpointing (§4.2).
//!
//! The paper uses Rodinia's CFD kernel (a Euler-equation solver over the
//! surface of a missile) and checkpoints flux, momentum and density each
//! period. We solve a same-shape relaxation system over a synthetic grid —
//! three coupled per-cell quantities advanced each timestep — preserving the
//! experiment's object: three semantically-related arrays checkpointed as
//! one group.

use gpm_gpu::{launch, Kernel, LaunchConfig, ThreadCtx, WarpCtx};
use gpm_sim::{Addr, Machine, Ns, SimResult};

use crate::iterative::IterativeApp;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct CfdParams {
    /// Grid cells.
    pub cells: u64,
    /// Timesteps.
    pub iterations: u32,
    /// Checkpoint cadence.
    pub checkpoint_every: u32,
}

impl Default for CfdParams {
    fn default() -> CfdParams {
        CfdParams {
            cells: 1 << 18,
            iterations: 8,
            checkpoint_every: 2,
        }
    }
}

impl CfdParams {
    /// Small configuration for unit tests.
    pub fn quick() -> CfdParams {
        CfdParams {
            cells: 1 << 12,
            iterations: 4,
            checkpoint_every: 2,
        }
    }
}

/// The CFD workload (flux, momentum, density arrays).
#[derive(Debug)]
pub struct CfdWorkload {
    /// Parameters of this instance.
    pub params: CfdParams,
}

fn init_cell(i: u64, field: u64) -> f32 {
    ((gpm_pmkv::hash64(i ^ (field << 56)) % 1000) as f32) / 1000.0 + 0.5
}

/// One timestep of the coupled system for a single cell.
fn step(flux: f32, momentum: f32, density: f32) -> (f32, f32, f32) {
    let f = flux * 0.99 + density * 0.01;
    let m = momentum + f * 0.001;
    let d = density * 0.999 + m * 1e-5;
    (f, m, d)
}

impl CfdWorkload {
    /// Creates the workload.
    pub fn new(params: CfdParams) -> CfdWorkload {
        CfdWorkload { params }
    }
}

/// One timestep over all cells: gather the three field values, advance the
/// coupled system, scatter the results. Uniform across a full warp, so the
/// interior of the grid runs vectorized; the tail warp (where the `i >= n`
/// guard diverges) falls back to the per-lane walk.
struct CfdStepKernel {
    flux: u64,
    momentum: u64,
    density: u64,
    n: u64,
}

impl Kernel for CfdStepKernel {
    type State = ();
    type Shared = ();

    fn run(&self, _phase: u32, ctx: &mut ThreadCtx<'_>, _: &mut (), _: &mut ()) -> SimResult<()> {
        let i = ctx.global_id();
        if i >= self.n {
            return Ok(());
        }
        // Effective per-cell kernel work: Rodinia's euler3d runs a
        // multi-stage RK solver gathering 3-D tetrahedral neighbours
        // (thousands of flops + scattered loads); calibrated to its
        // measured per-iteration time at this grid size.
        ctx.compute(Ns(9_000.0));
        let f = ctx.ld_f32(Addr::hbm(self.flux + i * 4))?;
        let m0 = ctx.ld_f32(Addr::hbm(self.momentum + i * 4))?;
        let d = ctx.ld_f32(Addr::hbm(self.density + i * 4))?;
        let (f1, m1, d1) = step(f, m0, d);
        ctx.st_f32(Addr::hbm(self.flux + i * 4), f1)?;
        ctx.st_f32(Addr::hbm(self.momentum + i * 4), m1)?;
        ctx.st_f32(Addr::hbm(self.density + i * 4), d1)
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _: &mut [()],
        _: &mut (),
    ) -> SimResult<bool> {
        let first = ctx.first_global_id();
        let lanes = ctx.lanes() as u64;
        if first + lanes > self.n {
            return Ok(false); // guard diverges in the tail warp
        }
        ctx.compute(Ns(9_000.0));
        let mut f = vec![0.0f32; lanes as usize];
        let mut m0 = vec![0.0f32; lanes as usize];
        let mut d = vec![0.0f32; lanes as usize];
        ctx.ld_f32_lanes(Addr::hbm(self.flux + first * 4), 4, &mut f)?;
        ctx.ld_f32_lanes(Addr::hbm(self.momentum + first * 4), 4, &mut m0)?;
        ctx.ld_f32_lanes(Addr::hbm(self.density + first * 4), 4, &mut d)?;
        for i in 0..lanes as usize {
            (f[i], m0[i], d[i]) = step(f[i], m0[i], d[i]);
        }
        ctx.st_f32_lanes(Addr::hbm(self.flux + first * 4), 4, &f)?;
        ctx.st_f32_lanes(Addr::hbm(self.momentum + first * 4), 4, &m0)?;
        ctx.st_f32_lanes(Addr::hbm(self.density + first * 4), 4, &d)?;
        Ok(true)
    }

    fn warp_fuel(&self, _phase: u32) -> Option<u64> {
        Some(6) // 3 loads + 3 stores per lane; compute is not fuel-counted
    }
}

impl IterativeApp for CfdWorkload {
    fn name(&self) -> &'static str {
        "CFD"
    }

    fn setup(&mut self, machine: &mut Machine) -> SimResult<Vec<(u64, u64)>> {
        let n = self.params.cells;
        let mut arrays = Vec::new();
        for field in 0..3u64 {
            let hbm = machine.alloc_hbm(n * 4)?;
            let mut init = Vec::with_capacity((n * 4) as usize);
            for i in 0..n {
                init.extend_from_slice(&init_cell(i, field).to_le_bytes());
            }
            machine.host_write(Addr::hbm(hbm), &init)?;
            arrays.push((hbm, n * 4));
        }
        Ok(arrays)
    }

    fn iteration(&self, machine: &mut Machine, arrays: &[(u64, u64)], _iter: u32) -> SimResult<()> {
        let n = self.params.cells;
        let k = CfdStepKernel {
            flux: arrays[0].0,
            momentum: arrays[1].0,
            density: arrays[2].0,
            n,
        };
        launch(machine, LaunchConfig::for_elements(n, 256), &k)?;
        Ok(())
    }

    fn verify(&self, machine: &Machine, arrays: &[(u64, u64)], iters_done: u32) -> SimResult<bool> {
        let n = self.params.cells;
        for i in (0..n).step_by(313) {
            let (mut f, mut m0, mut d) = (init_cell(i, 0), init_cell(i, 1), init_cell(i, 2));
            for _ in 0..iters_done {
                (f, m0, d) = step(f, m0, d);
            }
            if machine.read_f32(Addr::hbm(arrays[0].0 + i * 4))? != f
                || machine.read_f32(Addr::hbm(arrays[1].0 + i * 4))? != m0
                || machine.read_f32(Addr::hbm(arrays[2].0 + i * 4))? != d
            {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn iterations(&self) -> u32 {
        self.params.iterations
    }

    fn checkpoint_every(&self) -> u32 {
        self.params.checkpoint_every
    }

    fn paper_bytes(&self) -> u64 {
        8_900_000 // the paper's 8.9 MB (missile surface)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{run_iterative, run_iterative_with_recovery};
    use crate::metrics::Mode;

    #[test]
    fn solver_verifies_under_gpm_and_cap() {
        for mode in [Mode::Gpm, Mode::CapMm] {
            let mut m = Machine::default();
            let mut app = CfdWorkload::new(CfdParams::quick());
            let r = run_iterative(&mut m, &mut app, mode, 16).unwrap();
            assert!(r.verified, "{mode:?}");
        }
    }

    #[test]
    fn recovery_returns_to_checkpoint() {
        let mut m = Machine::default();
        let mut app = CfdWorkload::new(CfdParams::quick());
        let r = run_iterative_with_recovery(&mut m, &mut app).unwrap();
        assert!(r.verified);
    }
}
