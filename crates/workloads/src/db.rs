//! gpDB: transactional INSERTs and UPDATEs on a GPU-accelerated relational
//! table (§4.1).
//!
//! Modelled on the paper's extension of the Virginian GPU database: batched
//! INSERT queries append rows at the end of a PM-resident table (logging
//! only the table size in a conventional metadata log), while batched
//! UPDATE queries modify a predicate-selected subset of rows scattered over
//! the table, undo-logging each old row through HCL. The two exhibit the
//! paper's distinct behaviours: INSERTs stream sequentially (WA ≈ 1.27),
//! UPDATEs are sparse (WA ≈ 20, Table 4).
//!
//! Under GPM, UPDATEs are *detectable* ([`gpm_core::detect`]): each row has
//! a 32-byte meta record `{row_id, new_val, version, tag}` that doubles as
//! the operation's descriptor and redo record. A crashed UPDATE batch can be
//! retried in place — resubmit it and every matched row applies exactly once
//! (a tagged meta record means "applied"; the retry re-stores column 3 from
//! the record's redo value rather than trusting the crash to have settled
//! it). Rows never span threadblocks and the meta/undo state is per-row /
//! per-thread, so the update kernel commits under the block-parallel engine.

use gpm_cap::{cap_persist_region, flush_from_cpu, CapFlavor};
use gpm_core::{
    detect_create, gpm_map, gpm_persist_begin, gpm_persist_end, gpmlog_create_conv,
    gpmlog_create_hcl, op_tag, DetectArea, DetectableCas, GpmLog, GpmLogDev, GpmThreadExt,
    GpmWarpExt, TxnFlag,
};
use gpm_gpu::{
    launch, launch_with_gauge, Capable, Communicating, FnKernel, FuelGauge, Kernel,
    KernelCapability, LaunchConfig, LaunchError, ThreadCtx, WarpCtx,
};
use gpm_sim::cpu::CpuCtx;
use gpm_sim::{
    Addr, CrashPolicy, CrashSchedule, EventKind, Machine, Ns, OracleVerdict, SimError, SimResult,
    HOST_WRITER,
};

use crate::metrics::{metered, BatchMetrics, Mode, RunMetrics};
use crate::oracle::RecoveryOracle;

/// Valid bytes per row: id u64 + 12 columns u64.
pub const ROW_BYTES: u64 = 104;
/// Row stride (8-byte alignment padding leaves small holes, so row streams
/// do not fill Optane's 256-byte blocks — the paper's "unaligned but
/// sequential" INSERT pattern).
pub const ROW_STRIDE: u64 = 112;
/// Update predicate: rows with `id % UPDATE_MOD == UPDATE_RESIDUE`.
const UPDATE_MOD: u64 = 20;
const UPDATE_RESIDUE: u64 = 3;
/// Bytes per per-row UPDATE meta record (`{row_id, new_val, version, tag}`,
/// one [`DetectableCas`] unit).
const UPD_META_BYTES: u64 = 32;
/// CAP transfers appended regions at this DMA chunk granularity.
const CAP_INSERT_CHUNK: u64 = 128 << 10;

/// Which query type the workload runs (reported separately in Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbOp {
    /// Batched row INSERTs appended at the table's end.
    Insert,
    /// Batched predicate UPDATEs scattered over the table.
    Update,
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbParams {
    /// Rows present before the workload starts.
    pub initial_rows: u64,
    /// Maximum rows the table can hold.
    pub capacity_rows: u64,
    /// Rows inserted per INSERT batch.
    pub rows_per_insert: u64,
    /// Batches executed.
    pub batches: u32,
    /// Which query type to run.
    pub op: DbOp,
    /// CPU threads for CAP-mm persisting.
    pub cap_threads: u32,
    /// Undo-log backend for UPDATEs: `None` = HCL, `Some(p)` = conventional
    /// logging with `p` partitions (the Figure 11 baseline).
    pub conventional_log_partitions: Option<u32>,
    /// GPU persistency model for every kernel this workload launches.
    /// `None` defers to `GPM_PERSISTENCY` (then strict), exactly like
    /// [`LaunchConfig::persistency`]; `Some(model)` pins it, which is how
    /// harnesses (enginebench, gpm-serve) select epoch explicitly.
    pub persistency: Option<gpm_gpu::PersistencyModel>,
}

impl Default for DbParams {
    fn default() -> DbParams {
        DbParams {
            initial_rows: 32_768,
            capacity_rows: 65_536,
            rows_per_insert: 4_096,
            batches: 8,
            op: DbOp::Insert,
            cap_threads: 32,
            conventional_log_partitions: None,
            persistency: None,
        }
    }
}

impl DbParams {
    /// Small configuration for unit tests.
    pub fn quick() -> DbParams {
        DbParams {
            initial_rows: 2_048,
            capacity_rows: 4_096,
            rows_per_insert: 256,
            batches: 2,
            ..DbParams::default()
        }
    }

    /// Switches to the UPDATE query type.
    pub fn updates(mut self) -> DbParams {
        self.op = DbOp::Update;
        self
    }

    /// Pins the GPU persistency model for every launch of this workload.
    pub fn with_persistency(mut self, model: gpm_gpu::PersistencyModel) -> DbParams {
        self.persistency = Some(model);
        self
    }

    fn table_bytes(&self) -> u64 {
        self.capacity_rows * ROW_STRIDE
    }
}

/// The gpDB workload instance.
#[derive(Debug)]
pub struct DbWorkload {
    /// Parameters of this instance.
    pub params: DbParams,
    /// Campaign self-test knob: UPDATEs skip the meta-record check (a
    /// double-applying CAS). Harmless on clean runs; a crash-and-retry
    /// applies matched rows twice. The double-recovery oracle must catch it.
    pub inject_double_apply: bool,
}

/// Live gpDB instance state: the PM table, its HBM mirror, the persistent
/// row count and the metadata/row undo logs. Created once by
/// [`DbWorkload::setup`] and reused across batches.
#[derive(Debug)]
pub struct DbState {
    pm_table: u64,
    hbm_table: u64,
    row_count: u64, // PM address of the persistent row count
    staging_dram: u64,
    cap_pm: u64,
    upd_meta: u64, // PM base of the per-row UPDATE meta records
    flag: TxnFlag,
    detect: DetectArea, // epoch counter only; the meta records are the descriptors
    meta_log: GpmLog,
    row_log: GpmLog,
}

impl DbState {
    /// Reads the durable row count from PM — what a serving frontend
    /// booting over an existing image must resume from after recovery.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn durable_rows(&self, machine: &Machine) -> SimResult<u64> {
        machine.read_u64(Addr::pm(self.row_count))
    }
}

fn row_value(row: u64, col: u64, batch: u32) -> u64 {
    gpm_pmkv::hash64(row ^ (col << 32) ^ ((batch as u64) << 48))
}

fn updated_col_value(id: u64, batch: u32) -> u64 {
    id.wrapping_mul(31).wrapping_add(batch as u64)
}

/// One INSERT batch: each thread appends one freshly-encoded row to the end
/// of the table (HBM always, plus the PM image under GPM). Thread 0
/// additionally logs the old table size to the conventional metadata log, so
/// its warp diverges and stays per-lane; every other full warp streams its
/// 32 rows through strided vector stores.
struct DbInsertKernel {
    pm_table: u64,
    hbm_table: u64,
    meta_log: GpmLogDev,
    batch: u32,
    start_row: u64,
    rows: u64,
    to_pm: bool,
    persist: bool,
}

impl Kernel for DbInsertKernel {
    type State = ();
    type Shared = ();

    fn run(&self, _phase: u32, ctx: &mut ThreadCtx<'_>, _: &mut (), _: &mut ()) -> SimResult<()> {
        let i = ctx.global_id();
        if i >= self.rows {
            return Ok(());
        }
        // Thread 0 logs the old table size (metadata, conventional log).
        if i == 0 && self.to_pm && self.persist {
            self.meta_log
                .insert_to(ctx, &self.start_row.to_le_bytes(), 0)?;
        }
        let row_id = self.start_row + i;
        ctx.compute(Ns(60.0)); // query processing per row
        let row = DbWorkload::encode_row(row_id, self.batch);
        ctx.st_bytes(Addr::hbm(self.hbm_table + row_id * ROW_STRIDE), &row)?;
        if self.to_pm {
            ctx.st_bytes(Addr::pm(self.pm_table + row_id * ROW_STRIDE), &row)?;
            if self.persist {
                ctx.gpm_persist()?;
            }
        }
        Ok(())
    }

    fn run_warp(
        &self,
        _phase: u32,
        ctx: &mut WarpCtx<'_>,
        _: &mut [()],
        _: &mut (),
    ) -> SimResult<bool> {
        let first = ctx.first_global_id();
        let lanes = ctx.lanes() as u64;
        if first + lanes > self.rows {
            return Ok(false); // guard diverges in the tail warp
        }
        if first == 0 && self.to_pm && self.persist {
            return Ok(false); // thread 0's metadata-log append diverges
        }
        ctx.compute(Ns(60.0));
        let mut buf = vec![0u8; (lanes * ROW_BYTES) as usize];
        for l in 0..lanes {
            let row = DbWorkload::encode_row(self.start_row + first + l, self.batch);
            buf[(l * ROW_BYTES) as usize..((l + 1) * ROW_BYTES) as usize].copy_from_slice(&row);
        }
        let off = (self.start_row + first) * ROW_STRIDE;
        ctx.st_bytes_lanes(
            Addr::hbm(self.hbm_table + off),
            ROW_STRIDE,
            ROW_BYTES as usize,
            &buf,
        )?;
        if self.to_pm {
            ctx.st_bytes_lanes(
                Addr::pm(self.pm_table + off),
                ROW_STRIDE,
                ROW_BYTES as usize,
                &buf,
            )?;
            if self.persist {
                ctx.gpm_persist()?;
            }
        }
        Ok(true)
    }

    fn warp_fuel(&self, _phase: u32) -> Option<u64> {
        // One HBM row store per lane, plus under GPM the PM mirror store and
        // the persist fence; thread 0's conventional-log append adds six
        // counted ops (two u32 loads/stores around the entry, the entry
        // store, and two fences), which the bound must cover even though its
        // warp always declines to per-lane.
        let base = 1 + u64::from(self.to_pm) + u64::from(self.to_pm && self.persist);
        Some(base + if self.to_pm && self.persist { 6 } else { 0 })
    }
}

impl DbWorkload {
    /// Creates the workload.
    pub fn new(params: DbParams) -> DbWorkload {
        DbWorkload {
            params,
            inject_double_apply: false,
        }
    }

    /// Enables the deliberate double-applying CAS (campaign self-test for
    /// `--double-recovery`).
    pub fn with_double_apply_bug(mut self) -> DbWorkload {
        self.inject_double_apply = true;
        self
    }

    fn cfg_for(&self, elements: u64) -> LaunchConfig {
        let cfg = LaunchConfig::for_elements(elements, 256);
        match self.params.persistency {
            Some(model) => cfg.with_persistency(model),
            None => cfg,
        }
    }

    fn update_launch_cfg(&self) -> LaunchConfig {
        self.cfg_for(self.params.capacity_rows)
    }

    /// Allocates the table, mirror, logs and row count on `machine` and
    /// populates the initial rows (durable setup, untimed).
    ///
    /// # Errors
    ///
    /// Fails on allocation or PM-file errors.
    pub fn setup(&self, machine: &mut Machine, mode: Mode) -> SimResult<DbState> {
        let p = &self.params;
        let pm_table = gpm_map(machine, "/pm/gpdb/table", p.table_bytes(), true)?.offset;
        let meta = gpm_map(machine, "/pm/gpdb/meta", 256, true)?;
        let upd_meta = gpm_map(
            machine,
            "/pm/gpdb/upd_meta",
            p.capacity_rows * UPD_META_BYTES,
            true,
        )?
        .offset;
        let flag = TxnFlag::create(machine, "/pm/gpdb/flag")?;
        // One-slot area: only its durable epoch counter is used (the per-row
        // meta records play the descriptor role).
        let detect = detect_create(machine, "/pm/gpdb/detect", 1)
            .map_err(|_| SimError::Invalid("failed to create gpDB descriptor area"))?;
        let hbm_table = machine.alloc_hbm(p.table_bytes())?;
        let staging_dram = machine.alloc_dram(p.table_bytes())?;
        let cap_pm = if matches!(mode, Mode::CapFs | Mode::CapMm) {
            machine.alloc_pm(p.table_bytes())?
        } else {
            0
        };
        let meta_log = gpmlog_create_conv(machine, "/pm/gpdb/meta_log", 4096, 1)
            .map_err(|_| SimError::Invalid("meta log"))?;
        let cfg = self.update_launch_cfg();
        // 4× headroom per thread: a retried batch appends a fresh undo entry
        // for every row whose meta record was lost to the crash, on top of
        // the crashed attempt's entries (the log is only truncated at
        // commit), so one entry per thread is not enough under retries.
        let row_log_size = cfg.total_threads() * (ROW_BYTES + 16) * 4;
        let row_log = match p.conventional_log_partitions {
            None => gpmlog_create_hcl(
                machine,
                "/pm/gpdb/row_log",
                row_log_size,
                cfg.grid,
                cfg.block,
            ),
            Some(parts) => {
                gpm_core::gpmlog_create_conv(machine, "/pm/gpdb/row_log", row_log_size * 2, parts)
            }
        }
        .map_err(|_| SimError::Invalid("row log"))?;

        // Populate the initial rows (durable setup, untimed).
        for r in 0..p.initial_rows {
            let row = Self::encode_row(r, 0);
            machine.host_write(Addr::pm(pm_table + r * ROW_STRIDE), &row)?;
            machine.host_write(Addr::hbm(hbm_table + r * ROW_STRIDE), &row)?;
            if matches!(mode, Mode::CapFs | Mode::CapMm) {
                machine.host_write(Addr::pm(cap_pm + r * ROW_STRIDE), &row)?;
            }
        }
        machine.host_write(Addr::pm(meta.offset), &p.initial_rows.to_le_bytes())?;
        Ok(DbState {
            pm_table,
            hbm_table,
            row_count: meta.offset,
            staging_dram,
            cap_pm,
            upd_meta,
            flag,
            detect,
            meta_log,
            row_log,
        })
    }

    fn encode_row(row_id: u64, batch: u32) -> [u8; ROW_BYTES as usize] {
        let mut row = [0u8; ROW_BYTES as usize];
        row[0..8].copy_from_slice(&row_id.to_le_bytes());
        for col in 0..12u64 {
            row[(8 + col * 8) as usize..(16 + col * 8) as usize]
                .copy_from_slice(&row_value(row_id, col, batch).to_le_bytes());
        }
        row
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_kernel(
        &self,
        st: &DbState,
        batch: u32,
        start_row: u64,
        rows: u64,
        to_pm: bool,
        persist: bool,
    ) -> DbInsertKernel {
        DbInsertKernel {
            pm_table: st.pm_table,
            hbm_table: st.hbm_table,
            meta_log: st.meta_log.dev(),
            batch,
            start_row,
            rows,
            to_pm,
            persist,
        }
    }

    /// The predicate-UPDATE kernel. Under GPM (`to_pm && persist`) each
    /// matched row runs the detectable protocol against its meta record
    /// (tag `op_tag(epoch, row)`), so a crashed batch is retryable in
    /// place. Rows and meta records never span threadblocks (256 rows ×
    /// 112 B and 256 × 32 B are both line-aligned block strides) and the
    /// HCL undo log is per-thread, so the kernel advertises
    /// [`KernelCapability::BlockParallel`]; only the conventional-log
    /// ablation (shared partition tails) keeps the `Communicating` pin.
    /// The predicate is data-dependent (~1/UPDATE_MOD of lanes match), so
    /// warps diverge and the kernel stays per-lane; no `run_warp`.
    #[allow(clippy::too_many_arguments)]
    fn update_kernel(
        &self,
        st: &DbState,
        batch: u32,
        row_count: u64,
        epoch: u64,
        to_pm: bool,
        persist: bool,
    ) -> impl gpm_gpu::Kernel<State = (), Shared = ()> {
        let (pm_table, hbm_table, upd_meta) = (st.pm_table, st.hbm_table, st.upd_meta);
        let row_log = st.row_log.dev();
        let inject = self.inject_double_apply;
        let detectable = to_pm && persist;
        let capability = if self.params.conventional_log_partitions.is_some() {
            KernelCapability::Communicating
        } else {
            KernelCapability::BlockParallel
        };
        Capable(
            capability,
            FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                if i >= row_count {
                    return Ok(());
                }
                let id = ctx.ld_u64(Addr::hbm(hbm_table + i * ROW_STRIDE))?;
                ctx.compute(Ns(150.0)); // predicate + column evaluation
                if id % UPDATE_MOD != UPDATE_RESIDUE {
                    return Ok(());
                }
                let new_val = updated_col_value(id, batch);
                let col3 = i * ROW_STRIDE + 8 + 3 * 8;
                if to_pm {
                    if detectable {
                        let tag = op_tag(epoch, i);
                        let meta_addr = Addr::pm(upd_meta + i * UPD_META_BYTES);
                        let meta = DetectableCas::read(ctx, meta_addr)?;
                        if !inject && meta[3] == tag {
                            // Applied before the crash. The crash may have
                            // settled the meta line without the column store
                            // (mixed settle policies), so REDO the column
                            // from the record's redo value — idempotent —
                            // rather than trusting it reached media.
                            ctx.st_u64(Addr::pm(pm_table + col3), meta[1])?;
                            ctx.gpm_persist()?;
                            ctx.st_u64(Addr::hbm(hbm_table + col3), meta[1])?;
                            return Ok(());
                        }
                        // Undo-log the whole old row (rollback recovery stays
                        // possible), update column 3, then publish the meta
                        // record durably — its tag certifies "applied".
                        let mut old = [0u8; ROW_BYTES as usize];
                        ctx.ld_bytes(Addr::hbm(hbm_table + i * ROW_STRIDE), &mut old)?;
                        row_log.insert(ctx, &old)?;
                        let version = if meta[0] == id && meta[3] == tag {
                            meta[2] + 1
                        } else {
                            1
                        };
                        ctx.st_u64(Addr::pm(pm_table + col3), new_val)?;
                        DetectableCas::publish(ctx, meta_addr, id, new_val, version, tag)?;
                    } else {
                        // Legacy path (GPM-NDP): undo-log and store without
                        // in-kernel ordering; the CPU flushes after.
                        let mut old = [0u8; ROW_BYTES as usize];
                        ctx.ld_bytes(Addr::hbm(hbm_table + i * ROW_STRIDE), &mut old)?;
                        if persist {
                            row_log.insert(ctx, &old)?;
                        } else {
                            row_log.insert_unfenced(ctx, &old)?;
                        }
                        ctx.st_u64(Addr::pm(pm_table + col3), new_val)?;
                        if persist {
                            ctx.gpm_persist()?;
                        }
                    }
                }
                ctx.st_u64(Addr::hbm(hbm_table + col3), new_val)?;
                Ok(())
            }),
        )
    }

    /// Opens (or, on a retry, re-enters) the detect epoch for UPDATE batch
    /// `batch` — same reuse rule as the KVS side: a still-armed transaction
    /// flag for this very batch means a resubmission, so the pre-crash
    /// epoch (and therefore its tags) is reused.
    fn enter_epoch(&self, machine: &mut Machine, st: &DbState, batch: u32) -> SimResult<u64> {
        if st.flag.active(machine)? == batch as u64 + 1 {
            st.detect
                .epoch(machine)
                .map_err(|_| SimError::Invalid("detect epoch read failed"))
        } else {
            st.flag.begin(machine, batch as u64 + 1)?;
            st.detect
                .begin_epoch(machine)
                .map_err(|_| SimError::Invalid("detect epoch advance failed"))
        }
    }

    fn persist_count(&self, machine: &mut Machine, st: &DbState, count: u64) -> SimResult<()> {
        let mut cpu = CpuCtx::new(machine, HOST_WRITER);
        cpu.store(Addr::pm(st.row_count), &count.to_le_bytes())?;
        cpu.persist(st.row_count, 8);
        let t = cpu.elapsed();
        machine.clock.advance(t);
        Ok(())
    }

    /// Applies one batch through the shared kernel-launch path: an INSERT
    /// appending `rows` rows, or an UPDATE sweeping the current `*count`
    /// rows (`rows` is ignored for updates). `count` is the caller's live
    /// row count and is advanced (and persisted, where the mode requires
    /// it) by insert batches. This is the single entry point both the
    /// closed-loop suite and the `gpm-serve` frontend drive — there is no
    /// second kernel-launch code path.
    ///
    /// # Errors
    ///
    /// Fails for unsupported modes, inserts past capacity, or platform
    /// errors.
    pub fn apply_batch(
        &self,
        machine: &mut Machine,
        st: &DbState,
        batch: u32,
        rows: u64,
        count: &mut u64,
        mode: Mode,
    ) -> SimResult<BatchMetrics> {
        match self.apply_batch_gauged(
            machine,
            st,
            batch,
            rows,
            count,
            mode,
            &mut FuelGauge::Unlimited,
        ) {
            Ok(m) => Ok(m),
            Err(LaunchError::Crashed(_)) => unreachable!("unlimited gauge never crashes"),
            Err(LaunchError::Sim(e)) => Err(e),
        }
    }

    /// [`apply_batch`](DbWorkload::apply_batch) driven through a
    /// [`FuelGauge`], so callers can record crash schedules or inject a
    /// mid-batch crash (the `gpm-serve` retry drill and the campaign both
    /// ride this).
    ///
    /// # Errors
    ///
    /// [`LaunchError::Crashed`] when the gauge's fuel runs out mid-kernel;
    /// [`LaunchError::Sim`] on functional errors.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_batch_gauged(
        &self,
        machine: &mut Machine,
        st: &DbState,
        batch: u32,
        rows: u64,
        count: &mut u64,
        mode: Mode,
        gauge: &mut FuelGauge,
    ) -> Result<BatchMetrics, LaunchError> {
        let p = &self.params;
        let t0 = machine.clock.now();
        let s0 = machine.stats;
        let ops;
        match p.op {
            DbOp::Insert => {
                ops = rows;
                if *count + rows > p.capacity_rows {
                    return Err(LaunchError::Sim(SimError::Invalid(
                        "insert batch exceeds table capacity",
                    )));
                }
                let cfg = self.cfg_for(rows);
                match mode {
                    Mode::Gpm => {
                        gpm_persist_begin(machine);
                        launch_with_gauge(
                            machine,
                            cfg,
                            &self.insert_kernel(st, batch, *count, rows, true, true),
                            gauge,
                        )?;
                        gpm_persist_end(machine);
                        *count += rows;
                        self.persist_count(machine, st, *count)
                            .map_err(LaunchError::Sim)?;
                        st.meta_log
                            .host_clear(machine)
                            .map_err(|_| LaunchError::Sim(SimError::Invalid("clear")))?;
                    }
                    Mode::GpmNdp => {
                        launch_with_gauge(
                            machine,
                            cfg,
                            &self.insert_kernel(st, batch, *count, rows, true, false),
                            gauge,
                        )?;
                        let start = st.pm_table + *count * ROW_STRIDE;
                        flush_from_cpu(machine, start, rows * ROW_STRIDE, p.cap_threads);
                        *count += rows;
                        self.persist_count(machine, st, *count)
                            .map_err(LaunchError::Sim)?;
                    }
                    Mode::CapFs | Mode::CapMm => {
                        launch_with_gauge(
                            machine,
                            cfg,
                            &self.insert_kernel(st, batch, *count, rows, false, false),
                            gauge,
                        )?;
                        // Transfer the appended region at chunk granularity
                        // plus the metadata page: slight over-transfer
                        // (WA ≈ 1.27, Table 4).
                        let begin = *count * ROW_STRIDE;
                        let end = (*count + rows) * ROW_STRIDE;
                        let start = begin / CAP_INSERT_CHUNK * CAP_INSERT_CHUNK;
                        let aligned_end = (end.div_ceil(CAP_INSERT_CHUNK) * CAP_INSERT_CHUNK
                            + 4096)
                            .min(p.table_bytes());
                        let len = aligned_end - start;
                        let flavor = if mode == Mode::CapFs {
                            CapFlavor::Fs
                        } else {
                            CapFlavor::Mm {
                                threads: p.cap_threads,
                            }
                        };
                        cap_persist_region(
                            machine,
                            flavor,
                            st.hbm_table + start,
                            st.staging_dram,
                            st.cap_pm + start,
                            len,
                        )
                        .map_err(LaunchError::Sim)?;
                        *count += rows;
                    }
                    Mode::Gpufs | Mode::CpuPm => {
                        return Err(LaunchError::Sim(SimError::Invalid(
                            "mode unsupported for gpDB",
                        )));
                    }
                }
            }
            DbOp::Update => {
                ops = *count;
                let cfg = self.update_launch_cfg();
                match mode {
                    Mode::Gpm => {
                        let epoch = self
                            .enter_epoch(machine, st, batch)
                            .map_err(LaunchError::Sim)?;
                        gpm_persist_begin(machine);
                        launch_with_gauge(
                            machine,
                            cfg,
                            &self.update_kernel(st, batch, *count, epoch, true, true),
                            gauge,
                        )?;
                        gpm_persist_end(machine);
                        st.flag.commit(machine).map_err(LaunchError::Sim)?;
                        st.row_log
                            .host_clear(machine)
                            .map_err(|_| LaunchError::Sim(SimError::Invalid("clear")))?;
                    }
                    Mode::GpmNdp => {
                        launch_with_gauge(
                            machine,
                            cfg,
                            &self.update_kernel(st, batch, *count, 0, true, false),
                            gauge,
                        )?;
                        flush_from_cpu(machine, st.pm_table, p.table_bytes(), p.cap_threads);
                        flush_from_cpu(
                            machine,
                            st.row_log.region.offset,
                            st.row_log.region.len,
                            p.cap_threads,
                        );
                        // Batch committed: truncate the undo log.
                        st.row_log
                            .host_clear(machine)
                            .map_err(|_| LaunchError::Sim(SimError::Invalid("clear")))?;
                    }
                    Mode::CapFs | Mode::CapMm => {
                        launch_with_gauge(
                            machine,
                            cfg,
                            &self.update_kernel(st, batch, *count, 0, false, false),
                            gauge,
                        )?;
                        let flavor = if mode == Mode::CapFs {
                            CapFlavor::Fs
                        } else {
                            CapFlavor::Mm {
                                threads: p.cap_threads,
                            }
                        };
                        cap_persist_region(
                            machine,
                            flavor,
                            st.hbm_table,
                            st.staging_dram,
                            st.cap_pm,
                            *count * ROW_STRIDE,
                        )
                        .map_err(LaunchError::Sim)?;
                    }
                    Mode::Gpufs | Mode::CpuPm => {
                        return Err(LaunchError::Sim(SimError::Invalid(
                            "mode unsupported for gpDB",
                        )));
                    }
                }
            }
        }
        let d = machine.stats.delta(&s0);
        Ok(BatchMetrics {
            ops,
            elapsed: machine.clock.now() - t0,
            pm_write_bytes_gpu: d.pm_write_bytes_gpu,
            bytes_persisted: d.bytes_persisted,
        })
    }

    fn run_batches(&self, machine: &mut Machine, st: &DbState, mode: Mode) -> SimResult<()> {
        let p = &self.params;
        let mut count = p.initial_rows;
        for b in 0..p.batches {
            self.apply_batch(machine, st, b, p.rows_per_insert, &mut count, mode)?;
        }
        Ok(())
    }

    fn verify(&self, machine: &Machine, st: &DbState, mode: Mode) -> SimResult<bool> {
        let p = &self.params;
        let base = match mode {
            Mode::Gpm | Mode::GpmNdp => st.pm_table,
            Mode::CapFs | Mode::CapMm => st.cap_pm,
            _ => return Ok(false),
        };
        match p.op {
            DbOp::Insert => {
                let total = p.initial_rows + p.batches as u64 * p.rows_per_insert;
                for r in (0..total).step_by(37) {
                    let id = machine.read_u64(Addr::pm(base + r * ROW_STRIDE))?;
                    if id != r {
                        return Ok(false);
                    }
                }
                if matches!(mode, Mode::Gpm | Mode::GpmNdp)
                    && machine.read_u64(Addr::pm(st.row_count))? != total
                {
                    return Ok(false);
                }
            }
            DbOp::Update => {
                for r in 0..p.initial_rows {
                    let expected = if r % UPDATE_MOD == UPDATE_RESIDUE {
                        updated_col_value(r, p.batches - 1)
                    } else {
                        row_value(r, 3, 0)
                    };
                    let got = machine.read_u64(Addr::pm(base + r * ROW_STRIDE + 8 + 3 * 8))?;
                    if got != expected {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// Runs the workload under `mode`.
    ///
    /// # Errors
    ///
    /// Fails for unsupported modes or on platform errors.
    pub fn run(&self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        let st = self.setup(machine, mode)?;
        let mut metrics = metered(machine, |m| {
            self.run_batches(m, &st, mode)?;
            Ok::<bool, SimError>(true)
        })?;
        metrics.verified = self.verify(machine, &st, mode)?;
        Ok(metrics)
    }

    /// A SELECT aggregation query: scans the (HBM-resident) table for rows
    /// matching `id % modulus == residue` and sums column `col` — the
    /// read-only analytics work GPU databases already excel at (§4.1:
    /// "executing primarily SELECT queries"). Runs identically under every
    /// persistence system (nothing is persisted) and returns `(sum, rows
    /// matched, elapsed)`.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_select(
        &self,
        machine: &mut Machine,
        modulus: u64,
        residue: u64,
        col: u64,
    ) -> SimResult<(u64, u64, Ns)> {
        assert!(col < 12, "the table has 12 value columns");
        let st = self.setup(machine, Mode::Gpm)?;
        let rows = self.params.initial_rows;
        let hbm_table = st.hbm_table;
        // Block-local partial aggregates, combined by lane 0 of each block.
        let sum_out = machine.alloc_hbm(8)?;
        let count_out = machine.alloc_hbm(8)?;
        let t0 = machine.clock.now();
        struct SelectKernel {
            hbm_table: u64,
            rows: u64,
            modulus: u64,
            residue: u64,
            col: u64,
            sum_out: u64,
            count_out: u64,
        }
        impl gpm_gpu::Kernel for SelectKernel {
            type State = ();
            type Shared = (u64, u64); // (sum, count)
            fn phases(&self) -> u32 {
                2
            }
            fn run(
                &self,
                phase: u32,
                ctx: &mut gpm_gpu::ThreadCtx<'_>,
                _: &mut (),
                shared: &mut (u64, u64),
            ) -> SimResult<()> {
                let i = ctx.global_id();
                if phase == 0 {
                    if i >= self.rows {
                        return Ok(());
                    }
                    let id = ctx.ld_u64(Addr::hbm(self.hbm_table + i * ROW_STRIDE))?;
                    ctx.compute(Ns(25.0));
                    if id % self.modulus == self.residue {
                        let v = ctx.ld_u64(Addr::hbm(
                            self.hbm_table + i * ROW_STRIDE + 8 + self.col * 8,
                        ))?;
                        shared.0 = shared.0.wrapping_add(v);
                        shared.1 += 1;
                    }
                } else if ctx.thread_in_block() == 0 {
                    let s = ctx.ld_u64(Addr::hbm(self.sum_out))?;
                    let c = ctx.ld_u64(Addr::hbm(self.count_out))?;
                    ctx.st_u64(Addr::hbm(self.sum_out), s.wrapping_add(shared.0))?;
                    ctx.st_u64(Addr::hbm(self.count_out), c + shared.1)?;
                }
                Ok(())
            }
        }
        let k = SelectKernel {
            hbm_table,
            rows,
            modulus,
            residue,
            col,
            sum_out,
            count_out,
        };
        launch(machine, LaunchConfig::for_elements(rows, 256), &k)?;
        let sum = machine.read_u64(Addr::hbm(sum_out))?;
        let count = machine.read_u64(Addr::hbm(count_out))?;
        Ok((sum, count, machine.clock.now() - t0))
    }

    /// The CPU-only (OpenMP-style) implementation the paper compares against
    /// in §6.1 ("we converted the CUDA implementation of gpDB to OpenMP").
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_cpu(&self, machine: &mut Machine) -> SimResult<RunMetrics> {
        let p = self.params;
        let st = self.setup(machine, Mode::Gpm)?;
        metered(machine, |m| {
            let mut serial = Ns::ZERO;
            let mut count = p.initial_rows;
            for b in 0..p.batches {
                match p.op {
                    DbOp::Insert => {
                        for i in 0..p.rows_per_insert {
                            let row = Self::encode_row(count + i, b);
                            let mut cpu = CpuCtx::new(m, HOST_WRITER);
                            cpu.compute(Ns(60.0));
                            cpu.store(Addr::pm(st.pm_table + (count + i) * ROW_STRIDE), &row)?;
                            cpu.persist((count + i) * ROW_STRIDE + st.pm_table, ROW_BYTES);
                            serial += cpu.elapsed();
                        }
                        count += p.rows_per_insert;
                    }
                    DbOp::Update => {
                        for r in 0..count {
                            let mut cpu = CpuCtx::new(m, HOST_WRITER);
                            let id = cpu.load_u64(Addr::pm(st.pm_table + r * ROW_STRIDE))?;
                            cpu.compute(Ns(40.0));
                            if id % UPDATE_MOD == UPDATE_RESIDUE {
                                // WAL the old row, then update in place.
                                let mut old = [0u8; ROW_BYTES as usize];
                                cpu.load(Addr::pm(st.pm_table + r * ROW_STRIDE), &mut old)?;
                                cpu.store(Addr::pm(st.row_log.region.offset + 256), &old)?;
                                cpu.persist(st.row_log.region.offset + 256, ROW_BYTES);
                                let a = st.pm_table + r * ROW_STRIDE + 8 + 3 * 8;
                                cpu.store(Addr::pm(a), &updated_col_value(id, b).to_le_bytes())?;
                                cpu.persist(a, 8);
                            }
                            serial += cpu.elapsed();
                        }
                    }
                }
            }
            let t = serial / m.cfg.cpu_persist_scaling(m.cfg.cpu_cores);
            m.clock.advance(t);
            Ok::<bool, SimError>(true)
        })
    }

    /// Worst-case restoration latency (Table 5): crash just before the last
    /// batch commits, then undo (UPDATE) or metadata rollback (INSERT).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_with_recovery(&self, machine: &mut Machine) -> SimResult<RunMetrics> {
        assert!(
            self.params.conventional_log_partitions.is_none(),
            "undo recovery requires the HCL backend (per-thread entries)"
        );
        let p = self.params;
        let st = self.setup(machine, Mode::Gpm)?;
        let mut metrics = metered(machine, |m| {
            let mut count = p.initial_rows;
            for b in 0..p.batches {
                match p.op {
                    DbOp::Insert => {
                        let cfg = self.cfg_for(p.rows_per_insert);
                        gpm_persist_begin(m);
                        launch(
                            m,
                            cfg,
                            &self.insert_kernel(&st, b, count, p.rows_per_insert, true, true),
                        )?;
                        gpm_persist_end(m);
                        count += p.rows_per_insert;
                        if b + 1 < p.batches {
                            self.persist_count(m, &st, count)?;
                            st.meta_log
                                .host_clear(m)
                                .map_err(|_| SimError::Invalid("clear"))?;
                        }
                    }
                    DbOp::Update => {
                        let cfg = self.update_launch_cfg();
                        let epoch = self.enter_epoch(m, &st, b)?;
                        gpm_persist_begin(m);
                        launch(
                            m,
                            cfg,
                            &self.update_kernel(&st, b, count, epoch, true, true),
                        )?;
                        gpm_persist_end(m);
                        if b + 1 < p.batches {
                            st.flag.commit(m)?;
                            st.row_log
                                .host_clear(m)
                                .map_err(|_| SimError::Invalid("clear"))?;
                        }
                    }
                }
            }
            Ok::<bool, SimError>(true)
        })?;
        machine.crash();
        let t0 = machine.clock.now();
        self.recover(machine, &st)?;
        metrics.recovery = Some(machine.clock.now() - t0);
        metrics.verified = match p.op {
            // INSERT rollback: the count must still be the pre-batch value.
            DbOp::Insert => {
                let expect = p.initial_rows + (p.batches as u64 - 1) * p.rows_per_insert;
                machine.read_u64(Addr::pm(st.row_count))? == expect
            }
            // UPDATE rollback: column 3 is back at the batches-1 state.
            DbOp::Update => {
                let smaller = DbWorkload::new(DbParams {
                    batches: p.batches - 1,
                    ..p
                });
                smaller.verify(machine, &st, Mode::Gpm)?
            }
        };
        Ok(metrics)
    }

    /// Gauge-driven GPM batch loop for the campaign oracle. `committed`
    /// tracks how many batches fully committed before the crash (if any).
    fn run_batches_gauged(
        &self,
        machine: &mut Machine,
        st: &DbState,
        gauge: &mut FuelGauge,
        committed: &mut u32,
    ) -> Result<(), LaunchError> {
        let p = &self.params;
        let mut count = p.initial_rows;
        for b in 0..p.batches {
            self.apply_batch_gauged(
                machine,
                st,
                b,
                p.rows_per_insert,
                &mut count,
                Mode::Gpm,
                gauge,
            )?;
            *committed = b + 1;
        }
        Ok(())
    }

    /// Restores the durable image after a crash: metadata rollback for
    /// INSERTs, HCL undo drain for UPDATEs. Public so a serving frontend
    /// can replay recovery when it boots a shard over a crashed machine
    /// image, before admitting traffic.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn recover(&self, machine: &mut Machine, st: &DbState) -> SimResult<()> {
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryBegin);
        }
        let result = self.recover_inner(machine, st);
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryEnd);
        }
        result
    }

    fn recover_inner(&self, machine: &mut Machine, st: &DbState) -> SimResult<()> {
        match self.params.op {
            DbOp::Insert => {
                // Restore the table size from the metadata log if an insert
                // transaction was active (quick: a single metadata read).
                let logged = st
                    .meta_log
                    .host_tail(machine, 0)
                    .map_err(|_| SimError::Invalid("meta log"))?;
                if logged > 0 {
                    // Entry layout: [len u32][old_count u64].
                    let off = st.meta_log.region.offset;
                    let data_off = off + 256 + 256; // header + partition tail line
                    let old = machine.read_u64(Addr::pm(data_off + 4))?;
                    self.persist_count(machine, st, old)?;
                    st.meta_log
                        .host_clear(machine)
                        .map_err(|_| SimError::Invalid("clear"))?;
                }
                Ok(())
            }
            DbOp::Update => {
                let row_log = st.row_log.dev();
                let pm_table = st.pm_table;
                gpm_persist_begin(machine);
                // Blocks cooperatively drain the shared row log (see the KVS
                // recovery kernel): never block-parallel.
                let k = Communicating(FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                    while row_log.tail(ctx)? as u64 * 4 >= ROW_BYTES {
                        let mut old = [0u8; ROW_BYTES as usize];
                        row_log.read_top(ctx, &mut old)?;
                        let id = u64::from_le_bytes(old[0..8].try_into().unwrap());
                        ctx.st_bytes(Addr::pm(pm_table + id * ROW_STRIDE), &old)?;
                        ctx.gpm_persist()?;
                        row_log.remove(ctx, ROW_BYTES as usize)?;
                    }
                    Ok(())
                }));
                launch(machine, self.update_launch_cfg(), &k)?;
                gpm_persist_end(machine);
                // Rollback complete: retire the transaction (which also
                // retires the crashed batch's epoch — its stale meta tags
                // can never match a future epoch's).
                st.flag.commit(machine)?;
                Ok(())
            }
        }
    }

    /// Rebuilds the volatile HBM mirror from the durable PM table after a
    /// crash (one PM→GPU sweep over PCIe). Timed as a bulk DMA.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn rebuild_mirror(&self, machine: &mut Machine, st: &DbState) -> SimResult<()> {
        let bytes = self.params.table_bytes();
        let mut buf = vec![0u8; bytes as usize];
        machine.read(Addr::pm(st.pm_table), &mut buf)?;
        machine.host_write(Addr::hbm(st.hbm_table), &buf)?;
        let t = machine.cfg.dma_init_overhead + Ns(bytes as f64 / machine.cfg.pcie_bw);
        machine.clock.advance(t);
        Ok(())
    }

    /// In-place *retry* recovery for UPDATE batches: rebuilds the HBM
    /// mirror and touches nothing else — table, meta records and
    /// transaction flag stay as the crash left them, so resubmitting the
    /// in-flight batch applies exactly the rows that had not yet applied.
    /// Idempotent. Mutually exclusive (per crash) with the rollback in
    /// [`recover`](DbWorkload::recover), which clears the flag and thereby
    /// retires the epoch a retry would need.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn recover_for_retry(&self, machine: &mut Machine, st: &DbState) -> SimResult<()> {
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryBegin);
        }
        let result = self.rebuild_mirror(machine, st);
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryEnd);
        }
        result
    }

    /// Snapshots the durable PM table image (host-side read, no simulated
    /// cost) so tests can compare store state byte-for-byte across runs.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn store_image(&self, machine: &Machine, st: &DbState) -> SimResult<Vec<u8>> {
        let mut buf = vec![0u8; self.params.table_bytes() as usize];
        machine.read(Addr::pm(st.pm_table), &mut buf)?;
        Ok(buf)
    }
}

impl RecoveryOracle for DbWorkload {
    fn name(&self) -> &'static str {
        match self.params.op {
            DbOp::Insert => "gpDB (I)",
            DbOp::Update => "gpDB (U)",
        }
    }

    fn record(&mut self, machine: &mut Machine) -> SimResult<CrashSchedule> {
        let st = self.setup(machine, Mode::Gpm)?;
        let mut gauge = FuelGauge::record();
        let mut committed = 0;
        crate::oracle::expect_clean(self.run_batches_gauged(
            machine,
            &st,
            &mut gauge,
            &mut committed,
        ))?;
        Ok(gauge.into_schedule().expect("recording gauge"))
    }

    fn run_case(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        assert!(
            self.params.conventional_log_partitions.is_none(),
            "undo recovery requires the HCL backend (per-thread entries)"
        );
        let st = self.setup(machine, Mode::Gpm)?;
        let mut committed = 0u32;
        let res = self.run_batches_gauged(
            machine,
            &st,
            &mut FuelGauge::crash_with_policy(fuel, policy),
            &mut committed,
        );
        crate::oracle::settle_crash(machine, policy, res)?;
        self.recover(machine, &st)?;
        let p = self.params;
        match p.op {
            DbOp::Insert => {
                // The in-flight batch is rolled back via the metadata log:
                // the durable count names exactly the committed rows, and
                // every row below it is intact.
                let expect = p.initial_rows + committed as u64 * p.rows_per_insert;
                let got = machine.read_u64(Addr::pm(st.row_count))?;
                if got != expect {
                    return Ok(OracleVerdict::Fail(format!(
                        "row count {got} after recovery, want {expect} \
                         ({committed} committed batches)"
                    )));
                }
                for r in (0..expect).step_by(37) {
                    if machine.read_u64(Addr::pm(st.pm_table + r * ROW_STRIDE))? != r {
                        return Ok(OracleVerdict::Fail(format!(
                            "row {r} id corrupt after recovery"
                        )));
                    }
                }
            }
            DbOp::Update => {
                // Undo must roll column 3 back to the last committed batch.
                for r in 0..p.initial_rows {
                    let expected = if committed > 0 && r % UPDATE_MOD == UPDATE_RESIDUE {
                        updated_col_value(r, committed - 1)
                    } else {
                        row_value(r, 3, 0)
                    };
                    let got =
                        machine.read_u64(Addr::pm(st.pm_table + r * ROW_STRIDE + 8 + 3 * 8))?;
                    if got != expected {
                        return Ok(OracleVerdict::Fail(format!(
                            "row {r} col 3 = {got:#x} after recovery, want {expected:#x} \
                             ({committed} committed batches)"
                        )));
                    }
                }
            }
        }
        Ok(OracleVerdict::Pass)
    }

    fn supports_double_recovery(&self) -> bool {
        true
    }

    fn run_case_double_recovery(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        assert!(
            self.params.conventional_log_partitions.is_none(),
            "retry recovery requires the HCL backend"
        );
        let p = self.params;
        let st = self.setup(machine, Mode::Gpm)?;
        let mut committed = 0u32;
        let res = self.run_batches_gauged(
            machine,
            &st,
            &mut FuelGauge::crash_with_policy(fuel, policy),
            &mut committed,
        );
        crate::oracle::settle_crash(machine, policy, res)?;
        match p.op {
            DbOp::Insert => {
                // Inserts recover by metadata rollback, which is idempotent:
                // run it twice, then resubmit from the durable count.
                // Exactly-once here means the count names every row once —
                // a double apply would inflate it, a zero apply corrupt ids.
                self.recover(machine, &st)?;
                self.recover(machine, &st)?;
                let mut count = machine.read_u64(Addr::pm(st.row_count))?;
                let expect = p.initial_rows + committed as u64 * p.rows_per_insert;
                if count != expect {
                    return Ok(OracleVerdict::Fail(format!(
                        "row count {count} after double rollback, want {expect}"
                    )));
                }
                for b in committed..p.batches {
                    self.apply_batch(machine, &st, b, p.rows_per_insert, &mut count, Mode::Gpm)?;
                }
            }
            DbOp::Update => {
                // Updates retry in place: mirror rebuild (twice — it must be
                // idempotent), then resubmit the in-flight batch verbatim.
                self.recover_for_retry(machine, &st)?;
                self.recover_for_retry(machine, &st)?;
                let mut count = p.initial_rows;
                for b in committed..p.batches {
                    self.apply_batch(machine, &st, b, p.rows_per_insert, &mut count, Mode::Gpm)?;
                    if b == committed {
                        // Exactly-once check immediately after the retried
                        // batch (later batches would reset the versions):
                        // every matched row's meta record carries this
                        // epoch's tag with version exactly 1.
                        let epoch = st
                            .detect
                            .epoch(machine)
                            .map_err(|_| SimError::Invalid("detect epoch read failed"))?;
                        for r in 0..p.initial_rows {
                            if r % UPDATE_MOD != UPDATE_RESIDUE {
                                continue;
                            }
                            let meta = DetectableCas::host_read(
                                machine,
                                Addr::pm(st.upd_meta + r * UPD_META_BYTES),
                            )?;
                            if meta[3] != op_tag(epoch, r) {
                                return Ok(OracleVerdict::Fail(format!(
                                    "row {r} of retried batch {b} applied zero times"
                                )));
                            }
                            if meta[2] != 1 {
                                return Ok(OracleVerdict::Fail(format!(
                                    "row {r} of retried batch {b} applied {} times",
                                    meta[2]
                                )));
                            }
                            let got = machine
                                .read_u64(Addr::pm(st.pm_table + r * ROW_STRIDE + 8 + 3 * 8))?;
                            if got != updated_col_value(r, b) {
                                return Ok(OracleVerdict::Fail(format!(
                                    "row {r} col 3 wrong after retry of batch {b}"
                                )));
                            }
                        }
                    }
                }
            }
        }
        if !self.verify(machine, &st, Mode::Gpm)? {
            return Ok(OracleVerdict::Fail(
                "table diverges from the uncrashed reference after retry".into(),
            ));
        }
        Ok(OracleVerdict::Pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(op: DbOp) -> DbWorkload {
        let mut p = DbParams::quick();
        p.op = op;
        DbWorkload::new(p)
    }

    #[test]
    fn inserts_verify_under_gpm() {
        let mut m = Machine::default();
        let r = quick(DbOp::Insert).run(&mut m, Mode::Gpm).unwrap();
        assert!(r.verified);
        assert!(r.pm_write_bytes_gpu > 0);
    }

    #[test]
    fn updates_verify_under_gpm_and_cap() {
        let mut m1 = Machine::default();
        assert!(
            quick(DbOp::Update)
                .run(&mut m1, Mode::Gpm)
                .unwrap()
                .verified
        );
        let mut m2 = Machine::default();
        assert!(
            quick(DbOp::Update)
                .run(&mut m2, Mode::CapMm)
                .unwrap()
                .verified
        );
    }

    #[test]
    fn insert_wa_is_modest_update_wa_is_large() {
        let run = |op, mode| {
            let mut m = Machine::default();
            quick(op).run(&mut m, mode).unwrap()
        };
        let gi = run(DbOp::Insert, Mode::Gpm);
        let ci = run(DbOp::Insert, Mode::CapMm);
        let gu = run(DbOp::Update, Mode::Gpm);
        let cu = run(DbOp::Update, Mode::CapMm);
        let wa_insert = ci.pm_write_bytes_total() as f64 / gi.pm_write_bytes_total() as f64;
        let wa_update = cu.pm_write_bytes_total() as f64 / gu.pm_write_bytes_total() as f64;
        // At this tiny test scale the 128 KiB DMA chunking inflates the
        // INSERT WA (the appended region is only 28 KiB); the full-scale
        // values — ≈1.2 and ≈14 — are produced by the Table 4 harness.
        assert!(
            wa_insert < 8.0,
            "INSERT WA bounded by chunking, got {wa_insert:.2}"
        );
        assert!(
            wa_update > 5.0,
            "Table 4: UPDATE WA ≈ 20, got {wa_update:.2}"
        );
        assert!(
            wa_update > wa_insert,
            "insert WA {wa_insert:.2} vs update WA {wa_update:.2}"
        );
    }

    #[test]
    fn gpm_beats_cap_for_both_ops() {
        for op in [DbOp::Insert, DbOp::Update] {
            let mut m1 = Machine::default();
            let g = quick(op).run(&mut m1, Mode::Gpm).unwrap();
            let mut m2 = Machine::default();
            let c = quick(op).run(&mut m2, Mode::CapFs).unwrap();
            assert!(
                c.elapsed > g.elapsed,
                "{op:?}: cap={} gpm={}",
                c.elapsed,
                g.elapsed
            );
        }
    }

    #[test]
    fn cpu_openmp_variant_is_slower_than_gpm() {
        let mut m1 = Machine::default();
        let g = quick(DbOp::Update).run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let c = quick(DbOp::Update).run_cpu(&mut m2).unwrap();
        assert!(
            c.elapsed > g.elapsed * 1.5,
            "gpm={} cpu={}",
            g.elapsed,
            c.elapsed
        );
    }

    #[test]
    fn insert_recovery_rolls_back_count() {
        let mut m = Machine::default();
        let r = quick(DbOp::Insert).run_with_recovery(&mut m).unwrap();
        assert!(r.verified);
        let rl = r.recovery.unwrap();
        assert!(rl.0 > 0.0);
        // gpDB(I) restores almost instantly (Table 5: 0.01%).
        assert!(rl / r.elapsed < 0.05, "rl={rl} op={}", r.elapsed);
    }

    #[test]
    fn update_recovery_undoes_last_batch() {
        let mut m = Machine::default();
        let r = quick(DbOp::Update).run_with_recovery(&mut m).unwrap();
        assert!(r.verified);
        assert!(r.recovery.unwrap() > Ns::ZERO);
    }

    #[test]
    fn select_aggregation_matches_host() {
        let mut m = Machine::default();
        let w = quick(DbOp::Insert);
        let (sum, count, t) = w.run_select(&mut m, 5, 2, 3).unwrap();
        // Host reference over the same initial rows.
        let mut esum = 0u64;
        let mut ecount = 0u64;
        for r in 0..w.params.initial_rows {
            if r % 5 == 2 {
                esum = esum.wrapping_add(row_value(r, 3, 0));
                ecount += 1;
            }
        }
        assert_eq!(sum, esum);
        assert_eq!(count, ecount);
        assert!(t.0 > 0.0);
    }

    #[test]
    fn select_persists_nothing() {
        let mut m = Machine::default();
        let before = m.stats;
        quick(DbOp::Insert).run_select(&mut m, 7, 0, 1).unwrap();
        let d = m.stats.delta(&before);
        assert_eq!(d.pm_write_bytes_gpu, 0, "SELECT is read-only");
        assert_eq!(d.system_fences, 0);
    }

    #[test]
    fn ndp_mode_verifies() {
        let mut m = Machine::default();
        let r = quick(DbOp::Update).run(&mut m, Mode::GpmNdp).unwrap();
        assert!(r.verified);
    }

    /// The detectable UPDATE kernel carries no cross-block conflicts (rows
    /// and meta records are block-aligned), so it must commit under the
    /// block-parallel engine, and engine threads must not change the media.
    #[test]
    fn update_kernel_commits_block_parallel_deterministically() {
        let drive = |engine_threads: u32| {
            let mut m = Machine::default();
            let w = quick(DbOp::Update);
            let st = w.setup(&mut m, Mode::Gpm).unwrap();
            let epoch = w.enter_epoch(&mut m, &st, 0).unwrap();
            let count = w.params.initial_rows;
            gpm_persist_begin(&mut m);
            let r = launch(
                &mut m,
                w.update_launch_cfg().with_engine_threads(engine_threads),
                &w.update_kernel(&st, 0, count, epoch, true, true),
            )
            .unwrap();
            gpm_persist_end(&mut m);
            st.flag.commit(&mut m).unwrap();
            let mut table = vec![0u8; w.params.table_bytes() as usize];
            m.read(Addr::pm(st.pm_table), &mut table).unwrap();
            (r.threads_used, table)
        };
        let (t1, media1) = drive(1);
        let (t4, media4) = drive(4);
        assert_eq!(t1, 1);
        assert_eq!(t4, 4, "detectable UPDATE must commit block-parallel");
        assert_eq!(media1, media4, "PM media must be bit-identical");
    }

    /// The double-recovery oracle passes for both query types at sampled
    /// crash boundaries, and the injected double-applying CAS is caught.
    #[test]
    fn double_recovery_exactly_once_and_injected_bug_caught() {
        for op in [DbOp::Insert, DbOp::Update] {
            let mut w = quick(op);
            assert!(w.supports_double_recovery());
            let mut m = Machine::default();
            let sched = w.record(&mut m).unwrap();
            let bounds = sched.boundaries().to_vec();
            for fuel in bounds.iter().step_by(bounds.len() / 8 + 1) {
                let mut m = Machine::default();
                let v = w
                    .run_case_double_recovery(&mut m, *fuel, CrashPolicy::AllApplied)
                    .unwrap();
                assert!(v.passed(), "{op:?} fuel={fuel}: {v:?}");
            }
            if op == DbOp::Update {
                let mut buggy = quick(op).with_double_apply_bug();
                let caught = bounds.iter().any(|&fuel| {
                    let mut m = Machine::default();
                    !buggy
                        .run_case_double_recovery(&mut m, fuel, CrashPolicy::AllApplied)
                        .unwrap()
                        .passed()
                });
                assert!(caught, "deliberate double-apply bug went undetected");
            }
        }
    }
}
