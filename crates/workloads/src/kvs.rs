//! gpKVS: a GPU-accelerated persistent key-value store (§4.1, §5.2).
//!
//! Derived from MegaKV as the paper describes: an 8-way set-associative
//! table, batched SET/GET operations, groups of eight threads cooperating
//! per operation, and write-ahead undo logging (HCL) for recoverable SETs
//! (Figure 6). The table lives on PM under GPM; a volatile HBM mirror
//! serves GETs ("GETs are mostly served out of the GPU's fast HBM", §6.1).
//!
//! Under CAP the table lives only in HBM and the *entire* table is
//! transferred and persisted by the CPU after each batch — the
//! write-amplification of Table 4.

use std::collections::HashMap;

use gpm_cap::{cap_persist_region, flush_from_cpu, CapFlavor};
use gpm_core::{
    gpm_map, gpm_persist_begin, gpm_persist_end, gpmlog_create_hcl, GpmLog, GpmThreadExt, TxnFlag,
};
use gpm_gpu::{
    launch, launch_with_fuel, launch_with_gauge, Communicating, FnKernel, FuelGauge, LaunchConfig,
    LaunchError, ThreadCtx,
};
use gpm_sim::{
    Addr, CrashPolicy, CrashSchedule, EventKind, Machine, Ns, OracleVerdict, SimError, SimResult,
};

use crate::metrics::{metered, BatchMetrics, Mode, RunMetrics};
use crate::oracle::RecoveryOracle;

/// One gpKVS request: `(key, value, is_get)`. GETs ignore the value and
/// write their result into the state's result buffer at the op's index.
pub type KvsOp = (u64, u64, bool);

/// Ways per set (MegaKV-style set-associative layout).
pub const WAYS: u64 = 8;
/// Threads cooperating on one operation (`THRD_GRP_SZ` in Figure 6).
pub const THREAD_GROUP: u64 = 8;
/// Bytes per table entry: key u64 + value u64.
const ENTRY: u64 = 16;
/// Undo-log record: set u32, way u32, old key u64, old value u64.
const LOG_ENTRY: usize = 24;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct KvsParams {
    /// Number of sets (table holds `sets × 8` pairs).
    pub sets: u64,
    /// SET/GET operations per batch.
    pub ops_per_batch: u64,
    /// Batches executed.
    pub batches: u32,
    /// Fraction of GETs per mille (0 = pure SETs, 950 = the 95:5 mix).
    pub get_permille: u32,
    /// CPU threads for CAP-mm persisting.
    pub cap_threads: u32,
    /// Per-request CPU pipeline cost (MegaKV's receive/index stages).
    pub pipeline_ns: f64,
    /// Additional CPU cost per GET response (value marshalling + send).
    pub get_response_ns: f64,
    /// Undo-log backend: `None` = HCL (the default), `Some(p)` =
    /// conventional distributed logging with `p` partitions (the Figure 11
    /// baseline).
    pub conventional_log_partitions: Option<u32>,
    /// Key skew: `None` = unique uniform keys per batch, `Some(theta)` =
    /// Zipfian key popularity over a bounded key universe (YCSB-style).
    pub key_skew: Option<f64>,
    /// GPU persistency model for every kernel this workload launches.
    /// `None` defers to `GPM_PERSISTENCY` (then strict), exactly like
    /// [`LaunchConfig::persistency`]; `Some(model)` pins it, which is how
    /// harnesses (enginebench, gpm-serve) select epoch explicitly.
    pub persistency: Option<gpm_gpu::PersistencyModel>,
}

impl Default for KvsParams {
    fn default() -> KvsParams {
        KvsParams {
            sets: 131_072,
            ops_per_batch: 8_192,
            batches: 4,
            get_permille: 0,
            cap_threads: 32,
            pipeline_ns: 330.0,
            get_response_ns: 400.0,
            conventional_log_partitions: None,
            key_skew: None,
            persistency: None,
        }
    }
}

impl KvsParams {
    /// Small configuration for unit tests.
    pub fn quick() -> KvsParams {
        KvsParams {
            sets: 2_048,
            ops_per_batch: 512,
            batches: 2,
            ..KvsParams::default()
        }
    }

    /// The 95% GET / 5% SET mix of Figure 9.
    pub fn with_get_mix(mut self) -> KvsParams {
        self.get_permille = 950;
        self
    }

    /// Pins the GPU persistency model for every launch of this workload.
    pub fn with_persistency(mut self, model: gpm_gpu::PersistencyModel) -> KvsParams {
        self.persistency = Some(model);
        self
    }

    fn table_bytes(&self) -> u64 {
        self.sets * WAYS * ENTRY
    }
}

/// The gpKVS workload instance.
#[derive(Debug)]
pub struct KvsWorkload {
    /// Parameters of this instance.
    pub params: KvsParams,
    /// Campaign self-test knob: recovery deliberately skips the newest
    /// undo-log entry. The campaign oracle must catch this.
    pub inject_recovery_bug: bool,
}

/// Live gpKVS instance state: the PM table, its HBM mirror, the batch
/// buffers, the undo log and the transaction flag. Created once by
/// [`KvsWorkload::setup`] and reused across batches — the closed-loop suite
/// owns one per run, a `gpm-serve` shard owns one per shard.
#[derive(Debug)]
pub struct KvsState {
    pm_table: u64,
    hbm_table: u64,
    flag: TxnFlag,
    staging_dram: u64,
    cap_pm: u64,
    batch_keys: u64,
    batch_vals: u64,
    batch_is_get: u64,
    get_results: u64,
    log: GpmLog,
}

fn hash_set(key: u64, sets: u64) -> u64 {
    gpm_pmkv::hash64(key) % sets
}

impl KvsWorkload {
    /// Creates the workload.
    pub fn new(params: KvsParams) -> KvsWorkload {
        KvsWorkload {
            params,
            inject_recovery_bug: false,
        }
    }

    /// Enables the deliberate recovery bug (campaign self-test).
    pub fn with_recovery_bug(mut self) -> KvsWorkload {
        self.inject_recovery_bug = true;
        self
    }

    fn launch_cfg(&self) -> LaunchConfig {
        let cfg = LaunchConfig::for_elements(self.params.ops_per_batch * THREAD_GROUP, 256);
        match self.params.persistency {
            Some(model) => cfg.with_persistency(model),
            None => cfg,
        }
    }

    /// Allocates the table, mirror, batch buffers, undo log and transaction
    /// flag on `machine` (durable setup, untimed).
    ///
    /// # Errors
    ///
    /// Fails on allocation or PM-file errors.
    pub fn setup(&self, machine: &mut Machine, mode: Mode) -> SimResult<KvsState> {
        let p = &self.params;
        let pm_table = gpm_map(machine, "/pm/gpkvs/table", p.table_bytes(), true)?.offset;
        let flag = TxnFlag::create(machine, "/pm/gpkvs/flag")?;
        let hbm_table = machine.alloc_hbm(p.table_bytes())?;
        let staging_dram = machine.alloc_dram(p.table_bytes())?;
        let cap_pm = if matches!(mode, Mode::CapFs | Mode::CapMm) {
            machine.alloc_pm(p.table_bytes())?
        } else {
            0
        };
        let batch_keys = machine.alloc_hbm(p.ops_per_batch * 8)?;
        let batch_vals = machine.alloc_hbm(p.ops_per_batch * 8)?;
        let batch_is_get = machine.alloc_hbm(p.ops_per_batch * 4)?;
        let get_results = machine.alloc_hbm(p.ops_per_batch * 8)?;
        let cfg = self.launch_cfg();
        let log_size = cfg.total_threads() * LOG_ENTRY as u64 * 2;
        let log = match p.conventional_log_partitions {
            None => gpmlog_create_hcl(machine, "/pm/gpkvs/log", log_size, cfg.grid, cfg.block),
            Some(parts) => {
                gpm_core::gpmlog_create_conv(machine, "/pm/gpkvs/log", log_size * 2, parts)
            }
        }
        .map_err(|_| SimError::Invalid("failed to create gpKVS log"))?;
        Ok(KvsState {
            pm_table,
            hbm_table,
            flag,
            staging_dram,
            cap_pm,
            batch_keys,
            batch_vals,
            batch_is_get,
            get_results,
            log,
        })
    }

    /// Deterministic batch generator. With no skew, keys are unique and
    /// uniform per batch (so undo recovery is byte-exact); with
    /// `key_skew = Some(theta)`, keys follow a Zipfian popularity over a
    /// bounded universe (hot keys repeat within and across batches).
    fn gen_batch(&self, batch: u32) -> Vec<(u64, u64, bool)> {
        let p = &self.params;
        let zipf = p
            .key_skew
            .map(|theta| crate::datagen::Zipf::new(p.sets * 2, theta));
        (0..p.ops_per_batch)
            .map(|i| {
                let key = match &zipf {
                    Some(z) => {
                        let rank = z.sample((batch as u64) << 32 | i);
                        gpm_pmkv::hash64(rank.wrapping_mul(0x9E37)) | 1
                    }
                    None => gpm_pmkv::hash64((batch as u64) << 32 | (i + 1)) | 1,
                };
                let val = key.wrapping_mul(2_654_435_761).wrapping_add(batch as u64);
                let is_get = gpm_pmkv::hash64(key ^ 0xDEAD) % 1000 < p.get_permille as u64;
                (key, val, is_get)
            })
            .collect()
    }

    fn upload_batch(
        &self,
        machine: &mut Machine,
        st: &KvsState,
        ops: &[(u64, u64, bool)],
    ) -> SimResult<()> {
        let p = &self.params;
        let mut keys = Vec::with_capacity(ops.len() * 8);
        let mut vals = Vec::with_capacity(ops.len() * 8);
        let mut gets = Vec::with_capacity(ops.len() * 4);
        for (k, v, g) in ops {
            keys.extend_from_slice(&k.to_le_bytes());
            vals.extend_from_slice(&v.to_le_bytes());
            gets.extend_from_slice(&(*g as u32).to_le_bytes());
        }
        machine.host_write(Addr::hbm(st.batch_keys), &keys)?;
        machine.host_write(Addr::hbm(st.batch_vals), &vals)?;
        machine.host_write(Addr::hbm(st.batch_is_get), &gets)?;
        // Request ingestion: MegaKV's CPU-side receive+index pipeline, plus
        // the DMA of the request batch to the GPU, plus per-GET response
        // marshalling (the common cost that moderates the 95:5 mix's GPM
        // advantage, §6.1).
        let n_gets = ops.iter().filter(|o| o.2).count() as f64;
        let t = Ns(ops.len() as f64 * p.pipeline_ns)
            + Ns(n_gets * p.get_response_ns)
            + machine.cfg.dma_init_overhead
            + Ns((keys.len() + vals.len() + gets.len()) as f64 / machine.cfg.pcie_bw);
        machine.clock.advance(t);
        Ok(())
    }

    /// The batched SET/GET kernel (Figure 6a). `persist=false` is the
    /// GPM-NDP configuration; `to_pm=false` is CAP (HBM only).
    #[allow(clippy::too_many_arguments)]
    fn batch_kernel(
        &self,
        st: &KvsState,
        n_ops: u64,
        to_pm: bool,
        persist: bool,
    ) -> impl gpm_gpu::Kernel<State = (), Shared = ()> + '_ {
        let p = self.params;
        let (pm_table, hbm_table) = (st.pm_table, st.hbm_table);
        let (keys, vals, gets, results) = (
            st.batch_keys,
            st.batch_vals,
            st.batch_is_get,
            st.get_results,
        );
        let log = st.log.dev();
        // Threads across blocks append to the shared undo log (atomic tail
        // bumps on shared partitions): cross-block communication. Within a
        // warp, 7 of every 8 lanes retire after the cooperative probe and
        // the survivor's GET/SET work is key-dependent, so warps diverge by
        // construction and the kernel stays per-lane; no `run_warp`.
        Communicating(FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            let tid = ctx.global_id();
            let op = tid / THREAD_GROUP;
            if op >= n_ops {
                return Ok(());
            }
            let key = ctx.ld_u64(Addr::hbm(keys + op * 8))?;
            let set = hash_set(key, p.sets);
            ctx.compute(Ns(40.0)); // hash + way-probe share of the group
                                   // One thread of the group is selected to perform the operation
                                   // (the others assisted the cooperative probe).
            if tid % THREAD_GROUP != key % THREAD_GROUP {
                return Ok(());
            }
            let is_get = ctx.ld_u32(Addr::hbm(gets + op * 4))? != 0;
            // Probe the 8 ways in the HBM mirror.
            let mut way = (key >> 32) % WAYS; // eviction victim by default
            let mut empty: Option<u64> = None;
            for w in 0..WAYS {
                let k = ctx.ld_u64(Addr::hbm(hbm_table + (set * WAYS + w) * ENTRY))?;
                if k == key {
                    way = w;
                    empty = None;
                    break;
                }
                if k == 0 && empty.is_none() {
                    empty = Some(w);
                }
            }
            if let Some(w) = empty {
                way = w;
            }
            let slot = (set * WAYS + way) * ENTRY;
            if is_get {
                let v = ctx.ld_u64(Addr::hbm(hbm_table + slot + 8))?;
                ctx.st_u64(Addr::hbm(results + op * 8), v)?;
                return Ok(());
            }
            let value = ctx.ld_u64(Addr::hbm(vals + op * 8))?;
            if to_pm {
                // Undo-log the pair currently in the selected location.
                let old_key = ctx.ld_u64(Addr::hbm(hbm_table + slot))?;
                let old_val = ctx.ld_u64(Addr::hbm(hbm_table + slot + 8))?;
                let mut entry = [0u8; LOG_ENTRY];
                entry[0..4].copy_from_slice(&(set as u32).to_le_bytes());
                entry[4..8].copy_from_slice(&(way as u32).to_le_bytes());
                entry[8..16].copy_from_slice(&old_key.to_le_bytes());
                entry[16..24].copy_from_slice(&old_val.to_le_bytes());
                if persist {
                    log.insert(ctx, &entry)?;
                } else {
                    // GPM-NDP: log writes go to PM but are not fenced; the
                    // CPU flushes the region after the kernel.
                    log.insert_unfenced(ctx, &entry)?;
                }
                let mut pair = [0u8; ENTRY as usize];
                pair[0..8].copy_from_slice(&key.to_le_bytes());
                pair[8..16].copy_from_slice(&value.to_le_bytes());
                ctx.st_bytes(Addr::pm(pm_table + slot), &pair)?;
                if persist {
                    ctx.gpm_persist()?;
                }
            }
            // Keep the mirror coherent.
            ctx.st_u64(Addr::hbm(hbm_table + slot), key)?;
            ctx.st_u64(Addr::hbm(hbm_table + slot + 8), value)?;
            Ok(())
        }))
    }

    /// Applies one batch of operations through the shared kernel-launch
    /// path: upload + launch + persist/commit protocol for `mode`. `seq`
    /// numbers the transaction (the flag records `seq + 1`). This is the
    /// single entry point both the closed-loop suite and the `gpm-serve`
    /// frontend drive — there is no second kernel-launch code path.
    ///
    /// Batches may be any size up to [`KvsParams::ops_per_batch`] (the
    /// buffer capacity).
    ///
    /// # Errors
    ///
    /// Fails for unsupported modes, oversized batches, or platform errors.
    pub fn apply_batch(
        &self,
        machine: &mut Machine,
        st: &KvsState,
        seq: u64,
        ops: &[KvsOp],
        mode: Mode,
    ) -> SimResult<BatchMetrics> {
        match self.apply_batch_gauged(machine, st, seq, ops, mode, &mut FuelGauge::Unlimited) {
            Ok(m) => Ok(m),
            Err(LaunchError::Crashed(_)) => unreachable!("unlimited gauge never crashes"),
            Err(LaunchError::Sim(e)) => Err(e),
        }
    }

    /// [`apply_batch`](KvsWorkload::apply_batch) driven through a
    /// [`FuelGauge`], so callers can record crash schedules or inject a
    /// mid-batch crash (the `gpm-serve` retry drill and the campaign both
    /// ride this).
    ///
    /// # Errors
    ///
    /// [`LaunchError::Crashed`] when the gauge's fuel runs out mid-kernel;
    /// [`LaunchError::Sim`] on functional errors.
    pub fn apply_batch_gauged(
        &self,
        machine: &mut Machine,
        st: &KvsState,
        seq: u64,
        ops: &[KvsOp],
        mode: Mode,
        gauge: &mut FuelGauge,
    ) -> Result<BatchMetrics, LaunchError> {
        let p = &self.params;
        if ops.len() as u64 > p.ops_per_batch {
            return Err(LaunchError::Sim(SimError::Invalid(
                "batch exceeds the ops_per_batch buffer capacity",
            )));
        }
        let t0 = machine.clock.now();
        let s0 = machine.stats;
        self.upload_batch(machine, st, ops)
            .map_err(LaunchError::Sim)?;
        let n = ops.len() as u64;
        let base = LaunchConfig::for_elements(n * THREAD_GROUP, 256);
        let cfg = match p.persistency {
            Some(model) => base.with_persistency(model),
            None => base,
        };
        match mode {
            Mode::Gpm => {
                st.flag.begin(machine, seq + 1).map_err(LaunchError::Sim)?;
                gpm_persist_begin(machine);
                launch_with_gauge(machine, cfg, &self.batch_kernel(st, n, true, true), gauge)?;
                gpm_persist_end(machine);
                st.flag.commit(machine).map_err(LaunchError::Sim)?;
                st.log
                    .host_clear(machine)
                    .map_err(|_| LaunchError::Sim(SimError::Invalid("log clear failed")))?;
            }
            Mode::GpmNdp => {
                launch_with_gauge(machine, cfg, &self.batch_kernel(st, n, true, false), gauge)?;
                // CPU guarantees persistence for the whole table + log.
                flush_from_cpu(machine, st.pm_table, p.table_bytes(), p.cap_threads);
                flush_from_cpu(
                    machine,
                    st.log.region.offset,
                    st.log.region.len,
                    p.cap_threads,
                );
                // Batch committed: truncate the undo log.
                st.log
                    .host_clear(machine)
                    .map_err(|_| LaunchError::Sim(SimError::Invalid("clear")))?;
            }
            Mode::CapFs | Mode::CapMm => {
                launch_with_gauge(machine, cfg, &self.batch_kernel(st, n, false, false), gauge)?;
                let flavor = if mode == Mode::CapFs {
                    CapFlavor::Fs
                } else {
                    CapFlavor::Mm {
                        threads: p.cap_threads,
                    }
                };
                cap_persist_region(
                    machine,
                    flavor,
                    st.hbm_table,
                    st.staging_dram,
                    st.cap_pm,
                    p.table_bytes(),
                )
                .map_err(LaunchError::Sim)?;
            }
            Mode::Gpufs | Mode::CpuPm => {
                return Err(LaunchError::Sim(SimError::Invalid(
                    "mode unsupported for gpKVS",
                )));
            }
        }
        let d = machine.stats.delta(&s0);
        Ok(BatchMetrics {
            ops: n,
            elapsed: machine.clock.now() - t0,
            pm_write_bytes_gpu: d.pm_write_bytes_gpu,
            bytes_persisted: d.bytes_persisted,
        })
    }

    fn run_batches(&self, machine: &mut Machine, st: &KvsState, mode: Mode) -> SimResult<()> {
        for b in 0..self.params.batches {
            let ops = self.gen_batch(b);
            self.apply_batch(machine, st, b as u64, &ops, mode)?;
        }
        Ok(())
    }

    /// Reads the result slot a GET at batch index `op_index` wrote (serving
    /// frontends return this value to the client).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn get_result(&self, machine: &Machine, st: &KvsState, op_index: u64) -> SimResult<u64> {
        machine.read_u64(Addr::hbm(st.get_results + op_index * 8))
    }

    /// Rebuilds the volatile HBM mirror from the durable PM table after a
    /// crash (one PM→GPU sweep over PCIe), so a recovered instance can
    /// serve GETs out of HBM again. Timed as a bulk DMA.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn rebuild_mirror(&self, machine: &mut Machine, st: &KvsState) -> SimResult<()> {
        let bytes = self.params.table_bytes();
        let mut buf = vec![0u8; bytes as usize];
        machine.read(Addr::pm(st.pm_table), &mut buf)?;
        machine.host_write(Addr::hbm(st.hbm_table), &buf)?;
        let t = machine.cfg.dma_init_overhead + Ns(bytes as f64 / machine.cfg.pcie_bw);
        machine.clock.advance(t);
        Ok(())
    }

    /// Reference model: replays the batches in thread order.
    fn reference_table(&self) -> HashMap<(u64, u64), (u64, u64)> {
        let p = &self.params;
        let mut table: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
        for b in 0..p.batches {
            for (key, val, is_get) in self.gen_batch(b) {
                if is_get {
                    continue;
                }
                let set = hash_set(key, p.sets);
                let mut way = (key >> 32) % WAYS;
                let mut empty = None;
                for w in 0..WAYS {
                    let cur = table.get(&(set, w)).map_or(0, |e| e.0);
                    if cur == key {
                        way = w;
                        empty = None;
                        break;
                    }
                    if cur == 0 && empty.is_none() {
                        empty = Some(w);
                    }
                }
                if let Some(w) = empty {
                    way = w;
                }
                table.insert((set, way), (key, val));
            }
        }
        table
    }

    fn verify(&self, machine: &Machine, st: &KvsState, mode: Mode) -> SimResult<bool> {
        let reference = self.reference_table();
        let base = match mode {
            Mode::Gpm | Mode::GpmNdp => st.pm_table,
            Mode::CapFs | Mode::CapMm => st.cap_pm,
            _ => return Ok(false),
        };
        for (&(set, way), &(k, v)) in &reference {
            let slot = base + (set * WAYS + way) * ENTRY;
            if machine.read_u64(Addr::pm(slot))? != k || machine.read_u64(Addr::pm(slot + 8))? != v
            {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Runs the workload under `mode` on a fresh machine region.
    ///
    /// # Errors
    ///
    /// Fails for unsupported modes or on platform errors.
    pub fn run(&self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        let st = self.setup(machine, mode)?;
        let mut metrics = metered(machine, |m| {
            self.run_batches(m, &st, mode)?;
            Ok::<bool, SimError>(true)
        })?;
        metrics.verified = self.verify(machine, &st, mode)?;
        Ok(metrics)
    }

    /// Measures worst-case restoration latency (Table 5): runs all batches,
    /// then simulates a crash *just before the last transaction commits*
    /// (flag still set, log still populated) and times the undo kernel.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_with_recovery(&self, machine: &mut Machine) -> SimResult<RunMetrics> {
        assert!(
            self.params.conventional_log_partitions.is_none(),
            "undo recovery requires the HCL backend (per-thread entries)"
        );
        let st = self.setup(machine, Mode::Gpm)?;
        let p = &self.params;
        let mut metrics = metered(machine, |m| {
            for b in 0..p.batches {
                let ops = self.gen_batch(b);
                self.upload_batch(m, &st, &ops)?;
                st.flag.begin(m, b as u64 + 1)?;
                gpm_persist_begin(m);
                launch(
                    m,
                    self.launch_cfg(),
                    &self.batch_kernel(&st, p.ops_per_batch, true, true),
                )?;
                gpm_persist_end(m);
                if b + 1 < p.batches {
                    st.flag.commit(m)?;
                    st.log
                        .host_clear(m)
                        .map_err(|_| SimError::Invalid("clear"))?;
                }
                // Final batch: crash before commit.
            }
            Ok::<bool, SimError>(true)
        })?;
        machine.crash();
        let t0 = machine.clock.now();
        self.recover(machine, &st)?;
        metrics.recovery = Some(machine.clock.now() - t0);
        // After undo, the last batch is rolled back: state matches batches-1.
        let smaller = KvsWorkload::new(KvsParams {
            batches: p.batches - 1,
            ..*p
        });
        metrics.verified = smaller.verify(machine, &st, Mode::Gpm)?;
        Ok(metrics)
    }

    /// Crash-injected run: crashes mid-batch after `fuel` operations, then
    /// recovers. Returns whether post-recovery verification succeeded.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_crash_injected(&self, machine: &mut Machine, fuel: u64) -> SimResult<bool> {
        assert!(
            self.params.key_skew.is_none(),
            "exact undo verification requires unique keys (no skew)"
        );
        let st = self.setup(machine, Mode::Gpm)?;
        let ops = self.gen_batch(0);
        self.upload_batch(machine, &st, &ops)?;
        st.flag.begin(machine, 1)?;
        gpm_persist_begin(machine);
        match launch_with_fuel(
            machine,
            self.launch_cfg(),
            &self.batch_kernel(&st, self.params.ops_per_batch, true, true),
            fuel,
        ) {
            Ok(_) => {
                gpm_persist_end(machine);
                machine.crash();
            }
            Err(LaunchError::Crashed(_)) => {}
            Err(LaunchError::Sim(e)) => return Err(e),
        }
        self.recover(machine, &st)?;
        // All of batch 0 was undone: none of its keys may remain in the PM
        // table.
        for (key, _, is_get) in self.gen_batch(0) {
            if is_get {
                continue;
            }
            let set = hash_set(key, self.params.sets);
            for w in 0..WAYS {
                let slot = st.pm_table + (set * WAYS + w) * ENTRY;
                if machine.read_u64(Addr::pm(slot))? == key {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// The recovery kernel (Figure 6b): undo logged insertions, newest
    /// first, removing each entry only after the store is persisted.
    /// Public so a serving frontend can replay recovery when it boots a
    /// shard over a crashed machine image, before admitting traffic.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn recover(&self, machine: &mut Machine, st: &KvsState) -> SimResult<()> {
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryBegin);
        }
        let result = match self.recover_gauged(machine, st, &mut FuelGauge::Unlimited) {
            Ok(()) => Ok(()),
            Err(LaunchError::Crashed(_)) => unreachable!("unlimited gauge never crashes"),
            Err(LaunchError::Sim(e)) => Err(e),
        };
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryEnd);
        }
        result
    }

    /// Gauge-driven recovery. With a crashing gauge the undo kernel itself
    /// can run out of fuel mid-drain — the double-crash scenario. Because
    /// each entry is removed only *after* its undo store persists, a
    /// partial drain leaves the log replayable and a second [`recover`]
    /// call is idempotent.
    ///
    /// When `inject_recovery_bug` is set, thread 0 drops the newest undo
    /// entry without applying it — the deliberate bug the campaign's
    /// self-test must catch.
    ///
    /// [`recover`]: KvsWorkload::recover
    fn recover_gauged(
        &self,
        machine: &mut Machine,
        st: &KvsState,
        gauge: &mut FuelGauge,
    ) -> Result<(), LaunchError> {
        if st.flag.active(machine).map_err(LaunchError::Sim)? == 0 {
            return Ok(()); // no transaction was active
        }
        // The deliberate bug targets the first thread whose per-thread HCL
        // partition holds an entry: that thread drops it without applying.
        let victim = if self.inject_recovery_bug {
            let mut v = None;
            for tid in 0..self.launch_cfg().total_threads() {
                let tail = st
                    .log
                    .host_tail(machine, tid)
                    .map_err(|_| LaunchError::Sim(SimError::Invalid("log tail")))?;
                if tail as usize * 4 >= LOG_ENTRY {
                    v = Some(tid);
                    break;
                }
            }
            v
        } else {
            None
        };
        let log = st.log.dev();
        let pm_table = st.pm_table;
        gpm_persist_begin(machine);
        // Blocks cooperatively drain the shared log: each iteration's tail
        // read must see other blocks' removals, so this kernel can never run
        // against a frozen snapshot.
        let k = Communicating(FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            if Some(ctx.global_id()) == victim && log.tail(ctx)? as usize * 4 >= LOG_ENTRY {
                log.remove(ctx, LOG_ENTRY)?;
            }
            while log.tail(ctx)? as usize * 4 >= LOG_ENTRY {
                let mut entry = [0u8; LOG_ENTRY];
                log.read_top(ctx, &mut entry)?;
                let set = u32::from_le_bytes(entry[0..4].try_into().unwrap()) as u64;
                let way = u32::from_le_bytes(entry[4..8].try_into().unwrap()) as u64;
                let slot = pm_table + (set * WAYS + way) * ENTRY;
                ctx.st_bytes(Addr::pm(slot), &entry[8..24])?;
                ctx.gpm_persist()?;
                log.remove(ctx, LOG_ENTRY)?;
            }
            Ok(())
        }));
        launch_with_gauge(machine, self.launch_cfg(), &k, gauge)?;
        gpm_persist_end(machine);
        // Recovery complete: clear the transaction flag.
        st.flag.commit(machine).map_err(LaunchError::Sim)?;
        Ok(())
    }

    /// Gauge-driven GPM batch loop for the campaign oracle. `committed`
    /// tracks how many batches fully committed before the crash (if any).
    fn run_batches_gauged(
        &self,
        machine: &mut Machine,
        st: &KvsState,
        gauge: &mut FuelGauge,
        committed: &mut u32,
    ) -> Result<(), LaunchError> {
        for b in 0..self.params.batches {
            let ops = self.gen_batch(b);
            self.apply_batch_gauged(machine, st, b as u64, &ops, Mode::Gpm, gauge)?;
            *committed = b + 1;
        }
        Ok(())
    }

    /// Double-crash scenario: crash mid-batch after `fuel` ops, start the
    /// undo kernel but crash it again after `recovery_fuel` ops, then run
    /// recovery a second time to completion. Returns whether the in-flight
    /// batch was fully rolled back — i.e. whether re-recovery after a crash
    /// inside recovery is idempotent.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_double_crash(
        &self,
        machine: &mut Machine,
        fuel: u64,
        recovery_fuel: u64,
    ) -> SimResult<bool> {
        assert!(
            self.params.key_skew.is_none(),
            "exact undo verification requires unique keys (no skew)"
        );
        let st = self.setup(machine, Mode::Gpm)?;
        let ops = self.gen_batch(0);
        self.upload_batch(machine, &st, &ops)?;
        st.flag.begin(machine, 1)?;
        gpm_persist_begin(machine);
        match launch_with_fuel(
            machine,
            self.launch_cfg(),
            &self.batch_kernel(&st, self.params.ops_per_batch, true, true),
            fuel,
        ) {
            Ok(_) => {
                gpm_persist_end(machine);
                machine.crash();
            }
            Err(LaunchError::Crashed(_)) => {}
            Err(LaunchError::Sim(e)) => return Err(e),
        }
        // First recovery attempt dies after `recovery_fuel` ops.
        match self.recover_gauged(machine, &st, &mut FuelGauge::crash(recovery_fuel)) {
            Ok(()) => {} // recovery finished before the fuel ran out
            Err(LaunchError::Crashed(_)) => {}
            Err(LaunchError::Sim(e)) => return Err(e),
        }
        // Second recovery must finish the drain.
        self.recover(machine, &st)?;
        for (key, _, is_get) in self.gen_batch(0) {
            if is_get {
                continue;
            }
            let set = hash_set(key, self.params.sets);
            for w in 0..WAYS {
                let slot = st.pm_table + (set * WAYS + w) * ENTRY;
                if machine.read_u64(Addr::pm(slot))? == key {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

impl RecoveryOracle for KvsWorkload {
    fn name(&self) -> &'static str {
        "gpKVS"
    }

    fn record(&mut self, machine: &mut Machine) -> SimResult<CrashSchedule> {
        let st = self.setup(machine, Mode::Gpm)?;
        let mut gauge = FuelGauge::record();
        let mut committed = 0;
        crate::oracle::expect_clean(self.run_batches_gauged(
            machine,
            &st,
            &mut gauge,
            &mut committed,
        ))?;
        Ok(gauge.into_schedule().expect("recording gauge"))
    }

    fn run_case(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        assert!(
            self.params.key_skew.is_none(),
            "exact undo verification requires unique keys (no skew)"
        );
        let st = self.setup(machine, Mode::Gpm)?;
        let mut committed = 0u32;
        let res = self.run_batches_gauged(
            machine,
            &st,
            &mut FuelGauge::crash_with_policy(fuel, policy),
            &mut committed,
        );
        crate::oracle::settle_crash(machine, policy, res)?;
        self.recover(machine, &st)?;
        // After undo, the table must hold exactly the committed batches...
        let smaller = KvsWorkload::new(KvsParams {
            batches: committed,
            ..self.params
        });
        if !smaller.verify(machine, &st, Mode::Gpm)? {
            return Ok(OracleVerdict::Fail(format!(
                "table diverges from the {committed} committed batches"
            )));
        }
        // ...and none of the in-flight batch's keys.
        if committed < self.params.batches {
            for (key, _, is_get) in self.gen_batch(committed) {
                if is_get {
                    continue;
                }
                let set = hash_set(key, self.params.sets);
                for w in 0..WAYS {
                    let slot = st.pm_table + (set * WAYS + w) * ENTRY;
                    if machine.read_u64(Addr::pm(slot))? == key {
                        return Ok(OracleVerdict::Fail(format!(
                            "uncommitted key {key:#x} of batch {committed} survived recovery"
                        )));
                    }
                }
            }
        }
        Ok(OracleVerdict::Pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> KvsWorkload {
        KvsWorkload::new(KvsParams::quick())
    }

    #[test]
    fn gpm_run_verifies() {
        let mut m = Machine::default();
        let r = quick().run(&mut m, Mode::Gpm).unwrap();
        assert!(r.verified, "PM table must match the reference model");
        assert!(r.elapsed.0 > 0.0);
        assert!(r.pm_write_bytes_gpu > 0);
    }

    #[test]
    fn cap_modes_verify_and_amplify_writes() {
        let mut m1 = Machine::default();
        let gpm = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let capmm = quick().run(&mut m2, Mode::CapMm).unwrap();
        assert!(capmm.verified);
        let wa = capmm.pm_write_bytes_total() as f64 / gpm.pm_write_bytes_total() as f64;
        assert!(wa > 5.0, "CAP transfers the whole table: WA = {wa:.1}");
    }

    #[test]
    fn gpm_beats_cap_fs() {
        let mut m1 = Machine::default();
        let gpm = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let capfs = quick().run(&mut m2, Mode::CapFs).unwrap();
        assert!(capfs.verified);
        assert!(
            capfs.elapsed > gpm.elapsed,
            "gpm={} capfs={}",
            gpm.elapsed,
            capfs.elapsed
        );
    }

    #[test]
    fn recovery_restores_pre_batch_state() {
        let mut m = Machine::default();
        let r = quick().run_with_recovery(&mut m).unwrap();
        assert!(r.verified, "undo must roll the last batch back");
        assert!(r.recovery.unwrap().0 > 0.0);
    }

    #[test]
    fn crash_injection_recovers() {
        for fuel in [50u64, 500, 5_000] {
            let mut m = Machine::default();
            let ok = quick().run_crash_injected(&mut m, fuel).unwrap();
            assert!(ok, "fuel={fuel}: recovery must restore the empty table");
        }
    }

    #[test]
    fn get_mix_moderates_pm_traffic() {
        let mut m1 = Machine::default();
        let sets_only = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let mixed = KvsWorkload::new(KvsParams::quick().with_get_mix())
            .run(&mut m2, Mode::Gpm)
            .unwrap();
        assert!(mixed.pm_write_bytes_gpu < sets_only.pm_write_bytes_gpu / 4);
    }

    #[test]
    fn skewed_keys_verify_and_reduce_pm_traffic() {
        let mut m1 = Machine::default();
        let uniform = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let skewed = KvsWorkload::new(KvsParams {
            key_skew: Some(1.1),
            ..KvsParams::quick()
        })
        .run(&mut m2, Mode::Gpm)
        .unwrap();
        assert!(skewed.verified, "reference model must track duplicate keys");
        // Hot keys overwrite the same slots: fewer distinct lines persisted.
        assert!(
            skewed.bytes_persisted <= uniform.bytes_persisted,
            "skew should not increase persisted lines: {} vs {}",
            skewed.bytes_persisted,
            uniform.bytes_persisted
        );
    }

    #[test]
    fn unsupported_modes_error() {
        let mut m = Machine::default();
        assert!(quick().run(&mut m, Mode::Gpufs).is_err());
    }
}
