//! gpKVS: a GPU-accelerated persistent key-value store (§4.1, §5.2).
//!
//! Derived from MegaKV as the paper describes: an 8-way set-associative
//! table, batched SET/GET operations, groups of eight threads cooperating
//! per operation, and write-ahead undo logging (HCL) for recoverable SETs
//! (Figure 6). The table is a detectable hash shard ([`crate::hash_shard`]):
//! each 32-byte slot carries a version and the [`gpm_core::op_tag`] of the
//! operation that wrote it, and SETs run the descriptor publish protocol,
//! so a crashed batch can be *retried in place* — resubmit the identical
//! batch and every op applies exactly once — instead of rolled back. The
//! rollback path (undo log, Figure 6b) remains for boot-time recovery.
//!
//! The table lives on PM under GPM; a volatile HBM mirror serves GETs
//! ("GETs are mostly served out of the GPU's fast HBM", §6.1). Batches are
//! *hash-partitioned* before upload — operations on the same set are packed
//! into the same threadblock (MegaKV partitions requests the same way) — so
//! blocks never read each other's table lines and the batch kernel commits
//! under the block-parallel engine.
//!
//! Under CAP the table lives only in HBM and the *entire* table is
//! transferred and persisted by the CPU after each batch — the
//! write-amplification of Table 4.

use gpm_cap::{cap_persist_region, flush_from_cpu, CapFlavor};
use gpm_core::{
    detect_create, gpm_map, gpm_persist_begin, gpm_persist_end, gpmlog_create_hcl, op_tag,
    DetectArea, GpmLog, GpmThreadExt, TxnFlag,
};
use gpm_gpu::{
    launch, launch_with_fuel, launch_with_gauge, Capable, Communicating, FnKernel, FuelGauge,
    KernelCapability, LaunchConfig, LaunchError, ThreadCtx,
};
use gpm_sim::{
    Addr, CrashPolicy, CrashSchedule, EventKind, Machine, Ns, OracleVerdict, SimError, SimResult,
};

use crate::hash_shard::{
    shard_set_detectable, shard_set_legacy, ShardDev, ShardModel, SLOT_BYTES, UNDO_BYTES,
};
use crate::metrics::{metered, BatchMetrics, Mode, RunMetrics};
use crate::oracle::RecoveryOracle;

pub use crate::hash_shard::WAYS;

/// One gpKVS request: `(key, value, is_get)`. GETs ignore the value and
/// write their result into the state's result buffer at the op's index.
/// Key 0 is reserved (the empty-slot / padding sentinel).
pub type KvsOp = (u64, u64, bool);

/// Threads cooperating on one operation (`THRD_GRP_SZ` in Figure 6).
pub const THREAD_GROUP: u64 = 8;
/// Operations one 256-thread block carries.
const OPS_PER_BLOCK: u64 = 256 / THREAD_GROUP;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct KvsParams {
    /// Number of sets (table holds `sets × 8` pairs).
    pub sets: u64,
    /// SET/GET operations per batch.
    pub ops_per_batch: u64,
    /// Batches executed.
    pub batches: u32,
    /// Fraction of GETs per mille (0 = pure SETs, 950 = the 95:5 mix).
    pub get_permille: u32,
    /// CPU threads for CAP-mm persisting.
    pub cap_threads: u32,
    /// Per-request CPU pipeline cost (MegaKV's receive/index stages).
    pub pipeline_ns: f64,
    /// Additional CPU cost per GET response (value marshalling + send).
    pub get_response_ns: f64,
    /// Undo-log backend: `None` = HCL (the default), `Some(p)` =
    /// conventional distributed logging with `p` partitions (the Figure 11
    /// baseline).
    pub conventional_log_partitions: Option<u32>,
    /// Key skew: `None` = unique uniform keys per batch, `Some(theta)` =
    /// Zipfian key popularity over a bounded key universe (YCSB-style).
    pub key_skew: Option<f64>,
    /// GPU persistency model for every kernel this workload launches.
    /// `None` defers to `GPM_PERSISTENCY` (then strict), exactly like
    /// [`LaunchConfig::persistency`]; `Some(model)` pins it, which is how
    /// harnesses (enginebench, gpm-serve) select epoch explicitly.
    pub persistency: Option<gpm_gpu::PersistencyModel>,
    /// Engine worker threads for every kernel this workload launches.
    /// `None` defers to `GPM_ENGINE_THREADS` (then host parallelism),
    /// exactly like [`LaunchConfig::engine_threads`]; `Some(n)` pins it,
    /// which is how determinism tests compare thread counts in-process
    /// without re-execing under a different environment.
    pub engine_threads: Option<u32>,
}

impl Default for KvsParams {
    fn default() -> KvsParams {
        KvsParams {
            sets: 131_072,
            ops_per_batch: 8_192,
            batches: 4,
            get_permille: 0,
            cap_threads: 32,
            pipeline_ns: 330.0,
            get_response_ns: 400.0,
            conventional_log_partitions: None,
            key_skew: None,
            persistency: None,
            engine_threads: None,
        }
    }
}

impl KvsParams {
    /// Small configuration for unit tests.
    pub fn quick() -> KvsParams {
        KvsParams {
            sets: 2_048,
            ops_per_batch: 512,
            batches: 2,
            ..KvsParams::default()
        }
    }

    /// The 95% GET / 5% SET mix of Figure 9.
    pub fn with_get_mix(mut self) -> KvsParams {
        self.get_permille = 950;
        self
    }

    /// Pins the GPU persistency model for every launch of this workload.
    pub fn with_persistency(mut self, model: gpm_gpu::PersistencyModel) -> KvsParams {
        self.persistency = Some(model);
        self
    }

    /// Pins the engine worker-thread count for every launch of this
    /// workload (overriding `GPM_ENGINE_THREADS`).
    pub fn with_engine_threads(mut self, threads: u32) -> KvsParams {
        self.engine_threads = Some(threads);
        self
    }

    fn table_bytes(&self) -> u64 {
        crate::hash_shard::shard_bytes(self.sets)
    }

    /// Batch-buffer capacity in operations: `ops_per_batch` plus headroom
    /// for the sentinel padding hash-partitioning inserts at block
    /// boundaries (worst case a straddled 8-op set group per block).
    fn batch_capacity(&self) -> u64 {
        self.ops_per_batch + self.ops_per_batch / 3 + OPS_PER_BLOCK
    }
}

/// The gpKVS workload instance.
#[derive(Debug)]
pub struct KvsWorkload {
    /// Parameters of this instance.
    pub params: KvsParams,
    /// Campaign self-test knob: recovery deliberately skips the newest
    /// undo-log entry. The campaign oracle must catch this.
    pub inject_recovery_bug: bool,
    /// Campaign self-test knob: SETs skip the descriptor and record checks
    /// (a double-applying CAS). Harmless on clean runs; a crash-and-retry
    /// applies ops twice. The double-recovery oracle must catch this.
    pub inject_double_apply: bool,
}

/// Live gpKVS instance state: the PM table, its HBM mirror, the batch
/// buffers, the undo log and the transaction flag. Created once by
/// [`KvsWorkload::setup`] and reused across batches — the closed-loop suite
/// owns one per run, a `gpm-serve` shard owns one per shard.
#[derive(Debug)]
pub struct KvsState {
    pm_table: u64,
    hbm_table: u64,
    flag: TxnFlag,
    detect: DetectArea,
    staging_dram: u64,
    cap_pm: u64,
    batch_keys: u64,
    batch_vals: u64,
    batch_is_get: u64,
    batch_idx: u64,
    get_results: u64,
    log: GpmLog,
}

impl KvsState {
    /// The device-side shard handle over this state's table and mirror.
    pub fn shard(&self, sets: u64) -> ShardDev {
        ShardDev {
            pm_base: self.pm_table,
            hbm_base: self.hbm_table,
            sets,
        }
    }
}

fn hash_set(key: u64, sets: u64) -> u64 {
    gpm_pmkv::hash64(key) % sets
}

/// One hash-partitioned batch ready for upload: same-set operations share a
/// threadblock, block boundaries are padded with key-0 sentinels, and
/// `idx[i]` maps slot `i` back to the operation's original batch index (so
/// GET results land where the caller expects them).
struct PackedBatch {
    keys: Vec<u64>,
    vals: Vec<u64>,
    gets: Vec<u32>,
    idx: Vec<u32>,
    /// Real (unpadded) operation count, for the CPU pipeline cost model.
    real_ops: usize,
}

impl PackedBatch {
    fn len(&self) -> u64 {
        self.keys.len() as u64
    }

    fn push_sentinel(&mut self) {
        self.keys.push(0);
        self.vals.push(0);
        self.gets.push(0);
        self.idx.push(0);
    }
}

impl KvsWorkload {
    /// Creates the workload.
    pub fn new(params: KvsParams) -> KvsWorkload {
        KvsWorkload {
            params,
            inject_recovery_bug: false,
            inject_double_apply: false,
        }
    }

    /// Enables the deliberate recovery bug (campaign self-test).
    pub fn with_recovery_bug(mut self) -> KvsWorkload {
        self.inject_recovery_bug = true;
        self
    }

    /// Enables the deliberate double-applying CAS (campaign self-test for
    /// `--double-recovery`).
    pub fn with_double_apply_bug(mut self) -> KvsWorkload {
        self.inject_double_apply = true;
        self
    }

    /// The launch shape for a full-capacity batch (log geometry and crash
    /// schedules are sized for this).
    fn launch_cfg(&self) -> LaunchConfig {
        self.cfg_for_ops(self.params.batch_capacity())
    }

    fn cfg_for_ops(&self, n_ops: u64) -> LaunchConfig {
        let mut cfg = LaunchConfig::for_elements(n_ops * THREAD_GROUP, 256);
        if let Some(model) = self.params.persistency {
            cfg = cfg.with_persistency(model);
        }
        if let Some(threads) = self.params.engine_threads {
            cfg = cfg.with_engine_threads(threads);
        }
        cfg
    }

    /// Hash-partitions a batch: stable-sorts operations by set, then packs
    /// them into 32-op blocks such that no set group straddles a block
    /// boundary (padding with sentinels instead). Relative order of
    /// same-set operations is preserved, so the packed batch applies to the
    /// exact same table state as the original order. Falls back to the
    /// identity layout when a set group exceeds one block (extreme skew) —
    /// the kernel is still correct, the engine just serializes that batch.
    fn pack_batch(&self, ops: &[KvsOp]) -> PackedBatch {
        let sets = self.params.sets;
        let capacity = self.params.batch_capacity() as usize;
        let mut order: Vec<u32> = (0..ops.len() as u32).collect();
        order.sort_by_key(|&i| hash_set(ops[i as usize].0, sets));
        // Group boundaries in the sorted order.
        let mut packed = PackedBatch {
            keys: Vec::with_capacity(capacity),
            vals: Vec::with_capacity(capacity),
            gets: Vec::with_capacity(capacity),
            idx: Vec::with_capacity(capacity),
            real_ops: ops.len(),
        };
        let mut identity = false;
        let mut g = 0usize;
        while g < order.len() {
            let set = hash_set(ops[order[g] as usize].0, sets);
            let mut e = g + 1;
            while e < order.len() && hash_set(ops[order[e] as usize].0, sets) == set {
                e += 1;
            }
            let group = e - g;
            let used = packed.keys.len() % OPS_PER_BLOCK as usize;
            if group > OPS_PER_BLOCK as usize {
                identity = true;
                break;
            }
            if used + group > OPS_PER_BLOCK as usize {
                // Pad to the next block so the group stays together.
                for _ in used..OPS_PER_BLOCK as usize {
                    packed.push_sentinel();
                }
            }
            if packed.keys.len() + group > capacity {
                identity = true;
                break;
            }
            for &i in &order[g..e] {
                let (k, v, get) = ops[i as usize];
                packed.keys.push(k);
                packed.vals.push(v);
                packed.gets.push(get as u32);
                packed.idx.push(i);
            }
            g = e;
        }
        if identity {
            packed.keys.clear();
            packed.vals.clear();
            packed.gets.clear();
            packed.idx.clear();
            for (i, &(k, v, get)) in ops.iter().enumerate() {
                packed.keys.push(k);
                packed.vals.push(v);
                packed.gets.push(get as u32);
                packed.idx.push(i as u32);
            }
        }
        packed
    }

    /// Allocates the table, mirror, batch buffers, undo log and transaction
    /// flag on `machine` (durable setup, untimed).
    ///
    /// # Errors
    ///
    /// Fails on allocation or PM-file errors.
    pub fn setup(&self, machine: &mut Machine, mode: Mode) -> SimResult<KvsState> {
        let p = &self.params;
        let cap = p.batch_capacity();
        let pm_table = gpm_map(machine, "/pm/gpkvs/table", p.table_bytes(), true)?.offset;
        let flag = TxnFlag::create(machine, "/pm/gpkvs/flag")?;
        let detect = detect_create(machine, "/pm/gpkvs/detect", cap)
            .map_err(|_| SimError::Invalid("failed to create gpKVS descriptor area"))?;
        let hbm_table = machine.alloc_hbm(p.table_bytes())?;
        let staging_dram = machine.alloc_dram(p.table_bytes())?;
        let cap_pm = if matches!(mode, Mode::CapFs | Mode::CapMm) {
            machine.alloc_pm(p.table_bytes())?
        } else {
            0
        };
        let batch_keys = machine.alloc_hbm(cap * 8)?;
        let batch_vals = machine.alloc_hbm(cap * 8)?;
        let batch_is_get = machine.alloc_hbm(cap * 4)?;
        let batch_idx = machine.alloc_hbm(cap * 4)?;
        let get_results = machine.alloc_hbm(cap * 8)?;
        let cfg = self.launch_cfg();
        // 4× headroom per thread: under the in-place-retry discipline the
        // log is only truncated at commit, so each crashed attempt's undo
        // entries stay behind while the retry appends fresh ones (one per
        // not-yet-applied SET). Four entries per thread covers the serving
        // default of three retries on top of the initial attempt.
        let log_size = cfg.total_threads() * UNDO_BYTES as u64 * 4;
        let log = match p.conventional_log_partitions {
            None => gpmlog_create_hcl(machine, "/pm/gpkvs/log", log_size, cfg.grid, cfg.block),
            Some(parts) => {
                gpm_core::gpmlog_create_conv(machine, "/pm/gpkvs/log", log_size * 2, parts)
            }
        }
        .map_err(|_| SimError::Invalid("failed to create gpKVS log"))?;
        Ok(KvsState {
            pm_table,
            hbm_table,
            flag,
            detect,
            staging_dram,
            cap_pm,
            batch_keys,
            batch_vals,
            batch_is_get,
            batch_idx,
            get_results,
            log,
        })
    }

    /// Deterministic batch generator. With no skew, keys are unique and
    /// uniform per batch (so undo recovery is byte-exact); with
    /// `key_skew = Some(theta)`, keys follow a Zipfian popularity over a
    /// bounded universe (hot keys repeat within and across batches).
    fn gen_batch(&self, batch: u32) -> Vec<(u64, u64, bool)> {
        let p = &self.params;
        let zipf = p
            .key_skew
            .map(|theta| crate::datagen::Zipf::new(p.sets * 2, theta));
        (0..p.ops_per_batch)
            .map(|i| {
                let key = match &zipf {
                    Some(z) => {
                        let rank = z.sample((batch as u64) << 32 | i);
                        gpm_pmkv::hash64(rank.wrapping_mul(0x9E37)) | 1
                    }
                    None => gpm_pmkv::hash64((batch as u64) << 32 | (i + 1)) | 1,
                };
                let val = key.wrapping_mul(2_654_435_761).wrapping_add(batch as u64);
                let is_get = gpm_pmkv::hash64(key ^ 0xDEAD) % 1000 < p.get_permille as u64;
                (key, val, is_get)
            })
            .collect()
    }

    fn upload_batch(
        &self,
        machine: &mut Machine,
        st: &KvsState,
        pb: &PackedBatch,
    ) -> SimResult<()> {
        let p = &self.params;
        let n = pb.keys.len();
        let mut keys = Vec::with_capacity(n * 8);
        let mut vals = Vec::with_capacity(n * 8);
        let mut gets = Vec::with_capacity(n * 4);
        let mut idx = Vec::with_capacity(n * 4);
        for i in 0..n {
            keys.extend_from_slice(&pb.keys[i].to_le_bytes());
            vals.extend_from_slice(&pb.vals[i].to_le_bytes());
            gets.extend_from_slice(&pb.gets[i].to_le_bytes());
            idx.extend_from_slice(&pb.idx[i].to_le_bytes());
        }
        machine.host_write(Addr::hbm(st.batch_keys), &keys)?;
        machine.host_write(Addr::hbm(st.batch_vals), &vals)?;
        machine.host_write(Addr::hbm(st.batch_is_get), &gets)?;
        machine.host_write(Addr::hbm(st.batch_idx), &idx)?;
        // Request ingestion: MegaKV's CPU-side receive+index pipeline (real
        // operations only — sentinels cost nothing on the CPU), plus the
        // DMA of the request batch to the GPU, plus per-GET response
        // marshalling (the common cost that moderates the 95:5 mix's GPM
        // advantage, §6.1).
        let n_gets = pb.gets.iter().filter(|&&g| g != 0).count() as f64;
        let t = Ns(pb.real_ops as f64 * p.pipeline_ns)
            + Ns(n_gets * p.get_response_ns)
            + machine.cfg.dma_init_overhead
            + Ns((keys.len() + vals.len() + gets.len() + idx.len()) as f64 / machine.cfg.pcie_bw);
        machine.clock.advance(t);
        Ok(())
    }

    /// The batched SET/GET kernel (Figure 6a). `persist=false` is the
    /// GPM-NDP configuration; `to_pm=false` is CAP (HBM only). Under GPM
    /// (`to_pm && persist`) SETs run the detectable publish protocol with
    /// the tag `op_tag(epoch, slot_index)`.
    ///
    /// The kernel is per-thread throughout — the HCL undo log, the
    /// descriptor area, and (thanks to hash partitioning) the table's set
    /// lines are all block-local — so it advertises
    /// [`KernelCapability::BlockParallel`] and commits under the
    /// block-parallel engine. Only the conventional-log ablation keeps the
    /// `Communicating` pin (its partition tails are shared across blocks).
    fn batch_kernel(
        &self,
        st: &KvsState,
        n_ops: u64,
        epoch: u64,
        to_pm: bool,
        persist: bool,
    ) -> impl gpm_gpu::Kernel<State = (), Shared = ()> + '_ {
        let p = self.params;
        let shard = st.shard(p.sets);
        let detect = st.detect.dev();
        let (keys, vals, gets, idx, results) = (
            st.batch_keys,
            st.batch_vals,
            st.batch_is_get,
            st.batch_idx,
            st.get_results,
        );
        let log = st.log.dev();
        let inject = self.inject_double_apply;
        let detectable = to_pm && persist;
        let capability = if p.conventional_log_partitions.is_some() {
            KernelCapability::Communicating
        } else {
            KernelCapability::BlockParallel
        };
        Capable(
            capability,
            FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let tid = ctx.global_id();
                let op = tid / THREAD_GROUP;
                if op >= n_ops {
                    return Ok(());
                }
                let key = ctx.ld_u64(Addr::hbm(keys + op * 8))?;
                if key == 0 {
                    return Ok(()); // block-boundary padding sentinel
                }
                let set = shard.hash_set(key);
                ctx.compute(Ns(40.0)); // hash + way-probe share of the group
                                       // One thread of the group is selected to perform the operation
                                       // (the others assisted the cooperative probe).
                if tid % THREAD_GROUP != key % THREAD_GROUP {
                    return Ok(());
                }
                let is_get = ctx.ld_u32(Addr::hbm(gets + op * 4))? != 0;
                if is_get {
                    let v = shard.lookup(ctx, set, key)?;
                    let orig = ctx.ld_u32(Addr::hbm(idx + op * 4))? as u64;
                    ctx.st_u64(Addr::hbm(results + orig * 8), v)?;
                    return Ok(());
                }
                let value = ctx.ld_u64(Addr::hbm(vals + op * 8))?;
                if detectable {
                    shard_set_detectable(
                        ctx,
                        &shard,
                        &detect,
                        &log,
                        op,
                        op_tag(epoch, op),
                        key,
                        value,
                        inject,
                    )
                } else {
                    shard_set_legacy(ctx, &shard, &log, key, value, to_pm, persist)
                }
            }),
        )
    }

    /// Opens (or, on a retry, re-enters) the detect epoch for transaction
    /// `seq`: a still-armed transaction flag for this very `seq` means the
    /// caller is resubmitting a crashed batch, so the epoch minted before
    /// the crash is reused and the descriptors written then keep matching.
    /// A fresh batch arms the flag and advances the epoch.
    fn enter_epoch(&self, machine: &mut Machine, st: &KvsState, seq: u64) -> SimResult<u64> {
        if st.flag.active(machine)? == seq + 1 {
            st.detect
                .epoch(machine)
                .map_err(|_| SimError::Invalid("detect epoch read failed"))
        } else {
            st.flag.begin(machine, seq + 1)?;
            st.detect
                .begin_epoch(machine)
                .map_err(|_| SimError::Invalid("detect epoch advance failed"))
        }
    }

    /// Applies one batch of operations through the shared kernel-launch
    /// path: upload + launch + persist/commit protocol for `mode`. `seq`
    /// numbers the transaction (the flag records `seq + 1`). This is the
    /// single entry point both the closed-loop suite and the `gpm-serve`
    /// frontend drive — there is no second kernel-launch code path.
    ///
    /// Batches may be any size up to [`KvsParams::ops_per_batch`] (the
    /// buffer capacity).
    ///
    /// # Errors
    ///
    /// Fails for unsupported modes, oversized batches, or platform errors.
    pub fn apply_batch(
        &self,
        machine: &mut Machine,
        st: &KvsState,
        seq: u64,
        ops: &[KvsOp],
        mode: Mode,
    ) -> SimResult<BatchMetrics> {
        match self.apply_batch_gauged(machine, st, seq, ops, mode, &mut FuelGauge::Unlimited) {
            Ok(m) => Ok(m),
            Err(LaunchError::Crashed(_)) => unreachable!("unlimited gauge never crashes"),
            Err(LaunchError::Sim(e)) => Err(e),
        }
    }

    /// [`apply_batch`](KvsWorkload::apply_batch) driven through a
    /// [`FuelGauge`], so callers can record crash schedules or inject a
    /// mid-batch crash (the `gpm-serve` retry drill and the campaign both
    /// ride this).
    ///
    /// # Errors
    ///
    /// [`LaunchError::Crashed`] when the gauge's fuel runs out mid-kernel;
    /// [`LaunchError::Sim`] on functional errors.
    pub fn apply_batch_gauged(
        &self,
        machine: &mut Machine,
        st: &KvsState,
        seq: u64,
        ops: &[KvsOp],
        mode: Mode,
        gauge: &mut FuelGauge,
    ) -> Result<BatchMetrics, LaunchError> {
        let p = &self.params;
        if ops.len() as u64 > p.ops_per_batch {
            return Err(LaunchError::Sim(SimError::Invalid(
                "batch exceeds the ops_per_batch buffer capacity",
            )));
        }
        let t0 = machine.clock.now();
        let s0 = machine.stats;
        let packed = self.pack_batch(ops);
        self.upload_batch(machine, st, &packed)
            .map_err(LaunchError::Sim)?;
        let n = packed.len();
        let cfg = self.cfg_for_ops(n);
        match mode {
            Mode::Gpm => {
                let epoch = self
                    .enter_epoch(machine, st, seq)
                    .map_err(LaunchError::Sim)?;
                gpm_persist_begin(machine);
                launch_with_gauge(
                    machine,
                    cfg,
                    &self.batch_kernel(st, n, epoch, true, true),
                    gauge,
                )?;
                gpm_persist_end(machine);
                st.flag.commit(machine).map_err(LaunchError::Sim)?;
                st.log
                    .host_clear(machine)
                    .map_err(|_| LaunchError::Sim(SimError::Invalid("log clear failed")))?;
            }
            Mode::GpmNdp => {
                launch_with_gauge(
                    machine,
                    cfg,
                    &self.batch_kernel(st, n, 0, true, false),
                    gauge,
                )?;
                // CPU guarantees persistence for the whole table + log.
                flush_from_cpu(machine, st.pm_table, p.table_bytes(), p.cap_threads);
                flush_from_cpu(
                    machine,
                    st.log.region.offset,
                    st.log.region.len,
                    p.cap_threads,
                );
                // Batch committed: truncate the undo log.
                st.log
                    .host_clear(machine)
                    .map_err(|_| LaunchError::Sim(SimError::Invalid("clear")))?;
            }
            Mode::CapFs | Mode::CapMm => {
                launch_with_gauge(
                    machine,
                    cfg,
                    &self.batch_kernel(st, n, 0, false, false),
                    gauge,
                )?;
                let flavor = if mode == Mode::CapFs {
                    CapFlavor::Fs
                } else {
                    CapFlavor::Mm {
                        threads: p.cap_threads,
                    }
                };
                cap_persist_region(
                    machine,
                    flavor,
                    st.hbm_table,
                    st.staging_dram,
                    st.cap_pm,
                    p.table_bytes(),
                )
                .map_err(LaunchError::Sim)?;
            }
            Mode::Gpufs | Mode::CpuPm => {
                return Err(LaunchError::Sim(SimError::Invalid(
                    "mode unsupported for gpKVS",
                )));
            }
        }
        let d = machine.stats.delta(&s0);
        Ok(BatchMetrics {
            ops: ops.len() as u64,
            elapsed: machine.clock.now() - t0,
            pm_write_bytes_gpu: d.pm_write_bytes_gpu,
            bytes_persisted: d.bytes_persisted,
        })
    }

    fn run_batches(&self, machine: &mut Machine, st: &KvsState, mode: Mode) -> SimResult<()> {
        for b in 0..self.params.batches {
            let ops = self.gen_batch(b);
            self.apply_batch(machine, st, b as u64, &ops, mode)?;
        }
        Ok(())
    }

    /// Reads the result slot a GET at batch index `op_index` wrote (serving
    /// frontends return this value to the client).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn get_result(&self, machine: &Machine, st: &KvsState, op_index: u64) -> SimResult<u64> {
        machine.read_u64(Addr::hbm(st.get_results + op_index * 8))
    }

    /// Rebuilds the volatile HBM mirror from the durable PM table after a
    /// crash (one PM→GPU sweep over PCIe), so a recovered instance can
    /// serve GETs out of HBM again. Timed as a bulk DMA.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn rebuild_mirror(&self, machine: &mut Machine, st: &KvsState) -> SimResult<()> {
        let bytes = self.params.table_bytes();
        let mut buf = vec![0u8; bytes as usize];
        machine.read(Addr::pm(st.pm_table), &mut buf)?;
        machine.host_write(Addr::hbm(st.hbm_table), &buf)?;
        let t = machine.cfg.dma_init_overhead + Ns(bytes as f64 / machine.cfg.pcie_bw);
        machine.clock.advance(t);
        Ok(())
    }

    /// In-place *retry* recovery: rebuilds the HBM mirror from the durable
    /// PM table and touches nothing else. The table, the descriptor area
    /// and the transaction flag stay exactly as the crash left them, so
    /// resubmitting the in-flight batch (same `seq`, same ops) applies
    /// precisely the operations that had not yet applied — the detectable
    /// protocol skips the rest. Idempotent: running it any number of times
    /// is equivalent to running it once. The alternative strategy,
    /// [`recover`](KvsWorkload::recover), *rolls the batch back* instead;
    /// the two are mutually exclusive per crash (rollback clears the flag,
    /// which retires the epoch a retry would need).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn recover_for_retry(&self, machine: &mut Machine, st: &KvsState) -> SimResult<()> {
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryBegin);
        }
        let result = self.rebuild_mirror(machine, st);
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryEnd);
        }
        result
    }

    /// Snapshots the durable PM table image (host-side read, no simulated
    /// cost) so tests can compare store state byte-for-byte across runs.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn store_image(&self, machine: &Machine, st: &KvsState) -> SimResult<Vec<u8>> {
        let mut buf = vec![0u8; self.params.table_bytes() as usize];
        machine.read(Addr::pm(st.pm_table), &mut buf)?;
        Ok(buf)
    }

    /// Reference model: replays the batches in submission order.
    fn reference_model(&self) -> ShardModel {
        let mut model = ShardModel::new(self.params.sets);
        for b in 0..self.params.batches {
            for (key, val, is_get) in self.gen_batch(b) {
                if !is_get {
                    model.set(key, val);
                }
            }
        }
        model
    }

    fn verify(&self, machine: &Machine, st: &KvsState, mode: Mode) -> SimResult<bool> {
        let model = self.reference_model();
        let base = match mode {
            Mode::Gpm | Mode::GpmNdp => st.pm_table,
            Mode::CapFs | Mode::CapMm => st.cap_pm,
            _ => return Ok(false),
        };
        for (&(set, way), &(k, v, ver)) in model.entries() {
            let slot = base + (set * WAYS + way) * SLOT_BYTES;
            if machine.read_u64(Addr::pm(slot))? != k
                || machine.read_u64(Addr::pm(slot + 8))? != v
                || machine.read_u64(Addr::pm(slot + 16))? != ver
            {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Runs the workload under `mode` on a fresh machine region.
    ///
    /// # Errors
    ///
    /// Fails for unsupported modes or on platform errors.
    pub fn run(&self, machine: &mut Machine, mode: Mode) -> SimResult<RunMetrics> {
        let st = self.setup(machine, mode)?;
        let mut metrics = metered(machine, |m| {
            self.run_batches(m, &st, mode)?;
            Ok::<bool, SimError>(true)
        })?;
        metrics.verified = self.verify(machine, &st, mode)?;
        Ok(metrics)
    }

    /// Measures worst-case restoration latency (Table 5): runs all batches,
    /// then simulates a crash *just before the last transaction commits*
    /// (flag still set, log still populated) and times the undo kernel.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_with_recovery(&self, machine: &mut Machine) -> SimResult<RunMetrics> {
        assert!(
            self.params.conventional_log_partitions.is_none(),
            "undo recovery requires the HCL backend (per-thread entries)"
        );
        let st = self.setup(machine, Mode::Gpm)?;
        let p = &self.params;
        let mut metrics = metered(machine, |m| {
            for b in 0..p.batches {
                let ops = self.gen_batch(b);
                let packed = self.pack_batch(&ops);
                self.upload_batch(m, &st, &packed)?;
                let epoch = self.enter_epoch(m, &st, b as u64)?;
                gpm_persist_begin(m);
                launch(
                    m,
                    self.cfg_for_ops(packed.len()),
                    &self.batch_kernel(&st, packed.len(), epoch, true, true),
                )?;
                gpm_persist_end(m);
                if b + 1 < p.batches {
                    st.flag.commit(m)?;
                    st.log
                        .host_clear(m)
                        .map_err(|_| SimError::Invalid("clear"))?;
                }
                // Final batch: crash before commit.
            }
            Ok::<bool, SimError>(true)
        })?;
        machine.crash();
        let t0 = machine.clock.now();
        self.recover(machine, &st)?;
        metrics.recovery = Some(machine.clock.now() - t0);
        // After undo, the last batch is rolled back: state matches batches-1.
        let smaller = KvsWorkload::new(KvsParams {
            batches: p.batches - 1,
            ..*p
        });
        metrics.verified = smaller.verify(machine, &st, Mode::Gpm)?;
        Ok(metrics)
    }

    /// Crash-injected run: crashes mid-batch after `fuel` operations, then
    /// recovers. Returns whether post-recovery verification succeeded.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_crash_injected(&self, machine: &mut Machine, fuel: u64) -> SimResult<bool> {
        assert!(
            self.params.key_skew.is_none(),
            "exact undo verification requires unique keys (no skew)"
        );
        let st = self.setup(machine, Mode::Gpm)?;
        let ops = self.gen_batch(0);
        let packed = self.pack_batch(&ops);
        self.upload_batch(machine, &st, &packed)?;
        let epoch = self.enter_epoch(machine, &st, 0)?;
        gpm_persist_begin(machine);
        match launch_with_fuel(
            machine,
            self.cfg_for_ops(packed.len()),
            &self.batch_kernel(&st, packed.len(), epoch, true, true),
            fuel,
        ) {
            Ok(_) => {
                gpm_persist_end(machine);
                machine.crash();
            }
            Err(LaunchError::Crashed(_)) => {}
            Err(LaunchError::Sim(e)) => return Err(e),
        }
        self.recover(machine, &st)?;
        // All of batch 0 was undone: none of its keys may remain in the PM
        // table.
        let shard = st.shard(self.params.sets);
        for (key, _, is_get) in self.gen_batch(0) {
            if is_get {
                continue;
            }
            if shard.host_find(machine, key)?.is_some() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The recovery kernel (Figure 6b): undo logged insertions, newest
    /// first, removing each entry only after the store is persisted.
    /// Public so a serving frontend can replay recovery when it boots a
    /// shard over a crashed machine image, before admitting traffic.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn recover(&self, machine: &mut Machine, st: &KvsState) -> SimResult<()> {
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryBegin);
        }
        let result = match self.recover_gauged(machine, st, &mut FuelGauge::Unlimited) {
            Ok(()) => Ok(()),
            Err(LaunchError::Crashed(_)) => unreachable!("unlimited gauge never crashes"),
            Err(LaunchError::Sim(e)) => Err(e),
        };
        if machine.trace_enabled() {
            machine.trace(EventKind::RecoveryEnd);
        }
        result
    }

    /// Gauge-driven recovery. With a crashing gauge the undo kernel itself
    /// can run out of fuel mid-drain — the double-crash scenario. Because
    /// each entry is removed only *after* its undo store persists, a
    /// partial drain leaves the log replayable and a second [`recover`]
    /// call is idempotent.
    ///
    /// When `inject_recovery_bug` is set, thread 0 drops the newest undo
    /// entry without applying it — the deliberate bug the campaign's
    /// self-test must catch.
    ///
    /// [`recover`]: KvsWorkload::recover
    fn recover_gauged(
        &self,
        machine: &mut Machine,
        st: &KvsState,
        gauge: &mut FuelGauge,
    ) -> Result<(), LaunchError> {
        if st.flag.active(machine).map_err(LaunchError::Sim)? == 0 {
            return Ok(()); // no transaction was active
        }
        // The deliberate bug targets the first thread whose per-thread HCL
        // partition holds an entry: that thread drops it without applying.
        let victim = if self.inject_recovery_bug {
            let mut v = None;
            for tid in 0..self.launch_cfg().total_threads() {
                let tail = st
                    .log
                    .host_tail(machine, tid)
                    .map_err(|_| LaunchError::Sim(SimError::Invalid("log tail")))?;
                if tail as usize * 4 >= UNDO_BYTES {
                    v = Some(tid);
                    break;
                }
            }
            v
        } else {
            None
        };
        let log = st.log.dev();
        let pm_table = st.pm_table;
        gpm_persist_begin(machine);
        // Blocks cooperatively drain the shared log: each iteration's tail
        // read must see other blocks' removals, so this kernel can never run
        // against a frozen snapshot.
        let k = Communicating(FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            if Some(ctx.global_id()) == victim && log.tail(ctx)? as usize * 4 >= UNDO_BYTES {
                log.remove(ctx, UNDO_BYTES)?;
            }
            while log.tail(ctx)? as usize * 4 >= UNDO_BYTES {
                let mut entry = [0u8; UNDO_BYTES];
                log.read_top(ctx, &mut entry)?;
                let set = u32::from_le_bytes(entry[0..4].try_into().unwrap()) as u64;
                let way = u32::from_le_bytes(entry[4..8].try_into().unwrap()) as u64;
                let slot = pm_table + (set * WAYS + way) * SLOT_BYTES;
                ctx.st_bytes(Addr::pm(slot), &entry[8..40])?;
                ctx.gpm_persist()?;
                log.remove(ctx, UNDO_BYTES)?;
            }
            Ok(())
        }));
        launch_with_gauge(machine, self.launch_cfg(), &k, gauge)?;
        gpm_persist_end(machine);
        // Recovery complete: clear the transaction flag.
        st.flag.commit(machine).map_err(LaunchError::Sim)?;
        Ok(())
    }

    /// Gauge-driven GPM batch loop for the campaign oracle. `committed`
    /// tracks how many batches fully committed before the crash (if any).
    fn run_batches_gauged(
        &self,
        machine: &mut Machine,
        st: &KvsState,
        gauge: &mut FuelGauge,
        committed: &mut u32,
    ) -> Result<(), LaunchError> {
        for b in 0..self.params.batches {
            let ops = self.gen_batch(b);
            self.apply_batch_gauged(machine, st, b as u64, &ops, Mode::Gpm, gauge)?;
            *committed = b + 1;
        }
        Ok(())
    }

    /// Double-crash scenario: crash mid-batch after `fuel` ops, start the
    /// undo kernel but crash it again after `recovery_fuel` ops, then run
    /// recovery a second time to completion. Returns whether the in-flight
    /// batch was fully rolled back — i.e. whether re-recovery after a crash
    /// inside recovery is idempotent.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run_double_crash(
        &self,
        machine: &mut Machine,
        fuel: u64,
        recovery_fuel: u64,
    ) -> SimResult<bool> {
        assert!(
            self.params.key_skew.is_none(),
            "exact undo verification requires unique keys (no skew)"
        );
        let st = self.setup(machine, Mode::Gpm)?;
        let ops = self.gen_batch(0);
        let packed = self.pack_batch(&ops);
        self.upload_batch(machine, &st, &packed)?;
        let epoch = self.enter_epoch(machine, &st, 0)?;
        gpm_persist_begin(machine);
        match launch_with_fuel(
            machine,
            self.cfg_for_ops(packed.len()),
            &self.batch_kernel(&st, packed.len(), epoch, true, true),
            fuel,
        ) {
            Ok(_) => {
                gpm_persist_end(machine);
                machine.crash();
            }
            Err(LaunchError::Crashed(_)) => {}
            Err(LaunchError::Sim(e)) => return Err(e),
        }
        // First recovery attempt dies after `recovery_fuel` ops.
        match self.recover_gauged(machine, &st, &mut FuelGauge::crash(recovery_fuel)) {
            Ok(()) => {} // recovery finished before the fuel ran out
            Err(LaunchError::Crashed(_)) => {}
            Err(LaunchError::Sim(e)) => return Err(e),
        }
        // Second recovery must finish the drain.
        self.recover(machine, &st)?;
        let shard = st.shard(self.params.sets);
        for (key, _, is_get) in self.gen_batch(0) {
            if is_get {
                continue;
            }
            if shard.host_find(machine, key)?.is_some() {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl RecoveryOracle for KvsWorkload {
    fn name(&self) -> &'static str {
        "gpKVS"
    }

    fn record(&mut self, machine: &mut Machine) -> SimResult<CrashSchedule> {
        let st = self.setup(machine, Mode::Gpm)?;
        let mut gauge = FuelGauge::record();
        let mut committed = 0;
        crate::oracle::expect_clean(self.run_batches_gauged(
            machine,
            &st,
            &mut gauge,
            &mut committed,
        ))?;
        Ok(gauge.into_schedule().expect("recording gauge"))
    }

    fn run_case(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        assert!(
            self.params.key_skew.is_none(),
            "exact undo verification requires unique keys (no skew)"
        );
        let st = self.setup(machine, Mode::Gpm)?;
        let mut committed = 0u32;
        let res = self.run_batches_gauged(
            machine,
            &st,
            &mut FuelGauge::crash_with_policy(fuel, policy),
            &mut committed,
        );
        crate::oracle::settle_crash(machine, policy, res)?;
        self.recover(machine, &st)?;
        // After undo, the table must hold exactly the committed batches...
        let smaller = KvsWorkload::new(KvsParams {
            batches: committed,
            ..self.params
        });
        if !smaller.verify(machine, &st, Mode::Gpm)? {
            return Ok(OracleVerdict::Fail(format!(
                "table diverges from the {committed} committed batches"
            )));
        }
        // ...and none of the in-flight batch's keys.
        if committed < self.params.batches {
            let shard = st.shard(self.params.sets);
            for (key, _, is_get) in self.gen_batch(committed) {
                if is_get {
                    continue;
                }
                if shard.host_find(machine, key)?.is_some() {
                    return Ok(OracleVerdict::Fail(format!(
                        "uncommitted key {key:#x} of batch {committed} survived recovery"
                    )));
                }
            }
        }
        Ok(OracleVerdict::Pass)
    }

    fn supports_double_recovery(&self) -> bool {
        true
    }

    fn run_case_double_recovery(
        &mut self,
        machine: &mut Machine,
        fuel: u64,
        policy: CrashPolicy,
    ) -> SimResult<OracleVerdict> {
        assert!(
            self.params.key_skew.is_none(),
            "exactly-once verification requires unique keys (no skew)"
        );
        let model = self.reference_model();
        assert!(
            !model.evicted,
            "exactly-once verification requires an eviction-free batch mix"
        );
        let st = self.setup(machine, Mode::Gpm)?;
        let mut committed = 0u32;
        let res = self.run_batches_gauged(
            machine,
            &st,
            &mut FuelGauge::crash_with_policy(fuel, policy),
            &mut committed,
        );
        crate::oracle::settle_crash(machine, policy, res)?;
        // Retry recovery, run TWICE: it must be idempotent (a crash during
        // recovery itself only means running it again).
        self.recover_for_retry(machine, &st)?;
        self.recover_for_retry(machine, &st)?;
        // Resubmit the in-flight batch verbatim, then the remaining ones.
        let shard = st.shard(self.params.sets);
        for b in committed..self.params.batches {
            let ops = self.gen_batch(b);
            self.apply_batch(machine, &st, b as u64, &ops, Mode::Gpm)?;
            if b == committed {
                // Exactly-once check, immediately after the retried batch
                // (before later batches can mask a double apply): every SET
                // key must be present with version exactly 1 — absent means
                // zero applies, version 2 means two.
                for (key, val, is_get) in self.gen_batch(b) {
                    if is_get {
                        continue;
                    }
                    match shard.host_find(machine, key)? {
                        None => {
                            return Ok(OracleVerdict::Fail(format!(
                                "op on key {key:#x} of retried batch {b} applied zero times"
                            )))
                        }
                        Some(rec) if rec[2] != 1 => {
                            return Ok(OracleVerdict::Fail(format!(
                                "op on key {key:#x} of retried batch {b} applied {} times",
                                rec[2]
                            )))
                        }
                        Some(rec) if rec[1] != val => {
                            return Ok(OracleVerdict::Fail(format!(
                                "key {key:#x} holds the wrong value after retry"
                            )))
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        if !self.verify(machine, &st, Mode::Gpm)? {
            return Ok(OracleVerdict::Fail(
                "table diverges from the uncrashed reference after retry".into(),
            ));
        }
        Ok(OracleVerdict::Pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> KvsWorkload {
        KvsWorkload::new(KvsParams::quick())
    }

    #[test]
    fn gpm_run_verifies() {
        let mut m = Machine::default();
        let r = quick().run(&mut m, Mode::Gpm).unwrap();
        assert!(r.verified, "PM table must match the reference model");
        assert!(r.elapsed.0 > 0.0);
        assert!(r.pm_write_bytes_gpu > 0);
    }

    #[test]
    fn cap_modes_verify_and_amplify_writes() {
        let mut m1 = Machine::default();
        let gpm = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let capmm = quick().run(&mut m2, Mode::CapMm).unwrap();
        assert!(capmm.verified);
        let wa = capmm.pm_write_bytes_total() as f64 / gpm.pm_write_bytes_total() as f64;
        assert!(wa > 5.0, "CAP transfers the whole table: WA = {wa:.1}");
    }

    #[test]
    fn gpm_beats_cap_fs() {
        let mut m1 = Machine::default();
        let gpm = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let capfs = quick().run(&mut m2, Mode::CapFs).unwrap();
        assert!(capfs.verified);
        assert!(
            capfs.elapsed > gpm.elapsed,
            "gpm={} capfs={}",
            gpm.elapsed,
            capfs.elapsed
        );
    }

    #[test]
    fn recovery_restores_pre_batch_state() {
        let mut m = Machine::default();
        let r = quick().run_with_recovery(&mut m).unwrap();
        assert!(r.verified, "undo must roll the last batch back");
        assert!(r.recovery.unwrap().0 > 0.0);
    }

    #[test]
    fn crash_injection_recovers() {
        for fuel in [50u64, 500, 5_000] {
            let mut m = Machine::default();
            let ok = quick().run_crash_injected(&mut m, fuel).unwrap();
            assert!(ok, "fuel={fuel}: recovery must restore the empty table");
        }
    }

    #[test]
    fn get_mix_moderates_pm_traffic() {
        let mut m1 = Machine::default();
        let sets_only = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let mixed = KvsWorkload::new(KvsParams::quick().with_get_mix())
            .run(&mut m2, Mode::Gpm)
            .unwrap();
        assert!(mixed.pm_write_bytes_gpu < sets_only.pm_write_bytes_gpu / 4);
    }

    #[test]
    fn skewed_keys_verify_and_reduce_pm_traffic() {
        let mut m1 = Machine::default();
        let uniform = quick().run(&mut m1, Mode::Gpm).unwrap();
        let mut m2 = Machine::default();
        let skewed = KvsWorkload::new(KvsParams {
            key_skew: Some(1.1),
            ..KvsParams::quick()
        })
        .run(&mut m2, Mode::Gpm)
        .unwrap();
        assert!(skewed.verified, "reference model must track duplicate keys");
        // Hot keys overwrite the same slots: fewer distinct lines persisted.
        assert!(
            skewed.bytes_persisted <= uniform.bytes_persisted,
            "skew should not increase persisted lines: {} vs {}",
            skewed.bytes_persisted,
            uniform.bytes_persisted
        );
    }

    #[test]
    fn unsupported_modes_error() {
        let mut m = Machine::default();
        assert!(quick().run(&mut m, Mode::Gpufs).is_err());
    }

    /// Drives one GPM batch end-to-end (pack, upload, launch, commit) with
    /// the given engine-thread pin; returns the kernel report plus the PM
    /// write/persist deltas.
    fn drive_one_batch(m: &mut Machine, engine_threads: u32) -> (gpm_gpu::KernelReport, u64, u64) {
        let w = quick();
        let st = w.setup(m, Mode::Gpm).unwrap();
        let ops = w.gen_batch(0);
        let packed = w.pack_batch(&ops);
        w.upload_batch(m, &st, &packed).unwrap();
        let epoch = w.enter_epoch(m, &st, 0).unwrap();
        let s0 = m.stats;
        gpm_persist_begin(m);
        let r = launch(
            m,
            w.cfg_for_ops(packed.len())
                .with_engine_threads(engine_threads),
            &w.batch_kernel(&st, packed.len(), epoch, true, true),
        )
        .unwrap();
        gpm_persist_end(m);
        st.flag.commit(m).unwrap();
        let d = m.stats.delta(&s0);
        (r, d.pm_write_bytes_gpu, d.bytes_persisted)
    }

    /// The tentpole payoff: with hash-partitioned batches the detectable
    /// SET kernel carries no cross-block conflicts, so it must *commit*
    /// under the block-parallel engine (not fall back to sequential).
    #[test]
    fn batch_kernel_commits_block_parallel() {
        let mut m = Machine::default();
        let (r, _, _) = drive_one_batch(&mut m, 4);
        assert_eq!(
            r.threads_used, 4,
            "hash-partitioned batch must commit block-parallel"
        );
    }

    /// Engine threads are a host-side scheduling knob only: counters and
    /// PM media must be bit-identical across thread counts.
    #[test]
    fn engine_threads_do_not_change_counters_or_media() {
        let mut m1 = Machine::default();
        let (r1, w1, p1) = drive_one_batch(&mut m1, 1);
        let mut m4 = Machine::default();
        let (r4, w4, p4) = drive_one_batch(&mut m4, 4);
        assert_eq!(r1.threads_used, 1);
        assert_eq!(r4.threads_used, 4);
        assert_eq!(w1, w4, "PM write bytes must not depend on engine threads");
        assert_eq!(p1, p4, "persisted bytes must not depend on engine threads");
        let bytes = KvsParams::quick().table_bytes() as usize;
        let (mut t1, mut t4) = (vec![0u8; bytes], vec![0u8; bytes]);
        // Both tables live at the same offset on identical fresh machines.
        let w = quick();
        let st1 = w.setup(&mut Machine::default(), Mode::Gpm).unwrap();
        m1.read(Addr::pm(st1.pm_table), &mut t1).unwrap();
        m4.read(Addr::pm(st1.pm_table), &mut t4).unwrap();
        assert_eq!(t1, t4, "PM media must be bit-identical");
    }

    /// The double-recovery oracle passes on the correct implementation at
    /// every recorded crash boundary (subsampled), and the injected
    /// double-applying CAS is caught at some boundary.
    #[test]
    fn double_recovery_exactly_once_and_injected_bug_caught() {
        let mut w = quick();
        let mut m = Machine::default();
        let sched = w.record(&mut m).unwrap();
        let bounds = sched.boundaries().to_vec();
        assert!(w.supports_double_recovery());
        for fuel in bounds.iter().step_by(bounds.len() / 8 + 1) {
            let mut m = Machine::default();
            let v = w
                .run_case_double_recovery(&mut m, *fuel, CrashPolicy::AllApplied)
                .unwrap();
            assert!(v.passed(), "fuel={fuel}: {v:?}");
        }
        let mut buggy = KvsWorkload::new(KvsParams::quick()).with_double_apply_bug();
        let caught = bounds.iter().any(|&fuel| {
            let mut m = Machine::default();
            !buggy
                .run_case_double_recovery(&mut m, fuel, CrashPolicy::AllApplied)
                .unwrap()
                .passed()
        });
        assert!(caught, "deliberate double-apply bug went undetected");
    }
}
