//! A lock-free persistent hash shard built on detectable exactly-once
//! operations ([`gpm_core::detect`]).
//!
//! The table is MegaKV-shaped — 8-way set-associative, one set per key
//! hash — but each slot is a 32-byte *detectable record* `{key, value,
//! version, tag}` rather than a bare pair. The tag is the
//! [`gpm_core::op_tag`] of the operation that last wrote the slot, and the
//! version counts how many times the *key* has been applied, so an
//! exactly-once oracle can distinguish "applied once" (version 1 for a
//! fresh key) from "applied twice" (version 2) or "never applied" (key
//! absent) after any crash/retry sequence.
//!
//! [`shard_set_detectable`] is the per-operation SET protocol (Figure 6a's
//! slot update rebuilt on the descriptor protocol):
//!
//! 1. **Descriptor check** — the op's descriptor slot already holds its
//!    tag: the op applied *and* marked in a previous attempt; do nothing.
//! 2. **Probe** — cooperative 8-way probe of the HBM mirror (match >
//!    first-empty > victim way `(key >> 32) % 8`).
//! 3. **Record check** — the PM slot's tag equals the op's tag: the op
//!    applied but crashed before its mark settled; re-mark, do not
//!    re-apply.
//! 4. **Undo log** — append `{set, way, old 32-byte slot}` (40 bytes) so a
//!    *rollback* recovery can still restore the pre-batch table (retry and
//!    rollback are alternative recovery strategies over the same log).
//! 5. **Publish** — [`DetectableCas::publish`] the new record; the sync
//!    fence puts it on media before step 6 emits a byte.
//! 6. **Mark** — write the tag into the descriptor slot.
//! 7. **Mirror** — keep the volatile HBM copy coherent.
//!
//! Every step is per-thread: the HCL undo log has per-thread partitions and
//! descriptor slots are per-operation, so the kernel needs no cross-block
//! communication and runs under the block-parallel engine. Two operations
//! that collide on a set are caught by the engine's cross-block conflict
//! validation and fall back to the sequential canonical schedule — a
//! correctness non-event.
//!
//! **Exactly-once caveat (eviction):** a marked descriptor is always
//! authoritative, but an op that published, was evicted by a *later* op of
//! the same batch, and lost its mark to the crash is indistinguishable from
//! an unapplied op. The shard therefore guarantees exactly-once only for
//! batches that evict nothing — [`ShardModel::evicted`] lets harnesses
//! assert that (the workloads size their tables so in-batch eviction cannot
//! occur).

use std::collections::HashMap;

use gpm_core::{DetectDev, DetectableCas, GpmLogDev, GpmThreadExt};
use gpm_gpu::ThreadCtx;
use gpm_sim::{Addr, Machine, Ns, SimResult};

/// Ways per set (MegaKV-style set-associative layout).
pub const WAYS: u64 = 8;

/// Bytes per slot: one detectable record `{key, value, version, tag}`.
/// Half a 64-byte line, so a record never straddles a crash-settle unit.
pub const SLOT_BYTES: u64 = 32;

/// Undo-log record: set u32, way u32, then the old 32-byte slot.
pub const UNDO_BYTES: usize = 40;

/// Device-side handle to one shard: plain offsets, `Copy`, safe to capture
/// in kernels. The PM table is authoritative; the HBM mirror (same layout)
/// serves probes and GETs.
#[derive(Debug, Clone, Copy)]
pub struct ShardDev {
    /// PM offset of the table.
    pub pm_base: u64,
    /// HBM offset of the mirror.
    pub hbm_base: u64,
    /// Number of sets.
    pub sets: u64,
}

/// Table bytes for a shard of `sets` sets.
pub fn shard_bytes(sets: u64) -> u64 {
    sets * WAYS * SLOT_BYTES
}

impl ShardDev {
    /// Byte offset of `(set, way)` from either base.
    pub fn slot_off(&self, set: u64, way: u64) -> u64 {
        debug_assert!(set < self.sets && way < WAYS);
        (set * WAYS + way) * SLOT_BYTES
    }

    /// PM address of `(set, way)`.
    pub fn pm_slot(&self, set: u64, way: u64) -> Addr {
        Addr::pm(self.pm_base + self.slot_off(set, way))
    }

    /// HBM mirror address of `(set, way)`.
    pub fn hbm_slot(&self, set: u64, way: u64) -> Addr {
        Addr::hbm(self.hbm_base + self.slot_off(set, way))
    }

    /// The set `key` hashes to.
    pub fn hash_set(&self, key: u64) -> u64 {
        gpm_pmkv::hash64(key) % self.sets
    }

    /// Probes the mirror for `key`'s way: match beats first-empty beats the
    /// eviction victim `(key >> 32) % 8`.
    ///
    /// # Errors
    ///
    /// Propagates load errors and injected crashes.
    pub fn probe(&self, ctx: &mut ThreadCtx<'_>, set: u64, key: u64) -> SimResult<u64> {
        let mut way = (key >> 32) % WAYS;
        let mut empty: Option<u64> = None;
        for w in 0..WAYS {
            let k = ctx.ld_u64(self.hbm_slot(set, w))?;
            if k == key {
                return Ok(w);
            }
            if k == 0 && empty.is_none() {
                empty = Some(w);
            }
        }
        if let Some(w) = empty {
            way = w;
        }
        Ok(way)
    }

    /// GET: the mirror value stored under `key`, or 0 when absent.
    ///
    /// # Errors
    ///
    /// Propagates load errors and injected crashes.
    pub fn lookup(&self, ctx: &mut ThreadCtx<'_>, set: u64, key: u64) -> SimResult<u64> {
        for w in 0..WAYS {
            if ctx.ld_u64(self.hbm_slot(set, w))? == key {
                return ctx.ld_u64(self.hbm_slot(set, w).add(8));
            }
        }
        Ok(0)
    }

    /// Reads the mirror slot's four words.
    ///
    /// # Errors
    ///
    /// Propagates load errors and injected crashes.
    pub fn mirror_read(&self, ctx: &mut ThreadCtx<'_>, set: u64, way: u64) -> SimResult<[u64; 4]> {
        let mut b = [0u8; SLOT_BYTES as usize];
        ctx.ld_bytes(self.hbm_slot(set, way), &mut b)?;
        Ok(slot_words(&b))
    }

    /// Writes a full record into the mirror slot.
    ///
    /// # Errors
    ///
    /// Propagates store errors and injected crashes.
    pub fn mirror_store(
        &self,
        ctx: &mut ThreadCtx<'_>,
        set: u64,
        way: u64,
        rec: [u64; 4],
    ) -> SimResult<()> {
        ctx.st_bytes(self.hbm_slot(set, way), &slot_bytes(rec))
    }

    /// Host-side placement-agnostic lookup: scans `key`'s set in the PM
    /// table and returns the full record, or `None` when absent. Oracles
    /// use this so a retried run may legitimately place a key in a
    /// different way than an uncrashed run would.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn host_find(&self, machine: &Machine, key: u64) -> SimResult<Option<[u64; 4]>> {
        let set = self.hash_set(key);
        for w in 0..WAYS {
            let mut b = [0u8; SLOT_BYTES as usize];
            machine.read(self.pm_slot(set, w), &mut b)?;
            let rec = slot_words(&b);
            if rec[0] == key {
                return Ok(Some(rec));
            }
        }
        Ok(None)
    }

    /// Host-side untimed scan of the durable PM table: every live
    /// `(key, value)` pair in set-major, way-minor order (the order is
    /// deterministic, which resharding's migration planner relies on).
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn host_scan(&self, machine: &Machine) -> SimResult<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        for set in 0..self.sets {
            for w in 0..WAYS {
                let mut b = [0u8; SLOT_BYTES as usize];
                machine.read(self.pm_slot(set, w), &mut b)?;
                let rec = slot_words(&b);
                if rec[0] != 0 {
                    out.push((rec[0], rec[1]));
                }
            }
        }
        Ok(out)
    }
}

fn slot_words(b: &[u8; SLOT_BYTES as usize]) -> [u64; 4] {
    [
        u64::from_le_bytes(b[0..8].try_into().unwrap()),
        u64::from_le_bytes(b[8..16].try_into().unwrap()),
        u64::from_le_bytes(b[16..24].try_into().unwrap()),
        u64::from_le_bytes(b[24..32].try_into().unwrap()),
    ]
}

fn slot_bytes(rec: [u64; 4]) -> [u8; SLOT_BYTES as usize] {
    let mut b = [0u8; SLOT_BYTES as usize];
    b[0..8].copy_from_slice(&rec[0].to_le_bytes());
    b[8..16].copy_from_slice(&rec[1].to_le_bytes());
    b[16..24].copy_from_slice(&rec[2].to_le_bytes());
    b[24..32].copy_from_slice(&rec[3].to_le_bytes());
    b
}

fn undo_entry(set: u64, way: u64, old: [u64; 4]) -> [u8; UNDO_BYTES] {
    let mut e = [0u8; UNDO_BYTES];
    e[0..4].copy_from_slice(&(set as u32).to_le_bytes());
    e[4..8].copy_from_slice(&(way as u32).to_le_bytes());
    e[8..40].copy_from_slice(&slot_bytes(old));
    e
}

/// The detectable SET: applies `key := value` exactly once per `tag` no
/// matter how many times a crashed batch is retried (see the module doc's
/// seven-step protocol). `op` is the operation's descriptor slot.
///
/// With `inject_double_apply` set, the operation skips both the descriptor
/// check and the record check — the deliberate campaign self-test bug. A
/// clean run is unaffected (the checks never fire there); only a
/// crash-and-retry makes the op apply twice, bumping the key's version to
/// 2, which exactly the double-recovery oracle must catch.
///
/// # Errors
///
/// Propagates platform errors; [`gpm_sim::SimError::Crashed`] under a
/// crashing fuel gauge.
#[allow(clippy::too_many_arguments)]
pub fn shard_set_detectable(
    ctx: &mut ThreadCtx<'_>,
    shard: &ShardDev,
    detect: &DetectDev,
    log: &GpmLogDev,
    op: u64,
    tag: u64,
    key: u64,
    value: u64,
    inject_double_apply: bool,
) -> SimResult<()> {
    shard_apply_detectable(
        ctx,
        shard,
        detect,
        log,
        op,
        tag,
        key,
        |_| value,
        inject_double_apply,
    )
}

/// The detectable read-modify-write: folds `apply` over `key`'s current
/// value and publishes the result, exactly once per `tag`. The closure
/// receives `Some(value)` when the probed slot already holds `key` and
/// `None` when the key is fresh (empty slot or eviction victim); it runs on
/// host data and must be pure — on a retry that finds the op already
/// applied (descriptor or record check) it is never re-invoked, which is
/// precisely what makes non-idempotent folds (counters, state machines)
/// safe to resubmit. Same seven-step protocol, same `inject_double_apply`
/// self-test knob as [`shard_set_detectable`] (which is the constant-fold
/// special case).
///
/// # Errors
///
/// Propagates platform errors; [`gpm_sim::SimError::Crashed`] under a
/// crashing fuel gauge.
#[allow(clippy::too_many_arguments)]
pub fn shard_apply_detectable(
    ctx: &mut ThreadCtx<'_>,
    shard: &ShardDev,
    detect: &DetectDev,
    log: &GpmLogDev,
    op: u64,
    tag: u64,
    key: u64,
    apply: impl FnOnce(Option<u64>) -> u64,
    inject_double_apply: bool,
) -> SimResult<()> {
    // 1. Descriptor check: applied and marked.
    if !inject_double_apply && detect.read(ctx, op)? == tag {
        return Ok(());
    }
    // 2. Probe.
    let set = shard.hash_set(key);
    let way = shard.probe(ctx, set, key)?;
    let old = DetectableCas::read(ctx, shard.pm_slot(set, way))?;
    // 3. Record check: applied, mark lost to the crash. Re-mark only.
    if !inject_double_apply && old[3] == tag {
        detect.mark(ctx, op, tag)?;
        shard.mirror_store(ctx, set, way, old)?;
        return Ok(());
    }
    // 4. Undo-log the displaced slot (rollback recovery stays possible).
    log.insert(ctx, &undo_entry(set, way, old))?;
    // 5–6. Publish the record durably, then mark the descriptor.
    let value = apply(if old[0] == key { Some(old[1]) } else { None });
    let version = if old[0] == key { old[2] + 1 } else { 1 };
    DetectableCas::publish(ctx, shard.pm_slot(set, way), key, value, version, tag)?;
    detect.mark(ctx, op, tag)?;
    // 7. Mirror.
    shard.mirror_store(ctx, set, way, [key, value, version, tag])
}

/// The legacy (non-detectable) SET for the GPM-NDP and CAP configurations,
/// which have no in-kernel persist ordering to hang the protocol on:
/// probe, optional undo log and PM store, mirror update. Records carry
/// version numbers but tag 0.
///
/// `to_pm=false` is CAP (mirror only; the CPU persists the whole table
/// after the batch); `persist=false` with `to_pm=true` is GPM-NDP
/// (unfenced PM stores, CPU flushes after the kernel).
///
/// # Errors
///
/// Propagates platform errors.
pub fn shard_set_legacy(
    ctx: &mut ThreadCtx<'_>,
    shard: &ShardDev,
    log: &GpmLogDev,
    key: u64,
    value: u64,
    to_pm: bool,
    persist: bool,
) -> SimResult<()> {
    let set = shard.hash_set(key);
    let way = shard.probe(ctx, set, key)?;
    let old = shard.mirror_read(ctx, set, way)?;
    let version = if old[0] == key { old[2] + 1 } else { 1 };
    if to_pm {
        let entry = undo_entry(set, way, old);
        if persist {
            log.insert(ctx, &entry)?;
        } else {
            log.insert_unfenced(ctx, &entry)?;
        }
        ctx.st_bytes(
            shard.pm_slot(set, way),
            &slot_bytes([key, value, version, 0]),
        )?;
        if persist {
            ctx.gpm_persist()?;
        }
    }
    shard.mirror_store(ctx, set, way, [key, value, version, 0])
}

/// Host reference model of one shard: replays SETs with the same probe
/// order and version bookkeeping the kernels use, tracking whether any SET
/// evicted a live key (the exactly-once caveat in the module doc).
#[derive(Debug, Clone)]
pub struct ShardModel {
    sets: u64,
    table: HashMap<(u64, u64), (u64, u64, u64)>,
    /// Whether any replayed SET displaced a different live key.
    pub evicted: bool,
}

impl ShardModel {
    /// An empty model over `sets` sets.
    pub fn new(sets: u64) -> ShardModel {
        ShardModel {
            sets,
            table: HashMap::new(),
            evicted: false,
        }
    }

    /// Replays one SET.
    pub fn set(&mut self, key: u64, value: u64) {
        self.apply(key, |_| value);
    }

    /// Replays one read-modify-write ([`shard_apply_detectable`]'s host
    /// twin): the closure sees the current value (`None` when the key is
    /// fresh) and returns the new one.
    pub fn apply(&mut self, key: u64, f: impl FnOnce(Option<u64>) -> u64) {
        let set = gpm_pmkv::hash64(key) % self.sets;
        let mut way = (key >> 32) % WAYS;
        let mut empty = None;
        let mut old = None;
        for w in 0..WAYS {
            let cur = self.table.get(&(set, w)).map_or(0, |e| e.0);
            if cur == key {
                way = w;
                old = Some(self.table[&(set, w)]);
                empty = None;
                break;
            }
            if cur == 0 && empty.is_none() {
                empty = Some(w);
            }
        }
        if let Some(w) = empty {
            way = w;
        }
        if old.is_none() && self.table.get(&(set, way)).is_some_and(|e| e.0 != 0) {
            self.evicted = true;
        }
        let version = old.map_or(1, |e| e.2 + 1);
        let value = f(old.map(|e| e.1));
        self.table.insert((set, way), (key, value, version));
    }

    /// The value stored under `key`, if present.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.find(key).map(|(v, _)| v)
    }

    /// The `(value, version)` stored under `key`, if present.
    pub fn find(&self, key: u64) -> Option<(u64, u64)> {
        let set = gpm_pmkv::hash64(key) % self.sets;
        (0..WAYS).find_map(|w| {
            self.table
                .get(&(set, w))
                .filter(|e| e.0 == key)
                .map(|e| (e.1, e.2))
        })
    }

    /// Iterates `((set, way), (key, value, version))` over occupied slots.
    pub fn entries(&self) -> impl Iterator<Item = (&(u64, u64), &(u64, u64, u64))> {
        self.table.iter()
    }
}

/// Simulated cost of rebuilding an HBM mirror from PM over PCIe (one bulk
/// DMA), shared by the KVS and DB retry-recovery paths.
pub fn mirror_rebuild_cost(machine: &Machine, bytes: u64) -> Ns {
    machine.cfg.dma_init_overhead + Ns(bytes as f64 / machine.cfg.pcie_bw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_core::{
        detect_create, gpm_map, gpm_persist_begin, gpm_persist_end, gpmlog_create_hcl, op_tag,
    };
    use gpm_gpu::{launch, launch_with_fuel, FnKernel, LaunchConfig, LaunchError};
    use gpm_sim::PersistencyModel;

    const SETS: u64 = 64;
    const OPS: u64 = 16;

    struct Rig {
        shard: ShardDev,
        detect: gpm_core::DetectArea,
        log: gpm_core::GpmLog,
    }

    fn rig(m: &mut Machine) -> Rig {
        let pm = gpm_map(m, "/pm/shard/table", shard_bytes(SETS), true)
            .unwrap()
            .offset;
        let hbm = m.alloc_hbm(shard_bytes(SETS)).unwrap();
        let detect = detect_create(m, "/pm/shard/detect", OPS).unwrap();
        let log = gpmlog_create_hcl(m, "/pm/shard/log", 32 * UNDO_BYTES as u64 * 2, 1, 32).unwrap();
        Rig {
            shard: ShardDev {
                pm_base: pm,
                hbm_base: hbm,
                sets: SETS,
            },
            detect,
            log,
        }
    }

    fn keys() -> Vec<(u64, u64)> {
        (0..OPS)
            .map(|i| {
                let k = gpm_pmkv::hash64(i + 1) | 1;
                (k, k.wrapping_mul(31))
            })
            .collect()
    }

    fn set_kernel(
        r: &Rig,
        epoch: u64,
        inject: bool,
    ) -> impl gpm_gpu::Kernel<State = (), Shared = ()> {
        let (shard, detect, log) = (r.shard, r.detect.dev(), r.log.dev());
        let ops = keys();
        FnKernel(move |ctx: &mut ThreadCtx<'_>| {
            let i = ctx.global_id();
            if i >= OPS {
                return Ok(());
            }
            let (k, v) = ops[i as usize];
            shard_set_detectable(
                ctx,
                &shard,
                &detect,
                &log,
                i,
                op_tag(epoch, i),
                k,
                v,
                inject,
            )
        })
    }

    fn verify_versions(m: &Machine, shard: &ShardDev, want_version: u64) {
        for (k, v) in keys() {
            let rec = shard.host_find(m, k).unwrap().expect("key present");
            assert_eq!(rec[1], v, "value for key {k:#x}");
            assert_eq!(rec[2], want_version, "version for key {k:#x}");
        }
    }

    #[test]
    fn clean_run_applies_each_op_once() {
        let mut m = Machine::default();
        let r = rig(&mut m);
        let epoch = r.detect.begin_epoch(&mut m).unwrap();
        gpm_persist_begin(&mut m);
        launch(
            &mut m,
            LaunchConfig::new(1, 32),
            &set_kernel(&r, epoch, false),
        )
        .unwrap();
        gpm_persist_end(&mut m);
        m.crash();
        verify_versions(&m, &r.shard, 1);
        let mut model = ShardModel::new(SETS);
        for (k, v) in keys() {
            model.set(k, v);
        }
        assert!(!model.evicted);
        for (k, v) in keys() {
            assert_eq!(model.get(k), Some(v));
        }
    }

    /// Crash at every fuel point under both persistency models, then retry
    /// the identical batch: every key must land with version exactly 1 —
    /// zero-apply would leave it absent, double-apply would leave 2.
    #[test]
    fn crash_and_retry_is_exactly_once_at_every_fuel() {
        for model in [PersistencyModel::Strict, PersistencyModel::Epoch] {
            for fuel in (1..400).step_by(7) {
                let mut m = Machine::default();
                let r = rig(&mut m);
                let epoch = r.detect.begin_epoch(&mut m).unwrap();
                let cfg = LaunchConfig::new(1, 32).with_persistency(model);
                gpm_persist_begin(&mut m);
                match launch_with_fuel(&mut m, cfg, &set_kernel(&r, epoch, false), fuel) {
                    Ok(_) => {
                        gpm_persist_end(&mut m);
                        m.crash();
                    }
                    Err(LaunchError::Crashed(_)) => {}
                    Err(LaunchError::Sim(e)) => panic!("{e:?}"),
                }
                // Retry: rebuild the mirror from PM, resubmit the batch.
                let mut buf = vec![0u8; shard_bytes(SETS) as usize];
                m.read(Addr::pm(r.shard.pm_base), &mut buf).unwrap();
                m.host_write(Addr::hbm(r.shard.hbm_base), &buf).unwrap();
                gpm_persist_begin(&mut m);
                launch(&mut m, cfg, &set_kernel(&r, epoch, false)).unwrap();
                gpm_persist_end(&mut m);
                m.crash();
                verify_versions(&m, &r.shard, 1);
            }
        }
    }

    /// The deliberate double-applying CAS: harmless on a clean run, version
    /// 2 after a crash+retry — the signal the campaign self-test needs.
    #[test]
    fn injected_double_apply_is_clean_without_a_crash_and_dirty_with_one() {
        let mut m = Machine::default();
        let r = rig(&mut m);
        let epoch = r.detect.begin_epoch(&mut m).unwrap();
        let cfg = LaunchConfig::new(1, 32);
        gpm_persist_begin(&mut m);
        launch(&mut m, cfg, &set_kernel(&r, epoch, true)).unwrap();
        gpm_persist_end(&mut m);
        verify_versions(&m, &r.shard, 1);

        // Crash late enough that some op fully applied, then retry.
        let mut m = Machine::default();
        let r = rig(&mut m);
        let epoch = r.detect.begin_epoch(&mut m).unwrap();
        gpm_persist_begin(&mut m);
        match launch_with_fuel(&mut m, cfg, &set_kernel(&r, epoch, true), 200) {
            Err(LaunchError::Crashed(_)) => {}
            other => panic!("expected a crash, got {other:?}"),
        }
        let mut buf = vec![0u8; shard_bytes(SETS) as usize];
        m.read(Addr::pm(r.shard.pm_base), &mut buf).unwrap();
        m.host_write(Addr::hbm(r.shard.hbm_base), &buf).unwrap();
        gpm_persist_begin(&mut m);
        launch(&mut m, cfg, &set_kernel(&r, epoch, true)).unwrap();
        gpm_persist_end(&mut m);
        let double_applied = keys().iter().any(|&(k, _)| {
            r.shard
                .host_find(&m, k)
                .unwrap()
                .is_some_and(|rec| rec[2] > 1)
        });
        assert!(
            double_applied,
            "the injected bug must re-apply at least one op on retry"
        );
    }

    /// The RMW fold sees the prior value exactly once per apply and the
    /// version counts applies — the contract gpAnalytics' per-user state
    /// machines build on.
    #[test]
    fn model_apply_folds_over_prior_value() {
        let mut model = ShardModel::new(SETS);
        let key = gpm_pmkv::hash64(99) | 1;
        model.apply(key, |old| {
            assert_eq!(old, None, "fresh key folds from None");
            5
        });
        model.apply(key, |old| old.unwrap() * 10 + 1);
        assert_eq!(model.find(key), Some((51, 2)));
    }

    /// A crash-and-retry of an RMW batch must fold each op exactly once:
    /// a double fold would double-increment the counter value.
    #[test]
    fn rmw_crash_and_retry_folds_exactly_once() {
        for fuel in (1..300).step_by(13) {
            let mut m = Machine::default();
            let r = rig(&mut m);
            let epoch = r.detect.begin_epoch(&mut m).unwrap();
            let cfg = LaunchConfig::new(1, 32);
            let (shard, detect, log) = (r.shard, r.detect.dev(), r.log.dev());
            let kernel = FnKernel(move |ctx: &mut ThreadCtx<'_>| {
                let i = ctx.global_id();
                if i >= OPS {
                    return Ok(());
                }
                let k = gpm_pmkv::hash64(i + 1) | 1;
                shard_apply_detectable(
                    ctx,
                    &shard,
                    &detect,
                    &log,
                    i,
                    op_tag(epoch, i),
                    k,
                    |old| old.unwrap_or(100) + 1,
                    false,
                )
            });
            gpm_persist_begin(&mut m);
            match launch_with_fuel(&mut m, cfg, &kernel, fuel) {
                Ok(_) => {
                    gpm_persist_end(&mut m);
                    m.crash();
                }
                Err(LaunchError::Crashed(_)) => {}
                Err(LaunchError::Sim(e)) => panic!("{e:?}"),
            }
            let mut buf = vec![0u8; shard_bytes(SETS) as usize];
            m.read(Addr::pm(r.shard.pm_base), &mut buf).unwrap();
            m.host_write(Addr::hbm(r.shard.hbm_base), &buf).unwrap();
            gpm_persist_begin(&mut m);
            launch(&mut m, cfg, &kernel).unwrap();
            gpm_persist_end(&mut m);
            for i in 0..OPS {
                let k = gpm_pmkv::hash64(i + 1) | 1;
                let rec = r.shard.host_find(&m, k).unwrap().expect("key present");
                assert_eq!(rec[1], 101, "fuel={fuel}: fold must run exactly once");
                assert_eq!(rec[2], 1, "fuel={fuel}: version must be 1");
            }
        }
    }

    #[test]
    fn model_tracks_eviction() {
        let mut model = ShardModel::new(1); // every key in set 0
        for i in 0..WAYS + 1 {
            model.set(gpm_pmkv::hash64(i + 1) | 1, i);
        }
        assert!(model.evicted, "9th key into an 8-way set must evict");
    }
}
