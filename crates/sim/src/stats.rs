//! Platform-wide counters used by the evaluation harness.
//!
//! Write-amplification (Table 4) is derived from `bytes_persisted`; PCIe
//! write bandwidth (Figure 12) from `pm_write_bytes_gpu` over elapsed time;
//! fence counts feed the kernel timing model.

/// Monotonic counters accumulated by the machine and execution engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Bytes written to PM by GPU kernels over PCIe.
    pub pm_write_bytes_gpu: u64,
    /// Bytes written to PM by CPU threads (CAP persisting, CPU baselines).
    pub pm_write_bytes_cpu: u64,
    /// Bytes read from PM by GPU kernels over PCIe.
    pub pm_read_bytes_gpu: u64,
    /// Coalesced PCIe write transactions issued by the GPU.
    pub pcie_write_txns: u64,
    /// Bytes moved by the DMA engine (GPU↔DRAM staging for CAP).
    pub dma_bytes: u64,
    /// System-scoped fences executed (warp-granular events).
    pub system_fences: u64,
    /// Device-scoped fences executed.
    pub device_fences: u64,
    /// Bytes whose durability was explicitly guaranteed (flush/fence paths);
    /// the numerator/denominator of the paper's write-amplification table.
    pub bytes_persisted: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Injected crashes survived.
    pub crashes: u64,
    /// Optane media program operations (256-byte internal blocks written).
    /// The endurance metric HCL's coalescing improves (§5.2: "This also
    /// improves NVM's endurance").
    pub pm_block_programs: u64,
}

impl Stats {
    /// Counter-wise difference `self - earlier`; use to meter one run.
    ///
    /// # Examples
    ///
    /// ```
    /// use gpm_sim::Stats;
    /// let before = Stats::default();
    /// let mut after = Stats::default();
    /// after.pm_write_bytes_gpu = 128;
    /// assert_eq!(after.delta(&before).pm_write_bytes_gpu, 128);
    /// ```
    #[must_use]
    pub fn delta(&self, earlier: &Stats) -> Stats {
        Stats {
            pm_write_bytes_gpu: self.pm_write_bytes_gpu - earlier.pm_write_bytes_gpu,
            pm_write_bytes_cpu: self.pm_write_bytes_cpu - earlier.pm_write_bytes_cpu,
            pm_read_bytes_gpu: self.pm_read_bytes_gpu - earlier.pm_read_bytes_gpu,
            pcie_write_txns: self.pcie_write_txns - earlier.pcie_write_txns,
            dma_bytes: self.dma_bytes - earlier.dma_bytes,
            system_fences: self.system_fences - earlier.system_fences,
            device_fences: self.device_fences - earlier.device_fences,
            bytes_persisted: self.bytes_persisted - earlier.bytes_persisted,
            kernel_launches: self.kernel_launches - earlier.kernel_launches,
            crashes: self.crashes - earlier.crashes,
            pm_block_programs: self.pm_block_programs - earlier.pm_block_programs,
        }
    }

    /// Total bytes written to PM from either side.
    pub fn pm_write_bytes_total(&self) -> u64 {
        self.pm_write_bytes_gpu + self.pm_write_bytes_cpu
    }

    /// Counter-wise sum `self + other`; meters a multi-machine engine
    /// (e.g. a replicated primary/replica pair) as one unit.
    #[must_use]
    pub fn merged(&self, other: &Stats) -> Stats {
        Stats {
            pm_write_bytes_gpu: self.pm_write_bytes_gpu + other.pm_write_bytes_gpu,
            pm_write_bytes_cpu: self.pm_write_bytes_cpu + other.pm_write_bytes_cpu,
            pm_read_bytes_gpu: self.pm_read_bytes_gpu + other.pm_read_bytes_gpu,
            pcie_write_txns: self.pcie_write_txns + other.pcie_write_txns,
            dma_bytes: self.dma_bytes + other.dma_bytes,
            system_fences: self.system_fences + other.system_fences,
            device_fences: self.device_fences + other.device_fences,
            bytes_persisted: self.bytes_persisted + other.bytes_persisted,
            kernel_launches: self.kernel_launches + other.kernel_launches,
            crashes: self.crashes + other.crashes,
            pm_block_programs: self.pm_block_programs + other.pm_block_programs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = Stats {
            pm_write_bytes_gpu: 10,
            system_fences: 3,
            ..Stats::default()
        };
        let mut b = a;
        b.pm_write_bytes_gpu = 25;
        b.system_fences = 7;
        b.crashes = 1;
        let d = b.delta(&a);
        assert_eq!(d.pm_write_bytes_gpu, 15);
        assert_eq!(d.system_fences, 4);
        assert_eq!(d.crashes, 1);
        assert_eq!(d.dma_bytes, 0);
    }

    #[test]
    fn totals() {
        let s = Stats {
            pm_write_bytes_gpu: 3,
            pm_write_bytes_cpu: 4,
            ..Stats::default()
        };
        assert_eq!(s.pm_write_bytes_total(), 7);
    }
}
