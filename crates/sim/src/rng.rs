//! In-tree deterministic pseudo-random number generation.
//!
//! The simulator needs randomness in exactly one place — selecting the
//! arbitrary subset of pending cache lines a power failure applies
//! ([`crate::pm::PmDevice::crash`]) — and that randomness must be seeded,
//! reproducible, and available in a sandbox with no network access. Rather
//! than depend on the external `rand` crate, the platform ships the two
//! classic generators it would have used anyway:
//!
//! * [`SplitMix64`]: a one-cell mixer, used to expand a 64-bit seed into a
//!   full generator state (the standard xoshiro seeding procedure).
//! * [`Xoshiro256StarStar`]: Blackman & Vigna's xoshiro256**, a fast,
//!   high-quality general-purpose generator.
//!
//! Both are tiny, allocation-free, and bit-for-bit reproducible across
//! platforms, which is what the golden-counter determinism tests rely on.

/// SplitMix64: Steele, Lea & Flood's 64-bit mixer. Primarily a seed
/// expander, but a perfectly serviceable generator in its own right.
///
/// # Examples
///
/// ```
/// use gpm_sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the simulator's general-purpose seeded generator.
///
/// # Examples
///
/// ```
/// use gpm_sim::rng::Xoshiro256StarStar;
/// let mut rng = Xoshiro256StarStar::seed_from_u64(42);
/// let x = rng.next_u64();
/// let mut again = Xoshiro256StarStar::seed_from_u64(42);
/// assert_eq!(again.next_u64(), x);
/// ```
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator whose state is expanded from `seed` with
    /// [`SplitMix64`], as the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256StarStar {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform integer in `[0, n)` via Lemire's multiply-shift reduction
    /// (deterministic, unbiased for the `n` sizes the simulator uses).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n || n.is_power_of_two() {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_range_usize(&mut self, n: usize) -> usize {
        self.gen_range_u64(n as u64) as usize
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 0 (Vigna's splitmix64.c).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_reproducible_and_varies() {
        let mut a = Xoshiro256StarStar::seed_from_u64(123);
        let mut b = Xoshiro256StarStar::seed_from_u64(123);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = Xoshiro256StarStar::seed_from_u64(124);
        assert_ne!(c.next_u64(), xs[0]);
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range_u64(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
