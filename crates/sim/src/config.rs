//! Platform configuration: capacities, latencies, and bandwidths.
//!
//! The constants model the paper's testbed (Table 3): a 4-socket Intel Xeon
//! Gold 6242, 8×128 GB Optane DCPMM (app-direct, interleaved), an NVIDIA
//! Titan RTX, and PCIe 3.0 ×16. They are calibrated so the *relative* results
//! of the paper's evaluation (Figures 1, 3, 9–12; Tables 4–5) reproduce;
//! absolute values are model estimates. Sources for each constant are cited
//! inline: `[paper §x]` refers to the GPM paper, `[Yang FAST'20]` /
//! `[Izraelevitz'19]` to the Optane characterization studies it cites.

use crate::time::Ns;

/// Gigabytes-per-second expressed as bytes-per-nanosecond (they coincide:
/// 1 GB/s = 1 byte/ns).
pub type GbPerS = f64;

/// Persistence-domain behaviour of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PersistMode {
    /// Baseline ADR platform: the memory controller's write-pending queue is
    /// durable, CPU caches (and the DDIO-targeted LLC) are not. `[paper §2]`
    #[default]
    Adr,
    /// Projected eADR platform: the entire CPU cache hierarchy is flushed on
    /// power failure, so visibility implies durability. `[paper §3.3, §6.1]`
    Eadr,
}

/// GPU persistency model: *when* a system-scope fence drains its writer's
/// pending lines into the persistence domain.
///
/// Follows the strict/epoch distinction of "Exploring Memory Persistency
/// Models for GPUs" (Lin & Solihin): under strict persistency every fence
/// synchronously waits for its writes to reach the durable WPQ, while under
/// epoch persistency fences only *order* writes into the current persist
/// epoch and the drain is deferred to the epoch boundary (here: kernel
/// completion). The model is selected per launch — see `LaunchConfig` in
/// `gpm-gpu` — and only changes timing plus *when* pending lines become
/// durable; visibility and final media contents are identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PersistencyModel {
    /// Every system fence synchronously drains the writer's pending lines
    /// (the GPM paper's baseline behaviour, §5.1).
    #[default]
    Strict,
    /// Fences mark the writer's pending lines as epoch-ordered; all marked
    /// lines drain together at the epoch boundary (kernel completion), so a
    /// fence costs [`MachineConfig::epoch_fence_latency`] instead of a full
    /// PCIe round trip.
    Epoch,
}

/// Timing and topology parameters of the simulated machine.
///
/// Construct with [`MachineConfig::default`] for the paper's testbed, or
/// tweak individual fields for sensitivity studies.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    // ---- capacities -------------------------------------------------------
    /// Capacity of the simulated PM space in bytes (scaled down from 1 TB).
    pub pm_capacity: u64,
    /// Capacity of the simulated host DRAM in bytes.
    pub dram_capacity: u64,
    /// Capacity of the simulated GPU device memory in bytes.
    pub hbm_capacity: u64,

    // ---- GPU --------------------------------------------------------------
    /// Number of streaming multiprocessors (Titan RTX: 72). `[Table 3]`
    pub sm_count: u32,
    /// Maximum concurrently-resident threads per SM used for latency hiding.
    pub threads_per_sm: u32,
    /// CUDA cores per SM (Turing: 64): bounds compute *throughput*, while
    /// resident threads bound latency hiding.
    pub cuda_cores_per_sm: u32,
    /// Fixed cost of launching a kernel (driver + dispatch).
    pub kernel_launch_overhead: Ns,
    /// GPU device-memory bandwidth (Titan RTX GDDR6 ≈ 550 GB/s achievable;
    /// the paper measures ~250 GB/s total for BLK `[§6.1]`).
    pub hbm_bw: GbPerS,
    /// Cost of a device-scoped fence (L2 visibility only).
    pub device_fence_latency: Ns,

    // ---- PCIe -------------------------------------------------------------
    /// Achievable PCIe 3.0 ×16 bandwidth (paper: "∼13 GBps" `[§6.1]`).
    pub pcie_bw: GbPerS,
    /// Per 128-byte coalesced transaction overhead on the link.
    pub pcie_txn_overhead: Ns,
    /// Maximum warp-granular PCIe operations in flight; GPUs "support a
    /// limited number of concurrent operations on the PCIe" `[§3.2, EMOGI]`.
    pub pcie_max_inflight: u32,
    /// Latency of a system-scoped fence that must wait for prior writes to
    /// reach the host memory controller's durable WPQ (ADR). Round trip over
    /// PCIe plus queue acceptance. `[§5.1, AGAMOTTO]`
    pub system_fence_latency: Ns,
    /// Latency of a system-scoped fence when eADR makes the LLC durable: the
    /// fence completes "as soon as data reaches LLC" `[§6.1]`.
    pub eadr_fence_latency: Ns,
    /// Latency of a system-scoped fence under [`PersistencyModel::Epoch`]:
    /// the fence only orders prior writes into the open persist epoch (a
    /// posted operation, no durable-WPQ round trip), so it costs little more
    /// than PCIe write acceptance. The deferred drain pays one full
    /// [`MachineConfig::system_fence_latency`] at the epoch boundary.
    /// `[Lin & Solihin, epoch persistency]`
    pub epoch_fence_latency: Ns,
    /// Fixed cost of initiating a DMA transfer (driver, ring setup).
    pub dma_init_overhead: Ns,

    // ---- Optane PM --------------------------------------------------------
    /// PM write bandwidth for sequential 256-byte-aligned accesses
    /// (paper microbenchmark: 12.5 GB/s `[§6.1]`).
    pub pm_bw_seq_aligned: GbPerS,
    /// PM write bandwidth for sequential unaligned accesses (3.13 GB/s
    /// `[§6.1]`).
    pub pm_bw_seq_unaligned: GbPerS,
    /// PM write bandwidth for random accesses (0.72 GB/s `[§6.1]`).
    pub pm_bw_random: GbPerS,
    /// PM read latency (Optane ≈ 3–10× DRAM `[§2, Izraelevitz'19]`).
    pub pm_read_latency: Ns,
    /// PM read bandwidth (interleaved DIMMs, sequential).
    pub pm_read_bw: GbPerS,

    // ---- CPU --------------------------------------------------------------
    /// Physical cores available for CAP persisting (4×16 `[Table 3]`).
    pub cpu_cores: u32,
    /// Single-stream CPU memcpy bandwidth DRAM→PM (via LLC, store path).
    pub cpu_copy_bw: GbPerS,
    /// Single-thread CLFLUSHOPT+SFENCE drain throughput (pipelined flushes
    /// of resident lines; issue-rate bound).
    pub cpu_flush_bw: GbPerS,
    /// CLFLUSHOPT issue rate over *clean* lines (flushing a clean line is
    /// nearly free; only the instruction stream costs).
    pub cpu_clflush_issue_bw: GbPerS,
    /// Saturation constant for CPU persist-thread scaling: effective speedup
    /// of `n` threads is `n·(1+k)/(n+k)`. Fitted to Figure 3(a)'s
    /// 1.20/1.34/…/1.47 curve, which plateaus at `1+k`≈1.475.
    pub cpu_persist_saturation: f64,
    /// Latency of one CLFLUSH + SFENCE pair when not pipelined (fine-grained
    /// CPU persists, e.g. per-KV-pair in pmemKV-style stores).
    pub cpu_flush_drain_latency: Ns,
    /// Cost of an L1/L2-resident CPU store or load.
    pub cpu_mem_op_latency: Ns,
    /// DRAM access latency (LLC miss).
    pub dram_latency: Ns,
    /// Cost of acquiring an uncontended lock on the CPU.
    pub cpu_lock_latency: Ns,

    // ---- Filesystem (ext4-DAX) & OS ---------------------------------------
    /// Fixed cost of a syscall (write/fsync entry).
    pub syscall_overhead: Ns,
    /// Effective bandwidth of `write()` into an ext4-DAX file followed by
    /// `fsync` (journalling + page-path overheads).
    pub fs_write_bw: GbPerS,
    /// Fixed cost of an `fsync`/`msync`.
    pub fsync_overhead: Ns,
    /// Cost of one GPUfs syscall RPC from a threadblock to the CPU
    /// (GPU→CPU doorbell, host service, return) `[GPUfs, §6.1]`.
    pub gpufs_call_overhead: Ns,
    /// GPUfs maximum file size ("only supports file sizes upto 2GB" `[§6.1]`).
    pub gpufs_file_limit: u64,

    // ---- persistence-domain mode ------------------------------------------
    /// ADR (real hardware) or eADR (projection).
    pub persist_mode: PersistMode,

    // ---- DDIO --------------------------------------------------------------
    /// Cost of toggling DDIO via the `perfctrlsts_0` I/O register
    /// (`gpm_persist_begin`/`end`) `[§5.1, Farshin ATC'20]`.
    pub ddio_toggle_overhead: Ns,

    /// RNG seed for crash-subset selection and anything stochastic.
    pub seed: u64,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            pm_capacity: 512 << 20,
            dram_capacity: 512 << 20,
            hbm_capacity: 512 << 20,

            sm_count: 72,
            threads_per_sm: 1024,
            cuda_cores_per_sm: 64,
            kernel_launch_overhead: Ns::from_micros(5.0),
            hbm_bw: 550.0,
            device_fence_latency: Ns(40.0),

            pcie_bw: 12.6,
            pcie_txn_overhead: Ns(60.0),
            pcie_max_inflight: 16,
            system_fence_latency: Ns(1_100.0),
            eadr_fence_latency: Ns(80.0),
            epoch_fence_latency: Ns(150.0),
            dma_init_overhead: Ns::from_micros(10.0),

            pm_bw_seq_aligned: 12.5,
            pm_bw_seq_unaligned: 3.13,
            pm_bw_random: 0.72,
            pm_read_latency: Ns(300.0),
            pm_read_bw: 30.0,

            cpu_cores: 64,
            cpu_copy_bw: 1.4,
            cpu_flush_bw: 2.5,
            cpu_clflush_issue_bw: 20.0,
            cpu_persist_saturation: 0.475,
            cpu_flush_drain_latency: Ns(450.0),
            cpu_mem_op_latency: Ns(6.0),
            dram_latency: Ns(85.0),
            cpu_lock_latency: Ns(25.0),

            syscall_overhead: Ns(700.0),
            fs_write_bw: 0.65,
            fsync_overhead: Ns::from_micros(8.0),
            gpufs_call_overhead: Ns::from_micros(35.0),
            gpufs_file_limit: 2 << 30,

            persist_mode: PersistMode::Adr,
            ddio_toggle_overhead: Ns::from_micros(2.0),

            seed: 0x6770_6d21,
        }
    }
}

impl MachineConfig {
    /// The paper's testbed with the eADR projection enabled (`GPM-eADR`,
    /// `CAP-eADR` in §6.1).
    pub fn with_eadr(mut self) -> MachineConfig {
        self.persist_mode = PersistMode::Eadr;
        self
    }

    /// Replaces the RNG seed (crash-subset selection).
    pub fn with_seed(mut self, seed: u64) -> MachineConfig {
        self.seed = seed;
        self
    }

    /// Future-platform preset: PCIe 4.0 ×16 (double the link bandwidth,
    /// slightly cheaper transactions and fences — the round trip shrinks
    /// with the faster link).
    pub fn with_pcie4(mut self) -> MachineConfig {
        self.pcie_bw *= 2.0;
        self.pcie_txn_overhead = Ns(self.pcie_txn_overhead.0 * 0.7);
        self.system_fence_latency = Ns(self.system_fence_latency.0 * 0.7);
        self
    }

    /// Future-platform preset: second-generation Optane (the paper's §3.3:
    /// ships alongside eADR). Roughly +30% bandwidth across patterns per
    /// Intel's 200-series guidance.
    pub fn with_gen2_optane(mut self) -> MachineConfig {
        self.pm_bw_seq_aligned *= 1.3;
        self.pm_bw_seq_unaligned *= 1.3;
        self.pm_bw_random *= 1.3;
        self.pm_read_bw *= 1.3;
        self
    }

    /// Effective speedup of `n` CPU threads persisting in parallel relative
    /// to one thread. Saturates at `1 + cpu_persist_saturation` ≈ 1.475,
    /// matching Figure 3(a).
    ///
    /// # Examples
    ///
    /// ```
    /// use gpm_sim::MachineConfig;
    /// let cfg = MachineConfig::default();
    /// assert!((cfg.cpu_persist_scaling(1) - 1.0).abs() < 1e-9);
    /// assert!(cfg.cpu_persist_scaling(64) < 1.48);
    /// assert!(cfg.cpu_persist_scaling(64) > cfg.cpu_persist_scaling(2));
    /// ```
    pub fn cpu_persist_scaling(&self, n_threads: u32) -> f64 {
        let n = n_threads.max(1) as f64;
        let k = self.cpu_persist_saturation;
        n * (1.0 + k) / (n + k)
    }

    /// Maximum number of GPU threads the device keeps resident for latency
    /// hiding.
    pub fn max_resident_threads(&self) -> u32 {
        self.sm_count * self.threads_per_sm
    }

    /// Number of thread contexts executing compute simultaneously (CUDA
    /// cores across all SMs).
    pub fn total_cuda_cores(&self) -> u32 {
        self.sm_count * self.cuda_cores_per_sm
    }

    /// The system-scope fence latency under the current persistence mode.
    pub fn effective_system_fence_latency(&self) -> Ns {
        match self.persist_mode {
            PersistMode::Adr => self.system_fence_latency,
            PersistMode::Eadr => self.eadr_fence_latency,
        }
    }

    /// Time for the CPU to move `bytes` at bandwidth `bw` (GB/s).
    pub fn transfer_time(bytes: u64, bw: GbPerS) -> Ns {
        Ns(bytes as f64 / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_adr() {
        let cfg = MachineConfig::default();
        assert_eq!(cfg.persist_mode, PersistMode::Adr);
        assert_eq!(
            cfg.effective_system_fence_latency(),
            cfg.system_fence_latency
        );
    }

    #[test]
    fn eadr_shortens_fence() {
        let cfg = MachineConfig::default().with_eadr();
        assert_eq!(cfg.persist_mode, PersistMode::Eadr);
        assert!(cfg.effective_system_fence_latency() < cfg.system_fence_latency);
    }

    #[test]
    fn persist_scaling_matches_fig3a() {
        // Figure 3(a): 1.00, 1.20, 1.34, 1.42, 1.46, 1.47, 1.46 for
        // 1, 2, 4, 6, 16, 32, 64 threads.
        let cfg = MachineConfig::default();
        let expect = [
            (1, 1.00),
            (2, 1.20),
            (4, 1.32),
            (6, 1.37),
            (16, 1.43),
            (32, 1.45),
            (64, 1.46),
        ];
        for (n, e) in expect {
            let got = cfg.cpu_persist_scaling(n);
            assert!(
                (got - e).abs() < 0.08,
                "scaling({n}) = {got}, expected ≈ {e}"
            );
        }
    }

    #[test]
    fn persist_scaling_is_monotone_and_bounded() {
        let cfg = MachineConfig::default();
        let mut prev = 0.0;
        for n in 1..=256 {
            let s = cfg.cpu_persist_scaling(n);
            assert!(s >= prev);
            assert!(s <= 1.0 + cfg.cpu_persist_saturation + 1e-9);
            prev = s;
        }
    }

    #[test]
    fn transfer_time_is_linear() {
        let t1 = MachineConfig::transfer_time(1 << 20, 1.0);
        let t2 = MachineConfig::transfer_time(2 << 20, 1.0);
        assert!((t2.0 - 2.0 * t1.0).abs() < 1e-6);
        // 1 GiB at 1 GB/s ≈ 1.07 s.
        assert!((MachineConfig::transfer_time(1 << 30, 1.0).as_secs() - 1.073).abs() < 0.01);
    }

    #[test]
    fn resident_threads() {
        let cfg = MachineConfig::default();
        assert_eq!(cfg.max_resident_threads(), 72 * 1024);
    }

    #[test]
    fn builder_style_setters() {
        let cfg = MachineConfig::default().with_seed(42);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn future_platform_presets() {
        let base = MachineConfig::default();
        let p4 = MachineConfig::default().with_pcie4();
        assert!((p4.pcie_bw - 2.0 * base.pcie_bw).abs() < 1e-9);
        assert!(p4.system_fence_latency < base.system_fence_latency);
        let g2 = MachineConfig::default().with_gen2_optane();
        assert!(g2.pm_bw_random > base.pm_bw_random);
        assert!(g2.pm_bw_seq_aligned > base.pm_bw_seq_aligned);
        // Presets compose.
        let all = MachineConfig::default()
            .with_pcie4()
            .with_gen2_optane()
            .with_eadr();
        assert_eq!(all.persist_mode, PersistMode::Eadr);
        assert!(all.pcie_bw > base.pcie_bw && all.pm_bw_random > base.pm_bw_random);
    }
}
