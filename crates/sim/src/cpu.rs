//! Fine-grained CPU execution context.
//!
//! CPU baselines (the pmemKV/RocksDB/MatrixKV-style stores, the CPU BFS/
//! SRAD/prefix-sum implementations, and CAP's persisting threads) issue
//! individual loads, stores, CLFLUSHOPTs and SFENCEs. [`CpuCtx`] performs
//! them functionally against the [`Machine`] and accrues their cost, so a
//! baseline's elapsed time falls out of the same platform constants the GPU
//! engine uses.

use crate::addr::{line_span, Addr, MemSpace, CPU_LINE};
use crate::config::MachineConfig;
use crate::error::SimResult;
use crate::machine::Machine;
use crate::pm::WriterId;
use crate::time::Ns;

/// A single CPU thread's execution context.
///
/// # Examples
///
/// ```
/// use gpm_sim::{Machine, Addr};
/// use gpm_sim::cpu::CpuCtx;
/// let mut m = Machine::default();
/// let buf = m.alloc_pm(64)?;
/// let mut cpu = CpuCtx::new(&mut m, 0);
/// cpu.store(Addr::pm(buf), &7u64.to_le_bytes())?;
/// cpu.persist(buf, 8); // CLFLUSHOPT + SFENCE
/// assert!(cpu.elapsed().0 > 0.0);
/// # Ok::<(), gpm_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct CpuCtx<'m> {
    machine: &'m mut Machine,
    writer: WriterId,
    elapsed: Ns,
    flush_queue: Vec<(u64, u64)>,
}

impl<'m> CpuCtx<'m> {
    /// Creates a context for one CPU thread identified by `writer`.
    pub fn new(machine: &'m mut Machine, writer: WriterId) -> CpuCtx<'m> {
        CpuCtx {
            machine,
            writer,
            elapsed: Ns::ZERO,
            flush_queue: Vec::new(),
        }
    }

    fn cfg(&self) -> &MachineConfig {
        &self.machine.cfg
    }

    /// Time accrued by this thread so far.
    pub fn elapsed(&self) -> Ns {
        self.elapsed
    }

    /// Adds explicit compute time (ALU work between memory operations).
    pub fn compute(&mut self, ns: Ns) {
        self.elapsed += ns;
    }

    /// Acquires an uncontended lock (contention is modelled by callers that
    /// know their serialization structure).
    pub fn lock(&mut self) {
        let cost = self.cfg().cpu_lock_latency;
        self.elapsed += cost;
    }

    /// Stores bytes. PM stores are visible but need [`CpuCtx::persist`] (or
    /// flush+drain) to become durable.
    ///
    /// # Errors
    ///
    /// Returns an error if the address range is out of bounds.
    pub fn store(&mut self, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        self.elapsed += self.cfg().cpu_mem_op_latency;
        match addr.space {
            MemSpace::Pm => self.machine.cpu_store_pm(self.writer, addr.offset, bytes),
            _ => self.machine.host_write(addr, bytes),
        }
    }

    /// Non-temporal store: bypasses the cache; durable at the next
    /// [`CpuCtx::sfence`].
    ///
    /// # Errors
    ///
    /// Returns an error if the address range is out of bounds.
    pub fn nt_store(&mut self, addr: Addr, bytes: &[u8]) -> SimResult<()> {
        self.elapsed += self.cfg().cpu_mem_op_latency;
        match addr.space {
            MemSpace::Pm => {
                self.machine.cpu_store_pm(self.writer, addr.offset, bytes)?;
                self.flush_queue.push((addr.offset, bytes.len() as u64));
                Ok(())
            }
            _ => self.machine.host_write(addr, bytes),
        }
    }

    /// Loads bytes, paying the addressed device's latency.
    ///
    /// # Errors
    ///
    /// Returns an error if the address range is out of bounds.
    pub fn load(&mut self, addr: Addr, buf: &mut [u8]) -> SimResult<()> {
        self.elapsed += match addr.space {
            MemSpace::Pm => self.cfg().pm_read_latency,
            MemSpace::Dram => self.cfg().dram_latency,
            MemSpace::Hbm => self.cfg().dram_latency, // mapped BAR; rough
        };
        self.machine.read(addr, buf)
    }

    /// Loads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns an error if the address range is out of bounds.
    pub fn load_u64(&mut self, addr: Addr) -> SimResult<u64> {
        let mut b = [0u8; 8];
        self.load(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Issues CLFLUSHOPT for every line of `[offset, offset+len)` in PM.
    /// Cheap to issue; durability requires [`CpuCtx::sfence`].
    pub fn clflush(&mut self, offset: u64, len: u64) {
        let lines = line_span(offset, len).count() as f64;
        self.elapsed += self.cfg().cpu_mem_op_latency * lines;
        self.flush_queue.push((offset, len));
    }

    /// SFENCE: waits for all outstanding flushes/nt-stores of this thread to
    /// reach the persistence domain.
    pub fn sfence(&mut self) {
        if self.flush_queue.is_empty() {
            self.elapsed += self.cfg().cpu_mem_op_latency;
            return;
        }
        let mut lines = 0u64;
        let queue = std::mem::take(&mut self.flush_queue);
        for (off, len) in queue {
            lines += line_span(off, len).count() as u64;
            self.machine.cpu_persist_range(off, len);
        }
        // One full write-drain round trip, plus pipelined line writebacks.
        let extra = (lines.saturating_sub(1) * CPU_LINE) as f64 / self.cfg().cpu_flush_bw;
        let drain = self.cfg().cpu_flush_drain_latency;
        self.elapsed += drain + Ns(extra);
    }

    /// CLFLUSHOPT + SFENCE over one range: the canonical CPU persist.
    pub fn persist(&mut self, offset: u64, len: u64) {
        self.clflush(offset, len);
        self.sfence();
    }

    /// Underlying machine (for chained operations).
    pub fn machine(&mut self) -> &mut Machine {
        self.machine
    }
}

/// Elapsed time for `n_threads` CPU threads that evenly split a workload
/// whose single-threaded time is `single`, with the saturating scaling of
/// Figure 3(a).
pub fn parallel_time(cfg: &MachineConfig, single: Ns, n_threads: u32) -> Ns {
    single / cfg.cpu_persist_scaling(n_threads.min(cfg.cpu_cores))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_persist_is_durable() {
        let mut m = Machine::default();
        let off = m.alloc_pm(64).unwrap();
        let mut cpu = CpuCtx::new(&mut m, 1);
        cpu.store(Addr::pm(off), &[9; 8]).unwrap();
        cpu.persist(off, 8);
        let mut b = [0u8; 8];
        m.pm().read_media(off, &mut b).unwrap();
        assert_eq!(b, [9; 8]);
    }

    #[test]
    fn store_without_persist_is_pending() {
        let mut m = Machine::default();
        let off = m.alloc_pm(64).unwrap();
        let mut cpu = CpuCtx::new(&mut m, 1);
        cpu.store(Addr::pm(off), &[9; 8]).unwrap();
        drop(cpu);
        assert!(m.pm().is_pending(off, 8));
    }

    #[test]
    fn nt_store_durable_after_sfence() {
        let mut m = Machine::default();
        let off = m.alloc_pm(64).unwrap();
        let mut cpu = CpuCtx::new(&mut m, 1);
        cpu.nt_store(Addr::pm(off), &[4; 8]).unwrap();
        cpu.sfence();
        let mut b = [0u8; 8];
        m.pm().read_media(off, &mut b).unwrap();
        assert_eq!(b, [4; 8]);
    }

    #[test]
    fn costs_accrue() {
        let mut m = Machine::default();
        let off = m.alloc_pm(256).unwrap();
        let mut cpu = CpuCtx::new(&mut m, 1);
        cpu.store(Addr::pm(off), &[1; 8]).unwrap();
        let after_store = cpu.elapsed();
        assert!(after_store.0 > 0.0);
        cpu.persist(off, 8);
        assert!(cpu.elapsed() > after_store);
        let mut b = [0u8; 8];
        cpu.load(Addr::pm(off), &mut b).unwrap();
        assert!(
            cpu.elapsed().0 >= after_store.0 + 300.0,
            "PM load pays Optane latency"
        );
    }

    #[test]
    fn pipelined_flush_cheaper_than_serial() {
        let cfgd = MachineConfig::default();
        let mut m = Machine::default();
        let off = m.alloc_pm(64 * 64).unwrap();
        // One big flush of 64 lines.
        let mut cpu = CpuCtx::new(&mut m, 1);
        cpu.store(Addr::pm(off), &vec![1u8; 64 * 64]).unwrap();
        cpu.clflush(off, 64 * 64);
        cpu.sfence();
        let pipelined = cpu.elapsed();
        drop(cpu);
        // 64 separate persist calls (drain each time).
        let mut m2 = Machine::default();
        let off2 = m2.alloc_pm(64 * 64).unwrap();
        let mut cpu2 = CpuCtx::new(&mut m2, 1);
        cpu2.store(Addr::pm(off2), &vec![1u8; 64 * 64]).unwrap();
        for i in 0..64 {
            cpu2.persist(off2 + i * 64, 64);
        }
        let serial = cpu2.elapsed();
        assert!(
            serial.0 > pipelined.0 + 10.0 * cfgd.cpu_flush_drain_latency.0,
            "serial {serial} should far exceed pipelined {pipelined}"
        );
    }

    #[test]
    fn empty_sfence_is_cheap() {
        let mut m = Machine::default();
        let mut cpu = CpuCtx::new(&mut m, 1);
        cpu.sfence();
        assert!(cpu.elapsed() < Ns(100.0));
    }

    #[test]
    fn parallel_time_saturates() {
        let cfg = MachineConfig::default();
        let single = Ns::from_millis(100.0);
        let t1 = parallel_time(&cfg, single, 1);
        let t32 = parallel_time(&cfg, single, 32);
        let t64 = parallel_time(&cfg, single, 64);
        assert_eq!(t1, single);
        assert!(t32 < t1);
        let speedup = t1 / t64;
        assert!(
            speedup > 1.4 && speedup < 1.5,
            "Fig 3(a) plateau, got {speedup}"
        );
    }
}
