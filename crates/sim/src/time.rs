//! Simulated time.
//!
//! Every cost in the platform model is expressed in simulated nanoseconds
//! wrapped in the [`Ns`] newtype so that durations cannot be confused with
//! byte counts or thread counts. The simulation is analytical — no wall-clock
//! sleeping is involved — so `Ns` is a plain `f64` with arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration (or point in simulated time) in nanoseconds.
///
/// # Examples
///
/// ```
/// use gpm_sim::Ns;
/// let transfer = Ns::from_micros(2.0) + Ns(500.0);
/// assert_eq!(transfer, Ns(2_500.0));
/// assert!(transfer.as_millis() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ns(pub f64);

impl Ns {
    /// Zero duration.
    pub const ZERO: Ns = Ns(0.0);

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Ns {
        Ns(us * 1_000.0)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Ns {
        Ns(ms * 1_000_000.0)
    }

    /// Creates a duration from seconds.
    pub fn from_secs(s: f64) -> Ns {
        Ns(s * 1e9)
    }

    /// This duration in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 / 1_000.0
    }

    /// This duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 / 1_000_000.0
    }

    /// This duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1e9
    }

    /// Elementwise maximum; useful for overlapping resource model terms.
    pub fn max(self, other: Ns) -> Ns {
        Ns(self.0.max(other.0))
    }

    /// Elementwise minimum.
    pub fn min(self, other: Ns) -> Ns {
        Ns(self.0.min(other.0))
    }

    /// Returns `true` if this duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} s", self.as_secs())
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} ms", self.as_millis())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} us", self.as_micros())
        } else {
            write!(f, "{:.1} ns", self.0)
        }
    }
}

impl Add for Ns {
    type Output = Ns;
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl Mul<f64> for Ns {
    type Output = Ns;
    fn mul(self, rhs: f64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<f64> for Ns {
    type Output = Ns;
    fn div(self, rhs: f64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl Div<Ns> for Ns {
    type Output = f64;
    fn div(self, rhs: Ns) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        iter.fold(Ns::ZERO, |a, b| a + b)
    }
}

/// A monotonically advancing simulated clock.
///
/// The clock is advanced explicitly by the execution engines; it never moves
/// on its own.
///
/// # Examples
///
/// ```
/// use gpm_sim::{Ns, SimClock};
/// let mut clock = SimClock::new();
/// clock.advance(Ns::from_micros(3.0));
/// assert_eq!(clock.now(), Ns(3_000.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Ns,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Advances the clock by `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative (time never flows backwards).
    pub fn advance(&mut self, dt: Ns) {
        assert!(
            dt.0 >= 0.0,
            "cannot advance the clock by a negative duration"
        );
        self.now += dt;
    }

    /// Advances the clock to the absolute time `t` and returns the idle
    /// duration waited. A `t` at or before the current time is a no-op
    /// (`Ns::ZERO` waited) — an open-loop event source may schedule an
    /// arrival while the machine was still busy with earlier work.
    ///
    /// # Examples
    ///
    /// ```
    /// use gpm_sim::{Ns, SimClock};
    /// let mut clock = SimClock::new();
    /// clock.advance(Ns(100.0));
    /// assert_eq!(clock.advance_to(Ns(250.0)), Ns(150.0));
    /// assert_eq!(clock.advance_to(Ns(200.0)), Ns::ZERO);
    /// assert_eq!(clock.now(), Ns(250.0));
    /// ```
    pub fn advance_to(&mut self, t: Ns) -> Ns {
        if t <= self.now {
            return Ns::ZERO;
        }
        let waited = t - self.now;
        self.now = t;
        waited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_arithmetic() {
        assert_eq!(Ns(1.0) + Ns(2.0), Ns(3.0));
        assert_eq!(Ns(5.0) - Ns(2.0), Ns(3.0));
        assert_eq!(Ns(2.0) * 3.0, Ns(6.0));
        assert_eq!(Ns(6.0) / 2.0, Ns(3.0));
        assert_eq!(Ns(6.0) / Ns(2.0), 3.0);
    }

    #[test]
    fn ns_conversions() {
        assert_eq!(Ns::from_micros(1.0), Ns(1_000.0));
        assert_eq!(Ns::from_millis(1.0), Ns(1_000_000.0));
        assert_eq!(Ns::from_secs(1.0), Ns(1e9));
        assert_eq!(Ns::from_secs(2.0).as_millis(), 2_000.0);
        assert_eq!(Ns::from_millis(2.0).as_micros(), 2_000.0);
    }

    #[test]
    fn ns_max_min() {
        assert_eq!(Ns(1.0).max(Ns(2.0)), Ns(2.0));
        assert_eq!(Ns(1.0).min(Ns(2.0)), Ns(1.0));
    }

    #[test]
    fn ns_sum() {
        let total: Ns = [Ns(1.0), Ns(2.0), Ns(3.0)].into_iter().sum();
        assert_eq!(total, Ns(6.0));
    }

    #[test]
    fn ns_display_units() {
        assert_eq!(format!("{}", Ns(12.0)), "12.0 ns");
        assert_eq!(format!("{}", Ns(1_500.0)), "1.500 us");
        assert_eq!(format!("{}", Ns(2_500_000.0)), "2.500 ms");
        assert_eq!(format!("{}", Ns::from_secs(1.25)), "1.250 s");
    }

    #[test]
    fn clock_advances() {
        let mut c = SimClock::new();
        assert!(c.now().is_zero());
        c.advance(Ns(10.0));
        c.advance(Ns(5.0));
        assert_eq!(c.now(), Ns(15.0));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn clock_rejects_negative() {
        SimClock::new().advance(Ns(-1.0));
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut c = SimClock::new();
        c.advance(Ns(50.0));
        assert_eq!(c.advance_to(Ns(80.0)), Ns(30.0));
        assert_eq!(c.now(), Ns(80.0));
        // Past targets never rewind the clock.
        assert_eq!(c.advance_to(Ns(10.0)), Ns::ZERO);
        assert_eq!(c.now(), Ns(80.0));
        assert_eq!(c.advance_to(Ns(80.0)), Ns::ZERO);
    }
}
