//! Address spaces and granularities of the simulated platform.
//!
//! The machine exposes three physical memory spaces, mirroring the paper's
//! platform (Table 3): byte-addressable persistent memory (Optane NVDIMMs),
//! host DRAM, and the GPU's device memory (GDDR/HBM). A plain offset
//! addresses bytes within one space; an [`Addr`] pairs space and offset so
//! that APIs which accept any space stay type-checked.

use std::fmt;

/// CPU cache-line size in bytes (x86).
pub const CPU_LINE: u64 = 64;

/// GPU cache-line / coalescing granularity in bytes (§2: "typically 128 bytes
/// in GPU").
pub const GPU_LINE: u64 = 128;

/// Optane's internal write-combining granularity in bytes (§6.1: "it
/// internally buffers writes at 256 bytes").
pub const OPTANE_BLOCK: u64 = 256;

/// One of the machine's three physical memory spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemSpace {
    /// Byte-addressable persistent memory (Optane NVDIMM).
    Pm,
    /// Volatile host DRAM.
    Dram,
    /// Volatile GPU device memory (GDDR6/HBM).
    Hbm,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Pm => write!(f, "PM"),
            MemSpace::Dram => write!(f, "DRAM"),
            MemSpace::Hbm => write!(f, "HBM"),
        }
    }
}

/// A byte address in one of the machine's memory spaces.
///
/// # Examples
///
/// ```
/// use gpm_sim::{Addr, MemSpace};
/// let a = Addr::pm(0x1000);
/// assert_eq!(a.space, MemSpace::Pm);
/// assert_eq!(a.add(16).offset, 0x1010);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Which memory the address refers to.
    pub space: MemSpace,
    /// Byte offset within that memory.
    pub offset: u64,
}

impl Addr {
    /// An address in persistent memory.
    pub fn pm(offset: u64) -> Addr {
        Addr {
            space: MemSpace::Pm,
            offset,
        }
    }

    /// An address in host DRAM.
    pub fn dram(offset: u64) -> Addr {
        Addr {
            space: MemSpace::Dram,
            offset,
        }
    }

    /// An address in GPU device memory.
    pub fn hbm(offset: u64) -> Addr {
        Addr {
            space: MemSpace::Hbm,
            offset,
        }
    }

    /// The address `bytes` past this one, in the same space (pointer-style
    /// offsetting, intentionally named like `ptr::add`).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Addr {
        Addr {
            space: self.space,
            offset: self.offset + bytes,
        }
    }

    /// Whether this address points into persistent memory.
    pub fn is_pm(self) -> bool {
        self.space == MemSpace::Pm
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}", self.space, self.offset)
    }
}

/// Index of the CPU cache line containing byte `offset`.
pub fn cpu_line_of(offset: u64) -> u64 {
    offset / CPU_LINE
}

/// Returns the half-open range of CPU cache-line indices covering
/// `[offset, offset + len)`.
///
/// # Examples
///
/// ```
/// use gpm_sim::addr::line_span;
/// assert_eq!(line_span(0, 64), 0..1);
/// assert_eq!(line_span(60, 8), 0..2);
/// ```
pub fn line_span(offset: u64, len: u64) -> std::ops::Range<u64> {
    if len == 0 {
        let l = cpu_line_of(offset);
        return l..l;
    }
    cpu_line_of(offset)..cpu_line_of(offset + len - 1) + 1
}

/// Rounds `n` up to a multiple of `align`.
///
/// # Panics
///
/// Panics if `align` is zero.
pub fn align_up(n: u64, align: u64) -> u64 {
    assert!(align > 0, "alignment must be non-zero");
    n.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_constructors() {
        assert_eq!(Addr::pm(4).space, MemSpace::Pm);
        assert_eq!(Addr::dram(4).space, MemSpace::Dram);
        assert_eq!(Addr::hbm(4).space, MemSpace::Hbm);
        assert!(Addr::pm(0).is_pm());
        assert!(!Addr::hbm(0).is_pm());
    }

    #[test]
    fn addr_add() {
        let a = Addr::pm(100).add(28);
        assert_eq!(a, Addr::pm(128));
    }

    #[test]
    fn line_math() {
        assert_eq!(cpu_line_of(0), 0);
        assert_eq!(cpu_line_of(63), 0);
        assert_eq!(cpu_line_of(64), 1);
        assert_eq!(line_span(0, 1), 0..1);
        assert_eq!(line_span(63, 2), 0..2);
        assert_eq!(line_span(128, 128), 2..4);
        assert_eq!(line_span(10, 0), 0..0);
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 128), 0);
        assert_eq!(align_up(1, 128), 128);
        assert_eq!(align_up(128, 128), 128);
        assert_eq!(align_up(129, 128), 256);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Addr::pm(16)), "PM+0x10");
        assert_eq!(format!("{}", MemSpace::Hbm), "HBM");
    }
}
