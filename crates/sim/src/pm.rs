//! The persistent-memory device: durable media plus the volatile pending
//! state that sits between a store and its persist.
//!
//! Writes that enter the persistence domain (the ADR-protected write-pending
//! queue, or the whole cache hierarchy under eADR) go straight to *media*.
//! Writes that are merely *visible* — cached in the CPU LLC by DDIO, or not
//! yet drained — are recorded as *pending lines*: they are observable by
//! reads, but a crash applies an arbitrary subset of them (modelling cache
//! eviction order) and drops the rest. This is exactly the hazard the paper's
//! recovery protocols must survive (§2, §5).
//!
//! Both sides of the device are paged for hot-path speed. Media lives in
//! [`PagedBytes`] (fixed 64 KiB pages, so growth never re-zeroes established
//! bytes). Pending lines live in a paged sparse line table: a directory of
//! 4 KiB-span pages, each holding a 64-line presence bitmap and per-line
//! *slot indices* into a device-wide line pool — no hashing on the store
//! path, no heap allocation per line in steady state.
//!
//! The pool indirection matters for scattered access patterns. An earlier
//! layout embedded every line's 64 data bytes and writer set directly in the
//! page, making each page a ~7 KiB zero-initialised allocation; a workload
//! striding 1 KiB apart touched 4 of a page's 64 lines and paid ~94% of that
//! allocation as waste (the dominant per-op cost of the `scattered_store_256k`
//! engine bench). Pages are now ~300 bytes, line storage is allocated once in
//! the pool, and slots drained by a fence are recycled through a free list,
//! so steady-state fence-per-store traffic allocates nothing at all.

use crate::addr::{line_span, CPU_LINE};
use crate::error::{SimError, SimResult};
use crate::paged::PagedBytes;
use crate::rng::Xoshiro256StarStar;

/// Identifies the agent (GPU thread, CPU thread, DMA engine) that issued a
/// write, so that a fence by that agent persists exactly its own lines.
pub type WriterId = u32;

/// Reserved writer id for host-side bulk operations (DMA, file writes).
pub const HOST_WRITER: WriterId = u32::MAX;

/// Cache lines covered by one page of the pending line table.
const LINES_PER_PAGE: u64 = 64;

/// Writers tracked inline per line before spilling to the heap. A coalesced
/// warp store puts up to `CPU_LINE / 4 = 16` distinct writers on one line;
/// eight covers the common stride-8 and mixed cases without spilling.
const INLINE_WRITERS: usize = 8;

/// The set of writers with un-persisted stores to one line. Inline up to
/// [`INLINE_WRITERS`] ids; spills to a `Vec` only for byte-granular sharing.
#[derive(Debug, Clone)]
enum Writers {
    Inline {
        ids: [WriterId; INLINE_WRITERS],
        len: u8,
    },
    Spill(Vec<WriterId>),
}

impl Default for Writers {
    fn default() -> Writers {
        Writers::Inline {
            ids: [0; INLINE_WRITERS],
            len: 0,
        }
    }
}

impl Writers {
    fn clear(&mut self) {
        *self = Writers::default();
    }

    fn contains(&self, w: WriterId) -> bool {
        match self {
            Writers::Inline { ids, len } => ids[..*len as usize].contains(&w),
            Writers::Spill(v) => v.contains(&w),
        }
    }

    fn insert(&mut self, w: WriterId) {
        match self {
            Writers::Inline { ids, len } => {
                if ids[..*len as usize].contains(&w) {
                    return;
                }
                if (*len as usize) < INLINE_WRITERS {
                    ids[*len as usize] = w;
                    *len += 1;
                } else {
                    let mut v = ids.to_vec();
                    v.push(w);
                    *self = Writers::Spill(v);
                }
            }
            Writers::Spill(v) => {
                if !v.contains(&w) {
                    v.push(w);
                }
            }
        }
    }
}

/// Backing storage for one pending line, held in the device-wide pool.
#[derive(Debug, Clone)]
struct LineSlot {
    /// The line's visible contents.
    data: [u8; CPU_LINE as usize],
    /// Writers with un-persisted stores to the line.
    writers: Writers,
}

impl LineSlot {
    fn new() -> LineSlot {
        LineSlot {
            data: [0; CPU_LINE as usize],
            writers: Writers::default(),
        }
    }
}

/// One page of the pending line table: 64 consecutive cache lines. Only the
/// presence bitmap and pool indices live here, so allocating a page for a
/// sparsely-touched address range is cheap.
#[derive(Debug, Clone)]
struct PendingPage {
    /// Bit `i` set ⇔ line `page*64 + i` is pending.
    present: u64,
    /// Pool index of line `i`'s storage; meaningful only when bit `i` of
    /// `present` is set.
    slots: [u32; LINES_PER_PAGE as usize],
}

impl PendingPage {
    fn new() -> PendingPage {
        PendingPage {
            present: 0,
            slots: [0; LINES_PER_PAGE as usize],
        }
    }
}

/// Outcome of a crash: how pending state was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrashReport {
    /// Pending lines that happened to reach media before power was lost.
    pub lines_applied: u64,
    /// Pending lines whose contents were lost.
    pub lines_dropped: u64,
}

/// The simulated Optane persistent-memory device.
///
/// # Examples
///
/// ```
/// use gpm_sim::pm::PmDevice;
/// let mut pm = PmDevice::new(1 << 20);
/// pm.write_visible(7, 0, &[1, 2, 3])?;      // visible, not durable
/// let mut buf = [0u8; 3];
/// pm.read(0, &mut buf)?;
/// assert_eq!(buf, [1, 2, 3]);               // reads see pending data
/// pm.persist_writer(7);                      // fence: now durable
/// # Ok::<(), gpm_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct PmDevice {
    media: PagedBytes,
    capacity: u64,
    pending: Vec<Option<Box<PendingPage>>>,
    pending_count: u64,
    /// Storage for pending lines, indexed by [`PendingPage::slots`].
    pool: Vec<LineSlot>,
    /// Pool indices whose lines have drained, ready for reuse.
    free_slots: Vec<u32>,
    /// Watermarks bounding the directory pages that may hold pending lines
    /// (`occ_lo > occ_hi` ⇔ none). They only widen while lines are pending
    /// and snap shut when the table drains, so a fence-per-store workload
    /// scans one page per fence instead of the whole directory.
    occ_lo: usize,
    occ_hi: usize,
}

impl PmDevice {
    /// Creates a device with the given capacity in bytes. Media is allocated
    /// lazily, page by page, as it is touched.
    pub fn new(capacity: u64) -> PmDevice {
        PmDevice {
            media: PagedBytes::new(),
            capacity,
            pending: Vec::new(),
            pending_count: 0,
            pool: Vec::new(),
            free_slots: Vec::new(),
            occ_lo: usize::MAX,
            occ_hi: 0,
        }
    }

    /// Takes a line slot from the free list (writer set cleared) or grows the
    /// pool. The data bytes are left stale: every caller fills the whole line
    /// from media before exposing it.
    fn alloc_slot(&mut self) -> u32 {
        match self.free_slots.pop() {
            Some(idx) => {
                self.pool[idx as usize].writers.clear();
                idx
            }
            None => {
                self.pool.push(LineSlot::new());
                u32::try_from(self.pool.len() - 1).expect("pending-line pool exceeds u32 slots")
            }
        }
    }

    /// Narrows the occupied-page watermarks once the table is empty. Called
    /// at the end of every draining operation.
    fn settle_watermarks(&mut self) {
        if self.pending_count == 0 {
            self.occ_lo = usize::MAX;
            self.occ_hi = 0;
        }
    }

    /// The (inclusive) directory-page range that can hold pending lines, or
    /// `None` when nothing is pending.
    fn occupied_pages(&self) -> Option<std::ops::RangeInclusive<usize>> {
        if self.pending_count == 0 || self.occ_lo > self.occ_hi {
            return None;
        }
        Some(self.occ_lo..=self.occ_hi.min(self.pending.len().saturating_sub(1)))
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    fn check(&self, offset: u64, len: u64) -> SimResult<()> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.capacity)
        {
            return Err(SimError::OutOfBounds {
                addr: crate::addr::Addr::pm(offset),
                len,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Writes bytes that are immediately durable (persistence domain:
    /// DDIO-off ADR path after its fence, eADR, or host-initialized data).
    ///
    /// A pending line the write *fully* covers is retired: its content is now
    /// durable byte for byte, so it no longer counts as crash-vulnerable (and
    /// no longer inflates [`CrashReport`] line counts). A partially covered
    /// pending line instead has the written bytes folded into its visible
    /// copy so reads stay coherent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the range exceeds capacity.
    pub fn write_durable(&mut self, offset: u64, bytes: &[u8]) -> SimResult<()> {
        self.check(offset, bytes.len() as u64)?;
        self.media.write(offset, bytes);
        if self.pending_count == 0 {
            return Ok(());
        }
        let end = offset + bytes.len() as u64;
        for line in line_span(offset, bytes.len() as u64) {
            let ppage = (line / LINES_PER_PAGE) as usize;
            let slot = (line % LINES_PER_PAGE) as usize;
            let Some(page) = self.pending.get_mut(ppage).and_then(|p| p.as_deref_mut()) else {
                continue;
            };
            let bit = 1u64 << slot;
            if page.present & bit == 0 {
                continue;
            }
            let idx = page.slots[slot];
            let lstart = line * CPU_LINE;
            let lend = (lstart + CPU_LINE).min(self.capacity);
            if offset <= lstart && end >= lend {
                page.present &= !bit;
                self.free_slots.push(idx);
                self.pending_count -= 1;
            } else {
                let s = offset.max(lstart);
                let e = end.min(lstart + CPU_LINE);
                self.pool[idx as usize].data[(s - lstart) as usize..(e - lstart) as usize]
                    .copy_from_slice(&bytes[(s - offset) as usize..(e - offset) as usize]);
            }
        }
        Ok(())
    }

    /// Writes bytes that are visible to all observers but not yet durable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the range exceeds capacity.
    pub fn write_visible(&mut self, writer: WriterId, offset: u64, bytes: &[u8]) -> SimResult<()> {
        self.check(offset, bytes.len() as u64)?;
        let end = offset + bytes.len() as u64;
        for line in line_span(offset, bytes.len() as u64) {
            let lstart = line * CPU_LINE;
            let ppage = (line / LINES_PER_PAGE) as usize;
            let slot = (line % LINES_PER_PAGE) as usize;
            if ppage >= self.pending.len() {
                self.pending.resize_with(ppage + 1, || None);
            }
            let bit = 1u64 << slot;
            let absent = match self.pending[ppage].as_deref() {
                Some(page) => page.present & bit == 0,
                None => true,
            };
            let idx = if absent {
                let idx = self.alloc_slot();
                self.media.read(lstart, &mut self.pool[idx as usize].data);
                let page = self.pending[ppage].get_or_insert_with(|| Box::new(PendingPage::new()));
                page.present |= bit;
                page.slots[slot] = idx;
                self.pending_count += 1;
                self.occ_lo = self.occ_lo.min(ppage);
                self.occ_hi = self.occ_hi.max(ppage);
                idx
            } else {
                self.pending[ppage].as_deref().expect("page resident").slots[slot]
            };
            let lslot = &mut self.pool[idx as usize];
            lslot.writers.insert(writer);
            let s = offset.max(lstart);
            let e = end.min(lstart + CPU_LINE);
            lslot.data[(s - lstart) as usize..(e - lstart) as usize]
                .copy_from_slice(&bytes[(s - offset) as usize..(e - offset) as usize]);
        }
        Ok(())
    }

    /// Reads bytes as any coherent observer would see them: durable media
    /// overlaid with pending (visible) lines.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the range exceeds capacity.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> SimResult<()> {
        self.check(offset, buf.len() as u64)?;
        self.media.read(offset, buf);
        if self.pending_count == 0 {
            return Ok(());
        }
        let end = offset + buf.len() as u64;
        for line in line_span(offset, buf.len() as u64) {
            let ppage = (line / LINES_PER_PAGE) as usize;
            let slot = (line % LINES_PER_PAGE) as usize;
            let Some(page) = self.pending.get(ppage).and_then(|p| p.as_deref()) else {
                continue;
            };
            if page.present & (1u64 << slot) == 0 {
                continue;
            }
            let lstart = line * CPU_LINE;
            let data = &self.pool[page.slots[slot] as usize].data;
            let s = offset.max(lstart);
            let e = end.min(lstart + CPU_LINE);
            buf[(s - offset) as usize..(e - offset) as usize]
                .copy_from_slice(&data[(s - lstart) as usize..(e - lstart) as usize]);
        }
        Ok(())
    }

    /// Copies a pending line into media and clears its table entry. The
    /// caller guarantees the line is present.
    fn apply_line_at(&mut self, ppage: usize, slot: usize) {
        let line = ppage as u64 * LINES_PER_PAGE + slot as u64;
        let lstart = line * CPU_LINE;
        let end = (lstart + CPU_LINE).min(self.capacity);
        let mut buf = [0u8; CPU_LINE as usize];
        {
            let page = self.pending[ppage].as_deref_mut().expect("line present");
            let idx = page.slots[slot];
            buf.copy_from_slice(&self.pool[idx as usize].data);
            page.present &= !(1u64 << slot);
            self.free_slots.push(idx);
        }
        self.media.write(lstart, &buf[..(end - lstart) as usize]);
        self.pending_count -= 1;
    }

    /// Drains every pending line tagged with `writer` into media (the effect
    /// of a successful persist fence by that writer). Lines shared with other
    /// writers are drained whole — flushing is line-granular.
    ///
    /// Returns the number of lines made durable.
    pub fn persist_writer(&mut self, writer: WriterId) -> u64 {
        let Some(pages) = self.occupied_pages() else {
            return 0;
        };
        let mut n = 0;
        for ppage in pages {
            let Some(page) = self.pending[ppage].as_deref() else {
                continue;
            };
            let mut bits = page.present;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let page = self.pending[ppage].as_deref().expect("page resident");
                if self.pool[page.slots[slot] as usize]
                    .writers
                    .contains(writer)
                {
                    self.apply_line_at(ppage, slot);
                    n += 1;
                }
            }
        }
        self.settle_watermarks();
        n
    }

    /// Drains every pending line intersecting `[offset, offset+len)` into
    /// media (the effect of CLFLUSH over a range followed by SFENCE).
    ///
    /// Returns the number of lines made durable.
    pub fn persist_range(&mut self, offset: u64, len: u64) -> u64 {
        if self.pending_count == 0 {
            return 0;
        }
        let mut n = 0;
        for line in line_span(offset, len) {
            let ppage = (line / LINES_PER_PAGE) as usize;
            let slot = (line % LINES_PER_PAGE) as usize;
            let present = self
                .pending
                .get(ppage)
                .and_then(|p| p.as_deref())
                .is_some_and(|p| p.present & (1u64 << slot) != 0);
            if present {
                self.apply_line_at(ppage, slot);
                n += 1;
            }
        }
        n
    }

    /// Drains all pending lines (e.g. an orderly shutdown).
    pub fn persist_all(&mut self) -> u64 {
        let Some(pages) = self.occupied_pages() else {
            return 0;
        };
        let mut n = 0;
        for ppage in pages {
            let Some(page) = self.pending[ppage].as_deref() else {
                continue;
            };
            let mut bits = page.present;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.apply_line_at(ppage, slot);
                n += 1;
            }
        }
        self.settle_watermarks();
        n
    }

    /// Number of lines currently visible but not durable.
    pub fn pending_line_count(&self) -> usize {
        self.pending_count as usize
    }

    /// Whether any byte of `[offset, offset+len)` is pending (not durable).
    pub fn is_pending(&self, offset: u64, len: u64) -> bool {
        if self.pending_count == 0 {
            return false;
        }
        line_span(offset, len).any(|line| {
            let ppage = (line / LINES_PER_PAGE) as usize;
            let slot = (line % LINES_PER_PAGE) as usize;
            self.pending
                .get(ppage)
                .and_then(|p| p.as_deref())
                .is_some_and(|p| p.present & (1u64 << slot) != 0)
        })
    }

    /// Power failure: each pending line independently either reached media
    /// (natural eviction had already written it back) or is lost. The choice
    /// is random, modelling the unconstrained order in which a cache writes
    /// lines back. Lines are visited in ascending address order, so a given
    /// RNG state yields one reproducible crash outcome.
    pub fn crash(&mut self, rng: &mut Xoshiro256StarStar) -> CrashReport {
        let mut report = CrashReport::default();
        let Some(pages) = self.occupied_pages() else {
            return report;
        };
        for ppage in pages {
            let Some(page) = self.pending[ppage].as_deref() else {
                continue;
            };
            let mut bits = page.present;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if rng.gen_bool(0.5) {
                    self.apply_line_at(ppage, slot);
                    report.lines_applied += 1;
                } else {
                    let page = self.pending[ppage].as_deref_mut().expect("page resident");
                    page.present &= !(1u64 << slot);
                    self.free_slots.push(page.slots[slot]);
                    self.pending_count -= 1;
                    report.lines_dropped += 1;
                }
            }
        }
        self.settle_watermarks();
        report
    }

    /// Reads directly from durable media, ignoring pending lines. Intended
    /// for tests asserting what would survive an immediate crash that drops
    /// everything pending.
    pub fn read_media(&self, offset: u64, buf: &mut [u8]) -> SimResult<()> {
        self.check(offset, buf.len() as u64)?;
        self.media.read(offset, buf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn durable_write_survives_crash() {
        let mut pm = PmDevice::new(1 << 16);
        pm.write_durable(100, &[9, 8, 7]).unwrap();
        pm.crash(&mut rng(1));
        let mut buf = [0u8; 3];
        pm.read(100, &mut buf).unwrap();
        assert_eq!(buf, [9, 8, 7]);
    }

    #[test]
    fn visible_write_is_readable_but_not_durable() {
        let mut pm = PmDevice::new(1 << 16);
        pm.write_visible(1, 0, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        pm.read(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        pm.read_media(0, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0, 0]);
        assert!(pm.is_pending(0, 4));
    }

    #[test]
    fn persist_writer_drains_only_that_writer() {
        let mut pm = PmDevice::new(1 << 16);
        pm.write_visible(1, 0, &[1]).unwrap();
        pm.write_visible(2, 4096, &[2]).unwrap();
        assert_eq!(pm.persist_writer(1), 1);
        assert!(!pm.is_pending(0, 1));
        assert!(pm.is_pending(4096, 1));
        let mut b = [0u8];
        pm.read_media(0, &mut b).unwrap();
        assert_eq!(b, [1]);
    }

    #[test]
    fn shared_line_flushes_whole() {
        let mut pm = PmDevice::new(1 << 16);
        pm.write_visible(1, 0, &[1]).unwrap();
        pm.write_visible(2, 8, &[2]).unwrap(); // same 64 B line
        pm.persist_writer(1);
        let mut b = [0u8; 9];
        pm.read_media(0, &mut b).unwrap();
        assert_eq!(b[0], 1);
        assert_eq!(b[8], 2, "line-granular flush carries the co-located write");
    }

    #[test]
    fn persist_range_flushes_intersecting_lines() {
        let mut pm = PmDevice::new(1 << 16);
        pm.write_visible(1, 60, &[7; 8]).unwrap(); // spans lines 0 and 1
        assert_eq!(pm.persist_range(60, 1), 1);
        assert_eq!(pm.persist_range(64, 4), 1);
        assert!(!pm.is_pending(60, 8));
    }

    #[test]
    fn crash_applies_random_subset() {
        let mut pm = PmDevice::new(1 << 20);
        for i in 0..256u64 {
            pm.write_visible(i as WriterId, i * 64, &[i as u8; 8])
                .unwrap();
        }
        let report = pm.crash(&mut rng(42));
        assert_eq!(report.lines_applied + report.lines_dropped, 256);
        assert!(
            report.lines_applied > 32,
            "with p=0.5 over 256 lines, >32 expected"
        );
        assert!(report.lines_dropped > 32);
        assert_eq!(pm.pending_line_count(), 0);
        // Applied lines are readable from media; dropped lines read as zero.
        let mut applied = 0;
        for i in 0..256u64 {
            let mut b = [0u8];
            pm.read(i * 64, &mut b).unwrap();
            if b[0] == i as u8 && b[0] != 0 {
                applied += 1;
            }
        }
        assert!(applied > 0);
    }

    #[test]
    fn crash_outcome_is_reproducible_for_a_seed() {
        let run = |seed: u64| -> (CrashReport, Vec<u8>) {
            let mut pm = PmDevice::new(1 << 20);
            for i in 0..64u64 {
                pm.write_visible(i as WriterId, i * 64, &[i as u8 + 1; 16])
                    .unwrap();
            }
            let report = pm.crash(&mut rng(seed));
            let mut buf = vec![0u8; 64 * 64];
            pm.read_media(0, &mut buf).unwrap();
            (report, buf)
        };
        assert_eq!(run(7), run(7), "same seed, same crash outcome");
        assert_ne!(run(7).1, run(8).1, "different seeds diverge");
    }

    #[test]
    fn write_spanning_lines() {
        let mut pm = PmDevice::new(1 << 16);
        let data: Vec<u8> = (0..200u16).map(|x| x as u8).collect();
        pm.write_visible(3, 30, &data).unwrap();
        let mut buf = vec![0u8; 200];
        pm.read(30, &mut buf).unwrap();
        assert_eq!(buf, data);
        pm.persist_writer(3);
        pm.read_media(30, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn durable_write_updates_pending_copy() {
        let mut pm = PmDevice::new(1 << 16);
        pm.write_visible(1, 0, &[1, 1, 1, 1]).unwrap();
        pm.write_durable(1, &[9, 9]).unwrap();
        let mut b = [0u8; 4];
        pm.read(0, &mut b).unwrap();
        assert_eq!(b, [1, 9, 9, 1], "read must see the newest data");
        // Even if the pending line is dropped on crash, only bytes 1..3 were
        // guaranteed durable.
        let mut media = [0u8; 4];
        pm.read_media(0, &mut media).unwrap();
        assert_eq!(media[1], 9);
        assert_eq!(media[2], 9);
    }

    #[test]
    fn durable_write_retires_fully_covered_pending_lines() {
        let mut pm = PmDevice::new(1 << 16);
        pm.write_visible(1, 0, &[1; 64]).unwrap();
        pm.write_visible(1, 64, &[2; 8]).unwrap();
        assert_eq!(pm.pending_line_count(), 2);
        // Covers all of line 0 but only part of line 1.
        pm.write_durable(0, &[9; 96]).unwrap();
        assert_eq!(pm.pending_line_count(), 1, "fully covered line retired");
        assert!(!pm.is_pending(0, 64));
        assert!(pm.is_pending(64, 8));
        // A crash that drops the rest cannot lose the retired line's data.
        let report = pm.crash(&mut rng(3));
        assert_eq!(report.lines_applied + report.lines_dropped, 1);
        let mut b = [0u8; 64];
        pm.read_media(0, &mut b).unwrap();
        assert_eq!(b, [9; 64]);
    }

    #[test]
    fn retired_line_not_drained_by_later_fence() {
        let mut pm = PmDevice::new(1 << 16);
        pm.write_visible(5, 0, &[1; 64]).unwrap();
        pm.write_durable(0, &[2; 64]).unwrap();
        assert_eq!(pm.persist_writer(5), 0, "nothing left to drain");
        let mut b = [0u8; 64];
        pm.read(0, &mut b).unwrap();
        assert_eq!(b, [2; 64]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut pm = PmDevice::new(64);
        assert!(matches!(
            pm.write_durable(60, &[0; 8]),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            pm.write_visible(0, 64, &[0]),
            Err(SimError::OutOfBounds { .. })
        ));
        let mut b = [0u8; 2];
        assert!(pm.read(63, &mut b).is_err());
        assert!(pm.read(62, &mut b).is_ok());
    }

    #[test]
    fn persist_all_drains_everything() {
        let mut pm = PmDevice::new(1 << 16);
        pm.write_visible(1, 0, &[1]).unwrap();
        pm.write_visible(2, 1000, &[2]).unwrap();
        assert_eq!(pm.persist_all(), 2);
        assert_eq!(pm.pending_line_count(), 0);
    }

    #[test]
    fn many_writers_on_one_line_spill_correctly() {
        let mut pm = PmDevice::new(1 << 16);
        // 64 byte-granular writers share one line — far beyond the inline set.
        for w in 0..64u32 {
            pm.write_visible(w, w as u64, &[w as u8 + 1]).unwrap();
        }
        assert_eq!(pm.pending_line_count(), 1);
        // A fence by the last writer drains the shared line whole.
        assert_eq!(pm.persist_writer(63), 1);
        let mut b = [0u8; 64];
        pm.read_media(0, &mut b).unwrap();
        for (w, &byte) in b.iter().enumerate() {
            assert_eq!(byte, w as u8 + 1);
        }
    }
}
